//! `cache8t` — command-line front end for the workspace.
//!
//! ```text
//! cache8t list-profiles
//! cache8t gen      --profile bwaves --ops 100000 --seed 1 --out bwaves.c8tt
//! cache8t analyze  --trace bwaves.c8tt
//! cache8t simulate --scheme wg+rb --trace bwaves.c8tt
//! cache8t simulate --scheme rmw --profile gcc --ops 200000
//! ```
//!
//! Traces use the binary format of `cache8t_trace` (`.c8tt`); `simulate`
//! accepts either a saved trace or a profile name to generate one on the
//! fly. Schemes: `6t`, `rmw`, `wg`, `wg+rb`, `coalesce:<entries>`.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write as _};
use std::process::ExitCode;

use cache8t::conform::{self, fuzz, ConformConfig, ConformReport, SchemeId};
use cache8t::core::{
    CacheBackend, CoalescingController, Controller, ConventionalController, RmwController,
    WgController, WgOptions, WgRbController,
};
use cache8t::exec::experiment::run_scheme_sampled;
use cache8t::exec::{
    average, merge_documents, metrics_document, replay_ops_batched, run_jobs, run_sweep,
    to_document, BenchmarkResult, ExecOptions, GeometryPoint, JobOutcome, Shard, SweepOptions,
    SweepPlan, TraceStore,
};
use cache8t::exec::{ChunkSource, PrefetchedChunks};
use cache8t::obs::sampler::{self, Sampler, SamplerConfig, SeriesSample};
use cache8t::obs::{perfdiff, timeline};
use cache8t::serve::{Client, ClientError, PlanSpec, ServeConfig, Server};
use cache8t::sim::{kernels, CacheGeometry, ReplacementKind};
use cache8t::trace::analyze::StreamStats;
use cache8t::trace::{
    profiles, ChunkedGenerator, DecodedBatch, ProfiledGenerator, Trace, TraceChunk,
    TraceFileReader, TraceGenerator,
};

const USAGE: &str = "\
usage: cache8t <command> [options]

commands:
  list-profiles                          list the 25 calibrated benchmark profiles
  gen      --profile NAME --out FILE     generate a trace to FILE
           [--ops N] [--seed S]
  analyze  --trace FILE                  print stream statistics (Figures 3-5 metrics)
  simulate --scheme SCHEME               replay through one controller
           (--trace FILE | --profile NAME)
           [--ops N] [--seed S]
           [--cache CAPKB,WAYS,BLOCKB]
           [--l2 CAPKB,WAYS,BLOCKB]
           [--metrics-out FILE]          write the metric registry as JSON
           [--trace-out FILE]            write recorded events as JSONL
                                         (set CACHE8T_TRACE=event|verbose)
           [--timeline-out FILE]         write a Chrome/Perfetto trace
           [--series-out FILE]           stream windowed telemetry as JSONL
           [--series-cadence N]          ops per telemetry window
                                         (default: 65536)
           [--stream-chunk-ops N]        replay as a bounded-memory chunk
                                         stream (bit-identical results,
                                         RSS ~ 2 chunks for any --ops)
  sweep                                  run benchmarks x geometries x schemes
           [--ops N] [--seed S]          on the parallel execution engine
           [--jobs N]                    worker threads (default: all cores)
           [--retries N]                 re-run panicking jobs up to N times
           [--shard I/N]                 run the I-th of N benchmark shards
           [--profiles A,B,..]           subset of profiles (default: all 25)
           [--geometries A,B,..]         of baseline,blocks64,small,large
           [--out FILE]                  write the sweep document as JSON
           [--json]                      print the sweep document to stdout
           [--metrics-out FILE]          write merged scheme + scheduler
                                         metrics as JSON (perfdiff input)
           [--timeline-out FILE]         write a Chrome/Perfetto execution
                                         timeline (one track per worker)
           [--series-out FILE]           write windowed telemetry of every
                                         scheme run as JSONL, in plan order
                                         (byte-identical for any --jobs)
           [--series-cadence N]          ops per telemetry window
           [--trace-store DIR|off]       cache generated traces on disk
                                         (default: in-memory only, or
                                         CACHE8T_TRACE_STORE)
           [--stream-chunk-ops N]        stream traces in N-op chunks
                                         instead of materializing them
                                         (byte-identical documents)
  sweep    --merge FILE [--merge FILE..] merge shard documents into one
           [--out FILE] [--json]
  watch    SERIES.jsonl                  rolling dashboard over a telemetry
           [--follow]                    series; --follow tails the file as
           [--rows N]                    a live replay appends windows
  report-series SERIES.jsonl             phase-resolved summary tables and
                                         sparklines from a telemetry series
  bench-core                             single-thread replay throughput of
           [--profile NAME]              the simulator core (batched replay
           [--ops N] [--seed S]          path), one row per scheme plus the
           [--reps N]                    decode/probe/compare kernel
                                         microbenches; best of N reps kept
                                         (default profile: gcc)
           [--cache CAPKB,WAYS,BLOCKB]
           [--l2 CAPKB,WAYS,BLOCKB]
           [--out FILE] [--json]         perfdiff-compatible JSON document
  perfdiff BASELINE.json CURRENT.json    compare two metric snapshots
           [--fail-on-regress PCT]      exit 1 when any aligned metric
                                         drifts more than PCT percent
           [--ignore PREFIX,..]          skip metric families (e.g. sweep.)
           [--json] [--out FILE]         machine-readable report
  serve    --listen ADDR                 sweep-as-a-service daemon speaking
           [--checkpoint-dir DIR]        a JSONL protocol; ADDR is host:port
           [--jobs N] [--retries N]      or unix:/path/to.sock; with a
           [--trace-store DIR|off]       checkpoint dir, interrupted sweeps
           [--stream-chunk-ops N]        resume from completed benchmarks;
           [--log-out FILE]              --stream-chunk-ops streams traces;
           [--timeline-out FILE]         --log-out writes a structured JSONL
                                         oplog (level via CACHE8T_LOG, to
                                         stderr otherwise), --timeline-out
                                         a Perfetto trace of job lifecycles
  client   --connect ADDR ACTION         drive a running daemon; actions:
           [--job ID]                    submit [plan flags] [--wait],
           [--profiles A,B,..]           status [--job ID], fetch --job ID,
           [--geometries A,B,..]         watch --job ID, cancel --job ID,
           [--ops N] [--seed S]          health, metrics [--text], shutdown;
           [--series-cadence N]          fetch (and submit --wait) emit the
           [--wait] [--out FILE] [--json] sweep document via --out/--json;
           [--text]                      metrics --text renders Prometheus
                                         exposition format
  top      --connect ADDR                live daemon-wide dashboard: queue,
           [--interval-ms N]             per-phase job counts, journal and
           [--once]                      trace-store vitals, per-job table;
                                         repaints every N ms (default 1000),
                                         --once prints a single frame
  check                                  differential conformance harness:
           [--schemes A,B,..]            replay profiles + fuzzed traces in
           [--profiles A,B,..]           lockstep through every scheme and a
           [--trace FILE]                golden memory; check a saved trace
           [--ops N] [--seed S]          (e.g. a shrunk reproducer) instead
           [--cache CAPKB,WAYS,BLOCKB]
           [--fuzz-rounds N]             seeded random traces (default: 10)
           [--jobs N]                    worker threads (default: all cores)
           [--shrink-out DIR]            where failing traces are shrunk to
                                         .c8tt reproducers (default:
                                         results/repro)
           [--trace-out FILE]            write divergence events as JSONL

schemes: 6t, rmw, wg, wg+rb, coalesce:<entries>
defaults: --ops 100000, --seed 42, --cache 64,4,32, no L2";

#[derive(Debug)]
struct Options {
    profile: Option<String>,
    trace: Option<String>,
    out: Option<String>,
    scheme: Option<String>,
    ops: usize,
    seed: u64,
    cache: CacheGeometry,
    l2: Option<CacheGeometry>,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    timeline_out: Option<String>,
    series_out: Option<String>,
    series_cadence: Option<u64>,
    jobs: usize,
    retries: u32,
    shard: Option<Shard>,
    profiles: Option<Vec<String>>,
    geometries: Option<Vec<String>>,
    json: bool,
    trace_store: Option<String>,
    merge: Vec<String>,
    schemes: Option<String>,
    fuzz_rounds: usize,
    shrink_out: Option<String>,
    reps: usize,
    stream_chunk_ops: Option<usize>,
}

fn parse_geometry(flag: &str, spec: &str) -> Result<CacheGeometry, String> {
    let parts: Vec<&str> = spec.split(',').collect();
    if parts.len() != 3 {
        return Err(format!("{flag} expects CAPKB,WAYS,BLOCKB, got `{spec}`"));
    }
    let nums: Result<Vec<u64>, _> = parts.iter().map(|p| p.parse::<u64>()).collect();
    let nums = nums.map_err(|_| format!("invalid {flag} numbers in `{spec}`"))?;
    CacheGeometry::new(nums[0] * 1024, nums[1], nums[2])
        .map_err(|e| format!("invalid {flag} geometry: {e}"))
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options {
        profile: None,
        trace: None,
        out: None,
        scheme: None,
        ops: 100_000,
        seed: 42,
        cache: CacheGeometry::paper_baseline(),
        l2: None,
        metrics_out: None,
        trace_out: None,
        timeline_out: None,
        series_out: None,
        series_cadence: None,
        jobs: 0,
        retries: 0,
        shard: None,
        profiles: None,
        geometries: None,
        json: false,
        trace_store: None,
        merge: Vec::new(),
        schemes: None,
        fuzz_rounds: 10,
        shrink_out: None,
        reps: 3,
        stream_chunk_ops: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--profile" => o.profile = Some(value()?),
            "--trace" => o.trace = Some(value()?),
            "--out" => o.out = Some(value()?),
            "--scheme" => o.scheme = Some(value()?),
            "--ops" => {
                o.ops = value()?
                    .replace('_', "")
                    .parse()
                    .map_err(|_| "invalid --ops value".to_string())?;
                if o.ops == 0 {
                    return Err("--ops must be positive".to_string());
                }
            }
            "--seed" => {
                o.seed = value()?
                    .parse()
                    .map_err(|_| "invalid --seed value".to_string())?;
            }
            "--cache" => o.cache = parse_geometry("--cache", &value()?)?,
            "--l2" => o.l2 = Some(parse_geometry("--l2", &value()?)?),
            "--metrics-out" => o.metrics_out = Some(value()?),
            "--trace-out" => o.trace_out = Some(value()?),
            "--timeline-out" => o.timeline_out = Some(value()?),
            "--series-out" => o.series_out = Some(value()?),
            "--series-cadence" => {
                let cadence: u64 = value()?
                    .replace('_', "")
                    .parse()
                    .map_err(|_| "invalid --series-cadence value".to_string())?;
                if cadence == 0 {
                    return Err("--series-cadence must be positive".to_string());
                }
                o.series_cadence = Some(cadence);
            }
            "--jobs" => {
                o.jobs = value()?
                    .parse()
                    .map_err(|_| "invalid --jobs value".to_string())?;
                if o.jobs == 0 {
                    return Err("--jobs must be positive".to_string());
                }
            }
            "--retries" => {
                o.retries = value()?
                    .parse()
                    .map_err(|_| "invalid --retries value".to_string())?;
            }
            "--shard" => o.shard = Some(Shard::parse(&value()?)?),
            "--profiles" => {
                o.profiles = Some(value()?.split(',').map(str::to_string).collect());
            }
            "--geometries" => {
                o.geometries = Some(value()?.split(',').map(str::to_string).collect());
            }
            "--json" => o.json = true,
            "--trace-store" => o.trace_store = Some(value()?),
            "--merge" => o.merge.push(value()?),
            "--schemes" => o.schemes = Some(value()?),
            "--fuzz-rounds" => {
                o.fuzz_rounds = value()?
                    .parse()
                    .map_err(|_| "invalid --fuzz-rounds value".to_string())?;
            }
            "--shrink-out" => o.shrink_out = Some(value()?),
            "--stream-chunk-ops" => {
                let chunk_ops: usize = value()?
                    .replace('_', "")
                    .parse()
                    .map_err(|_| "invalid --stream-chunk-ops value".to_string())?;
                if chunk_ops == 0 {
                    return Err("--stream-chunk-ops must be positive".to_string());
                }
                o.stream_chunk_ops = Some(chunk_ops);
            }
            "--reps" => {
                o.reps = value()?
                    .parse()
                    .map_err(|_| "invalid --reps value".to_string())?;
                if o.reps == 0 {
                    return Err("--reps must be positive".to_string());
                }
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(o)
}

fn build_controller(
    scheme: &str,
    geometry: CacheGeometry,
    l2: Option<CacheGeometry>,
) -> Result<Box<dyn Controller>, String> {
    let lru = ReplacementKind::Lru;
    let backend = || match l2 {
        Some(l2_geometry) => CacheBackend::with_l2(geometry, l2_geometry, lru),
        None => CacheBackend::new(geometry, lru),
    };
    Ok(match scheme {
        "6t" => Box::new(ConventionalController::from_backend(backend())),
        "rmw" => Box::new(RmwController::from_backend(backend())),
        "wg" => Box::new(WgController::from_backend(backend(), WgOptions::wg())),
        "wg+rb" | "wgrb" => Box::new(WgRbController::from_backend(backend())),
        other => {
            if let Some(entries) = other.strip_prefix("coalesce:") {
                let entries: usize = entries
                    .parse()
                    .map_err(|_| format!("invalid entry count in `{other}`"))?;
                if entries == 0 {
                    return Err("coalesce needs at least one entry".to_string());
                }
                Box::new(CoalescingController::from_backend(backend(), entries))
            } else {
                return Err(format!(
                    "unknown scheme `{other}` (expected 6t, rmw, wg, wg+rb, coalesce:<n>)"
                ));
            }
        }
    })
}

fn load_or_generate(o: &Options) -> Result<Trace, String> {
    match (&o.trace, &o.profile) {
        (Some(path), None) => {
            let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            Trace::read_from(BufReader::new(file)).map_err(|e| format!("cannot read {path}: {e}"))
        }
        (None, Some(name)) => {
            let profile = profiles::by_name(name)
                .ok_or_else(|| format!("unknown profile `{name}` (try list-profiles)"))?;
            Ok(
                ProfiledGenerator::new(profile, CacheGeometry::paper_baseline(), o.seed)
                    .collect(o.ops),
            )
        }
        (Some(_), Some(_)) => Err("--trace and --profile are mutually exclusive".to_string()),
        (None, None) => Err("need --trace FILE or --profile NAME".to_string()),
    }
}

fn cmd_list_profiles() {
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>8}",
        "name", "rd/instr", "wr/instr", "same-set", "silent"
    );
    for p in profiles::spec2006() {
        println!(
            "{:<12} {:>8.1}% {:>8.1}% {:>8.1}% {:>7.0}%",
            p.name,
            p.reads_per_instr() * 100.0,
            p.writes_per_instr() * 100.0,
            p.locality.total() * 100.0,
            p.silent_fraction * 100.0,
        );
    }
}

fn cmd_gen(o: &Options) -> Result<(), String> {
    let out = o.out.as_ref().ok_or("gen requires --out FILE")?;
    if o.trace.is_some() {
        return Err("gen takes --profile, not --trace".to_string());
    }
    let trace = load_or_generate(o)?;
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    trace
        .write_to(BufWriter::new(file))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote {} ops ({} instructions) to {out}",
        trace.len(),
        trace.instructions()
    );
    Ok(())
}

fn cmd_analyze(o: &Options) -> Result<(), String> {
    let trace = load_or_generate(o)?;
    let stats = StreamStats::measure(&trace, o.cache);
    println!(
        "{} ops over {} instructions, {} distinct blocks in {} sets",
        trace.len(),
        trace.instructions(),
        stats.distinct_blocks,
        stats.distinct_sets
    );
    println!("{stats}");
    Ok(())
}

/// The sampler configuration `--series-cadence` selects (default
/// cadence when the flag is absent).
fn sampler_config(o: &Options) -> SamplerConfig {
    match o.series_cadence {
        Some(cadence) => SamplerConfig::with_cadence(cadence),
        None => SamplerConfig::default(),
    }
}

fn cmd_simulate(o: &Options) -> Result<(), String> {
    let scheme = o.scheme.as_ref().ok_or("simulate requires --scheme")?;
    if o.timeline_out.is_some() {
        timeline::enable();
        timeline::set_track_name("main");
    }
    if let Some(chunk_ops) = o.stream_chunk_ops {
        return cmd_simulate_streamed(o, scheme, chunk_ops);
    }
    let trace = load_or_generate(o)?;
    let mut controller = build_controller(scheme, o.cache, o.l2)?;
    timeline::begin("replay", "sim");
    match &o.series_out {
        Some(path) => {
            // Stream each window straight to disk: the sampler's ring
            // stays bounded, so even a very long replay holds flat
            // memory while exporting its full telemetry history.
            let writer = BufWriter::new(
                File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?,
            );
            let bench = o
                .profile
                .clone()
                .or_else(|| o.trace.clone())
                .unwrap_or_default();
            let mut series_sampler = Sampler::new(&bench, controller.name(), sampler_config(o))
                .with_writer(Box::new(writer));
            run_scheme_sampled(controller.as_mut(), &trace, 0, &mut series_sampler);
            eprintln!(
                "telemetry series ({} windows) written to {path}",
                series_sampler.emitted()
            );
        }
        None => {
            for op in &trace {
                controller.access(op);
            }
            controller.flush();
        }
    }
    timeline::end("replay", "sim");
    println!(
        "scheme {} on {} ops ({}KB/{}-way/{}B cache):",
        controller.name(),
        trace.len(),
        o.cache.capacity_bytes() / 1024,
        o.cache.ways(),
        o.cache.block_bytes()
    );
    println!("  {}", controller.traffic());
    println!("  requests: {}", controller.stats());
    write_observability(o, controller.as_ref())?;
    if let Some(path) = &o.timeline_out {
        write_timeline(path)?;
    }
    Ok(())
}

/// Chunk-at-a-time reads of a saved `.c8tt` trace for streamed replay.
/// The header's instruction total is pro-rated over chunks with
/// telescoping floors, so per-chunk counts sum exactly to the total.
/// A mid-stream read error is recorded and ends the stream; the caller
/// surfaces it after replay.
struct FileChunks {
    reader: TraceFileReader<BufReader<File>>,
    chunk_ops: usize,
    error: Option<String>,
}

impl ChunkSource for FileChunks {
    fn next_chunk(&mut self) -> Option<std::sync::Arc<TraceChunk>> {
        if self.error.is_some() || self.reader.remaining() == 0 {
            return None;
        }
        let start_op = self.reader.position();
        let mut ops = Vec::new();
        if let Err(e) = self.reader.read_ops(&mut ops, self.chunk_ops as u64) {
            self.error = Some(e.to_string());
            return None;
        }
        let end_op = self.reader.position();
        let total = self.reader.op_count() as u128;
        let instr = self.reader.instructions() as u128;
        let instructions =
            (instr * end_op as u128 / total - instr * start_op as u128 / total) as u64;
        Some(std::sync::Arc::new(TraceChunk::new(
            ops,
            start_op,
            instructions,
        )))
    }
}

/// `simulate --stream-chunk-ops N`: the bounded-memory replay path.
/// The trace is never materialized — chunks of N ops are generated (or
/// read from the `.c8tt` file) on a prefetch thread while the replay
/// loop consumes the previous chunk, so RSS stays flat at roughly two
/// chunks for any `--ops`, and the counters come out bit-identical to
/// the materialized replay.
fn cmd_simulate_streamed(o: &Options, scheme: &str, chunk_ops: usize) -> Result<(), String> {
    use cache8t::exec::experiment::{run_scheme_streamed, run_scheme_streamed_sampled};

    let mut controller = build_controller(scheme, o.cache, o.l2)?;
    let (chunks, total_ops, file_error) = match (&o.trace, &o.profile) {
        (Some(path), None) => {
            let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            let reader = TraceFileReader::open(BufReader::new(file))
                .map_err(|e| format!("cannot read {path}: {e}"))?;
            let total_ops = reader.op_count();
            let source = std::sync::Arc::new(std::sync::Mutex::new(None::<String>));
            struct Reporting {
                inner: FileChunks,
                error: std::sync::Arc<std::sync::Mutex<Option<String>>>,
            }
            impl ChunkSource for Reporting {
                fn next_chunk(&mut self) -> Option<std::sync::Arc<TraceChunk>> {
                    let chunk = self.inner.next_chunk();
                    if let Some(e) = self.inner.error.take() {
                        *self.error.lock().expect("error slot poisoned") = Some(e);
                    }
                    chunk
                }
            }
            let chunks = PrefetchedChunks::spawn(Reporting {
                inner: FileChunks {
                    reader,
                    chunk_ops,
                    error: None,
                },
                error: std::sync::Arc::clone(&source),
            });
            (chunks, total_ops, Some((path.clone(), source)))
        }
        (None, Some(name)) => {
            let profile = profiles::by_name(name)
                .ok_or_else(|| format!("unknown profile `{name}` (try list-profiles)"))?;
            let generator =
                ProfiledGenerator::new(profile, CacheGeometry::paper_baseline(), o.seed);
            let chunks =
                PrefetchedChunks::spawn(ChunkedGenerator::new(generator, chunk_ops, o.ops as u64));
            (chunks, o.ops as u64, None)
        }
        (Some(_), Some(_)) => {
            return Err("--trace and --profile are mutually exclusive".to_string())
        }
        (None, None) => return Err("need --trace FILE or --profile NAME".to_string()),
    };

    timeline::begin("replay", "sim");
    match &o.series_out {
        Some(path) => {
            let writer = BufWriter::new(
                File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?,
            );
            let bench = o
                .profile
                .clone()
                .or_else(|| o.trace.clone())
                .unwrap_or_default();
            let mut series_sampler = Sampler::new(&bench, controller.name(), sampler_config(o))
                .with_writer(Box::new(writer));
            run_scheme_streamed_sampled(controller.as_mut(), chunks, 0, &mut series_sampler);
            eprintln!(
                "telemetry series ({} windows) written to {path}",
                series_sampler.emitted()
            );
        }
        None => {
            run_scheme_streamed(controller.as_mut(), chunks, 0);
        }
    }
    timeline::end("replay", "sim");
    if let Some((path, error)) = file_error {
        if let Some(e) = error.lock().expect("error slot poisoned").take() {
            return Err(format!("cannot read {path}: {e}"));
        }
    }
    println!(
        "scheme {} on {} ops ({}KB/{}-way/{}B cache, streamed x{} chunks):",
        controller.name(),
        total_ops,
        o.cache.capacity_bytes() / 1024,
        o.cache.ways(),
        o.cache.block_bytes(),
        chunk_ops,
    );
    println!("  {}", controller.traffic());
    println!("  requests: {}", controller.stats());
    write_observability(o, controller.as_ref())?;
    if let Some(path) = &o.timeline_out {
        write_timeline(path)?;
    }
    Ok(())
}

/// Schemes `bench-core` measures, in display order. `coalesce:8`
/// stands in for the coalescing family at the paper's 8-entry depth.
const BENCH_CORE_SCHEMES: [&str; 5] = ["6t", "rmw", "wg", "wg+rb", "coalesce:8"];

/// `cache8t bench-core`: single-thread replay throughput of the
/// simulator core itself, one measurement per scheme over an identical
/// pre-generated trace. The JSON document is perfdiff-compatible, so CI
/// can gate it against `results/bench_core_baseline.json`.
fn cmd_bench_core(o: &Options) -> Result<(), String> {
    if o.trace.is_some() {
        return Err("bench-core takes --profile, not --trace".to_string());
    }
    let name = o.profile.as_deref().unwrap_or("gcc");
    let profile = profiles::by_name(name)
        .ok_or_else(|| format!("unknown profile `{name}` (try list-profiles)"))?;
    let trace =
        ProfiledGenerator::new(profile, CacheGeometry::paper_baseline(), o.seed).collect(o.ops);

    println!(
        "bench-core: {} ops of `{name}` (seed {}), best of {} rep(s) per scheme",
        trace.len(),
        o.seed,
        o.reps
    );
    println!("  {:<12} {:>12} {:>10}", "scheme", "ops/sec", "ms/rep");
    let mut throughput: Vec<(String, serde_json::Value)> = Vec::new();
    // The batch is shared across schemes and reps, like the replay paths
    // share it across chunks; its decode cost is inside the timer because
    // it is part of what the batched path really costs. CACHE8T_NO_BATCH=1
    // times the per-op reference path instead (the same switch the replay
    // loops honor), for before/after comparisons on one binary.
    let per_op = std::env::var("CACHE8T_NO_BATCH").is_ok_and(|v| v == "1");
    let mut batch = DecodedBatch::new(o.cache);
    for scheme in BENCH_CORE_SCHEMES {
        let mut best = f64::INFINITY;
        for _ in 0..o.reps {
            let mut controller = build_controller(scheme, o.cache, o.l2)?;
            let start = std::time::Instant::now();
            if per_op {
                for op in &trace {
                    controller.access(op);
                }
            } else {
                // A warm-up equal to the trace length never fires the
                // counter reset: this times the same batched path
                // `simulate` runs.
                replay_ops_batched(
                    controller.as_mut(),
                    trace.ops(),
                    0,
                    trace.len() as u64,
                    &mut batch,
                );
            }
            controller.flush();
            let elapsed = start.elapsed().as_secs_f64();
            // Keep the run observable so the replay loop cannot be
            // optimized out from under the timer.
            std::hint::black_box(controller.array_accesses());
            best = best.min(elapsed);
        }
        let ops_per_sec = trace.len() as f64 / best;
        println!(
            "  {:<12} {:>12.0} {:>10.2}",
            scheme,
            ops_per_sec,
            best * 1e3
        );
        throughput.push((
            scheme.to_string(),
            serde_json::json!({ "ops_per_sec": ops_per_sec.round() }),
        ));
    }
    let kernels_doc = bench_core_kernels(o, &trace)?;
    let doc = serde_json::Value::Object(vec![(
        "bench_core".to_string(),
        serde_json::Value::Object(vec![
            ("ops".to_string(), serde_json::to_value(&(o.ops as u64))),
            (
                "throughput".to_string(),
                serde_json::Value::Object(throughput),
            ),
            ("kernels".to_string(), kernels_doc),
        ]),
    )]);
    let text = || {
        let mut t = serde_json::to_string_pretty(&doc).expect("bench documents serialize");
        t.push('\n');
        t
    };
    if let Some(path) = &o.out {
        std::fs::write(path, text()).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("bench-core document written to {path}");
    }
    if o.json {
        print!("{}", text());
    }
    Ok(())
}

/// Best-of-reps microbenches of the individual kernels the batched
/// replay path is built from, keyed `bench_core.kernels.<name>` in the
/// JSON document. One "op" is one trace op for `decode` and `probe`,
/// and one 64-bit word compared for `silent_compare` and `diff_mask`.
fn bench_core_kernels(o: &Options, trace: &Trace) -> Result<serde_json::Value, String> {
    fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let start = std::time::Instant::now();
            f();
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    }

    // `decode`: the per-chunk address-decomposition pass.
    let mut scratch = DecodedBatch::new(o.cache);
    let decode_best = best_of(o.reps, || {
        scratch.decode(trace.ops());
        std::hint::black_box(scratch.len());
    });

    // `probe`: the branchless multi-way tag search over a warmed cache,
    // fed from the decoded set/tag columns like the controllers feed it.
    let mut warm = build_controller("6t", o.cache, o.l2)?;
    warm.access_batch(&scratch, 0..scratch.len());
    let probe_best = best_of(o.reps, || {
        let cache = warm.cache();
        let mut found = 0u64;
        for i in 0..scratch.len() {
            found += u64::from(cache.find_in_set(scratch.set(i), scratch.tag(i)).is_some());
        }
        std::hint::black_box(found);
    });

    // Compare kernels run over block-granularity arenas with half the
    // blocks dirty in one word — the silent-store shape the WG deposit
    // and the coalescing merge see.
    let bw = o.cache.block_words();
    let blocks = 4096usize;
    let words = blocks * bw;
    let a: Vec<u64> = (0..words as u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .collect();
    let mut b = a.clone();
    for blk in (0..blocks).step_by(2) {
        b[blk * bw] ^= 1;
    }
    let passes = (trace.len() / words).max(1);
    let compared = (passes * words) as f64;
    let silent_best = best_of(o.reps, || {
        let mut differing = 0u64;
        for _ in 0..passes {
            for blk in 0..blocks {
                let base = blk * bw;
                differing += u64::from(kernels::words_differ(
                    &a[base..base + bw],
                    &b[base..base + bw],
                ));
            }
        }
        std::hint::black_box(differing);
    });
    let mask_best = best_of(o.reps, || {
        let mut acc = 0u64;
        for _ in 0..passes {
            for blk in 0..blocks {
                let base = blk * bw;
                acc ^= kernels::diff_mask(&a[base..base + bw], &b[base..base + bw]);
            }
        }
        std::hint::black_box(acc);
    });

    let rows = [
        ("decode", trace.len() as f64 / decode_best),
        ("probe", trace.len() as f64 / probe_best),
        ("silent_compare", compared / silent_best),
        ("diff_mask", compared / mask_best),
    ];
    println!("  {:<16} {:>10}", "kernel", "Mops/s");
    let mut out: Vec<(String, serde_json::Value)> = Vec::new();
    for (name, ops_per_sec) in rows {
        println!("  {:<16} {:>10.1}", name, ops_per_sec / 1e6);
        out.push((
            name.to_string(),
            serde_json::json!({ "mops_per_sec": (ops_per_sec / 1e6 * 10.0).round() / 10.0 }),
        ));
    }
    Ok(serde_json::Value::Object(out))
}

/// Honors `--timeline-out`: stops recording, drains the global
/// timeline, and writes it as Chrome trace-event JSON.
fn write_timeline(path: &str) -> Result<(), String> {
    timeline::disable();
    let snapshot = timeline::drain();
    snapshot
        .write_chrome_json(&mut BufWriter::new(
            File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?,
        ))
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    eprintln!(
        "timeline ({} events on {} tracks) written to {path}",
        snapshot.event_count(),
        snapshot.tracks.len()
    );
    Ok(())
}

/// Honors `--metrics-out` / `--trace-out` after a simulate run.
fn write_observability(o: &Options, controller: &dyn Controller) -> Result<(), String> {
    let Some(obs) = controller.obs() else {
        if o.metrics_out.is_some() || o.trace_out.is_some() {
            return Err(format!(
                "scheme {} exposes no observability bundle",
                controller.name()
            ));
        }
        return Ok(());
    };
    if let Some(path) = &o.metrics_out {
        obs.registry()
            .write_json(&mut BufWriter::new(
                File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?,
            ))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("  metrics snapshot written to {path}");
    }
    if let Some(path) = &o.trace_out {
        obs.tracer()
            .write_jsonl(&mut BufWriter::new(
                File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?,
            ))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!(
            "  {} trace events written to {path} ({} dropped)",
            obs.tracer().len(),
            obs.tracer().dropped()
        );
    }
    Ok(())
}

/// Writes/prints the sweep document per `--out` / `--json`.
fn emit_document(o: &Options, doc: &serde_json::Value) -> Result<(), String> {
    let text = || {
        let mut t = serde_json::to_string_pretty(doc).expect("sweep documents serialize");
        t.push('\n');
        t
    };
    if let Some(path) = &o.out {
        std::fs::write(path, text()).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("sweep document written to {path}");
    }
    if o.json {
        print!("{}", text());
    }
    Ok(())
}

/// `cache8t sweep --merge a.json --merge b.json`: reassemble shard
/// documents into the document an unsharded run produces.
fn cmd_sweep_merge(o: &Options) -> Result<(), String> {
    let docs: Vec<serde_json::Value> = o
        .merge
        .iter()
        .map(|path| {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
        })
        .collect::<Result<_, String>>()?;
    let merged = merge_documents(&docs)?;
    if o.out.is_none() && !o.json {
        return Err("merge mode needs --out FILE or --json".to_string());
    }
    emit_document(o, &merged)
}

fn cmd_sweep(o: &Options) -> Result<(), String> {
    if !o.merge.is_empty() {
        return cmd_sweep_merge(o);
    }

    let profile_set = match &o.profiles {
        Some(names) => names
            .iter()
            .map(|name| {
                profiles::by_name(name)
                    .ok_or_else(|| format!("unknown profile `{name}` (try list-profiles)"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        None => profiles::spec2006(),
    };
    let labels = o.geometries.clone().unwrap_or_else(|| {
        ["baseline", "blocks64", "small", "large"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    });
    let geometries = labels
        .iter()
        .map(|label| {
            GeometryPoint::named(label).ok_or_else(|| {
                format!("unknown geometry `{label}` (expected baseline, blocks64, small, large)")
            })
        })
        .collect::<Result<Vec<_>, _>>()?;

    let plan = SweepPlan {
        profiles: profile_set,
        geometries,
        ops: o.ops,
        seed: o.seed,
    };
    let store = match o.trace_store.as_deref() {
        Some("off") => TraceStore::in_memory(),
        Some(dir) => TraceStore::persistent(dir),
        None => TraceStore::from_env(),
    };
    let options = SweepOptions {
        exec: ExecOptions {
            workers: o.jobs,
            retries: o.retries,
        },
        shard: o.shard,
        progress: true,
        store: std::sync::Arc::new(store),
        series: o.series_out.as_ref().map(|_| sampler_config(o)),
        stream_chunk_ops: o.stream_chunk_ops,
        ..SweepOptions::default()
    };

    if o.timeline_out.is_some() {
        timeline::enable();
        timeline::set_track_name("main");
    }
    let outcome = run_sweep(&plan, &options);

    println!(
        "sweep: {} benchmarks x {} geometries, {} ops each, seed {} ({} workers, {:.1}s)",
        plan.profiles.len(),
        plan.geometries.len(),
        plan.ops,
        plan.seed,
        options.exec.effective_workers(),
        outcome.elapsed.as_secs_f64(),
    );
    for g in &outcome.geometries {
        let done: Vec<&BenchmarkResult> = g.results.iter().flatten().collect();
        if done.is_empty() {
            println!("  {:<9} (no benchmarks in this shard)", g.point.label);
            continue;
        }
        let owned: Vec<BenchmarkResult> = done.iter().map(|r| (*r).clone()).collect();
        println!(
            "  {:<9} {:>2}/{} benchmarks   WG avg {:>5.1}%   WG+RB avg {:>5.1}%",
            g.point.label,
            done.len(),
            plan.profiles.len(),
            average(&owned, BenchmarkResult::wg_reduction) * 100.0,
            average(&owned, BenchmarkResult::wgrb_reduction) * 100.0,
        );
    }
    for f in &outcome.failures {
        eprintln!(
            "FAILED {}/{} [{}]: {} ({} attempts)",
            f.geometry, f.benchmark, f.unit, f.message, f.attempts
        );
    }
    println!("\n[sweep engine]");
    print!("{}", outcome.metrics.render_table());
    if !outcome.spans.is_empty() {
        println!("\n[worker spans]");
        print!("{}", cache8t::obs::span::render_stats(&outcome.spans));
    }

    if let Some(path) = &o.metrics_out {
        let mut text = serde_json::to_string_pretty(&metrics_document(&outcome))
            .expect("metric documents serialize");
        text.push('\n');
        std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("metrics document written to {path}");
    }
    if let Some(path) = &o.timeline_out {
        write_timeline(path)?;
    }
    if let Some(path) = &o.series_out {
        // Plan order, never completion order: the JSONL is
        // byte-identical for any --jobs value.
        let mut writer =
            BufWriter::new(File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?);
        let mut rows = 0u64;
        for sample in outcome.series() {
            writeln!(writer, "{}", sample.to_json_line())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            rows += 1;
        }
        writer
            .flush()
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("telemetry series ({rows} windows) written to {path}");
    }

    emit_document(o, &to_document(&plan, &outcome))?;

    if outcome.failures.is_empty() {
        Ok(())
    } else {
        Err(format!("{} job(s) failed", outcome.failures.len()))
    }
}

#[derive(Debug, Default)]
struct PerfdiffOptions {
    baseline: String,
    current: String,
    /// Regression gate in percent; `None` means report-only (never
    /// fails).
    fail_on_regress: Option<f64>,
    ignore: Vec<String>,
    json: bool,
    out: Option<String>,
}

fn parse_perfdiff(args: &[String]) -> Result<PerfdiffOptions, String> {
    // The sampler's `series.*` counter family is ignored by default
    // (at any path depth): its end-of-run totals are derivable from
    // the counters the gate already watches, so a sampled run must
    // diff clean against an unsampled baseline. `--ignore` extends
    // this list.
    let mut o = PerfdiffOptions {
        ignore: perfdiff::DEFAULT_IGNORE_FAMILIES
            .iter()
            .map(|s| (*s).to_string())
            .collect(),
        ..PerfdiffOptions::default()
    };
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{arg} requires a value"))
        };
        match arg.as_str() {
            "--fail-on-regress" => {
                let pct: f64 = value()?
                    .parse()
                    .map_err(|_| "invalid --fail-on-regress percentage".to_string())?;
                if !pct.is_finite() || pct < 0.0 {
                    return Err("--fail-on-regress must be a non-negative percentage".to_string());
                }
                o.fail_on_regress = Some(pct);
            }
            "--ignore" => o.ignore.extend(value()?.split(',').map(str::to_string)),
            "--json" => o.json = true,
            "--out" => o.out = Some(value()?),
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            path => positional.push(path.to_string()),
        }
    }
    if positional.len() != 2 {
        return Err("perfdiff needs exactly BASELINE.json and CURRENT.json".to_string());
    }
    o.current = positional.pop().expect("two positionals");
    o.baseline = positional.pop().expect("one positional");
    Ok(o)
}

/// Formats a metric value compactly: integers without a fraction,
/// everything else with three decimals.
fn fmt_metric(value: f64) -> String {
    if value.fract() == 0.0 && value.abs() < 1e15 {
        format!("{value}")
    } else {
        format!("{value:.3}")
    }
}

fn fmt_relative(m: &perfdiff::MetricDelta) -> String {
    match m.class() {
        perfdiff::DeltaClass::New => "(new)".to_string(),
        perfdiff::DeltaClass::Gone => "(gone)".to_string(),
        _ => format!(
            "{:+.1}%",
            m.relative().expect("finite for changed rows") * 100.0
        ),
    }
}

/// `cache8t perfdiff baseline.json current.json`: align two metric
/// snapshots by name and report the drift (see `cache8t_obs::perfdiff`).
fn cmd_perfdiff(args: &[String]) -> Result<(), String> {
    let o = parse_perfdiff(args)?;
    let load = |path: &str| -> Result<serde_json::Value, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
    };
    let diff = perfdiff::diff(&load(&o.baseline)?, &load(&o.current)?);
    let threshold = o.fail_on_regress.unwrap_or(5.0) / 100.0;
    let report = diff.to_value(threshold, &o.ignore);

    if o.json {
        let mut text = serde_json::to_string_pretty(&report).expect("perfdiff reports serialize");
        text.push('\n');
        print!("{text}");
    } else {
        println!(
            "{} aligned metrics ({} changed), {} only in baseline, {} only in current",
            diff.deltas.len(),
            diff.changed().len(),
            diff.only_baseline.len(),
            diff.only_current.len()
        );
        let mut changed = diff.changed();
        // Biggest relative movers first; new/gone rows (no percentage)
        // sink to the bottom instead of poisoning the sort with
        // non-finite keys.
        changed.sort_by(|a, b| {
            let key = |m: &perfdiff::MetricDelta| m.relative().map(f64::abs);
            match (key(a), key(b)) {
                (Some(x), Some(y)) => y.partial_cmp(&x).unwrap_or(std::cmp::Ordering::Equal),
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => a.name.cmp(&b.name),
            }
        });
        if !changed.is_empty() {
            const MAX_ROWS: usize = 50;
            let mut table = cache8t_bench::table::Table::new(&[
                "metric", "baseline", "current", "delta", "rel",
            ]);
            for m in changed.iter().take(MAX_ROWS) {
                table.row(&[
                    m.name.clone(),
                    fmt_metric(m.baseline),
                    fmt_metric(m.current),
                    fmt_metric(m.delta()),
                    fmt_relative(m),
                ]);
            }
            print!("{}", table.render());
            if changed.len() > MAX_ROWS {
                println!("... and {} more changed metrics", changed.len() - MAX_ROWS);
            }
        }
    }
    if let Some(path) = &o.out {
        let mut text = serde_json::to_string_pretty(&report).expect("perfdiff reports serialize");
        text.push('\n');
        std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("perfdiff report written to {path}");
    }

    let regressions = diff.regressions(threshold, &o.ignore);
    if regressions.is_empty() {
        return Ok(());
    }
    let mut msg = format!(
        "{} metric(s) drifted beyond {:.1}%:",
        regressions.len(),
        threshold * 100.0
    );
    for m in &regressions {
        msg.push_str(&format!(
            "\n  {}: {} -> {} ({})",
            m.name,
            fmt_metric(m.baseline),
            fmt_metric(m.current),
            fmt_relative(m)
        ));
    }
    if o.fail_on_regress.is_some() {
        Err(msg)
    } else {
        eprintln!("warning: {msg}");
        Ok(())
    }
}

#[derive(Debug)]
struct SeriesCliOptions {
    path: String,
    follow: bool,
    rows: usize,
}

/// Parses `watch` / `report-series` arguments: one positional series
/// file plus `--rows N` and (for `watch`) `--follow`.
fn parse_series_cli(args: &[String], allow_follow: bool) -> Result<SeriesCliOptions, String> {
    let mut o = SeriesCliOptions {
        path: String::new(),
        follow: false,
        rows: 16,
    };
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--follow" if allow_follow => o.follow = true,
            "--rows" => {
                let v = it.next().ok_or("--rows requires a value")?;
                o.rows = v.parse().map_err(|_| "invalid --rows value".to_string())?;
                if o.rows == 0 {
                    return Err("--rows must be positive".to_string());
                }
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            path => positional.push(path.to_string()),
        }
    }
    if positional.len() != 1 {
        return Err("expected exactly one SERIES.jsonl argument".to_string());
    }
    o.path = positional.pop().expect("one positional");
    Ok(o)
}

/// Parses every well-formed series row of `text`, counting the rest.
fn parse_series_text(text: &str) -> (Vec<SeriesSample>, u64) {
    let mut samples = Vec::new();
    let mut malformed = 0u64;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match sampler::parse_series_line(line) {
            Some(sample) => samples.push(sample),
            None => malformed += 1,
        }
    }
    (samples, malformed)
}

/// Renders the `watch` dashboard: the most recent `rows` windows plus a
/// totals line. `mops` is consumer-derived wall-clock throughput
/// (`--follow` arrival times) — series rows themselves never carry
/// wall-clock, so it is `None` for one-shot renders.
fn render_watch(samples: &[SeriesSample], rows: usize, mops: Option<f64>) -> String {
    let recent = &samples[samples.len().saturating_sub(rows)..];
    let mut table = cache8t_bench::table::Table::new(&[
        "bench", "scheme", "window", "ops", "miss%", "silent%", "wb", "grp%", "occ",
    ]);
    for s in recent {
        table.row(&[
            s.bench.clone(),
            s.scheme.clone(),
            s.window.to_string(),
            s.ops().to_string(),
            format!("{:.2}", s.miss_rate() * 100.0),
            format!("{:.2}", s.silent_rate() * 100.0),
            s.writeback_traffic().to_string(),
            format!("{:.1}", s.grouping_efficiency() * 100.0),
            format!("{:.2}", s.mean_occupancy()),
        ]);
    }
    let total_ops: u64 = samples.iter().map(SeriesSample::ops).sum();
    let mean = |f: fn(&SeriesSample) -> f64| -> f64 {
        if samples.is_empty() {
            0.0
        } else {
            samples.iter().map(f).sum::<f64>() / samples.len() as f64
        }
    };
    table.summary(&[
        "total".to_string(),
        String::new(),
        format!("{} win", samples.len()),
        total_ops.to_string(),
        format!("{:.2}", mean(SeriesSample::miss_rate) * 100.0),
        format!("{:.2}", mean(SeriesSample::silent_rate) * 100.0),
        samples
            .iter()
            .map(SeriesSample::writeback_traffic)
            .sum::<u64>()
            .to_string(),
        format!("{:.1}", mean(SeriesSample::grouping_efficiency) * 100.0),
        format!("{:.2}", mean(SeriesSample::mean_occupancy)),
    ]);
    let mut rendered = table.render();
    if let Some(mops) = mops {
        if mops.is_finite() && mops > 0.0 {
            rendered.push_str(&format!("live: {mops:.1} Mops/s\n"));
        }
    }
    rendered
}

/// Drains the complete series rows currently readable from `reader`
/// into `samples` (bounded to `cap`), returning the ops they cover.
///
/// A final line without its newline is a *partially-written* row — the
/// producer is mid-append, or mid-crash. Its bytes stay in `pending`
/// and the next poll resumes reading the same row where this one
/// stopped, so `--follow` never misparses (or drops) a torn row it
/// raced the producer for.
fn drain_series_rows(
    reader: &mut impl BufRead,
    pending: &mut String,
    samples: &mut Vec<SeriesSample>,
    cap: usize,
) -> std::io::Result<u64> {
    let mut new_ops = 0u64;
    loop {
        let n = reader.read_line(pending)?;
        if n == 0 {
            return Ok(new_ops); // at EOF for now; more may be appended
        }
        if !pending.ends_with('\n') {
            return Ok(new_ops); // torn row: keep the prefix, retry later
        }
        if let Some(sample) = sampler::parse_series_line(pending.trim_end()) {
            new_ops += sample.ops();
            samples.push(sample);
            // Bound memory like the sampler's own ring does.
            if samples.len() > cap {
                samples.remove(0);
            }
        }
        pending.clear();
    }
}

/// `cache8t watch SERIES.jsonl [--follow] [--rows N]`: a rolling
/// dashboard over a telemetry series. One-shot by default; `--follow`
/// tails the file and repaints as a live replay appends windows,
/// deriving Mops/s from window *arrival* times (the rows themselves are
/// deterministic and carry no wall-clock).
fn cmd_watch(args: &[String]) -> Result<(), String> {
    let o = parse_series_cli(args, true)?;
    if !o.follow {
        let text =
            std::fs::read_to_string(&o.path).map_err(|e| format!("cannot read {}: {e}", o.path))?;
        let (samples, malformed) = parse_series_text(&text);
        if samples.is_empty() {
            return Err(format!("{}: no series rows found", o.path));
        }
        print!("{}", render_watch(&samples, o.rows, None));
        if malformed > 0 {
            eprintln!("warning: skipped {malformed} malformed line(s)");
        }
        return Ok(());
    }

    let file = File::open(&o.path).map_err(|e| format!("cannot open {}: {e}", o.path))?;
    let mut reader = BufReader::new(file);
    let mut samples: Vec<SeriesSample> = Vec::new();
    let mut line = String::new();
    let mut last_paint = std::time::Instant::now();
    let mut painted_once = false;
    loop {
        let new_ops = drain_series_rows(
            &mut reader,
            &mut line,
            &mut samples,
            o.rows.max(sampler::DEFAULT_RING_CAPACITY),
        )
        .map_err(|e| format!("cannot read {}: {e}", o.path))?;
        if new_ops > 0 || !painted_once {
            let elapsed = last_paint.elapsed().as_secs_f64();
            let mops = (painted_once && elapsed > 0.0).then(|| new_ops as f64 / elapsed / 1e6);
            last_paint = std::time::Instant::now();
            painted_once = true;
            // Clear and repaint in place, like a full-screen progress
            // line.
            print!("\x1b[2J\x1b[H{}", render_watch(&samples, o.rows, mops));
            let _ = std::io::stdout().flush();
        }
        std::thread::sleep(std::time::Duration::from_millis(250));
    }
}

/// Absolute miss-rate tolerance separating two phases in
/// `report-series`.
const PHASE_TOLERANCE: f64 = 0.02;

/// Width sparkline rows are downsampled to.
const SPARK_WIDTH: usize = 60;

/// Mean-bucket downsampling to at most `max` points.
fn downsample(values: &[f64], max: usize) -> Vec<f64> {
    if values.len() <= max {
        return values.to_vec();
    }
    (0..max)
        .map(|bucket| {
            let start = bucket * values.len() / max;
            let end = ((bucket + 1) * values.len() / max).max(start + 1);
            values[start..end].iter().sum::<f64>() / (end - start) as f64
        })
        .collect()
}

/// `cache8t report-series SERIES.jsonl`: phase-resolved summary per
/// (bench, scheme) group — phases are maximal window runs whose miss
/// rate stays within [`PHASE_TOLERANCE`] of the phase mean — plus
/// sparkline rows of the full miss/occupancy/write-back history.
fn cmd_report_series(args: &[String]) -> Result<(), String> {
    let o = parse_series_cli(args, false)?;
    let text =
        std::fs::read_to_string(&o.path).map_err(|e| format!("cannot read {}: {e}", o.path))?;
    let (samples, malformed) = parse_series_text(&text);
    if samples.is_empty() {
        return Err(format!("{}: no series rows found", o.path));
    }

    // Group by (bench, scheme), preserving first-appearance order.
    let mut groups: Vec<((String, String), Vec<&SeriesSample>)> = Vec::new();
    for sample in &samples {
        let key = (sample.bench.clone(), sample.scheme.clone());
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, list)) => list.push(sample),
            None => groups.push((key, vec![sample])),
        }
    }

    for ((bench, scheme), group) in &groups {
        let label = if bench.is_empty() {
            scheme.clone()
        } else {
            format!("{bench} / {scheme}")
        };
        let total_ops: u64 = group.iter().map(|s| s.ops()).sum();
        println!("{label}: {} windows, {total_ops} ops", group.len());

        let miss: Vec<f64> = group.iter().map(|s| s.miss_rate()).collect();
        let phases = sampler::segment_phases(&miss, PHASE_TOLERANCE);
        let mut table = cache8t_bench::table::Table::new(&[
            "phase", "windows", "ops", "miss%", "silent%", "wb/win", "grp%", "occ",
        ]);
        for (i, &(start, end)) in phases.iter().enumerate() {
            let span = &group[start..end];
            let n = span.len() as f64;
            let mean = |f: &dyn Fn(&SeriesSample) -> f64| -> f64 {
                span.iter().map(|s| f(s)).sum::<f64>() / n
            };
            table.row(&[
                format!("{i}"),
                format!("{start}..{end}"),
                span.iter().map(|s| s.ops()).sum::<u64>().to_string(),
                format!("{:.2}", mean(&SeriesSample::miss_rate) * 100.0),
                format!("{:.2}", mean(&SeriesSample::silent_rate) * 100.0),
                format!(
                    "{:.1}",
                    span.iter().map(|s| s.writeback_traffic()).sum::<u64>() as f64 / n
                ),
                format!("{:.1}", mean(&SeriesSample::grouping_efficiency) * 100.0),
                format!("{:.2}", mean(&SeriesSample::mean_occupancy)),
            ]);
        }
        print!("{}", table.render());

        let spark_row = |name: &str, values: Vec<f64>| {
            println!(
                "  {name:<6} {}",
                sampler::sparkline(&downsample(&values, SPARK_WIDTH))
            );
        };
        spark_row("miss%", miss);
        spark_row("occ", group.iter().map(|s| s.mean_occupancy()).collect());
        spark_row(
            "wb",
            group.iter().map(|s| s.writeback_traffic() as f64).collect(),
        );
        println!();
    }
    if malformed > 0 {
        eprintln!("warning: skipped {malformed} malformed line(s)");
    }
    Ok(())
}

/// One checked replay unit — a profile, a saved trace, or a fuzz round
/// — together with everything needed to diagnose and shrink a failure.
struct CheckUnit {
    label: String,
    report: ConformReport,
    trace: Trace,
    config: ConformConfig,
}

/// Traces longer than this are not delta-debugged on failure: the
/// greedy pass replays the trace once per removed op, which is
/// prohibitive for full-length profile streams.
const MAX_SHRINK_OPS: usize = 20_000;

/// `cache8t check`: lockstep differential replay of every scheme
/// against a golden memory, over the checked-in profiles (or one saved
/// trace) plus seeded fuzz rounds; failures are shrunk to `.c8tt`
/// reproducers.
fn cmd_check(o: &Options) -> Result<(), String> {
    let schemes = match &o.schemes {
        Some(spec) => SchemeId::parse_list(spec)?,
        None => SchemeId::default_suite(),
    };
    let mut config = ConformConfig::new(o.cache);
    config.schemes = schemes;
    let exec = ExecOptions {
        workers: o.jobs,
        retries: o.retries,
    };

    // Phase 1: deterministic replays — one saved trace, or the profiles.
    let mut units: Vec<CheckUnit> = Vec::new();
    if let Some(path) = &o.trace {
        let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
        let trace = Trace::read_from(BufReader::new(file))
            .map_err(|e| format!("cannot read {path}: {e}"))?;
        let report = conform::replay(&trace, &config);
        units.push(CheckUnit {
            label: format!("trace {path}"),
            report,
            trace,
            config: config.clone(),
        });
    } else {
        let profile_set = match &o.profiles {
            Some(names) => names
                .iter()
                .map(|name| {
                    profiles::by_name(name)
                        .ok_or_else(|| format!("unknown profile `{name}` (try list-profiles)"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            None => profiles::spec2006(),
        };
        let jobs: Vec<_> = profile_set
            .into_iter()
            .map(|profile| {
                let config = config.clone();
                let (cache, seed, ops) = (o.cache, o.seed, o.ops);
                move || {
                    let trace = ProfiledGenerator::new(profile.clone(), cache, seed).collect(ops);
                    let report = conform::replay(&trace, &config);
                    CheckUnit {
                        label: format!("profile {}", profile.name),
                        report,
                        trace,
                        config: config.clone(),
                    }
                }
            })
            .collect();
        for outcome in run_jobs(jobs, &exec, None).outcomes {
            match outcome {
                JobOutcome::Completed(unit) => units.push(unit),
                JobOutcome::Failed { message, .. } => {
                    return Err(format!("replay job panicked: {message}"))
                }
                // No cancel token is wired here; drained jobs cannot
                // happen, but the harness must not vanish units silently.
                JobOutcome::Cancelled => return Err("replay job cancelled".to_string()),
            }
        }
    }
    let deterministic_units = units.len();

    // Phase 2: seeded fuzz rounds on a small, conflict-heavy geometry.
    let mut fuzz_config = config.clone();
    fuzz_config.geometry = CacheGeometry::new(1024, 2, 32).expect("fuzz geometry is valid");
    let fuzz_ops = o.ops.min(4000);
    let fuzz_jobs: Vec<_> = (0..o.fuzz_rounds)
        .map(|round| {
            let config = fuzz_config.clone();
            let seed = o.seed.wrapping_add(round as u64);
            move || {
                let (trace, report) = fuzz::fuzz_round(seed, fuzz_ops, &config);
                CheckUnit {
                    label: format!("fuzz seed {seed}"),
                    report,
                    trace,
                    config: config.clone(),
                }
            }
        })
        .collect();
    for outcome in run_jobs(fuzz_jobs, &exec, None).outcomes {
        match outcome {
            JobOutcome::Completed(unit) => units.push(unit),
            JobOutcome::Failed { message, .. } => {
                return Err(format!("fuzz job panicked: {message}"))
            }
            JobOutcome::Cancelled => return Err("fuzz job cancelled".to_string()),
        }
    }

    // Diagnose failures: print divergences, shrink, emit reproducers.
    let repro_dir = o
        .shrink_out
        .clone()
        .unwrap_or_else(|| fuzz::DEFAULT_REPRO_DIR.to_string());
    let mut divergent = 0usize;
    for unit in &units {
        if unit.report.pass() {
            continue;
        }
        divergent += 1;
        eprintln!("DIVERGED {}: {}", unit.label, unit.report.summary());
        const MAX_SHOWN: usize = 5;
        for d in unit.report.divergences.iter().take(MAX_SHOWN) {
            eprintln!("  {d}");
        }
        let hidden =
            unit.report.suppressed + unit.report.divergences.len().saturating_sub(MAX_SHOWN) as u64;
        if hidden > 0 {
            eprintln!("  ... and {hidden} more divergence(s)");
        }
        if unit.trace.len() > MAX_SHRINK_OPS {
            eprintln!(
                "  trace too long to shrink ({} ops > {MAX_SHRINK_OPS}); re-run with fewer --ops",
                unit.trace.len()
            );
        } else if let Some(repro) = fuzz::shrink(&unit.trace, &unit.config) {
            match fuzz::write_repro(std::path::Path::new(&repro_dir), &unit.label, &repro) {
                Ok(path) => eprintln!(
                    "  shrunk to {} op(s); reproducer written to {} (replay with `cache8t check --trace`)",
                    repro.len(),
                    path.display()
                ),
                Err(e) => eprintln!("  cannot write reproducer: {e}"),
            }
        }
    }

    if let Some(path) = &o.trace_out {
        let mut writer =
            BufWriter::new(File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?);
        for unit in &units {
            unit.report
                .tracer
                .write_jsonl(&mut writer)
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        eprintln!("divergence events written to {path}");
    }

    println!(
        "check: {deterministic_units} deterministic unit(s) + {} fuzz round(s) x {} scheme(s), seed {}",
        o.fuzz_rounds,
        config.schemes.len(),
        o.seed
    );
    if divergent == 0 {
        println!("conformance: PASS ({} unit(s) clean)", units.len());
        Ok(())
    } else {
        Err(format!(
            "conformance: FAIL ({divergent} of {} unit(s) diverged)",
            units.len()
        ))
    }
}

#[derive(Debug, Default)]
struct ServeOptions {
    listen: String,
    checkpoint_dir: Option<String>,
    jobs: usize,
    retries: u32,
    trace_store: Option<String>,
    log_out: Option<String>,
    timeline_out: Option<String>,
    stream_chunk_ops: Option<usize>,
}

fn parse_serve(args: &[String]) -> Result<ServeOptions, String> {
    let mut o = ServeOptions::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--listen" => o.listen = value()?,
            "--checkpoint-dir" => o.checkpoint_dir = Some(value()?),
            "--jobs" => {
                o.jobs = value()?
                    .parse()
                    .map_err(|_| "invalid --jobs value".to_string())?;
                if o.jobs == 0 {
                    return Err("--jobs must be positive".to_string());
                }
            }
            "--retries" => {
                o.retries = value()?
                    .parse()
                    .map_err(|_| "invalid --retries value".to_string())?;
            }
            "--trace-store" => o.trace_store = Some(value()?),
            "--log-out" => o.log_out = Some(value()?),
            "--timeline-out" => o.timeline_out = Some(value()?),
            "--stream-chunk-ops" => {
                let chunk_ops: usize = value()?
                    .replace('_', "")
                    .parse()
                    .map_err(|_| "invalid --stream-chunk-ops value".to_string())?;
                if chunk_ops == 0 {
                    return Err("--stream-chunk-ops must be positive".to_string());
                }
                o.stream_chunk_ops = Some(chunk_ops);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if o.listen.is_empty() {
        return Err("serve requires --listen ADDR (host:port or unix:/path)".to_string());
    }
    Ok(o)
}

/// `cache8t serve --listen ADDR`: run the sweep daemon until a client
/// sends `shutdown`. Operational logging goes to `--log-out` (JSONL)
/// or stderr, filtered by `CACHE8T_LOG` (error/warn/info/debug, off to
/// silence); `--timeline-out` records every job's lifecycle as a
/// Perfetto-loadable trace written at shutdown.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let o = parse_serve(args)?;
    let store = match o.trace_store.as_deref() {
        Some("off") => TraceStore::in_memory(),
        Some(dir) => TraceStore::persistent(dir),
        None => TraceStore::from_env(),
    };
    let level = cache8t::obs::LogLevel::from_env();
    let oplog = match &o.log_out {
        Some(path) => cache8t::obs::OpLog::to_file(std::path::Path::new(path), level)
            .map_err(|e| format!("cannot open {path}: {e}"))?,
        None => cache8t::obs::OpLog::to_stderr(level),
    };
    if o.timeline_out.is_some() {
        timeline::enable();
    }
    let server = Server::bind(ServeConfig {
        listen: o.listen.clone(),
        checkpoint_dir: o.checkpoint_dir.map(std::path::PathBuf::from),
        exec: ExecOptions {
            workers: o.jobs,
            retries: o.retries,
        },
        store: std::sync::Arc::new(store),
        oplog: std::sync::Arc::new(oplog),
        stream_chunk_ops: o.stream_chunk_ops,
    })
    .map_err(|e| format!("cannot bind {}: {e}", o.listen))?;
    eprintln!("cache8t serve: listening on {}", server.local_addr());
    server.run().map_err(|e| format!("server error: {e}"))?;
    if let Some(path) = &o.timeline_out {
        write_timeline(path)?;
    }
    Ok(())
}

#[derive(Debug, Default)]
struct ClientCliOptions {
    connect: String,
    action: String,
    job: Option<String>,
    profiles: Option<Vec<String>>,
    geometries: Option<Vec<String>>,
    ops: usize,
    seed: u64,
    series_cadence: Option<usize>,
    wait: bool,
    out: Option<String>,
    json: bool,
    text: bool,
}

fn parse_client(args: &[String]) -> Result<ClientCliOptions, String> {
    let mut o = ClientCliOptions {
        ops: 100_000,
        seed: 42,
        ..ClientCliOptions::default()
    };
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{arg} requires a value"))
        };
        match arg.as_str() {
            "--connect" => o.connect = value()?,
            "--job" => o.job = Some(value()?),
            "--profiles" => {
                o.profiles = Some(value()?.split(',').map(str::to_string).collect());
            }
            "--geometries" => {
                o.geometries = Some(value()?.split(',').map(str::to_string).collect());
            }
            "--ops" => {
                o.ops = value()?
                    .replace('_', "")
                    .parse()
                    .map_err(|_| "invalid --ops value".to_string())?;
                if o.ops == 0 {
                    return Err("--ops must be positive".to_string());
                }
            }
            "--seed" => {
                o.seed = value()?
                    .parse()
                    .map_err(|_| "invalid --seed value".to_string())?;
            }
            "--series-cadence" => {
                let cadence: usize = value()?
                    .replace('_', "")
                    .parse()
                    .map_err(|_| "invalid --series-cadence value".to_string())?;
                if cadence == 0 {
                    return Err("--series-cadence must be positive".to_string());
                }
                o.series_cadence = Some(cadence);
            }
            "--wait" => o.wait = true,
            "--out" => o.out = Some(value()?),
            "--json" => o.json = true,
            "--text" => o.text = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            action => positional.push(action.to_string()),
        }
    }
    if o.connect.is_empty() {
        return Err("client requires --connect ADDR (host:port or unix:/path)".to_string());
    }
    if positional.len() != 1 {
        return Err(
            "client needs exactly one action: submit, status, fetch, watch, cancel, \
             health, metrics, shutdown"
                .to_string(),
        );
    }
    o.action = positional.pop().expect("one positional");
    Ok(o)
}

/// The plan a `client submit` sends: the same defaults `cache8t sweep`
/// uses (all 25 profiles, all four geometries).
fn client_plan(o: &ClientCliOptions) -> PlanSpec {
    PlanSpec {
        profiles: o.profiles.clone().unwrap_or_else(|| {
            profiles::spec2006()
                .iter()
                .map(|p| p.name.clone())
                .collect()
        }),
        geometries: o.geometries.clone().unwrap_or_else(|| {
            ["baseline", "blocks64", "small", "large"]
                .iter()
                .map(|s| s.to_string())
                .collect()
        }),
        ops: o.ops,
        seed: o.seed,
        series_cadence: o.series_cadence,
    }
}

/// Writes/prints a fetched sweep document with the same bytes
/// `cache8t sweep --out` produces (pretty JSON + newline), so the two
/// can be `cmp`-ed directly.
fn emit_client_document(o: &ClientCliOptions, doc: &serde_json::Value) -> Result<(), String> {
    let text = || {
        let mut t = serde_json::to_string_pretty(doc).expect("sweep documents serialize");
        t.push('\n');
        t
    };
    if let Some(path) = &o.out {
        std::fs::write(path, text()).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("sweep document written to {path}");
    }
    if o.json || o.out.is_none() {
        print!("{}", text());
    }
    Ok(())
}

fn require_job(o: &ClientCliOptions) -> Result<&str, String> {
    o.job
        .as_deref()
        .ok_or_else(|| format!("client {} requires --job ID", o.action))
}

/// `cache8t client --connect ADDR <action>`: one protocol round trip
/// (or, for `watch`, a streamed session) against a running daemon.
fn cmd_client(args: &[String]) -> Result<(), String> {
    let o = parse_client(args)?;
    let describe = |e: ClientError| e.to_string();
    let mut client = Client::connect_with_retry(&o.connect, std::time::Duration::from_secs(5))
        .map_err(|e| format!("cannot connect to {}: {e}", o.connect))?;
    match o.action.as_str() {
        "submit" => {
            let job = client.submit(&client_plan(&o)).map_err(describe)?;
            eprintln!("submitted {job}");
            if o.wait {
                let document = client
                    .wait_for_results(&job, std::time::Duration::from_secs(24 * 3600))
                    .map_err(describe)?;
                emit_client_document(&o, &document)?;
            } else {
                println!("{job}");
            }
            Ok(())
        }
        "status" => {
            let status = client.status(o.job.as_deref()).map_err(describe)?;
            let mut text =
                serde_json::to_string_pretty(&status).expect("status objects serialize");
            text.push('\n');
            print!("{text}");
            Ok(())
        }
        "fetch" => {
            let job = require_job(&o)?;
            let document = if o.wait {
                client
                    .wait_for_results(job, std::time::Duration::from_secs(24 * 3600))
                    .map_err(describe)?
            } else {
                client.results(job).map_err(describe)?
            };
            emit_client_document(&o, &document)
        }
        "watch" => {
            let job = require_job(&o)?;
            // The resumable wrapper reconnects with backoff if the
            // daemon connection drops mid-stream, resuming from the
            // last delivered sequence number — a long watch survives
            // network blips without replaying (or losing) events.
            drop(client);
            let state = cache8t::serve::watch_resumable(&o.connect, job, |row| {
                let line = serde_json::to_string(row).expect("event rows serialize");
                println!("{line}");
            })
            .map_err(describe)?;
            if state == "failed" {
                Err(format!("job {job} failed"))
            } else {
                Ok(())
            }
        }
        "cancel" => {
            let job = require_job(&o)?;
            let response = client.cancel(job).map_err(describe)?;
            let mut text =
                serde_json::to_string_pretty(&response).expect("responses serialize");
            text.push('\n');
            print!("{text}");
            Ok(())
        }
        "health" => {
            let health = client.health().map_err(describe)?;
            let mut text =
                serde_json::to_string_pretty(&health).expect("health objects serialize");
            text.push('\n');
            print!("{text}");
            Ok(())
        }
        "metrics" => {
            let metrics = client.metrics().map_err(describe)?;
            let text = if o.text {
                // Prometheus exposition of the registry snapshot.
                cache8t::serve::render_metrics_text(&metrics)
            } else {
                let mut t =
                    serde_json::to_string_pretty(&metrics).expect("metrics objects serialize");
                t.push('\n');
                t
            };
            if let Some(path) = &o.out {
                std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
                eprintln!("metrics written to {path}");
            } else {
                print!("{text}");
            }
            Ok(())
        }
        "shutdown" => {
            client.shutdown().map_err(describe)?;
            eprintln!("server {} shutting down", o.connect);
            Ok(())
        }
        other => Err(format!(
            "unknown client action `{other}` (expected submit, status, fetch, watch, cancel, health, metrics, shutdown)"
        )),
    }
}

#[derive(Debug, Default)]
struct TopOptions {
    connect: String,
    interval_ms: u64,
    once: bool,
}

fn parse_top(args: &[String]) -> Result<TopOptions, String> {
    let mut o = TopOptions {
        interval_ms: 1_000,
        ..TopOptions::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--connect" => o.connect = value()?,
            "--interval-ms" => {
                o.interval_ms = value()?
                    .parse()
                    .map_err(|_| "invalid --interval-ms value".to_string())?;
                if o.interval_ms == 0 {
                    return Err("--interval-ms must be positive".to_string());
                }
            }
            "--once" => o.once = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if o.connect.is_empty() {
        return Err("top requires --connect ADDR (host:port or unix:/path)".to_string());
    }
    Ok(o)
}

fn format_uptime(ms: u64) -> String {
    let s = ms / 1000;
    if s >= 3600 {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    } else if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{s}s")
    }
}

/// One frame of the `cache8t top` dashboard: daemon vitals, fleet
/// counters, and a per-job table, all read from one `health` +
/// `metrics` + `status` poll. `rates` carries request and journal
/// throughput derived from the previous poll.
fn render_top(
    addr: &str,
    health: &serde_json::Value,
    metrics: &serde_json::Value,
    status: &serde_json::Value,
    rates: Option<(f64, f64)>,
) -> String {
    use serde_json::Value;
    let str_of = |v: &Value, k: &str| v.get(k).and_then(Value::as_str).unwrap_or("?").to_owned();
    let u64_of = |v: &Value, k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
    let server = metrics.get("server").cloned().unwrap_or(Value::Null);

    let mut out = format!(
        "cache8t top — {addr} · {} · up {} · queue {} · {} active\n",
        str_of(health, "state"),
        format_uptime(u64_of(health, "uptime_ms")),
        u64_of(health, "queue_depth"),
        u64_of(health, "jobs_active"),
    );

    let jobs = server.get("jobs").cloned().unwrap_or(Value::Null);
    out.push_str(&format!(
        "jobs     queued {} · running {} · completed {} · failed {} · cancelled {}\n",
        u64_of(&jobs, "queued"),
        u64_of(&jobs, "running"),
        u64_of(&jobs, "completed"),
        u64_of(&jobs, "failed"),
        u64_of(&jobs, "cancelled"),
    ));

    let journal = server.get("journal").cloned().unwrap_or(Value::Null);
    let journal_line = if journal.get("enabled").and_then(Value::as_bool) == Some(true) {
        format!(
            "journal  {} file(s) · {} bytes{} · {} repair(s)\n",
            u64_of(&journal, "files"),
            u64_of(&journal, "bytes"),
            rates
                .map(|(_, bps)| format!(" ({bps:+.0} B/s)"))
                .unwrap_or_default(),
            u64_of(&journal, "repairs"),
        )
    } else {
        "journal  disabled\n".to_owned()
    };
    out.push_str(&journal_line);

    let store = server.get("trace_store").cloned().unwrap_or(Value::Null);
    let ratio = store
        .get("hit_ratio")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    out.push_str(&format!(
        "store    {} generated · {} hits · {:.1}% warm\n",
        u64_of(&store, "generated"),
        u64_of(&store, "mem_hits") + u64_of(&store, "disk_hits"),
        ratio * 100.0,
    ));

    let oplog = server.get("oplog").cloned().unwrap_or(Value::Null);
    out.push_str(&format!(
        "oplog    {} emitted · {} suppressed · {} dropped\n",
        u64_of(&oplog, "emitted"),
        u64_of(&oplog, "suppressed"),
        u64_of(&oplog, "dropped"),
    ));

    let counters = metrics
        .get("registry")
        .and_then(|r| r.get("counters"))
        .cloned()
        .unwrap_or(Value::Null);
    out.push_str(&format!(
        "reqs     {} total{} · {} error(s)\n",
        u64_of(&counters, "serve.requests"),
        rates
            .map(|(rps, _)| format!(" ({rps:.1}/s)"))
            .unwrap_or_default(),
        u64_of(&counters, "serve.errors"),
    ));

    out.push_str("\nJOB        STATE      PROGRESS             RESTORED\n");
    let listed = status.get("jobs").and_then(Value::as_array).unwrap_or(&[]);
    if listed.is_empty() {
        out.push_str("(no jobs submitted yet)\n");
    }
    for job in listed {
        let progress = match job.get("progress") {
            Some(p) => {
                let done = u64_of(p, "done");
                let total = u64_of(p, "total");
                match p.get("mops").and_then(Value::as_f64) {
                    Some(mops) => format!("{done}/{total} ({mops:.1} Mops/s)"),
                    None => format!("{done}/{total}"),
                }
            }
            None => "-".to_owned(),
        };
        out.push_str(&format!(
            "{:<10} {:<10} {:<20} {}\n",
            str_of(job, "id"),
            str_of(job, "state"),
            progress,
            u64_of(job, "restored"),
        ));
    }
    out
}

/// `cache8t top --connect ADDR`: a live, daemon-wide dashboard — the
/// fleet-level counterpart of `cache8t client watch`'s single-job
/// stream. Repaints every `--interval-ms` (default 1000); `--once`
/// prints a single frame and exits. Transport drops in follow mode
/// reconnect with the same retry the client uses.
fn cmd_top(args: &[String]) -> Result<(), String> {
    let o = parse_top(args)?;
    let describe = |e: ClientError| e.to_string();
    let mut client = Client::connect_with_retry(&o.connect, std::time::Duration::from_secs(5))
        .map_err(|e| format!("cannot connect to {}: {e}", o.connect))?;
    let mut prev: Option<(std::time::Instant, u64, u64)> = None;
    loop {
        let poll = (|| -> Result<_, ClientError> {
            let health = client.health()?;
            let metrics = client.metrics()?;
            let status = client.status(None)?;
            Ok((health, metrics, status))
        })();
        let (health, metrics, status) = match poll {
            Ok(frame) => frame,
            Err(e @ (ClientError::Server { .. } | ClientError::Malformed(_))) => {
                return Err(describe(e));
            }
            Err(e) if o.once => return Err(describe(e)),
            Err(_) => {
                // Daemon restarting or network blip: reconnect and
                // keep the dashboard alive.
                client = Client::connect_with_retry(&o.connect, std::time::Duration::from_secs(30))
                    .map_err(|e| format!("lost connection to {}: {e}", o.connect))?;
                prev = None;
                continue;
            }
        };
        let total_requests = metrics
            .get("registry")
            .and_then(|r| r.get("counters"))
            .and_then(|c| c.get("serve.requests"))
            .and_then(serde_json::Value::as_u64)
            .unwrap_or(0);
        let journal_bytes = metrics
            .get("server")
            .and_then(|s| s.get("journal"))
            .and_then(|j| j.get("bytes"))
            .and_then(serde_json::Value::as_u64)
            .unwrap_or(0);
        let rates = prev.map(|(at, reqs, bytes)| {
            let dt = at.elapsed().as_secs_f64().max(1e-9);
            (
                total_requests.saturating_sub(reqs) as f64 / dt,
                (journal_bytes as f64 - bytes as f64) / dt,
            )
        });
        let frame = render_top(&o.connect, &health, &metrics, &status, rates);
        if o.once {
            print!("{frame}");
            return Ok(());
        }
        print!("\x1b[2J\x1b[H{frame}");
        std::io::Write::flush(&mut std::io::stdout()).ok();
        prev = Some((std::time::Instant::now(), total_requests, journal_bytes));
        std::thread::sleep(std::time::Duration::from_millis(o.interval_ms));
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let Some(command) = args.get(1) else {
        return Err(USAGE.to_string());
    };
    let rest = &args[2..];
    match command.as_str() {
        "list-profiles" => {
            cmd_list_profiles();
            Ok(())
        }
        "gen" => cmd_gen(&parse_options(rest)?),
        "analyze" => cmd_analyze(&parse_options(rest)?),
        "simulate" => cmd_simulate(&parse_options(rest)?),
        "sweep" => cmd_sweep(&parse_options(rest)?),
        "bench-core" => cmd_bench_core(&parse_options(rest)?),
        "perfdiff" => cmd_perfdiff(rest),
        "watch" => cmd_watch(rest),
        "report-series" => cmd_report_series(rest),
        "serve" => cmd_serve(rest),
        "client" => cmd_client(rest),
        "top" => cmd_top(rest),
        "check" => cmd_check(&parse_options(rest)?),
        "--help" | "-h" | "help" => Err(USAGE.to_string()),
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run(std::env::args().collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Result<Options, String> {
        parse_options(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parse_defaults_and_flags() {
        let o = opts(&[]).unwrap();
        assert_eq!(o.ops, 100_000);
        assert_eq!(o.seed, 42);
        let o = opts(&["--profile", "gcc", "--ops", "5_000", "--seed", "7"]).unwrap();
        assert_eq!(o.profile.as_deref(), Some("gcc"));
        assert_eq!(o.ops, 5_000);
        assert_eq!(o.seed, 7);
    }

    #[test]
    fn parse_cache_spec() {
        let o = opts(&["--cache", "32,4,64"]).unwrap();
        assert_eq!(o.cache.capacity_bytes(), 32 * 1024);
        assert_eq!(o.cache.block_bytes(), 64);
        assert!(o.l2.is_none());
        let o = opts(&["--l2", "512,8,32"]).unwrap();
        assert_eq!(o.l2.unwrap().capacity_bytes(), 512 * 1024);
        assert!(opts(&["--cache", "32,4"]).is_err());
        assert!(opts(&["--cache", "31,4,64"]).is_err());
        assert!(opts(&["--cache", "a,b,c"]).is_err());
    }

    #[test]
    fn parse_observability_flags() {
        let o = opts(&[
            "--metrics-out",
            "m.json",
            "--trace-out",
            "t.jsonl",
            "--timeline-out",
            "tl.json",
        ])
        .unwrap();
        assert_eq!(o.metrics_out.as_deref(), Some("m.json"));
        assert_eq!(o.trace_out.as_deref(), Some("t.jsonl"));
        assert_eq!(o.timeline_out.as_deref(), Some("tl.json"));
        assert!(opts(&["--metrics-out"]).is_err());
        assert!(opts(&["--timeline-out"]).is_err());
    }

    #[test]
    fn simulate_writes_metrics_snapshot() {
        let dir = std::env::temp_dir().join("cache8t-cli-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.json").to_string_lossy().to_string();
        let mut o = opts(&["--profile", "gcc", "--ops", "2000", "--metrics-out", &path]).unwrap();
        o.scheme = Some("wg".to_string());
        cmd_simulate(&o).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        let rendered = serde_json::to_string(&value).unwrap();
        assert!(rendered.contains("wg.groups"));
        assert!(rendered.contains("wg.group_len"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(opts(&["--ops"]).is_err());
        assert!(opts(&["--ops", "0"]).is_err());
        assert!(opts(&["--bogus"]).is_err());
        assert!(opts(&["--jobs", "0"]).is_err());
        assert!(opts(&["--shard", "3/2"]).is_err());
        assert!(opts(&["--shard", "nope"]).is_err());
    }

    #[test]
    fn parse_sweep_flags() {
        let o = opts(&[
            "--jobs",
            "4",
            "--retries",
            "2",
            "--shard",
            "1/2",
            "--profiles",
            "gcc,mcf",
            "--geometries",
            "baseline,small",
            "--json",
            "--trace-store",
            "off",
            "--merge",
            "a.json",
            "--merge",
            "b.json",
            "--stream-chunk-ops",
            "65_536",
        ])
        .unwrap();
        assert_eq!(o.jobs, 4);
        assert_eq!(o.stream_chunk_ops, Some(65_536));
        assert!(
            opts(&["--stream-chunk-ops", "0"]).is_err(),
            "zero chunk size must be rejected"
        );
        assert_eq!(o.retries, 2);
        assert_eq!(o.shard, Some(Shard { index: 0, count: 2 }));
        assert_eq!(
            o.profiles.as_deref(),
            Some(&["gcc".into(), "mcf".into()][..])
        );
        assert_eq!(
            o.geometries.as_deref(),
            Some(&["baseline".into(), "small".into()][..])
        );
        assert!(o.json);
        assert_eq!(o.trace_store.as_deref(), Some("off"));
        assert_eq!(o.merge, vec!["a.json".to_string(), "b.json".to_string()]);
    }

    #[test]
    fn sweep_runs_a_small_plan() {
        let mut o = opts(&[
            "--profiles",
            "gcc",
            "--geometries",
            "baseline",
            "--ops",
            "2000",
            "--jobs",
            "2",
            "--trace-store",
            "off",
        ])
        .unwrap();
        let dir = std::env::temp_dir().join("cache8t-cli-sweep-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.json").to_string_lossy().to_string();
        o.out = Some(path.clone());
        cmd_sweep(&o).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&text).unwrap();
        let geometries = doc.get("geometries").and_then(|g| g.as_array()).unwrap();
        assert_eq!(geometries.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    fn pd_opts(args: &[&str]) -> Result<PerfdiffOptions, String> {
        parse_perfdiff(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parse_perfdiff_flags() {
        let o = pd_opts(&[
            "base.json",
            "cur.json",
            "--fail-on-regress",
            "5",
            "--ignore",
            "sweep.,bench.",
            "--json",
            "--out",
            "report.json",
        ])
        .unwrap();
        assert_eq!(o.baseline, "base.json");
        assert_eq!(o.current, "cur.json");
        assert_eq!(o.fail_on_regress, Some(5.0));
        // `--ignore` extends the default `series.` + `serve.` families.
        assert_eq!(
            o.ignore,
            vec![
                "series.".to_string(),
                "serve.".to_string(),
                "sweep.".to_string(),
                "bench.".to_string()
            ]
        );
        assert!(o.json);
        assert_eq!(o.out.as_deref(), Some("report.json"));

        assert!(pd_opts(&[]).is_err(), "needs two positionals");
        assert!(pd_opts(&["only.json"]).is_err());
        assert!(pd_opts(&["a.json", "b.json", "c.json"]).is_err());
        assert!(pd_opts(&["a.json", "b.json", "--bogus"]).is_err());
        assert!(pd_opts(&["a.json", "b.json", "--fail-on-regress", "x"]).is_err());
        assert!(pd_opts(&["a.json", "b.json", "--fail-on-regress", "-1"]).is_err());
    }

    #[test]
    fn perfdiff_gates_on_threshold() {
        let dir = std::env::temp_dir().join("cache8t-cli-perfdiff-test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let cur = dir.join("cur.json");
        let report = dir.join("report.json");
        std::fs::write(&base, r#"{"wg": {"groups": 100}, "noise": 10}"#).unwrap();
        std::fs::write(&cur, r#"{"wg": {"groups": 120}, "noise": 10}"#).unwrap();
        let to_args = |extra: &[&str]| {
            let mut v = vec![
                base.to_string_lossy().to_string(),
                cur.to_string_lossy().to_string(),
            ];
            v.extend(extra.iter().map(|s| s.to_string()));
            v
        };

        // 20% drift: fails a 5% gate, passes a 25% one.
        assert!(cmd_perfdiff(&to_args(&["--fail-on-regress", "5"])).is_err());
        assert!(cmd_perfdiff(&to_args(&["--fail-on-regress", "25"])).is_ok());
        // Ignoring the family passes even the tight gate.
        assert!(cmd_perfdiff(&to_args(&["--fail-on-regress", "5", "--ignore", "wg."])).is_ok());
        // Report-only mode never fails, and --out writes machine JSON.
        let report_arg = report.to_string_lossy().to_string();
        assert!(cmd_perfdiff(&to_args(&["--out", &report_arg])).is_ok());
        let text = std::fs::read_to_string(&report).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(
            doc.get("compared").and_then(serde_json::Value::as_u64),
            Some(2)
        );
        let regressions = doc
            .get("regressions")
            .and_then(serde_json::Value::as_array)
            .unwrap();
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].as_str(), Some("wg.groups"));
        // Missing files are reported, not panicked on.
        assert!(cmd_perfdiff(&["missing.json".to_string(), report_arg]).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_check_flags() {
        let o = opts(&[]).unwrap();
        assert!(o.schemes.is_none());
        assert_eq!(o.fuzz_rounds, 10);
        assert!(o.shrink_out.is_none());
        let o = opts(&[
            "--schemes",
            "wg,wg+rb",
            "--fuzz-rounds",
            "25",
            "--shrink-out",
            "repros",
        ])
        .unwrap();
        assert_eq!(o.schemes.as_deref(), Some("wg,wg+rb"));
        assert_eq!(o.fuzz_rounds, 25);
        assert_eq!(o.shrink_out.as_deref(), Some("repros"));
        assert!(opts(&["--fuzz-rounds", "many"]).is_err());
        assert!(opts(&["--schemes"]).is_err());
    }

    #[test]
    fn check_passes_on_a_small_suite() {
        let mut o = opts(&[
            "--profiles",
            "gcc,mcf",
            "--ops",
            "1500",
            "--fuzz-rounds",
            "2",
            "--jobs",
            "2",
            "--cache",
            "1,2,32",
        ])
        .unwrap();
        cmd_check(&o).unwrap();
        // An unknown profile or a malformed scheme list is a clean error.
        o.profiles = Some(vec!["nope".to_string()]);
        assert!(cmd_check(&o).is_err());
        o.profiles = Some(vec!["gcc".to_string()]);
        o.schemes = Some("warp-drive".to_string());
        assert!(cmd_check(&o).is_err());
    }

    #[test]
    fn check_replays_a_saved_trace() {
        let dir = std::env::temp_dir().join("cache8t-cli-check-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("small.c8tt").to_string_lossy().to_string();
        let events_path = dir.join("events.jsonl").to_string_lossy().to_string();
        let mut o = opts(&["--profile", "gcc", "--ops", "800", "--out", &trace_path]).unwrap();
        cmd_gen(&o).unwrap();
        o = opts(&[
            "--trace",
            &trace_path,
            "--fuzz-rounds",
            "1",
            "--ops",
            "800",
            "--cache",
            "1,2,32",
            "--trace-out",
            &events_path,
        ])
        .unwrap();
        cmd_check(&o).unwrap();
        // A clean run still writes the (empty) event stream.
        let text = std::fs::read_to_string(&events_path).unwrap();
        assert!(text.is_empty(), "clean runs emit no divergence events");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_merge_requires_a_sink() {
        let mut o = opts(&["--merge", "a.json"]).unwrap();
        assert!(cmd_sweep(&o).is_err()); // no --out/--json
        o.json = true;
        assert!(cmd_sweep(&o).is_err()); // a.json does not exist
    }

    // The only timeline-touching test in this binary: the timeline is
    // global, so concurrent drains in one test process would race.
    #[test]
    fn sweep_writes_timeline_and_metrics_documents() {
        let dir = std::env::temp_dir().join("cache8t-cli-timeline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let timeline_path = dir.join("timeline.json").to_string_lossy().to_string();
        let metrics_path = dir.join("metrics.json").to_string_lossy().to_string();
        let mut o = opts(&[
            "--profiles",
            "gcc",
            "--geometries",
            "baseline",
            "--ops",
            "2000",
            "--jobs",
            "2",
            "--trace-store",
            "off",
        ])
        .unwrap();
        o.timeline_out = Some(timeline_path.clone());
        o.metrics_out = Some(metrics_path.clone());
        cmd_sweep(&o).unwrap();

        let text = std::fs::read_to_string(&timeline_path).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&text).unwrap();
        let events = doc
            .get("traceEvents")
            .and_then(serde_json::Value::as_array)
            .expect("Chrome trace-event envelope");
        assert!(!events.is_empty());
        let track_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(serde_json::Value::as_str) == Some("M"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert!(track_names.contains(&"worker-0"), "{track_names:?}");
        assert!(track_names.contains(&"worker-1"), "{track_names:?}");

        let text = std::fs::read_to_string(&metrics_path).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert!(doc.get("schemes").is_some());
        assert!(doc.get("sweep").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn controllers_build_by_name() {
        let g = CacheGeometry::paper_baseline();
        for (name, expect) in [
            ("6t", "6T"),
            ("rmw", "RMW"),
            ("wg", "WG"),
            ("wg+rb", "WG+RB"),
            ("wgrb", "WG+RB"),
            ("coalesce:4", "CoalesceWB"),
        ] {
            assert_eq!(
                build_controller(name, g, None).unwrap().name(),
                expect,
                "{name}"
            );
        }
        assert!(build_controller("bogus", g, None).is_err());
        assert!(build_controller("coalesce:0", g, None).is_err());
        assert!(build_controller("coalesce:x", g, None).is_err());
        let l2 = CacheGeometry::new(512 * 1024, 8, 32).unwrap();
        let c = build_controller("wg+rb", g, Some(l2)).unwrap();
        assert_eq!(c.name(), "WG+RB");
    }

    #[test]
    fn load_requires_exactly_one_source() {
        let mut o = opts(&[]).unwrap();
        assert!(load_or_generate(&o).is_err());
        o.profile = Some("gcc".to_string());
        o.trace = Some("x.bin".to_string());
        assert!(load_or_generate(&o).is_err());
    }

    #[test]
    fn generate_and_reload_roundtrip() {
        let dir = std::env::temp_dir().join("cache8t-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.c8tt").to_string_lossy().to_string();
        let o = opts(&["--profile", "gcc", "--ops", "500", "--out", &path]).unwrap();
        cmd_gen(&o).unwrap();
        let o2 = opts(&["--trace", &path]).unwrap();
        let trace = load_or_generate(&o2).unwrap();
        assert_eq!(trace.len(), 500);
        cmd_analyze(&o2).unwrap();
        let mut o3 = o2;
        o3.scheme = Some("wg+rb".to_string());
        cmd_simulate(&o3).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_dispatches_commands() {
        let to_args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(run(to_args(&["cache8t"])).is_err());
        assert!(run(to_args(&["cache8t", "help"])).is_err());
        assert!(run(to_args(&["cache8t", "nope"])).is_err());
        assert!(run(to_args(&["cache8t", "list-profiles"])).is_ok());
        assert!(
            run(to_args(&["cache8t", "simulate"])).is_err(),
            "missing scheme"
        );
        assert!(
            run(to_args(&["cache8t", "watch"])).is_err(),
            "missing series file"
        );
        assert!(
            run(to_args(&["cache8t", "report-series", "no-such.jsonl"])).is_err(),
            "missing file is a clean error"
        );
    }

    #[test]
    fn parse_series_flags() {
        let o = opts(&[]).unwrap();
        assert!(o.series_out.is_none());
        assert!(o.series_cadence.is_none());
        let o = opts(&["--series-out", "s.jsonl", "--series-cadence", "1_024"]).unwrap();
        assert_eq!(o.series_out.as_deref(), Some("s.jsonl"));
        assert_eq!(o.series_cadence, Some(1024));
        assert!(opts(&["--series-out"]).is_err());
        assert!(opts(&["--series-cadence", "0"]).is_err());
        assert!(opts(&["--series-cadence", "soon"]).is_err());
    }

    #[test]
    fn parse_series_cli_flags() {
        let to_args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let o = parse_series_cli(&to_args(&["s.jsonl"]), true).unwrap();
        assert_eq!(o.path, "s.jsonl");
        assert!(!o.follow);
        assert_eq!(o.rows, 16);
        let o = parse_series_cli(&to_args(&["--follow", "--rows", "5", "s.jsonl"]), true).unwrap();
        assert!(o.follow);
        assert_eq!(o.rows, 5);
        // `--follow` is a watch-only flag.
        assert!(parse_series_cli(&to_args(&["--follow", "s.jsonl"]), false).is_err());
        assert!(parse_series_cli(&to_args(&[]), true).is_err());
        assert!(parse_series_cli(&to_args(&["a.jsonl", "b.jsonl"]), true).is_err());
        assert!(parse_series_cli(&to_args(&["--rows", "0", "s.jsonl"]), true).is_err());
        assert!(parse_series_cli(&to_args(&["--rows"]), true).is_err());
        assert!(parse_series_cli(&to_args(&["--bogus", "s.jsonl"]), true).is_err());
    }

    #[test]
    fn simulate_writes_series_jsonl() {
        let dir = std::env::temp_dir().join("cache8t-cli-sim-series-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sim.jsonl").to_string_lossy().to_string();
        let mut o = opts(&[
            "--profile",
            "gcc",
            "--ops",
            "3000",
            "--series-cadence",
            "512",
        ])
        .unwrap();
        o.scheme = Some("wg".to_string());
        o.series_out = Some(path.clone());
        cmd_simulate(&o).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let samples: Vec<SeriesSample> = text
            .lines()
            .map(|l| sampler::parse_series_line(l).expect("every line parses"))
            .collect();
        assert!(!samples.is_empty());
        assert_eq!(samples[0].bench, "gcc");
        assert_eq!(samples[0].scheme, "WG");
        // Windows tile the op stream with no gaps, ending at the last op.
        assert_eq!(samples[0].op_start, 0);
        for pair in samples.windows(2) {
            assert_eq!(pair[0].op_end, pair[1].op_start);
        }
        assert_eq!(samples.last().unwrap().op_end, 3000);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_series_is_deterministic_and_renderable() {
        let dir = std::env::temp_dir().join("cache8t-cli-sweep-series-test");
        std::fs::create_dir_all(&dir).unwrap();
        let run_once = |jobs: &str, file: &str| -> String {
            let path = dir.join(file).to_string_lossy().to_string();
            let out = dir.join(format!("{file}.sweep.json"));
            let mut o = opts(&[
                "--profiles",
                "gcc",
                "--geometries",
                "baseline",
                "--ops",
                "4000",
                "--jobs",
                jobs,
                "--trace-store",
                "off",
                "--series-cadence",
                "256",
            ])
            .unwrap();
            o.series_out = Some(path.clone());
            o.out = Some(out.to_string_lossy().to_string());
            cmd_sweep(&o).unwrap();
            path
        };
        let a = run_once("1", "j1.jsonl");
        let b = run_once("2", "j2.jsonl");
        let bytes_a = std::fs::read(&a).unwrap();
        let bytes_b = std::fs::read(&b).unwrap();
        assert!(!bytes_a.is_empty());
        assert_eq!(
            bytes_a, bytes_b,
            "series output must be byte-identical across --jobs"
        );

        // Schema shape: every row is a v1 object with the documented keys.
        let text = String::from_utf8(bytes_a).unwrap();
        for line in text.lines() {
            let doc: serde_json::Value = serde_json::from_str(line).unwrap();
            assert_eq!(doc.get("v").and_then(serde_json::Value::as_str), Some("1"));
            for key in [
                "bench",
                "scheme",
                "window",
                "op_start",
                "op_end",
                "deltas",
                "occupancy",
            ] {
                assert!(doc.get(key).is_some(), "row missing `{key}`: {line}");
            }
            let sample = sampler::parse_series_line(line).expect("round-trips");
            assert!(sample.op_end > sample.op_start);
            assert_eq!(sample.bench, "baseline/gcc");
        }

        // Both consumers render the stream without error.
        let to_args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        cmd_watch(&to_args(&[&a, "--rows", "8"])).unwrap();
        cmd_report_series(&to_args(&[&a])).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Adds nested `series.*` counters (the shape sweep metric documents
    /// get from sampled runs) to every `counters` section, with values
    /// from `value`.
    fn inject_series_counters(doc: &mut serde_json::Value, value: u64) {
        if let serde_json::Value::Object(entries) = doc {
            for (key, v) in entries.iter_mut() {
                if key == "counters" {
                    if let serde_json::Value::Object(counters) = v {
                        counters.push((
                            "series.set_heat.00".to_string(),
                            serde_json::Value::U64(value),
                        ));
                        counters.push((
                            "series.windows".to_string(),
                            serde_json::Value::U64(value / 2 + 1),
                        ));
                    }
                } else {
                    inject_series_counters(v, value);
                }
            }
        }
    }

    #[test]
    fn series_bearing_document_diffs_clean_against_baseline() {
        let dir = std::env::temp_dir().join("cache8t-cli-series-diff-test");
        std::fs::create_dir_all(&dir).unwrap();
        let baseline = "results/baseline_metrics.json";
        let text = std::fs::read_to_string(baseline).expect("checked-in baseline");

        // A current document that grew series.* counters diffs clean
        // against the checked-in baseline even with a tight gate: the
        // default ignore families cover the telemetry-only names.
        let mut cur_doc: serde_json::Value = serde_json::from_str(&text).unwrap();
        inject_series_counters(&mut cur_doc, 999);
        let cur = dir.join("cur.json").to_string_lossy().to_string();
        std::fs::write(&cur, serde_json::to_string(&cur_doc).unwrap()).unwrap();
        let args = |base: &str, cur: &str| {
            vec![
                base.to_string(),
                cur.to_string(),
                "--fail-on-regress".to_string(),
                "0.1".to_string(),
            ]
        };
        cmd_perfdiff(&args(baseline, &cur)).unwrap();

        // Even drift *within* the series family stays ignored — the
        // segment-anchored match covers nested scheme counters.
        let mut base_doc: serde_json::Value = serde_json::from_str(&text).unwrap();
        inject_series_counters(&mut base_doc, 100);
        let base = dir.join("base.json").to_string_lossy().to_string();
        std::fs::write(&base, serde_json::to_string(&base_doc).unwrap()).unwrap();
        cmd_perfdiff(&args(&base, &cur)).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn downsample_buckets_preserve_shape() {
        let v: Vec<f64> = (0..100).map(f64::from).collect();
        let d = downsample(&v, 10);
        assert_eq!(d.len(), 10);
        assert!(d.windows(2).all(|w| w[0] < w[1]), "{d:?}");
        assert_eq!(downsample(&v, 200), v);
        assert!(downsample(&[], 10).is_empty());
    }

    /// One well-formed v1 series row (used by the watch tests).
    fn series_row(window: u64, start: u64) -> String {
        format!(
            concat!(
                r#"{{"v":"1","bench":"gcc","scheme":"WG","window":{},"#,
                r#""op_start":{},"op_end":{},"deltas":{{"cache.line_fills":10,"#,
                r#""ctrl.reads":60,"ctrl.writes":40,"wg.grouped_writes":30}},"#,
                r#""occupancy":[1,2,3]}}"#
            ),
            window,
            start,
            start + 100
        )
    }

    #[test]
    fn follow_tolerates_a_partially_written_final_row() {
        use std::io::Cursor;
        let full = series_row(0, 0);
        let torn = series_row(1, 100);
        let (head, tail) = torn.split_at(torn.len() / 2);

        // First poll races the producer mid-append: one complete row
        // plus the front half of the next, no trailing newline.
        let mut samples = Vec::new();
        let mut pending = String::new();
        let mut reader = Cursor::new(format!("{full}\n{head}"));
        let ops = drain_series_rows(&mut reader, &mut pending, &mut samples, 64).unwrap();
        assert_eq!(samples.len(), 1, "only the complete row parses");
        assert_eq!(ops, 100);
        assert_eq!(pending, head, "the torn prefix is kept, not dropped");

        // Next poll sees the rest of the row (and one more): the torn
        // row is completed from its kept prefix and parses cleanly.
        let mut reader = Cursor::new(format!("{tail}\n{}\n", series_row(2, 200)));
        let ops = drain_series_rows(&mut reader, &mut pending, &mut samples, 64).unwrap();
        assert_eq!(ops, 200);
        assert_eq!(samples.len(), 3, "the once-torn row is not lost");
        assert_eq!(samples[1].window, 1);
        assert_eq!(samples[2].window, 2);
        assert!(pending.is_empty());

        // The ring bound still applies.
        let mut reader = Cursor::new(format!("{}\n", series_row(3, 300)));
        drain_series_rows(&mut reader, &mut pending, &mut samples, 3).unwrap();
        assert_eq!(samples.len(), 3, "capped");
        assert_eq!(samples[0].window, 1, "oldest row evicted");
    }

    #[test]
    fn parse_serve_and_client_flags() {
        let to_args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let o = parse_serve(&to_args(&[
            "--listen",
            "unix:/tmp/c8t.sock",
            "--checkpoint-dir",
            "ckpt",
            "--jobs",
            "4",
            "--log-out",
            "ops.jsonl",
            "--timeline-out",
            "daemon.json",
            "--stream-chunk-ops",
            "1048576",
        ]))
        .unwrap();
        assert_eq!(o.listen, "unix:/tmp/c8t.sock");
        assert_eq!(o.stream_chunk_ops, Some(1_048_576));
        assert_eq!(o.checkpoint_dir.as_deref(), Some("ckpt"));
        assert_eq!(o.jobs, 4);
        assert_eq!(o.log_out.as_deref(), Some("ops.jsonl"));
        assert_eq!(o.timeline_out.as_deref(), Some("daemon.json"));
        assert!(parse_serve(&to_args(&[])).is_err(), "listen is required");
        assert!(parse_serve(&to_args(&["--listen", "x", "--bogus"])).is_err());

        let o = parse_client(&to_args(&[
            "--connect",
            "127.0.0.1:9000",
            "submit",
            "--profiles",
            "gcc,mcf",
            "--geometries",
            "baseline",
            "--ops",
            "5_000",
            "--series-cadence",
            "512",
            "--wait",
            "--json",
        ]))
        .unwrap();
        assert_eq!(o.action, "submit");
        assert_eq!(o.connect, "127.0.0.1:9000");
        assert!(o.wait && o.json);
        let plan = client_plan(&o);
        assert_eq!(plan.profiles, vec!["gcc".to_string(), "mcf".to_string()]);
        assert_eq!(plan.geometries, vec!["baseline".to_string()]);
        assert_eq!(plan.ops, 5_000);
        assert_eq!(plan.series_cadence, Some(512));
        // Defaults cover the full suite, like `cache8t sweep`.
        let o = parse_client(&to_args(&["--connect", "h:1", "submit"])).unwrap();
        let plan = client_plan(&o);
        assert_eq!(plan.profiles.len(), 25);
        assert_eq!(plan.geometries.len(), 4);

        assert!(
            parse_client(&to_args(&["submit"])).is_err(),
            "needs --connect"
        );
        assert!(
            parse_client(&to_args(&["--connect", "h:1"])).is_err(),
            "needs an action"
        );
        assert!(parse_client(&to_args(&["--connect", "h:1", "a", "b"])).is_err());
        let o = parse_client(&to_args(&["--connect", "h:1", "fetch"])).unwrap();
        assert!(require_job(&o).is_err(), "fetch needs --job");
        let o = parse_client(&to_args(&["--connect", "h:1", "metrics", "--text"])).unwrap();
        assert_eq!(o.action, "metrics");
        assert!(o.text);
    }

    #[test]
    fn parse_top_flags() {
        let to_args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let o = parse_top(&to_args(&[
            "--connect",
            "127.0.0.1:9000",
            "--interval-ms",
            "250",
            "--once",
        ]))
        .unwrap();
        assert_eq!(o.connect, "127.0.0.1:9000");
        assert_eq!(o.interval_ms, 250);
        assert!(o.once);
        let o = parse_top(&to_args(&["--connect", "h:1"])).unwrap();
        assert_eq!(o.interval_ms, 1_000, "default repaint interval");
        assert!(parse_top(&to_args(&[])).is_err(), "connect is required");
        assert!(parse_top(&to_args(&["--connect", "h:1", "--interval-ms", "0"])).is_err());
        assert!(parse_top(&to_args(&["--connect", "h:1", "--bogus"])).is_err());
    }

    #[test]
    fn top_dashboard_renders_vitals_and_job_table() {
        let health: serde_json::Value = serde_json::from_str(
            r#"{"state":"ok","uptime_ms":125000,"queue_depth":1,"jobs_active":2}"#,
        )
        .unwrap();
        let metrics: serde_json::Value = serde_json::from_str(
            r#"{"server":{"jobs":{"queued":1,"running":1,"completed":3,"failed":0,"cancelled":0},
                "journal":{"enabled":true,"files":2,"bytes":4096,"repairs":1},
                "trace_store":{"generated":4,"mem_hits":12,"disk_hits":0,"hit_ratio":0.75},
                "oplog":{"emitted":40,"suppressed":2,"dropped":0}},
                "registry":{"counters":{"serve.requests":17,"serve.errors":1}}}"#,
        )
        .unwrap();
        let status: serde_json::Value = serde_json::from_str(
            r#"{"jobs":[
                {"id":"job-1","state":"completed","restored":2},
                {"id":"job-2","state":"running","restored":0,
                 "progress":{"done":3,"total":8,"mops":2.5}}]}"#,
        )
        .unwrap();
        let frame = render_top("h:1", &health, &metrics, &status, Some((4.0, 128.0)));
        assert!(
            frame.contains("ok · up 2m05s · queue 1 · 2 active"),
            "{frame}"
        );
        assert!(
            frame.contains("queued 1 · running 1 · completed 3"),
            "{frame}"
        );
        assert!(
            frame.contains("2 file(s) · 4096 bytes (+128 B/s) · 1 repair(s)"),
            "{frame}"
        );
        assert!(
            frame.contains("4 generated · 12 hits · 75.0% warm"),
            "{frame}"
        );
        assert!(
            frame.contains("40 emitted · 2 suppressed · 0 dropped"),
            "{frame}"
        );
        assert!(frame.contains("17 total (4.0/s) · 1 error(s)"), "{frame}");
        assert!(
            frame.contains("job-2      running    3/8 (2.5 Mops/s)"),
            "{frame}"
        );
        assert!(frame.contains("job-1      completed"), "{frame}");

        // An idle daemon renders the empty-table hint, no rates.
        let empty: serde_json::Value = serde_json::from_str(r#"{"jobs":[]}"#).unwrap();
        let frame = render_top("h:1", &health, &metrics, &empty, None);
        assert!(frame.contains("(no jobs submitted yet)"), "{frame}");
        assert!(!frame.contains("B/s"), "{frame}");
    }

    #[test]
    fn uptime_formats_scale() {
        assert_eq!(format_uptime(4_000), "4s");
        assert_eq!(format_uptime(125_000), "2m05s");
        assert_eq!(format_uptime(7_380_000), "2h03m");
    }

    #[test]
    fn watch_renders_recent_windows_and_totals() {
        let line = series_row;
        let text: String = (0..4).map(|i| line(i, i * 100) + "\n").collect();
        let (samples, malformed) = parse_series_text(&(text + "not json\n"));
        assert_eq!(samples.len(), 4);
        assert_eq!(malformed, 1);
        let rendered = render_watch(&samples, 2, Some(12.5));
        // Only the two most recent windows appear as rows.
        assert_eq!(rendered.matches("gcc").count(), 2, "{rendered}");
        assert!(rendered.contains("WG"), "{rendered}");
        assert!(rendered.contains("4 win"), "{rendered}");
        assert!(rendered.contains("live: 12.5 Mops/s"), "{rendered}");
    }
}
