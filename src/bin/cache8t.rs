//! `cache8t` — command-line front end for the workspace.
//!
//! ```text
//! cache8t list-profiles
//! cache8t gen      --profile bwaves --ops 100000 --seed 1 --out bwaves.c8tt
//! cache8t analyze  --trace bwaves.c8tt
//! cache8t simulate --scheme wg+rb --trace bwaves.c8tt
//! cache8t simulate --scheme rmw --profile gcc --ops 200000
//! ```
//!
//! Traces use the binary format of `cache8t_trace` (`.c8tt`); `simulate`
//! accepts either a saved trace or a profile name to generate one on the
//! fly. Schemes: `6t`, `rmw`, `wg`, `wg+rb`, `coalesce:<entries>`.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use cache8t::core::{
    CacheBackend, CoalescingController, Controller, ConventionalController, RmwController,
    WgController, WgOptions, WgRbController,
};
use cache8t::sim::{CacheGeometry, ReplacementKind};
use cache8t::trace::analyze::StreamStats;
use cache8t::trace::{profiles, ProfiledGenerator, Trace, TraceGenerator};

const USAGE: &str = "\
usage: cache8t <command> [options]

commands:
  list-profiles                          list the 25 calibrated benchmark profiles
  gen      --profile NAME --out FILE     generate a trace to FILE
           [--ops N] [--seed S]
  analyze  --trace FILE                  print stream statistics (Figures 3-5 metrics)
  simulate --scheme SCHEME               replay through one controller
           (--trace FILE | --profile NAME)
           [--ops N] [--seed S]
           [--cache CAPKB,WAYS,BLOCKB]
           [--l2 CAPKB,WAYS,BLOCKB]
           [--metrics-out FILE]          write the metric registry as JSON
           [--trace-out FILE]            write recorded events as JSONL
                                         (set CACHE8T_TRACE=event|verbose)

schemes: 6t, rmw, wg, wg+rb, coalesce:<entries>
defaults: --ops 100000, --seed 42, --cache 64,4,32, no L2";

#[derive(Debug)]
struct Options {
    profile: Option<String>,
    trace: Option<String>,
    out: Option<String>,
    scheme: Option<String>,
    ops: usize,
    seed: u64,
    cache: CacheGeometry,
    l2: Option<CacheGeometry>,
    metrics_out: Option<String>,
    trace_out: Option<String>,
}

fn parse_geometry(flag: &str, spec: &str) -> Result<CacheGeometry, String> {
    let parts: Vec<&str> = spec.split(',').collect();
    if parts.len() != 3 {
        return Err(format!("{flag} expects CAPKB,WAYS,BLOCKB, got `{spec}`"));
    }
    let nums: Result<Vec<u64>, _> = parts.iter().map(|p| p.parse::<u64>()).collect();
    let nums = nums.map_err(|_| format!("invalid {flag} numbers in `{spec}`"))?;
    CacheGeometry::new(nums[0] * 1024, nums[1], nums[2])
        .map_err(|e| format!("invalid {flag} geometry: {e}"))
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options {
        profile: None,
        trace: None,
        out: None,
        scheme: None,
        ops: 100_000,
        seed: 42,
        cache: CacheGeometry::paper_baseline(),
        l2: None,
        metrics_out: None,
        trace_out: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--profile" => o.profile = Some(value()?),
            "--trace" => o.trace = Some(value()?),
            "--out" => o.out = Some(value()?),
            "--scheme" => o.scheme = Some(value()?),
            "--ops" => {
                o.ops = value()?
                    .replace('_', "")
                    .parse()
                    .map_err(|_| "invalid --ops value".to_string())?;
                if o.ops == 0 {
                    return Err("--ops must be positive".to_string());
                }
            }
            "--seed" => {
                o.seed = value()?
                    .parse()
                    .map_err(|_| "invalid --seed value".to_string())?;
            }
            "--cache" => o.cache = parse_geometry("--cache", &value()?)?,
            "--l2" => o.l2 = Some(parse_geometry("--l2", &value()?)?),
            "--metrics-out" => o.metrics_out = Some(value()?),
            "--trace-out" => o.trace_out = Some(value()?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(o)
}

fn build_controller(
    scheme: &str,
    geometry: CacheGeometry,
    l2: Option<CacheGeometry>,
) -> Result<Box<dyn Controller>, String> {
    let lru = ReplacementKind::Lru;
    let backend = || match l2 {
        Some(l2_geometry) => CacheBackend::with_l2(geometry, l2_geometry, lru),
        None => CacheBackend::new(geometry, lru),
    };
    Ok(match scheme {
        "6t" => Box::new(ConventionalController::from_backend(backend())),
        "rmw" => Box::new(RmwController::from_backend(backend())),
        "wg" => Box::new(WgController::from_backend(backend(), WgOptions::wg())),
        "wg+rb" | "wgrb" => Box::new(WgRbController::from_backend(backend())),
        other => {
            if let Some(entries) = other.strip_prefix("coalesce:") {
                let entries: usize = entries
                    .parse()
                    .map_err(|_| format!("invalid entry count in `{other}`"))?;
                if entries == 0 {
                    return Err("coalesce needs at least one entry".to_string());
                }
                Box::new(CoalescingController::from_backend(backend(), entries))
            } else {
                return Err(format!(
                    "unknown scheme `{other}` (expected 6t, rmw, wg, wg+rb, coalesce:<n>)"
                ));
            }
        }
    })
}

fn load_or_generate(o: &Options) -> Result<Trace, String> {
    match (&o.trace, &o.profile) {
        (Some(path), None) => {
            let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            Trace::read_from(BufReader::new(file)).map_err(|e| format!("cannot read {path}: {e}"))
        }
        (None, Some(name)) => {
            let profile = profiles::by_name(name)
                .ok_or_else(|| format!("unknown profile `{name}` (try list-profiles)"))?;
            Ok(
                ProfiledGenerator::new(profile, CacheGeometry::paper_baseline(), o.seed)
                    .collect(o.ops),
            )
        }
        (Some(_), Some(_)) => Err("--trace and --profile are mutually exclusive".to_string()),
        (None, None) => Err("need --trace FILE or --profile NAME".to_string()),
    }
}

fn cmd_list_profiles() {
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>8}",
        "name", "rd/instr", "wr/instr", "same-set", "silent"
    );
    for p in profiles::spec2006() {
        println!(
            "{:<12} {:>8.1}% {:>8.1}% {:>8.1}% {:>7.0}%",
            p.name,
            p.reads_per_instr() * 100.0,
            p.writes_per_instr() * 100.0,
            p.locality.total() * 100.0,
            p.silent_fraction * 100.0,
        );
    }
}

fn cmd_gen(o: &Options) -> Result<(), String> {
    let out = o.out.as_ref().ok_or("gen requires --out FILE")?;
    if o.trace.is_some() {
        return Err("gen takes --profile, not --trace".to_string());
    }
    let trace = load_or_generate(o)?;
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    trace
        .write_to(BufWriter::new(file))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote {} ops ({} instructions) to {out}",
        trace.len(),
        trace.instructions()
    );
    Ok(())
}

fn cmd_analyze(o: &Options) -> Result<(), String> {
    let trace = load_or_generate(o)?;
    let stats = StreamStats::measure(&trace, o.cache);
    println!(
        "{} ops over {} instructions, {} distinct blocks in {} sets",
        trace.len(),
        trace.instructions(),
        stats.distinct_blocks,
        stats.distinct_sets
    );
    println!("{stats}");
    Ok(())
}

fn cmd_simulate(o: &Options) -> Result<(), String> {
    let scheme = o.scheme.as_ref().ok_or("simulate requires --scheme")?;
    let trace = load_or_generate(o)?;
    let mut controller = build_controller(scheme, o.cache, o.l2)?;
    for op in &trace {
        controller.access(op);
    }
    controller.flush();
    println!(
        "scheme {} on {} ops ({}KB/{}-way/{}B cache):",
        controller.name(),
        trace.len(),
        o.cache.capacity_bytes() / 1024,
        o.cache.ways(),
        o.cache.block_bytes()
    );
    println!("  {}", controller.traffic());
    println!("  requests: {}", controller.stats());
    write_observability(o, controller.as_ref())?;
    Ok(())
}

/// Honors `--metrics-out` / `--trace-out` after a simulate run.
fn write_observability(o: &Options, controller: &dyn Controller) -> Result<(), String> {
    let Some(obs) = controller.obs() else {
        if o.metrics_out.is_some() || o.trace_out.is_some() {
            return Err(format!(
                "scheme {} exposes no observability bundle",
                controller.name()
            ));
        }
        return Ok(());
    };
    if let Some(path) = &o.metrics_out {
        obs.registry()
            .write_json(&mut BufWriter::new(
                File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?,
            ))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("  metrics snapshot written to {path}");
    }
    if let Some(path) = &o.trace_out {
        obs.tracer()
            .write_jsonl(&mut BufWriter::new(
                File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?,
            ))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!(
            "  {} trace events written to {path} ({} dropped)",
            obs.tracer().len(),
            obs.tracer().dropped()
        );
    }
    Ok(())
}

fn run(args: Vec<String>) -> Result<(), String> {
    let Some(command) = args.get(1) else {
        return Err(USAGE.to_string());
    };
    let rest = &args[2..];
    match command.as_str() {
        "list-profiles" => {
            cmd_list_profiles();
            Ok(())
        }
        "gen" => cmd_gen(&parse_options(rest)?),
        "analyze" => cmd_analyze(&parse_options(rest)?),
        "simulate" => cmd_simulate(&parse_options(rest)?),
        "--help" | "-h" | "help" => Err(USAGE.to_string()),
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run(std::env::args().collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Result<Options, String> {
        parse_options(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parse_defaults_and_flags() {
        let o = opts(&[]).unwrap();
        assert_eq!(o.ops, 100_000);
        assert_eq!(o.seed, 42);
        let o = opts(&["--profile", "gcc", "--ops", "5_000", "--seed", "7"]).unwrap();
        assert_eq!(o.profile.as_deref(), Some("gcc"));
        assert_eq!(o.ops, 5_000);
        assert_eq!(o.seed, 7);
    }

    #[test]
    fn parse_cache_spec() {
        let o = opts(&["--cache", "32,4,64"]).unwrap();
        assert_eq!(o.cache.capacity_bytes(), 32 * 1024);
        assert_eq!(o.cache.block_bytes(), 64);
        assert!(o.l2.is_none());
        let o = opts(&["--l2", "512,8,32"]).unwrap();
        assert_eq!(o.l2.unwrap().capacity_bytes(), 512 * 1024);
        assert!(opts(&["--cache", "32,4"]).is_err());
        assert!(opts(&["--cache", "31,4,64"]).is_err());
        assert!(opts(&["--cache", "a,b,c"]).is_err());
    }

    #[test]
    fn parse_observability_flags() {
        let o = opts(&["--metrics-out", "m.json", "--trace-out", "t.jsonl"]).unwrap();
        assert_eq!(o.metrics_out.as_deref(), Some("m.json"));
        assert_eq!(o.trace_out.as_deref(), Some("t.jsonl"));
        assert!(opts(&["--metrics-out"]).is_err());
    }

    #[test]
    fn simulate_writes_metrics_snapshot() {
        let dir = std::env::temp_dir().join("cache8t-cli-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.json").to_string_lossy().to_string();
        let mut o = opts(&["--profile", "gcc", "--ops", "2000", "--metrics-out", &path]).unwrap();
        o.scheme = Some("wg".to_string());
        cmd_simulate(&o).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        let rendered = serde_json::to_string(&value).unwrap();
        assert!(rendered.contains("wg.groups"));
        assert!(rendered.contains("wg.group_len"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(opts(&["--ops"]).is_err());
        assert!(opts(&["--ops", "0"]).is_err());
        assert!(opts(&["--bogus"]).is_err());
    }

    #[test]
    fn controllers_build_by_name() {
        let g = CacheGeometry::paper_baseline();
        for (name, expect) in [
            ("6t", "6T"),
            ("rmw", "RMW"),
            ("wg", "WG"),
            ("wg+rb", "WG+RB"),
            ("wgrb", "WG+RB"),
            ("coalesce:4", "CoalesceWB"),
        ] {
            assert_eq!(
                build_controller(name, g, None).unwrap().name(),
                expect,
                "{name}"
            );
        }
        assert!(build_controller("bogus", g, None).is_err());
        assert!(build_controller("coalesce:0", g, None).is_err());
        assert!(build_controller("coalesce:x", g, None).is_err());
        let l2 = CacheGeometry::new(512 * 1024, 8, 32).unwrap();
        let c = build_controller("wg+rb", g, Some(l2)).unwrap();
        assert_eq!(c.name(), "WG+RB");
    }

    #[test]
    fn load_requires_exactly_one_source() {
        let mut o = opts(&[]).unwrap();
        assert!(load_or_generate(&o).is_err());
        o.profile = Some("gcc".to_string());
        o.trace = Some("x.bin".to_string());
        assert!(load_or_generate(&o).is_err());
    }

    #[test]
    fn generate_and_reload_roundtrip() {
        let dir = std::env::temp_dir().join("cache8t-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.c8tt").to_string_lossy().to_string();
        let o = opts(&["--profile", "gcc", "--ops", "500", "--out", &path]).unwrap();
        cmd_gen(&o).unwrap();
        let o2 = opts(&["--trace", &path]).unwrap();
        let trace = load_or_generate(&o2).unwrap();
        assert_eq!(trace.len(), 500);
        cmd_analyze(&o2).unwrap();
        let mut o3 = o2;
        o3.scheme = Some("wg+rb".to_string());
        cmd_simulate(&o3).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_dispatches_commands() {
        let to_args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(run(to_args(&["cache8t"])).is_err());
        assert!(run(to_args(&["cache8t", "help"])).is_err());
        assert!(run(to_args(&["cache8t", "nope"])).is_err());
        assert!(run(to_args(&["cache8t", "list-profiles"])).is_ok());
        assert!(
            run(to_args(&["cache8t", "simulate"])).is_err(),
            "missing scheme"
        );
    }
}
