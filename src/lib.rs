//! # cache8t — facade crate
//!
//! Re-exports the whole workspace: a from-scratch reproduction of
//! *"Performance and Power Solutions for Caches Using 8T SRAM Cells"*
//! (Farahani & Baniasadi, MICRO 2012). See the repository README for the
//! architecture overview and `DESIGN.md` for the paper-to-module map.
//!
//! - [`sim`]: value-carrying set-associative cache substrate.
//! - [`sram`]: bit-accurate 8T/6T SRAM arrays with RMW sequencing.
//! - [`trace`]: SPEC-CPU2006-calibrated workload generators.
//! - [`core`]: the paper's contribution — Write Grouping (WG) and Write
//!   Grouping + Read Bypassing (WG+RB) controllers, plus baselines.
//! - [`energy`]: CACTI-style area/energy model and DVFS support.
//! - [`cpu`]: port-contention timing model.
//! - [`obs`]: metric registry, structured event tracing
//!   (`CACHE8T_TRACE`), and scoped span profiling.
//! - [`exec`]: parallel sweep-execution engine — work-stealing job
//!   scheduler, generate-once trace store, crash-isolated experiment
//!   runner (`cache8t sweep`).
//! - [`conform`]: differential conformance harness — lockstep oracle
//!   replay against a golden memory, invariant checking, and seeded
//!   trace fuzzing with reproducer shrinking (`cache8t check`).
//! - [`serve`]: sweep-as-a-service daemon — versioned JSONL protocol
//!   over TCP/unix sockets, checkpoint-journalled resumable sweeps
//!   (`cache8t serve` / `cache8t client`).
//!
//! ## Quickstart
//!
//! ```
//! use cache8t::core::{Controller, RmwController, WgRbController};
//! use cache8t::sim::{CacheGeometry, ReplacementKind};
//! use cache8t::trace::{profiles, ProfiledGenerator, TraceGenerator};
//!
//! let geometry = CacheGeometry::paper_baseline();
//! let profile = profiles::by_name("bwaves").expect("bwaves is in the suite");
//! let trace = ProfiledGenerator::new(profile, geometry, 1).collect(20_000);
//!
//! let mut rmw = RmwController::new(geometry, ReplacementKind::Lru);
//! let mut wgrb = WgRbController::new(geometry, ReplacementKind::Lru);
//! for op in &trace {
//!     rmw.access(op);
//!     wgrb.access(op);
//! }
//! // WG+RB issues fewer SRAM array accesses than plain RMW.
//! assert!(wgrb.array_accesses() < rmw.array_accesses());
//! ```

pub use cache8t_conform as conform;
pub use cache8t_core as core;
pub use cache8t_cpu as cpu;
pub use cache8t_energy as energy;
pub use cache8t_exec as exec;
pub use cache8t_obs as obs;
pub use cache8t_serve as serve;
pub use cache8t_sim as sim;
pub use cache8t_sram as sram;
pub use cache8t_trace as trace;
