#!/usr/bin/env sh
# Regenerates every figure/table/extension into results/, at the ops count
# given as $1 (default 1000000). Used to produce the recorded outputs
# backing EXPERIMENTS.md.
set -eu
ops="${1:-1000000}"
cd "$(dirname "$0")/.."
mkdir -p results
for bin in fig03_access_frequency fig04_consecutive_scenarios fig05_silent_writes \
           motivation_rmw_traffic fig09_access_reduction fig10_blocksize_sensitivity \
           fig11_cachesize_sensitivity table_area_overhead sram_rmw_walkthrough \
           ext_performance ext_power_dvfs ext_ablations ext_alternatives \
           ext_soft_errors ext_sweeps ext_context_switch; do
    echo "== $bin"
    cargo run --release -q -p cache8t-bench --bin "$bin" -- --ops "$ops" | tee "results/$bin.txt"
done
