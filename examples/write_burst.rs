//! Write-burst scenario: the access patterns the paper's introduction
//! motivates, built from first principles rather than the calibrated
//! profiles.
//!
//! Four kernels run against RMW, WG and WG+RB:
//!
//! 1. **record update sweep** — read a record's header, then store all
//!    four of its words: the consecutive-write (WW) runs Write Grouping
//!    exists for;
//! 2. **in-place update sweep** (`a[i] = f(a[i])`) — *only* read-write
//!    pairs, one per block: grouping finds nothing to group (the paper's
//!    point that WW locality, not store count, is what matters);
//! 3. **zero re-initialization** of an already-zero buffer — 100 % silent
//!    stores, where WG's Dirty bit eliminates every write-back;
//! 4. **pointer chase** — no locality at all, the worst case, where the
//!    techniques must at least do no harm.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example write_burst
//! ```

use cache8t::core::{Controller, RmwController, WgController, WgRbController};
use cache8t::sim::{Address, CacheGeometry, ReplacementKind};
use cache8t::trace::{MemOp, PointerChase, StridedLoop, Trace, TraceGenerator};

fn replay(trace: &Trace) -> Vec<(String, u64)> {
    let geometry = CacheGeometry::paper_baseline();
    let mut out = Vec::new();
    let mut controllers: Vec<Box<dyn Controller>> = vec![
        Box::new(RmwController::new(geometry, ReplacementKind::Lru)),
        Box::new(WgController::new(geometry, ReplacementKind::Lru)),
        Box::new(WgRbController::new(geometry, ReplacementKind::Lru)),
    ];
    for controller in &mut controllers {
        for op in trace {
            controller.access(op);
        }
        controller.flush();
        out.push((controller.name().to_string(), controller.array_accesses()));
    }
    out
}

fn report(label: &str, trace: &Trace) {
    let results = replay(trace);
    let rmw = results[0].1 as f64;
    print!("{label:<28}");
    for (name, accesses) in &results {
        let reduction = (1.0 - *accesses as f64 / rmw) * 100.0;
        print!("  {name}: {accesses:>7} ({reduction:>5.1}%)");
    }
    println!();
}

fn main() {
    println!("array accesses per kernel (reduction vs RMW in parentheses)\n");

    // 1. Record update sweep: read the first word of each 32 B record,
    // then store all four words — R w0, W w0, W w1, W w2, W w3.
    let mut ops = Vec::new();
    let mut value = 1u64;
    for i in 0..8_000u64 {
        let base = Address::new(0x10000 + (i % 512) * 32);
        ops.push(MemOp::read(base));
        for word in 0..4 {
            ops.push(MemOp::write(base.offset(word * 8), value));
            value += 1;
        }
    }
    report("record update sweep", &ops.into_iter().collect());

    // 2. In-place update sweep over a 16 KB array: R a[i]; W a[i] — one
    // isolated store per block, nothing for the Set-Buffer to absorb.
    let sweep: Trace = StridedLoop::new(Address::new(0x10000), 512, 32).collect(40_000);
    report("in-place update sweep", &sweep);

    // 3. Re-zeroing an already-zero 8 KB buffer, block by block: every
    // store is silent, so WG never writes the groups back.
    let zeros: Trace = (0..40_000u64)
        .map(|i| MemOp::write(Address::new(0x40000 + (i % 1024) * 8), 0))
        .collect();
    report("re-zeroing a zero buffer", &zeros);

    // 4. Pointer chase over 64 K nodes with 20% writes: no set locality.
    let chase: Trace = PointerChase::new(65_536, 0.2, 7).collect(40_000);
    report("pointer chase (worst case)", &chase);

    println!("\nreading: grouping thrives on consecutive-write runs (kernel 1) but has");
    println!("nothing to absorb from isolated read-modify-writes (kernel 2); the Dirty");
    println!("bit erases silent write-backs entirely (kernel 3); and with no locality");
    println!("at all the Set-Buffer simply stays out of the way (kernel 4).");
}
