//! Reliability audit: the circuit-level story under the paper, end to end.
//!
//! Walks the three physical mechanisms the microarchitecture rests on:
//!
//! 1. **Half-select corruption** — why 8T arrays need RMW at all;
//! 2. **Interleaving + SEC-DED** — why the array is interleaved (and hence
//!    why writes are row-granular);
//! 3. **Sub-array banking** — how Park et al. relieve RMW's port pressure
//!    without reducing its traffic.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example reliability_audit
//! ```

use cache8t::sram::{
    ArrayConfig, BankedArray, CellKind, EccArray, EccStatus, OpLatency, SramArray,
};

fn main() {
    // --- 1. Half-select corruption. ---
    println!("1. half-select corruption (why RMW exists)\n");
    let config = ArrayConfig::new(2, 4, 16).expect("small demo array");
    let mut eight_t = SramArray::new(config);
    let mut six_t = SramArray::with_kind(config, CellKind::SixT);
    for array in [&mut eight_t, &mut six_t] {
        array
            .write_row_full(0, &[0x1111, 0x2222, 0x3333, 0x4444])
            .expect("in range");
        array.write_word_naive(0, 0, 0xAAAA).expect("in range");
    }
    println!(
        "   naive partial write of word 0 on 6T: {:?}",
        eight_row(&six_t)
    );
    println!(
        "   same write on 8T:                    {:?}",
        eight_row(&eight_t)
    );
    println!(
        "   -> {} half-selected 8T cells lost; the fix is RMW (2 activations/store)\n",
        eight_t.counters().cells_corrupted
    );

    // --- 2. Interleaving + SEC-DED. ---
    println!("2. interleaving + Hamming(72,64) (why rows are interleaved)\n");
    let mut ecc = EccArray::new(ArrayConfig::new(1, 4, 64).expect("valid")).expect("64-bit words");
    for w in 0..4 {
        ecc.rmw_write_word(0, w, 0xFACE_0000 + w as u64)
            .expect("in range");
    }
    // A 4-column burst: with degree-4 interleaving, one bit per word.
    ecc.strike_burst(0, 100, 4).expect("in range");
    for w in 0..4 {
        let (value, status) = ecc.read_word_corrected(0, w).expect("in range");
        println!(
            "   word {w}: {} ({status})",
            value.map_or("LOST".to_string(), |v| format!("{v:#x}"))
        );
        assert!(matches!(
            status,
            EccStatus::Clean | EccStatus::Corrected { .. }
        ));
    }
    println!("   -> a 4-wide burst is fully repaired; without interleaving it");
    println!("      would put 4 bits in one word, far beyond SEC-DED\n");

    // --- 3. Sub-array banking. ---
    println!("3. sub-array banking (Park et al.: local RMW)\n");
    let mut banked = BankedArray::new(
        ArrayConfig::new(8, 4, 16).expect("valid"),
        4,
        OpLatency::single_cycle(),
    )
    .expect("divisible banking");
    let rmw_done = banked.issue_rmw(0, 0, 0, 0xBEEF).expect("bank 0 free");
    let (_, read_done) = banked.issue_read(1, 0).expect("bank 1 free");
    println!("   RMW in bank 0 completes at cycle {rmw_done}; a concurrent read in");
    println!("   bank 1 completes at cycle {read_done} — no conflict across banks.");
    match banked.issue_read(4, 0) {
        Err(e) => println!("   a concurrent read in bank 0 is refused: {e}"),
        Ok(_) => unreachable!("bank 0's read port is held by the RMW"),
    }
    println!("\n   -> banking restores concurrency but each store still costs two");
    println!("      activations; Write Grouping attacks the count itself.");
}

fn eight_row(array: &SramArray) -> Vec<String> {
    array
        .peek_row(0)
        .expect("row 0 exists")
        .iter()
        .map(|w| w.map_or("XXXX".to_string(), |v| format!("{v:#06x}")))
        .collect()
}
