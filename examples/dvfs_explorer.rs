//! DVFS explorer: why 8T caches matter for voltage scaling (paper §1), and
//! what WG/WG+RB add on top.
//!
//! For each technology node this example prints the DVFS ladder a system
//! can actually use when its cache is 6T vs 8T, then prices a workload's
//! cache-access energy per scheme at the lowest reachable operating point.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example dvfs_explorer
//! ```

use cache8t::core::{Controller, RmwController, WgRbController};
use cache8t::energy::dvfs::DvfsLadder;
use cache8t::energy::power::SchemeEnergy;
use cache8t::energy::{ArrayModel, CellKind, TechnologyNode};
use cache8t::sim::{CacheGeometry, ReplacementKind};
use cache8t::trace::{profiles, ProfiledGenerator, TraceGenerator};

fn main() {
    let geometry = CacheGeometry::paper_baseline();

    // --- Part 1: the Vmin wall. ---
    println!("DVFS operating points (8 levels, relative frequency / energy per op):\n");
    for node in TechnologyNode::all() {
        println!("{}:", node.name());
        for cells in [CellKind::SixT, CellKind::EightT] {
            let ladder = DvfsLadder::for_cache(node, cells, 8);
            let points: Vec<String> = ladder
                .points()
                .iter()
                .map(|p| {
                    format!(
                        "{:.2}V(f{:.2}/e{:.2})",
                        p.voltage.value(),
                        p.relative_frequency,
                        p.relative_energy_per_op
                    )
                })
                .collect();
            println!("  {cells} cache: {}", points.join(" "));
        }
    }
    println!("\nthe 6T rows stop far above the 8T rows: that unreachable tail is the");
    println!("energy headroom an 8T cache unlocks — if its RMW write cost is tamed.\n");

    // --- Part 2: access energy per scheme at the 8T floor. ---
    let node = TechnologyNode::nm32();
    let ladder = DvfsLadder::for_cache(node, CellKind::EightT, 8);
    let v_low = ladder.lowest().voltage;
    let model = ArrayModel::for_cache(geometry, node, CellKind::EightT);

    let profile = profiles::by_name("lbm").expect("lbm is in the suite");
    let trace = ProfiledGenerator::new(profile, geometry, 3).collect(300_000);

    let mut rmw = RmwController::new(geometry, ReplacementKind::Lru);
    let mut wgrb = WgRbController::new(geometry, ReplacementKind::Lru);
    for op in &trace {
        rmw.access(op);
        wgrb.access(op);
    }
    rmw.flush();
    wgrb.flush();

    println!(
        "lbm-like workload at the 32nm 8T floor ({:.2} V):",
        v_low.value()
    );
    let e_rmw = SchemeEnergy::price(rmw.traffic(), &model, v_low);
    let e_wgrb = SchemeEnergy::price(wgrb.traffic(), &model, v_low);
    println!("  RMW   : {}", e_rmw);
    println!("  WG+RB : {}", e_wgrb);
    println!(
        "  WG+RB saves {:.1}% of cache access energy on top of the voltage win",
        e_wgrb.saving_vs(&e_rmw) * 100.0
    );
}
