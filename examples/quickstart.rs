//! Quickstart: simulate the paper's baseline L1 data cache under all four
//! write schemes and print the headline numbers.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cache8t::core::{
    Controller, ConventionalController, RmwController, WgController, WgRbController,
};
use cache8t::sim::{CacheGeometry, ReplacementKind};
use cache8t::trace::{profiles, ProfiledGenerator, TraceGenerator};

fn main() {
    // The paper's baseline configuration: 64 KB, 4-way, 32 B blocks, LRU.
    let geometry = CacheGeometry::paper_baseline();
    println!(
        "cache: {} KB, {}-way, {} B blocks, {} sets (Set-Buffer = {} B)",
        geometry.capacity_bytes() / 1024,
        geometry.ways(),
        geometry.block_bytes(),
        geometry.num_sets(),
        geometry.set_bytes(),
    );

    // A calibrated SPEC CPU2006-like workload; bwaves is the paper's most
    // write-intensive benchmark.
    let profile = profiles::by_name("bwaves").expect("bwaves is in the suite");
    let trace = ProfiledGenerator::new(profile, geometry, 42).collect(500_000);
    println!(
        "workload: bwaves-like, {} ops over {} instructions ({} reads / {} writes)\n",
        trace.len(),
        trace.instructions(),
        trace.reads(),
        trace.writes(),
    );

    // Replay the same trace through every controller.
    let mut controllers: Vec<Box<dyn Controller>> = vec![
        Box::new(ConventionalController::new(geometry, ReplacementKind::Lru)),
        Box::new(RmwController::new(geometry, ReplacementKind::Lru)),
        Box::new(WgController::new(geometry, ReplacementKind::Lru)),
        Box::new(WgRbController::new(geometry, ReplacementKind::Lru)),
    ];
    let mut rmw_accesses = None;
    for controller in &mut controllers {
        for op in &trace {
            controller.access(op);
        }
        controller.flush();
        if controller.name() == "RMW" {
            rmw_accesses = Some(controller.array_accesses());
        }
    }

    println!(
        "{:<6}  {:>14}  {:>12}  {:>10}",
        "scheme", "array accesses", "vs RMW", "hit ratio"
    );
    let rmw_accesses = rmw_accesses.expect("RMW controller ran") as f64;
    for controller in &controllers {
        let accesses = controller.array_accesses();
        let delta = 1.0 - accesses as f64 / rmw_accesses;
        println!(
            "{:<6}  {:>14}  {:>11.1}%  {:>9.1}%",
            controller.name(),
            accesses,
            delta * 100.0,
            controller.stats().hit_ratio() * 100.0,
        );
    }
    println!("\n(positive 'vs RMW' = fewer SRAM array accesses than the RMW baseline;");
    println!(" the paper reports 27% for WG and 33% for WG+RB on average, 47% max for WG)");
}
