//! Building a custom workload profile and evaluating it end to end:
//! validation, stream statistics, array traffic, and timing.
//!
//! This is the template for studying *your* workload's fit for Write
//! Grouping: set the statistics your application exhibits and see what the
//! techniques would buy.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use cache8t::core::{Controller, RmwController, WgController, WgRbController};
use cache8t::cpu::{PortTimingModel, TimingConfig};
use cache8t::sim::{CacheGeometry, ReplacementKind};
use cache8t::trace::analyze::StreamStats;
use cache8t::trace::{PairLocality, ProfiledGenerator, TraceGenerator, WorkloadProfile};

fn main() {
    // A write-heavy logging/checkpointing style workload: long store
    // bursts into one region, moderate silent fraction (overwrites of
    // unchanged state), small hot working set.
    let profile = WorkloadProfile {
        name: "checkpointd".to_string(),
        mem_per_instr: 0.45,
        read_share: 0.50,
        locality: PairLocality {
            rr: 0.06,
            rw: 0.05,
            wr: 0.05,
            ww: 0.20,
        },
        silent_fraction: 0.55,
        working_set_blocks: 6_000,
        zipf_exponent: 0.9,
        write_revisit: 0.5,
        read_after_write: 0.15,
        silent_correlation: 0.7,
        spatial_adjacency: 0.4,
    };
    profile
        .validate()
        .expect("statistics are mutually consistent");

    let geometry = CacheGeometry::paper_baseline();
    let trace = ProfiledGenerator::new(profile, geometry, 11).collect(300_000);
    let stats = StreamStats::measure(&trace, geometry);
    println!("generated stream: {stats}\n");

    let mut rmw = RmwController::new(geometry, ReplacementKind::Lru);
    let mut wg = WgController::new(geometry, ReplacementKind::Lru);
    let mut wgrb = WgRbController::new(geometry, ReplacementKind::Lru);
    let model = PortTimingModel::new(TimingConfig::default());
    let t_rmw = model.run(&mut rmw, &trace);
    let t_wg = model.run(&mut wg, &trace);
    let t_wgrb = model.run(&mut wgrb, &trace);
    rmw.flush();
    wg.flush();
    wgrb.flush();

    println!("traffic:");
    for c in [&rmw as &dyn Controller, &wg, &wgrb] {
        let reduction = 1.0 - c.array_accesses() as f64 / rmw.array_accesses() as f64;
        println!(
            "  {:<6} {:>8} array accesses ({:>5.1}% vs RMW)   {}",
            c.name(),
            c.array_accesses(),
            reduction * 100.0,
            c.traffic(),
        );
    }

    println!("\ntiming (in-order port model):");
    for (name, t) in [("RMW", t_rmw), ("WG", t_wg), ("WG+RB", t_wgrb)] {
        println!(
            "  {:<6} avg read latency {:>5.2} cyc, read-port availability {:>5.1}%",
            name,
            t.avg_read_latency(),
            t.read_port_availability() * 100.0
        );
    }

    println!("\nfor this profile the WW burst share and high silent fraction make");
    println!("grouping very effective; compare against your own measurements.");
}
