//! Timeline integration test: records events from several threads,
//! drains, and validates the Chrome trace-event JSON shape.
//!
//! The timeline is process-global (per-thread buffers behind one
//! registry), so this file deliberately holds exactly ONE `#[test]`
//! function — a second test in the same binary would race the
//! enable/drain cycle.

use std::collections::HashMap;

use cache8t_obs::{timeline, TimelineSpan};
use serde_json::Value;

#[test]
fn chrome_trace_shape_across_threads() {
    timeline::enable();
    timeline::set_track_name("main");

    // A nested pair of spans on the main thread...
    {
        let _outer = TimelineSpan::enter("outer", "span");
        let _inner = TimelineSpan::enter_lazy(|| "inner".to_string(), "span");
        timeline::instant("marker", "sched");
    }
    // ...and one named track per spawned worker, span plus instant.
    std::thread::scope(|scope| {
        for i in 0..3 {
            scope.spawn(move || {
                timeline::set_track_name(format!("test-worker-{i}"));
                let _span = TimelineSpan::enter(format!("work-{i}"), "job");
                timeline::instant("tick", "sched");
            });
        }
    });

    timeline::disable();
    let snapshot = timeline::drain();
    assert!(snapshot.event_count() >= 4 + 3 * 3);

    // The snapshot must survive a JSON round trip through the vendored
    // serde_json (exactly what `--timeline-out` writes to disk).
    let mut bytes = Vec::new();
    snapshot.write_chrome_json(&mut bytes).expect("vec write");
    let doc: Value = serde_json::from_str(std::str::from_utf8(&bytes).expect("utf8"))
        .expect("emitted timeline parses");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Value::as_str),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");

    // Track names arrive as `M` metadata records, one per track.
    let mut names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
        .map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str)
                .expect("thread_name metadata carries a name")
        })
        .collect();
    names.sort_unstable();
    for expected in ["main", "test-worker-0", "test-worker-1", "test-worker-2"] {
        assert!(
            names.contains(&expected),
            "missing track {expected}: {names:?}"
        );
    }

    // Group the real events per tid and validate each track.
    let mut tracks: HashMap<u64, Vec<&Value>> = HashMap::new();
    for event in events {
        let ph = event.get("ph").and_then(Value::as_str).expect("ph");
        if ph == "M" {
            continue;
        }
        assert!(matches!(ph, "B" | "E" | "i"), "unexpected phase {ph}");
        assert_eq!(event.get("pid").and_then(Value::as_u64), Some(1));
        assert!(event.get("cat").and_then(Value::as_str).is_some());
        assert!(event.get("ts").and_then(Value::as_u64).is_some());
        if ph == "i" {
            // Instants must be thread-scoped to render on their track.
            assert_eq!(event.get("s").and_then(Value::as_str), Some("t"));
        }
        let tid = event.get("tid").and_then(Value::as_u64).expect("tid");
        tracks.entry(tid).or_default().push(event);
    }
    assert!(tracks.len() >= 4, "main + three workers: {}", tracks.len());

    for (tid, track) in &tracks {
        // Timestamps are monotone per track (recording order).
        let ts: Vec<u64> = track
            .iter()
            .map(|e| e.get("ts").and_then(Value::as_u64).expect("ts"))
            .collect();
        assert!(
            ts.windows(2).all(|w| w[0] <= w[1]),
            "tid {tid} ts not monotone"
        );

        // Every `E` closes the most recent open `B` of the same name
        // (spans nest properly), every begin's ts <= its end's ts, and
        // no `B` is left open.
        let mut open: Vec<(&str, u64)> = Vec::new();
        for event in track {
            let name = event.get("name").and_then(Value::as_str).expect("name");
            let ts = event.get("ts").and_then(Value::as_u64).expect("ts");
            match event.get("ph").and_then(Value::as_str).expect("ph") {
                "B" => open.push((name, ts)),
                "E" => {
                    let (begin_name, begin_ts) = open
                        .pop()
                        .unwrap_or_else(|| panic!("tid {tid}: E without B"));
                    assert_eq!(begin_name, name, "tid {tid}: mismatched span nesting");
                    assert!(
                        begin_ts <= ts,
                        "tid {tid}: span {name} ends before it begins"
                    );
                }
                _ => {}
            }
        }
        assert!(open.is_empty(), "tid {tid}: unclosed spans {open:?}");
    }

    // After disable, recording helpers are inert: a second drain sees
    // nothing new.
    timeline::begin("late", "span");
    timeline::end("late", "span");
    timeline::instant("late", "span");
    let quiet = timeline::drain();
    assert_eq!(quiet.event_count(), 0, "disabled timeline still recorded");
}
