//! Property tests for the observability layer: histogram accounting
//! invariants and lossless JSONL event serialization.

use proptest::prelude::*;

use cache8t_obs::trace::parse_jsonl_line;
use cache8t_obs::{
    Component, EventKind, Log2Histogram, MetricRegistry, TraceEvent, TraceLevel, Tracer,
};

/// Strategy spanning the full u64 range, not just small values, so the
/// high buckets get exercised too.
fn any_magnitude_u64() -> impl Strategy<Value = u64> {
    (any::<u64>(), 0u32..64).prop_map(|(raw, shift)| raw >> shift)
}

fn component_strategy() -> impl Strategy<Value = Component> {
    prop_oneof![
        Just(Component::Cache),
        Just(Component::Conventional),
        Just(Component::Rmw),
        Just(Component::Wg),
        Just(Component::Coalesce),
        Just(Component::Sram),
        Just(Component::Sim),
    ]
}

fn kind_strategy() -> impl Strategy<Value = EventKind> {
    prop_oneof![
        Just(EventKind::Access),
        Just(EventKind::BufferFill),
        Just(EventKind::GroupFlush),
        Just(EventKind::SilentElide),
        Just(EventKind::Bypass),
        Just(EventKind::RmwSequence),
        Just(EventKind::LineFill),
        Just(EventKind::Eviction),
        Just(EventKind::RowAccess),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bucket_counts_sum_to_observation_count(
        values in prop::collection::vec(any_magnitude_u64(), 0..256)
    ) {
        let mut h = Log2Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        let bucket_total: u64 = (0..=64).map(|i| h.bucket(i)).sum();
        prop_assert_eq!(bucket_total, values.len() as u64);
        prop_assert_eq!(h.count(), values.len() as u64);
        if let (Some(min), Some(max)) = (h.min(), h.max()) {
            prop_assert_eq!(min, *values.iter().min().unwrap());
            prop_assert_eq!(max, *values.iter().max().unwrap());
        } else {
            prop_assert!(values.is_empty());
        }
    }

    #[test]
    fn every_observation_lands_in_its_power_of_two_bucket(v in any_magnitude_u64()) {
        let idx = Log2Histogram::bucket_index(v);
        prop_assert!(idx <= 64);
        if v == 0 {
            prop_assert_eq!(idx, 0);
        } else {
            // Bucket k holds [2^(k-1), 2^k).
            prop_assert!(v >= 1u64 << (idx - 1));
            if idx < 64 {
                prop_assert!(v < 1u64 << idx);
            }
        }
    }

    #[test]
    fn merged_histograms_equal_single_stream(
        left in prop::collection::vec(any_magnitude_u64(), 0..64),
        right in prop::collection::vec(any_magnitude_u64(), 0..64),
    ) {
        let mut a = Log2Histogram::new();
        for &v in &left {
            a.observe(v);
        }
        let mut b = Log2Histogram::new();
        for &v in &right {
            b.observe(v);
        }
        a.merge(&b);

        let mut combined = Log2Histogram::new();
        for &v in left.iter().chain(right.iter()) {
            combined.observe(v);
        }
        prop_assert_eq!(a, combined);
    }

    #[test]
    fn registry_merge_equals_single_registry(
        xs in prop::collection::vec(any_magnitude_u64(), 0..64),
        split in 0usize..64,
    ) {
        prop_assume!(split <= xs.len());
        let mut whole = MetricRegistry::new();
        let c = whole.counter("n");
        let h = whole.histogram("h");
        for &v in &xs {
            whole.add(c, v & 0xF);
            whole.observe(h, v);
        }

        let mut first = MetricRegistry::new();
        let c1 = first.counter("n");
        let h1 = first.histogram("h");
        for &v in &xs[..split] {
            first.add(c1, v & 0xF);
            first.observe(h1, v);
        }
        let mut second = MetricRegistry::new();
        // Register in the opposite order to prove merge matches by
        // name, not by handle index.
        let h2 = second.histogram("h");
        let c2 = second.counter("n");
        for &v in &xs[split..] {
            second.add(c2, v & 0xF);
            second.observe(h2, v);
        }
        first.merge(&second);

        prop_assert_eq!(first.counter_by_name("n"), whole.counter_by_name("n"));
        prop_assert_eq!(first.histogram_by_name("h"), whole.histogram_by_name("h"));
    }

    #[test]
    fn jsonl_roundtrip_is_lossless(
        events in prop::collection::vec(
            (any::<u64>(), component_strategy(), kind_strategy(), any::<u64>(), any_magnitude_u64())
                .prop_map(|(tick, component, kind, addr, detail)| {
                    TraceEvent { tick, component, kind, addr, detail }
                }),
            0..128,
        )
    ) {
        let mut tracer = Tracer::new(TraceLevel::Event, events.len().max(1));
        for e in &events {
            tracer.emit(*e);
        }
        let mut buffer = Vec::new();
        tracer.write_jsonl(&mut buffer).expect("vec write");
        let text = String::from_utf8(buffer).expect("jsonl is utf8");
        let parsed: Vec<TraceEvent> = text
            .lines()
            .map(|line| parse_jsonl_line(line).expect("line parses"))
            .collect();
        prop_assert_eq!(parsed, events);
    }
}
