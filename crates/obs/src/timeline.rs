//! Wall-clock execution timelines in Chrome trace-event format.
//!
//! Where [`crate::span`] answers "*how much* time went into each
//! phase", the timeline answers "*when* did it happen, and on which
//! thread": every recording thread owns a private event buffer (one
//! uncontended mutex each — the only cross-thread lock is taken once,
//! at first-event registration, and again at [`drain`] time), so
//! recording never contends with other threads and costs a single
//! relaxed atomic load when the timeline is disabled.
//!
//! The drained [`TimelineSnapshot`] serializes as the Chrome
//! trace-event JSON array format, directly loadable in
//! `chrome://tracing` or [Perfetto](https://ui.perfetto.dev): one track
//! per recording thread (named via [`set_track_name`] — the exec pool
//! names its tracks `worker-0`, `worker-1`, ...), duration events as
//! `B`/`E` pairs, and point events (steals, trace-store hits) as `i`
//! instants.
//!
//! The profiler in [`crate::span`] mirrors every span into the timeline
//! when it is enabled, so `span!`-instrumented phases show up on their
//! thread's track for free.

use std::cell::RefCell;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use serde::Value;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static TRACKS: Mutex<Vec<Arc<Mutex<Track>>>> = Mutex::new(Vec::new());

thread_local! {
    static THREAD_TRACK: RefCell<Option<ThreadTrack>> = const { RefCell::new(None) };
}

struct ThreadTrack {
    track: Arc<Mutex<Track>>,
}

#[derive(Default)]
struct Track {
    name: Option<String>,
    events: Vec<TimelineEvent>,
}

/// The phase of a [`TimelineEvent`], mirroring the Chrome trace-event
/// `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimelinePhase {
    /// Start of a duration slice (`ph: "B"`).
    Begin,
    /// End of a duration slice (`ph: "E"`).
    End,
    /// A point-in-time marker (`ph: "i"`).
    Instant,
}

impl TimelinePhase {
    /// The Chrome trace-event `ph` letter.
    pub fn code(self) -> &'static str {
        match self {
            TimelinePhase::Begin => "B",
            TimelinePhase::End => "E",
            TimelinePhase::Instant => "i",
        }
    }
}

/// One recorded timeline event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Event name (slice label or instant marker).
    pub name: String,
    /// Category (`"span"`, `"job"`, `"sched"`, `"store"`), the Chrome
    /// `cat` field used for filtering in the viewer.
    pub cat: &'static str,
    /// Phase (begin / end / instant).
    pub phase: TimelinePhase,
    /// Microseconds since the timeline epoch ([`enable`] time).
    pub ts_us: u64,
}

fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

fn with_thread_track<R>(f: impl FnOnce(&mut Track) -> R) -> R {
    THREAD_TRACK.with(|cell| {
        let mut slot = cell.borrow_mut();
        let entry = slot.get_or_insert_with(|| {
            let track = Arc::new(Mutex::new(Track::default()));
            TRACKS
                .lock()
                .expect("timeline registry poisoned")
                .push(Arc::clone(&track));
            ThreadTrack { track }
        });
        let result = f(&mut entry.track.lock().expect("timeline track poisoned"));
        result
    })
}

/// Turns recording on. Idempotent; the first call pins the timestamp
/// epoch.
pub fn enable() {
    let _ = EPOCH.get_or_init(Instant::now);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns recording off. Already-buffered events stay until [`drain`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// `true` while the timeline records. The disabled fast path of every
/// recording helper is this single relaxed load.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn record(name: String, cat: &'static str, phase: TimelinePhase) {
    let event = TimelineEvent {
        name,
        cat,
        phase,
        ts_us: now_us(),
    };
    with_thread_track(|track| track.events.push(event));
}

/// Records the start of a duration slice on this thread's track.
/// Prefer [`TimelineSpan`] where scoping allows; explicit begin/end is
/// for slices that straddle loop iterations (e.g. worker idle time).
pub fn begin(name: impl Into<String>, cat: &'static str) {
    if !is_enabled() {
        return;
    }
    record(name.into(), cat, TimelinePhase::Begin);
}

/// Records the end of a duration slice opened with [`begin`].
pub fn end(name: impl Into<String>, cat: &'static str) {
    if !is_enabled() {
        return;
    }
    record(name.into(), cat, TimelinePhase::End);
}

/// Records a point-in-time marker on this thread's track.
pub fn instant(name: impl Into<String>, cat: &'static str) {
    if !is_enabled() {
        return;
    }
    record(name.into(), cat, TimelinePhase::Instant);
}

/// Names this thread's track (`worker-3`, `main`, ...), shown as the
/// thread name in the trace viewer. Works even while disabled so a
/// track is labelled before its first event.
pub fn set_track_name(name: impl Into<String>) {
    let name = name.into();
    with_thread_track(|track| track.name = Some(name));
}

/// RAII duration slice: records `B` at construction and `E` on drop.
///
/// Inert (records nothing, allocates nothing) when the timeline is
/// disabled at construction time.
#[derive(Debug)]
pub struct TimelineSpan {
    name: Option<String>,
    cat: &'static str,
}

impl TimelineSpan {
    /// Opens a slice named `name` in category `cat`.
    pub fn enter(name: impl Into<String>, cat: &'static str) -> TimelineSpan {
        if !is_enabled() {
            return TimelineSpan { name: None, cat };
        }
        let name = name.into();
        record(name.clone(), cat, TimelinePhase::Begin);
        TimelineSpan {
            name: Some(name),
            cat,
        }
    }

    /// Like [`enter`](TimelineSpan::enter), but builds the (possibly
    /// allocating) name only when the timeline is enabled — the right
    /// form for `format!`-ed labels on hot paths.
    pub fn enter_lazy(name: impl FnOnce() -> String, cat: &'static str) -> TimelineSpan {
        if !is_enabled() {
            return TimelineSpan { name: None, cat };
        }
        Self::enter(name(), cat)
    }
}

impl Drop for TimelineSpan {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            record(name, self.cat, TimelinePhase::End);
        }
    }
}

/// One thread's slice of a drained timeline.
#[derive(Debug, Clone)]
pub struct TrackSnapshot {
    /// Stable per-thread id (registration order; doubles as the Chrome
    /// `tid`).
    pub tid: u64,
    /// Track name set via [`set_track_name`], if any.
    pub name: Option<String>,
    /// Events in recording order (monotone `ts_us` per track).
    pub events: Vec<TimelineEvent>,
}

/// All tracks drained from the global timeline, ready to serialize.
#[derive(Debug, Clone, Default)]
pub struct TimelineSnapshot {
    /// Per-thread tracks in `tid` order.
    pub tracks: Vec<TrackSnapshot>,
}

/// Takes every buffered event out of the timeline (buffers stay
/// registered, so threads keep their `tid` across drains). Recording
/// state is unchanged; call [`disable`] first for a quiescent drain.
pub fn drain() -> TimelineSnapshot {
    let tracks: Vec<Arc<Mutex<Track>>> = TRACKS
        .lock()
        .expect("timeline registry poisoned")
        .iter()
        .map(Arc::clone)
        .collect();
    let tracks = tracks
        .iter()
        .enumerate()
        .map(|(tid, track)| {
            let mut track = track.lock().expect("timeline track poisoned");
            TrackSnapshot {
                tid: tid as u64,
                name: track.name.clone(),
                events: std::mem::take(&mut track.events),
            }
        })
        .filter(|t| !t.events.is_empty() || t.name.is_some())
        .collect();
    TimelineSnapshot { tracks }
}

impl TimelineSnapshot {
    /// Total events across all tracks.
    pub fn event_count(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }

    /// `true` when no track recorded anything.
    pub fn is_empty(&self) -> bool {
        self.event_count() == 0
    }

    /// The snapshot as a Chrome trace-event JSON value:
    /// `{"traceEvents": [...], "displayTimeUnit": "ms"}` with one
    /// `thread_name` metadata record per track.
    pub fn to_value(&self) -> Value {
        let mut events = Vec::new();
        for track in &self.tracks {
            let label = track
                .name
                .clone()
                .unwrap_or_else(|| format!("thread-{}", track.tid));
            events.push(Value::Object(vec![
                ("name".to_owned(), Value::Str("thread_name".to_owned())),
                ("ph".to_owned(), Value::Str("M".to_owned())),
                ("pid".to_owned(), Value::U64(1)),
                ("tid".to_owned(), Value::U64(track.tid)),
                (
                    "args".to_owned(),
                    Value::Object(vec![("name".to_owned(), Value::Str(label))]),
                ),
            ]));
            for event in &track.events {
                let mut fields = vec![
                    ("name".to_owned(), Value::Str(event.name.clone())),
                    ("cat".to_owned(), Value::Str(event.cat.to_owned())),
                    ("ph".to_owned(), Value::Str(event.phase.code().to_owned())),
                    ("ts".to_owned(), Value::U64(event.ts_us)),
                    ("pid".to_owned(), Value::U64(1)),
                    ("tid".to_owned(), Value::U64(track.tid)),
                ];
                if event.phase == TimelinePhase::Instant {
                    // Thread-scoped instant: renders as a small arrow on
                    // the owning track instead of a full-height line.
                    fields.push(("s".to_owned(), Value::Str("t".to_owned())));
                }
                events.push(Value::Object(fields));
            }
        }
        Value::Object(vec![
            ("traceEvents".to_owned(), Value::Array(events)),
            ("displayTimeUnit".to_owned(), Value::Str("ms".to_owned())),
        ])
    }

    /// Writes the snapshot as Chrome trace-event JSON.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer.
    pub fn write_chrome_json<W: Write>(&self, mut writer: W) -> io::Result<()> {
        let text = serde_json::to_string(&self.to_value())
            .expect("serializing a timeline snapshot cannot fail");
        writer.write_all(text.as_bytes())?;
        writer.write_all(b"\n")
    }
}
