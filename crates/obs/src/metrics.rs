//! Metric registry: named counters, gauges, and log2-bucketed
//! histograms.
//!
//! Components register metrics by name once (at construction time) and
//! receive copyable handles ([`CounterId`], [`GaugeId`],
//! [`HistogramId`]) that index directly into dense vectors, so the hot
//! path is a plain `u64` add with no hashing, locking, or branching on
//! configuration. Each component owns its own [`MetricRegistry`];
//! registries are [merged](MetricRegistry::merge) into one snapshot at
//! the end of a run (the same pattern used for sharded
//! `CacheStats`).
//!
//! Naming convention: `component.metric`, e.g. `wg.groups`,
//! `rmw.sequences`, `sram.row_writes`.

use std::fmt;
use std::io::{self, Write};

use serde::{Serialize, Value};

/// Handle to a counter registered in a [`MetricRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a gauge registered in a [`MetricRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a histogram registered in a [`MetricRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A monotone event count distribution over power-of-two buckets.
///
/// Bucket 0 counts observations of exactly `0`; bucket `k` (for
/// `k >= 1`) counts observations `v` with `2^(k-1) <= v < 2^k`, so the
/// 65 buckets cover the whole `u64` domain. The invariant tested by the
/// crate's property tests: the bucket counts always sum to
/// [`count`](Log2Histogram::count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the bucket holding `value`.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The non-empty buckets as `(bucket_index, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Count held in bucket `index` (0..=64).
    pub fn bucket(&self, index: usize) -> u64 {
        self.buckets[index]
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("count".to_owned(), Value::U64(self.count)),
            ("sum".to_owned(), Value::U64(self.sum)),
            ("min".to_owned(), Value::U64(self.min().unwrap_or(0))),
            ("max".to_owned(), Value::U64(self.max().unwrap_or(0))),
            ("mean".to_owned(), Value::F64(self.mean())),
            (
                "buckets".to_owned(),
                Value::Array(
                    self.nonzero_buckets()
                        .into_iter()
                        .map(|(i, c)| Value::Array(vec![Value::U64(i as u64), Value::U64(c)]))
                        .collect(),
                ),
            ),
        ])
    }
}

#[derive(Debug, Clone)]
struct Named<T> {
    name: String,
    value: T,
}

/// A component-local set of named metrics.
///
/// Registration is idempotent per name, so merging registries from
/// components that registered the same metric (e.g. two cache levels
/// both counting `cache.line_fills`) adds their values.
#[derive(Debug, Clone, Default)]
pub struct MetricRegistry {
    counters: Vec<Named<u64>>,
    gauges: Vec<Named<i64>>,
    histograms: Vec<Named<Log2Histogram>>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or looks up) the counter called `name`.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|c| c.name == name) {
            return CounterId(i);
        }
        self.counters.push(Named {
            name: name.to_owned(),
            value: 0,
        });
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or looks up) the gauge called `name`.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|g| g.name == name) {
            return GaugeId(i);
        }
        self.gauges.push(Named {
            name: name.to_owned(),
            value: 0,
        });
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers (or looks up) the histogram called `name`.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|h| h.name == name) {
            return HistogramId(i);
        }
        self.histograms.push(Named {
            name: name.to_owned(),
            value: Log2Histogram::new(),
        });
        HistogramId(self.histograms.len() - 1)
    }

    /// Adds 1 to a counter.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].value += 1;
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].value += n;
    }

    /// Sets a gauge to `value`.
    #[inline]
    pub fn set(&mut self, id: GaugeId, value: i64) {
        self.gauges[id.0].value = value;
    }

    /// Records one histogram observation.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        self.histograms[id.0].value.observe(value);
    }

    /// Folds an externally-accumulated histogram (e.g. a scheduler's
    /// per-worker duration histogram) into the one behind `id`.
    pub fn merge_histogram(&mut self, id: HistogramId, other: &Log2Histogram) {
        self.histograms[id.0].value.merge(other);
    }

    /// Current value of the counter behind `id`.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].value
    }

    /// All counters as `(name, value)` pairs, in registration order.
    /// Registration is append-only, so successive calls see a stable
    /// prefix — the property the series sampler's snapshot diffing
    /// relies on.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|c| (c.name.as_str(), c.value))
    }

    /// Current value of the counter called `name`, if registered.
    pub fn counter_by_name(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The histogram called `name`, if registered.
    pub fn histogram_by_name(&self, name: &str) -> Option<&Log2Histogram> {
        self.histograms
            .iter()
            .find(|h| h.name == name)
            .map(|h| &h.value)
    }

    /// Registered metric names, in registration order
    /// (counters, then gauges, then histograms).
    pub fn names(&self) -> Vec<&str> {
        self.counters
            .iter()
            .map(|c| c.name.as_str())
            .chain(self.gauges.iter().map(|g| g.name.as_str()))
            .chain(self.histograms.iter().map(|h| h.name.as_str()))
            .collect()
    }

    /// True when no metric is registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into `self`: counters and histograms with the same
    /// name add; same-name gauges keep `other`'s (latest) value.
    pub fn merge(&mut self, other: &MetricRegistry) {
        for c in &other.counters {
            let id = self.counter(&c.name);
            self.add(id, c.value);
        }
        for g in &other.gauges {
            let id = self.gauge(&g.name);
            self.set(id, g.value);
        }
        for h in &other.histograms {
            let id = self.histogram(&h.name);
            self.histograms[id.0].value.merge(&h.value);
        }
    }

    /// Resets every counter, gauge, and histogram to its initial state
    /// while keeping registrations (and handles) valid.
    pub fn reset(&mut self) {
        for c in &mut self.counters {
            c.value = 0;
        }
        for g in &mut self.gauges {
            g.value = 0;
        }
        for h in &mut self.histograms {
            h.value = Log2Histogram::new();
        }
    }

    /// The registry as a JSON value:
    /// `{"counters": {name: n}, "gauges": {name: n},
    ///   "histograms": {name: {count, sum, min, max, mean, buckets}}}`.
    pub fn to_value(&self) -> Value {
        let mut counters: Vec<(String, Value)> = self
            .counters
            .iter()
            .map(|c| (c.name.clone(), Value::U64(c.value)))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut gauges: Vec<(String, Value)> = self
            .gauges
            .iter()
            .map(|g| (g.name.clone(), Value::I64(g.value)))
            .collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<(String, Value)> = self
            .histograms
            .iter()
            .map(|h| (h.name.clone(), h.value.to_value()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(vec![
            ("counters".to_owned(), Value::Object(counters)),
            ("gauges".to_owned(), Value::Object(gauges)),
            ("histograms".to_owned(), Value::Object(histograms)),
        ])
    }

    /// Writes the registry as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer.
    pub fn write_json<W: Write>(&self, mut writer: W) -> io::Result<()> {
        let json = serde_json::to_string_pretty(&self.to_value())
            .expect("serializing a metric snapshot cannot fail");
        writer.write_all(json.as_bytes())?;
        writer.write_all(b"\n")
    }

    /// Renders a plain-text table of all metrics, for terminal reports.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let mut counters: Vec<_> = self.counters.iter().collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        for c in counters {
            out.push_str(&format!("  {:<28} {:>14}\n", c.name, c.value));
        }
        let mut gauges: Vec<_> = self.gauges.iter().collect();
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        for g in gauges {
            out.push_str(&format!("  {:<28} {:>14}\n", g.name, g.value));
        }
        let mut histograms: Vec<_> = self.histograms.iter().collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        for h in histograms {
            let hist = &h.value;
            out.push_str(&format!(
                "  {:<28} count={} mean={:.2} min={} max={}\n",
                h.name,
                hist.count(),
                hist.mean(),
                hist.min().unwrap_or(0),
                hist.max().unwrap_or(0),
            ));
        }
        out
    }
}

impl Serialize for MetricRegistry {
    fn to_json_value(&self) -> Value {
        self.to_value()
    }
}

/// Rewrites a dotted metric name as a Prometheus-legal one:
/// `serve.verb.status.latency_us` → `prefix_serve_verb_status_latency_us`.
fn prometheus_name(prefix: &str, name: &str) -> String {
    let mut out = String::with_capacity(prefix.len() + name.len() + 1);
    out.push_str(prefix);
    out.push('_');
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders a registry snapshot (the [`MetricRegistry::to_value`]
/// shape: `{"counters", "gauges", "histograms"}`) as Prometheus
/// text-exposition lines, each metric name prefixed with `prefix`.
///
/// Counters become `# TYPE <name> counter` + a sample; gauges become
/// gauges; each [`Log2Histogram`] becomes a Prometheus histogram with
/// cumulative `_bucket{le="2^k"}` samples (upper bound of each
/// occupied log2 bucket), a `+Inf` bucket, `_sum`, and `_count`.
/// Unknown or malformed sections render nothing rather than erroring:
/// this is a scrape path, and a scrape must not take the daemon down.
pub fn prometheus_text(prefix: &str, snapshot: &Value) -> String {
    let mut out = String::new();
    let section = |snapshot: &Value, key: &str| -> Vec<(String, Value)> {
        snapshot
            .get(key)
            .and_then(Value::as_object)
            .map(<[(String, Value)]>::to_vec)
            .unwrap_or_default()
    };
    for (kind, type_name) in [("counters", "counter"), ("gauges", "gauge")] {
        for (name, value) in section(snapshot, kind) {
            let rendered = match &value {
                Value::U64(n) => n.to_string(),
                Value::I64(n) => n.to_string(),
                Value::F64(n) => n.to_string(),
                _ => continue,
            };
            let name = prometheus_name(prefix, &name);
            out.push_str(&format!("# TYPE {name} {type_name}\n{name} {rendered}\n"));
        }
    }
    for (name, hist) in section(snapshot, "histograms") {
        let (Some(count), Some(sum)) = (
            hist.get("count").and_then(Value::as_u64),
            hist.get("sum").and_then(Value::as_u64),
        ) else {
            continue;
        };
        let name = prometheus_name(prefix, &name);
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        for pair in hist.get("buckets").and_then(Value::as_array).unwrap_or(&[]) {
            let fields = pair.as_array().unwrap_or(&[]);
            let (Some(index), Some(bucket_count)) = (
                fields.first().and_then(Value::as_u64),
                fields.get(1).and_then(Value::as_u64),
            ) else {
                continue;
            };
            cumulative += bucket_count;
            // Bucket 0 holds exact zeros; bucket k covers
            // [2^(k-1), 2^k), so its inclusive upper bound is 2^k - 1.
            let le = if index == 0 {
                0u64
            } else {
                2u64.saturating_pow(index as u32).saturating_sub(1)
            };
            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {count}\n"));
        out.push_str(&format!("{name}_sum {sum}\n{name}_count {count}\n"));
    }
    out
}

impl fmt::Display for MetricRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indices_cover_powers_of_two() {
        assert_eq!(Log2Histogram::bucket_index(0), 0);
        assert_eq!(Log2Histogram::bucket_index(1), 1);
        assert_eq!(Log2Histogram::bucket_index(2), 2);
        assert_eq!(Log2Histogram::bucket_index(3), 2);
        assert_eq!(Log2Histogram::bucket_index(4), 3);
        assert_eq!(Log2Histogram::bucket_index(7), 3);
        assert_eq!(Log2Histogram::bucket_index(8), 4);
        assert_eq!(Log2Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let mut h = Log2Histogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), 0.0);
        for v in [3, 1, 4, 1, 5] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 14);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(5));
        assert!((h.mean() - 2.8).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_snapshot_is_well_formed() {
        let mut r = MetricRegistry::new();
        r.histogram("never.observed");
        let v = r.to_value();
        let h = v
            .get("histograms")
            .and_then(|h| h.get("never.observed"))
            .expect("registered histogram appears in the snapshot");
        assert_eq!(h.get("count").and_then(Value::as_u64), Some(0));
        assert_eq!(h.get("sum").and_then(Value::as_u64), Some(0));
        // min is the u64::MAX sentinel internally but must snapshot as 0.
        assert_eq!(h.get("min").and_then(Value::as_u64), Some(0));
        assert_eq!(h.get("max").and_then(Value::as_u64), Some(0));
        assert_eq!(h.get("mean").and_then(Value::as_f64), Some(0.0));
        let buckets = h.get("buckets").and_then(Value::as_array).expect("buckets");
        assert!(buckets.is_empty());
    }

    #[test]
    fn single_sample_histogram() {
        let mut h = Log2Histogram::new();
        h.observe(42);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 42);
        assert_eq!((h.min(), h.max()), (Some(42), Some(42)));
        assert_eq!(h.mean(), 42.0);
        assert_eq!(
            h.nonzero_buckets(),
            vec![(Log2Histogram::bucket_index(42), 1)]
        );
    }

    #[test]
    fn u64_max_saturates_the_top_bucket_and_wraps_the_sum() {
        let mut h = Log2Histogram::new();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.bucket(64), 2);
        assert_eq!(h.count(), 2);
        assert_eq!((h.min(), h.max()), (Some(u64::MAX), Some(u64::MAX)));
        // The sum wraps (documented behaviour) instead of panicking.
        assert_eq!(h.sum(), u64::MAX.wrapping_add(u64::MAX));
        // The bucket invariant holds even at the saturated edge.
        let total: u64 = h.nonzero_buckets().iter().map(|(_, c)| c).sum();
        assert_eq!(total, h.count());
    }

    #[test]
    fn histogram_merge_is_commutative() {
        let mut a = Log2Histogram::new();
        for v in [0, 1, 7, 4096] {
            a.observe(v);
        }
        let mut b = Log2Histogram::new();
        for v in [3, 3, u64::MAX] {
            b.observe(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        // Merging an empty histogram is the identity.
        let mut with_empty = a.clone();
        with_empty.merge(&Log2Histogram::new());
        assert_eq!(with_empty, a);
    }

    #[test]
    fn registration_is_idempotent() {
        let mut r = MetricRegistry::new();
        let a = r.counter("wg.groups");
        let b = r.counter("wg.groups");
        assert_eq!(a, b);
        r.inc(a);
        r.add(b, 2);
        assert_eq!(r.counter_by_name("wg.groups"), Some(3));
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let mut a = MetricRegistry::new();
        let ca = a.counter("x");
        let ha = a.histogram("h");
        a.add(ca, 5);
        a.observe(ha, 8);

        let mut b = MetricRegistry::new();
        let hb = b.histogram("h");
        let cb = b.counter("x");
        let gb = b.gauge("depth");
        b.add(cb, 7);
        b.observe(hb, 8);
        b.observe(hb, 9);
        b.set(gb, -3);

        a.merge(&b);
        assert_eq!(a.counter_by_name("x"), Some(12));
        let h = a.histogram_by_name("h").expect("merged histogram");
        assert_eq!(h.count(), 3);
        assert_eq!(h.bucket(Log2Histogram::bucket_index(8)), 3);
        assert_eq!(
            a.to_value().get("gauges").unwrap().get("depth"),
            Some(&Value::I64(-3))
        );
    }

    #[test]
    fn reset_keeps_handles_valid() {
        let mut r = MetricRegistry::new();
        let c = r.counter("x");
        let h = r.histogram("h");
        r.add(c, 9);
        r.observe(h, 2);
        r.reset();
        assert_eq!(r.counter_value(c), 0);
        assert_eq!(r.histogram_by_name("h").unwrap().count(), 0);
        r.inc(c);
        assert_eq!(r.counter_value(c), 1);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut r = MetricRegistry::new();
        let c = r.counter("rmw.sequences");
        r.add(c, 4);
        let h = r.histogram("wg.group_len");
        r.observe(h, 3);
        let json = serde_json::to_string(&r.to_value()).expect("serialize");
        let back: Value = serde_json::from_str(&json).expect("own output parses");
        assert_eq!(
            back.get("counters").unwrap().get("rmw.sequences"),
            Some(&Value::U64(4))
        );
        let hist = back.get("histograms").unwrap().get("wg.group_len").unwrap();
        assert_eq!(hist.get("count"), Some(&Value::U64(1)));
    }

    #[test]
    fn prometheus_rendering_covers_all_metric_kinds() {
        let mut r = MetricRegistry::new();
        let c = r.counter("serve.requests");
        r.add(c, 42);
        let g = r.gauge("serve.journal.bytes");
        r.set(g, 1024);
        let h = r.histogram("serve.verb.status.latency_us");
        for v in [0, 3, 700] {
            r.observe(h, v);
        }
        let text = prometheus_text("cache8t", &r.to_value());

        assert!(text.contains("# TYPE cache8t_serve_requests counter\n"));
        assert!(text.contains("cache8t_serve_requests 42\n"));
        assert!(text.contains("# TYPE cache8t_serve_journal_bytes gauge\n"));
        assert!(text.contains("cache8t_serve_journal_bytes 1024\n"));
        assert!(text.contains("# TYPE cache8t_serve_verb_status_latency_us histogram\n"));
        // Cumulative buckets: the zero bucket, 3 in [2,4), 700 in
        // [512,1024).
        assert!(text.contains("cache8t_serve_verb_status_latency_us_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("cache8t_serve_verb_status_latency_us_bucket{le=\"3\"} 2\n"));
        assert!(text.contains("cache8t_serve_verb_status_latency_us_bucket{le=\"1023\"} 3\n"));
        assert!(text.contains("cache8t_serve_verb_status_latency_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("cache8t_serve_verb_status_latency_us_sum 703\n"));
        assert!(text.contains("cache8t_serve_verb_status_latency_us_count 3\n"));
    }

    #[test]
    fn prometheus_rendering_tolerates_malformed_snapshots() {
        assert_eq!(prometheus_text("x", &Value::Null), "");
        let odd = serde_json::from_str(
            r#"{"counters":{"a":"not-a-number"},"histograms":{"h":{"buckets":[[1]]}}}"#,
        )
        .expect("parse");
        assert_eq!(prometheus_text("x", &odd), "");
    }
}
