//! Cross-run metric comparison: load two metric/experiment snapshots,
//! align metrics by name, and report deltas — the analysis engine
//! behind `cache8t perfdiff`.
//!
//! Snapshots are arbitrary JSON documents ([`MetricRegistry`]
//! snapshots, the `--metrics-out` documents of the harness binaries, or
//! whole sweep documents): [`flatten`] walks the tree and collects
//! every numeric leaf under a dotted path (`schemes.WG.counters.
//! wg.groups`, `histograms.sweep.job_us.mean`), so any two documents
//! with the same shape diff cleanly.
//!
//! A *regression* is deliberately direction-agnostic: any aligned
//! metric whose relative change exceeds the threshold. For the
//! deterministic simulator counters this gate guards, **any** drift is
//! a behaviour change worth flagging; genuinely noisy families
//! (wall-clock, scheduler telemetry) are excluded with ignore prefixes
//! (`sweep.` and friends) rather than by guessing a per-metric "better"
//! direction.
//!
//! [`MetricRegistry`]: crate::MetricRegistry

use serde::Value;

/// Metric-name prefixes every perfdiff consumer ignores by default.
///
/// The `series.` family holds the continuous-telemetry sampler's
/// windowed behavioral counters (set-conflict heat buckets and
/// friends). They are deterministic but exist to be *windowed* —
/// their end-of-run totals are derivable from the counters the gate
/// already watches, so letting them churn `results/
/// baseline_metrics.json` would add noise without adding signal.
///
/// The `serve.` family is the daemon's operational telemetry —
/// request/connection counts, per-verb latency histograms, uptime,
/// journal growth. All of it is wall-clock- or workload-arrival-
/// dependent, so two runs of the same plan legitimately disagree;
/// diffing it against a checked-in baseline can only produce noise.
pub const DEFAULT_IGNORE_FAMILIES: &[&str] = &["series.", "serve."];

/// `true` when `name` belongs to the metric family `family`: the name
/// starts with it, or a dotted path segment does. Flattened documents
/// nest registry counters under container paths
/// (`schemes.WG.counters.series.set_heat.00`), so a family like
/// `series.` must match at any segment boundary, not just the root.
pub fn family_matches(name: &str, family: &str) -> bool {
    if name.starts_with(family) {
        return true;
    }
    name.match_indices('.')
        .any(|(i, _)| name[i + 1..].starts_with(family))
}

/// How an aligned metric moved between the two snapshots.
///
/// `New` and `Gone` exist because a percentage over a zero baseline is
/// meaningless: a 0→N metric would read as an infinite regression and
/// spuriously trip any `--fail-on-regress` gate, and N→0 usually means
/// a counter family stopped being emitted rather than a 100 %
/// improvement. Both are reported as appearance/disappearance and
/// excluded from the regression gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaClass {
    /// Identical values (including zero on both sides).
    Unchanged,
    /// Both values nonzero: the relative delta is meaningful.
    Changed,
    /// Zero in the baseline, nonzero in the current snapshot.
    New,
    /// Nonzero in the baseline, zero in the current snapshot.
    Gone,
}

impl DeltaClass {
    /// The class's lowercase name, as used in the machine report.
    pub fn name(self) -> &'static str {
        match self {
            DeltaClass::Unchanged => "unchanged",
            DeltaClass::Changed => "changed",
            DeltaClass::New => "new",
            DeltaClass::Gone => "gone",
        }
    }
}

/// One metric present in both snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Dotted path of the metric in the snapshot document.
    pub name: String,
    /// Value in the baseline snapshot.
    pub baseline: f64,
    /// Value in the current snapshot.
    pub current: f64,
}

impl MetricDelta {
    /// Absolute change, `current - baseline`.
    pub fn delta(&self) -> f64 {
        self.current - self.baseline
    }

    /// Classifies the movement (see [`DeltaClass`]).
    pub fn class(&self) -> DeltaClass {
        match (self.baseline == 0.0, self.current == 0.0) {
            (true, true) => DeltaClass::Unchanged,
            (true, false) => DeltaClass::New,
            (false, true) => DeltaClass::Gone,
            (false, false) if self.baseline == self.current => DeltaClass::Unchanged,
            (false, false) => DeltaClass::Changed,
        }
    }

    /// Relative change as a signed fraction of the baseline magnitude,
    /// or `None` for [`New`](DeltaClass::New)/[`Gone`](DeltaClass::Gone)
    /// rows, whose percentage would be infinite or misleading. Always
    /// finite when `Some`.
    pub fn relative(&self) -> Option<f64> {
        match self.class() {
            DeltaClass::Unchanged => Some(0.0),
            DeltaClass::Changed => Some(self.delta() / self.baseline.abs()),
            DeltaClass::New | DeltaClass::Gone => None,
        }
    }

    /// `true` when the relative change magnitude exceeds `threshold`
    /// (a fraction: `0.05` = 5 %). `New`/`Gone` rows never exceed: the
    /// gate is for drift between comparable values, appearance and
    /// disappearance are reported separately.
    pub fn exceeds(&self, threshold: f64) -> bool {
        self.relative().is_some_and(|r| r.abs() > threshold)
    }
}

/// The aligned comparison of two snapshots.
#[derive(Debug, Clone, Default)]
pub struct PerfDiff {
    /// Metrics present in both snapshots, in name order.
    pub deltas: Vec<MetricDelta>,
    /// Metrics only the baseline has (name, value), in name order.
    pub only_baseline: Vec<(String, f64)>,
    /// Metrics only the current snapshot has (name, value), in name
    /// order.
    pub only_current: Vec<(String, f64)>,
}

/// Collects every numeric leaf of `value` as a `(dotted.path, value)`
/// pair, in document order. Array elements get an indexed segment
/// (`buckets[3]`); strings, booleans, and nulls are skipped.
pub fn flatten(value: &Value) -> Vec<(String, f64)> {
    fn walk(value: &Value, path: &str, out: &mut Vec<(String, f64)>) {
        match value {
            Value::U64(n) => out.push((path.to_owned(), *n as f64)),
            Value::I64(n) => out.push((path.to_owned(), *n as f64)),
            Value::F64(n) => out.push((path.to_owned(), *n)),
            Value::Array(items) => {
                for (i, item) in items.iter().enumerate() {
                    walk(item, &format!("{path}[{i}]"), out);
                }
            }
            Value::Object(entries) => {
                for (key, item) in entries {
                    let nested = if path.is_empty() {
                        key.clone()
                    } else {
                        format!("{path}.{key}")
                    };
                    walk(item, &nested, out);
                }
            }
            Value::Null | Value::Bool(_) | Value::Str(_) => {}
        }
    }
    let mut out = Vec::new();
    walk(value, "", &mut out);
    out
}

/// Flattens both snapshots and aligns their metrics by name.
pub fn diff(baseline: &Value, current: &Value) -> PerfDiff {
    let mut base = flatten(baseline);
    let mut cur = flatten(current);
    base.sort_by(|a, b| a.0.cmp(&b.0));
    base.dedup_by(|a, b| a.0 == b.0);
    cur.sort_by(|a, b| a.0.cmp(&b.0));
    cur.dedup_by(|a, b| a.0 == b.0);

    let mut result = PerfDiff::default();
    let (mut i, mut j) = (0, 0);
    while i < base.len() && j < cur.len() {
        match base[i].0.cmp(&cur[j].0) {
            std::cmp::Ordering::Equal => {
                result.deltas.push(MetricDelta {
                    name: base[i].0.clone(),
                    baseline: base[i].1,
                    current: cur[j].1,
                });
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => {
                result.only_baseline.push(base[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                result.only_current.push(cur[j].clone());
                j += 1;
            }
        }
    }
    result.only_baseline.extend_from_slice(&base[i..]);
    result.only_current.extend_from_slice(&cur[j..]);
    result
}

impl PerfDiff {
    /// Aligned metrics whose value changed at all.
    pub fn changed(&self) -> Vec<&MetricDelta> {
        self.deltas.iter().filter(|d| d.delta() != 0.0).collect()
    }

    /// Aligned metrics (not matching any `ignore` family, per
    /// [`family_matches`]) whose relative change exceeds `threshold`
    /// (a fraction: `0.05` = 5 %).
    pub fn regressions(&self, threshold: f64, ignore: &[String]) -> Vec<&MetricDelta> {
        self.deltas
            .iter()
            .filter(|d| !ignore.iter().any(|family| family_matches(&d.name, family)))
            .filter(|d| d.exceeds(threshold))
            .collect()
    }

    /// The machine-readable report:
    /// `{"compared": n, "changed": [...], "only_baseline": {...},
    ///   "only_current": {...}, "regressions": [names...]}` — the
    /// `regressions` list honours `threshold`/`ignore` exactly as
    /// [`regressions`](PerfDiff::regressions) does. Each changed row
    /// carries its [`DeltaClass`] under `"class"`; `"relative"` is
    /// `null` for `new`/`gone` rows (never an unserializable infinity).
    pub fn to_value(&self, threshold: f64, ignore: &[String]) -> Value {
        let delta_value = |d: &MetricDelta| {
            Value::Object(vec![
                ("name".to_owned(), Value::Str(d.name.clone())),
                ("class".to_owned(), Value::Str(d.class().name().to_owned())),
                ("baseline".to_owned(), Value::F64(d.baseline)),
                ("current".to_owned(), Value::F64(d.current)),
                ("delta".to_owned(), Value::F64(d.delta())),
                (
                    "relative".to_owned(),
                    d.relative().map_or(Value::Null, Value::F64),
                ),
            ])
        };
        let side = |entries: &[(String, f64)]| {
            Value::Object(
                entries
                    .iter()
                    .map(|(name, value)| (name.clone(), Value::F64(*value)))
                    .collect(),
            )
        };
        Value::Object(vec![
            ("compared".to_owned(), Value::U64(self.deltas.len() as u64)),
            ("threshold".to_owned(), Value::F64(threshold)),
            (
                "changed".to_owned(),
                Value::Array(self.changed().into_iter().map(delta_value).collect()),
            ),
            (
                "regressions".to_owned(),
                Value::Array(
                    self.regressions(threshold, ignore)
                        .into_iter()
                        .map(|d| Value::Str(d.name.clone()))
                        .collect(),
                ),
            ),
            ("only_baseline".to_owned(), side(&self.only_baseline)),
            ("only_current".to_owned(), side(&self.only_current)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(text: &str) -> Value {
        serde_json::from_str(text).expect("test document parses")
    }

    #[test]
    fn flatten_collects_numeric_leaves_with_dotted_paths() {
        let v = doc(r#"{"a": {"b": 2, "s": "skip"}, "c": [1, {"d": 3.5}], "n": null}"#);
        let flat = flatten(&v);
        assert_eq!(
            flat,
            vec![
                ("a.b".to_owned(), 2.0),
                ("c[0]".to_owned(), 1.0),
                ("c[1].d".to_owned(), 3.5),
            ]
        );
    }

    #[test]
    fn diff_aligns_by_name_and_tracks_one_sided_metrics() {
        let base = doc(r#"{"x": 10, "gone": 1, "same": 5}"#);
        let cur = doc(r#"{"x": 12, "new": 2, "same": 5}"#);
        let d = diff(&base, &cur);
        assert_eq!(d.deltas.len(), 2);
        assert_eq!(d.only_baseline, vec![("gone".to_owned(), 1.0)]);
        assert_eq!(d.only_current, vec![("new".to_owned(), 2.0)]);
        let x = d.deltas.iter().find(|m| m.name == "x").expect("x aligned");
        assert_eq!(x.delta(), 2.0);
        assert!((x.relative().expect("finite") - 0.2).abs() < 1e-12);
        assert_eq!(x.class(), DeltaClass::Changed);
        assert_eq!(d.changed().len(), 1);
    }

    #[test]
    fn regressions_honour_threshold_and_ignore_prefixes() {
        let base = doc(r#"{"wg": {"groups": 100}, "sweep": {"elapsed_ms": 50}}"#);
        let cur = doc(r#"{"wg": {"groups": 120}, "sweep": {"elapsed_ms": 500}}"#);
        let d = diff(&base, &cur);
        // 20% and 900% over a 5% threshold: both regress...
        assert_eq!(d.regressions(0.05, &[]).len(), 2);
        // ...unless the noisy family is ignored...
        let ignore = vec!["sweep.".to_owned()];
        let r = d.regressions(0.05, &ignore);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].name, "wg.groups");
        // ...and a generous threshold passes the real metric.
        assert!(d.regressions(0.25, &ignore).is_empty());
    }

    #[test]
    fn ignore_families_match_at_any_segment_boundary() {
        assert!(family_matches("series.set_heat.00", "series."));
        assert!(family_matches(
            "schemes.WG.counters.series.set_heat.00",
            "series."
        ));
        assert!(!family_matches("schemes.WG.counters.wg.groups", "series."));
        // No substring false positives: the family must start a segment.
        assert!(!family_matches("time_series.total", "series."));
        // Nested registry counters are excluded from the gate by family.
        let base = doc(r#"{"schemes": {"WG": {"counters": {"series.set_heat.00": 10}}}}"#);
        let cur = doc(r#"{"schemes": {"WG": {"counters": {"series.set_heat.00": 99}}}}"#);
        let d = diff(&base, &cur);
        let ignore: Vec<String> = DEFAULT_IGNORE_FAMILIES
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        assert_eq!(d.regressions(0.01, &[]).len(), 1);
        assert!(d.regressions(0.01, &ignore).is_empty());
    }

    #[test]
    fn serve_families_diff_clean_against_a_baseline_by_default() {
        // The daemon's wall-clock metric families (PR 8) get the same
        // treatment as `series.`: a metrics document that picked up
        // `serve.*` operational counters must diff clean against a
        // baseline captured without them, and churn inside the family
        // must never trip the regression gate.
        assert!(DEFAULT_IGNORE_FAMILIES.contains(&"serve."));
        let ignore: Vec<String> = DEFAULT_IGNORE_FAMILIES
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        // Churn inside the family — the case the gate would otherwise
        // trip on — diffs clean by default, at the root and nested.
        let base = doc(r#"{"wg": {"groups": 100}, "serve": {"requests": 2},
                "daemon": {"counters": {"serve.journal.bytes": 64}}}"#);
        let cur = doc(r#"{"wg": {"groups": 100}, "serve": {"requests": 900},
                "daemon": {"counters": {"serve.journal.bytes": 65536}}}"#);
        let d = diff(&base, &cur);
        assert_eq!(d.regressions(0.01, &[]).len(), 2, "visible un-ignored");
        assert!(
            d.regressions(0.01, &ignore).is_empty(),
            "serve.* is operational noise, not a regression"
        );
        // A current snapshot that merely *grew* serve.* families against
        // a pre-daemon baseline reports them as appearances, not
        // regressions.
        let base = doc(r#"{"wg": {"groups": 100}}"#);
        let cur = doc(r#"{"wg": {"groups": 100}, "serve": {"requests": 17}}"#);
        let d = diff(&base, &cur);
        assert!(d.regressions(0.01, &ignore).is_empty());
        assert_eq!(d.only_current.len(), 1);
    }

    #[test]
    fn zero_baselines_are_handled() {
        let zero = MetricDelta {
            name: "z".into(),
            baseline: 0.0,
            current: 0.0,
        };
        assert_eq!(zero.relative(), Some(0.0));
        assert_eq!(zero.class(), DeltaClass::Unchanged);
        assert!(!zero.exceeds(0.01));
        // 0 -> N: classified as `new`, no percentage, never a regression
        // (this used to read as an infinite relative change and trip
        // every gate).
        let appeared = MetricDelta {
            name: "a".into(),
            baseline: 0.0,
            current: 3.0,
        };
        assert_eq!(appeared.class(), DeltaClass::New);
        assert_eq!(appeared.relative(), None);
        assert!(!appeared.exceeds(0.0));
        // N -> 0: classified as `gone`, also excluded from the gate.
        let vanished = MetricDelta {
            name: "v".into(),
            baseline: 3.0,
            current: 0.0,
        };
        assert_eq!(vanished.class(), DeltaClass::Gone);
        assert_eq!(vanished.relative(), None);
        assert!(!vanished.exceeds(0.0));
    }

    #[test]
    fn new_and_gone_rows_never_trip_the_gate_but_real_drift_does() {
        let base = doc(r#"{"wg": {"groups": 100, "fresh": 0}, "old": 7}"#);
        let cur = doc(r#"{"wg": {"groups": 120, "fresh": 5}, "old": 0}"#);
        let d = diff(&base, &cur);
        // Only the genuine 20% drift regresses; 0->5 and 7->0 do not,
        // even at a zero threshold.
        let r = d.regressions(0.0, &[]);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].name, "wg.groups");
        // All three rows still show up as changed, with their classes.
        let classes: Vec<(&str, DeltaClass)> = d
            .changed()
            .iter()
            .map(|m| (m.name.as_str(), m.class()))
            .collect();
        assert!(classes.contains(&("wg.fresh", DeltaClass::New)));
        assert!(classes.contains(&("old", DeltaClass::Gone)));
        assert!(classes.contains(&("wg.groups", DeltaClass::Changed)));
        // The machine report stays valid JSON: `relative` is null for
        // the new/gone rows, not an infinity.
        let text = serde_json::to_string(&d.to_value(0.0, &[])).expect("serialize");
        let back: Value = serde_json::from_str(&text).expect("own output parses");
        let changed = back
            .get("changed")
            .and_then(Value::as_array)
            .expect("changed array");
        let fresh = changed
            .iter()
            .find(|c| c.get("name").and_then(Value::as_str) == Some("wg.fresh"))
            .expect("fresh row");
        assert_eq!(fresh.get("class").and_then(Value::as_str), Some("new"));
        assert!(matches!(fresh.get("relative"), Some(Value::Null)));
    }

    #[test]
    fn machine_report_round_trips_through_json() {
        let base = doc(r#"{"x": 10, "y": 1}"#);
        let cur = doc(r#"{"x": 20, "y": 1}"#);
        let d = diff(&base, &cur);
        let text = serde_json::to_string(&d.to_value(0.05, &[])).expect("serialize");
        let back: Value = serde_json::from_str(&text).expect("own output parses");
        assert_eq!(back.get("compared").and_then(Value::as_u64), Some(2));
        let regressions = back
            .get("regressions")
            .and_then(Value::as_array)
            .expect("regressions array");
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].as_str(), Some("x"));
    }
}
