//! Scoped profiling: RAII span timers accumulating wall-clock time per
//! named phase.
//!
//! A span is opened with the [`span!`](crate::span!) macro and closed
//! when its guard drops. Times accumulate in a thread-local profiler
//! keyed by span name; nested spans subtract child time so the report
//! shows both *total* (inclusive) and *self* (exclusive) time per
//! phase:
//!
//! ```
//! # use cache8t_obs::span;
//! {
//!     let _run = span!("experiment.run");
//!     {
//!         let _flush = span!("wg.flush");
//!         // ... flush work, attributed to wg.flush ...
//!     }
//!     // ... remaining work, attributed to experiment.run self time ...
//! }
//! let report = cache8t_obs::span::report();
//! assert_eq!(report.len(), 2);
//! ```
//!
//! Names should be `'static` phase identifiers (`"wg.flush"`,
//! `"experiment.run"`), not per-item strings, so the accumulation map
//! stays small.

use std::cell::RefCell;
use std::time::{Duration, Instant};

thread_local! {
    static PROFILER: RefCell<Profiler> = RefCell::new(Profiler::default());
}

#[derive(Default)]
struct Profiler {
    /// Accumulated stats keyed by span name, in first-seen order.
    stats: Vec<SpanStat>,
    /// Child time to subtract, one slot per active nesting level.
    child_time: Vec<Duration>,
}

/// Accumulated timing for one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// The span name passed to [`span!`](crate::span!).
    pub name: &'static str,
    /// Number of times the span was entered.
    pub calls: u64,
    /// Inclusive wall-clock time (children included).
    pub total: Duration,
    /// Exclusive wall-clock time (children subtracted).
    pub self_time: Duration,
}

/// Guard returned by [`span!`](crate::span!); records on drop.
pub struct SpanGuard {
    name: &'static str,
    start: Instant,
}

impl SpanGuard {
    /// Opens a span; prefer the [`span!`](crate::span!) macro.
    pub fn enter(name: &'static str) -> SpanGuard {
        PROFILER.with(|p| p.borrow_mut().child_time.push(Duration::ZERO));
        if crate::timeline::is_enabled() {
            crate::timeline::begin(name, "span");
        }
        SpanGuard {
            name,
            start: Instant::now(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let total = self.start.elapsed();
        if crate::timeline::is_enabled() {
            crate::timeline::end(self.name, "span");
        }
        PROFILER.with(|p| {
            let mut profiler = p.borrow_mut();
            let children = profiler.child_time.pop().unwrap_or(Duration::ZERO);
            let self_time = total.saturating_sub(children);
            if let Some(parent) = profiler.child_time.last_mut() {
                *parent += total;
            }
            match profiler.stats.iter_mut().find(|s| s.name == self.name) {
                Some(stat) => {
                    stat.calls += 1;
                    stat.total += total;
                    stat.self_time += self_time;
                }
                None => profiler.stats.push(SpanStat {
                    name: self.name,
                    calls: 1,
                    total,
                    self_time,
                }),
            }
        });
    }
}

/// This thread's accumulated span stats, sorted by total time
/// descending.
pub fn report() -> Vec<SpanStat> {
    PROFILER.with(|p| {
        let mut stats = p.borrow().stats.clone();
        stats.sort_by_key(|s| std::cmp::Reverse(s.total));
        stats
    })
}

/// Clears this thread's accumulated span stats.
pub fn reset() {
    PROFILER.with(|p| {
        let mut profiler = p.borrow_mut();
        profiler.stats.clear();
    });
}

/// Takes this thread's accumulated span stats, leaving the profiler
/// empty — how pool workers hand their profile to the batch report
/// before their thread (and its thread-local profiler) goes away.
pub fn take_report() -> Vec<SpanStat> {
    PROFILER.with(|p| std::mem::take(&mut p.borrow_mut().stats))
}

/// Merges span reports from several threads into one, folding stats
/// with the same name together, sorted by total time descending.
pub fn merge_reports<I: IntoIterator<Item = Vec<SpanStat>>>(reports: I) -> Vec<SpanStat> {
    let mut merged: Vec<SpanStat> = Vec::new();
    for report in reports {
        for stat in report {
            match merged.iter_mut().find(|s| s.name == stat.name) {
                Some(existing) => {
                    existing.calls += stat.calls;
                    existing.total += stat.total;
                    existing.self_time += stat.self_time;
                }
                None => merged.push(stat),
            }
        }
    }
    merged.sort_by_key(|s| std::cmp::Reverse(s.total));
    merged
}

/// Renders an already-merged span report (from [`merge_reports`]) as
/// the same aligned table [`render_report`] produces for this thread.
pub fn render_stats(stats: &[SpanStat]) -> String {
    if stats.is_empty() {
        return String::from("(no spans recorded)\n");
    }
    let mut out = String::new();
    out.push_str(&format!(
        "  {:<28} {:>8} {:>12} {:>12} {:>7}\n",
        "span", "calls", "total", "self", "self%"
    ));
    for s in stats {
        let pct = if s.total.as_nanos() == 0 {
            100.0
        } else {
            100.0 * s.self_time.as_secs_f64() / s.total.as_secs_f64()
        };
        out.push_str(&format!(
            "  {:<28} {:>8} {:>12} {:>12} {:>6.1}%\n",
            s.name,
            s.calls,
            format_duration(s.total),
            format_duration(s.self_time),
            pct,
        ));
    }
    out
}

/// Renders the span report as an aligned text table
/// (`name / calls / total / self / self%`).
pub fn render_report() -> String {
    render_stats(&report())
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3}s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Opens a named profiling span; time from here to the end of the
/// enclosing scope accrues to `name`.
///
/// Bind the guard (`let _guard = span!("phase");`) — an unbound
/// `span!("phase");` statement drops immediately and times nothing.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(d: Duration) {
        let start = Instant::now();
        while start.elapsed() < d {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn nested_spans_split_self_and_total() {
        reset();
        {
            let _outer = crate::span!("outer");
            spin(Duration::from_millis(2));
            {
                let _inner = crate::span!("inner");
                spin(Duration::from_millis(2));
            }
        }
        let stats = report();
        let outer = stats.iter().find(|s| s.name == "outer").expect("outer");
        let inner = stats.iter().find(|s| s.name == "inner").expect("inner");
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        assert!(outer.total >= inner.total);
        assert!(outer.self_time <= outer.total - inner.total + Duration::from_millis(1));
        assert_eq!(inner.self_time, inner.total);
        reset();
    }

    #[test]
    fn repeated_spans_accumulate_calls() {
        reset();
        for _ in 0..3 {
            let _s = crate::span!("repeat");
            spin(Duration::from_micros(100));
        }
        let stats = report();
        let s = stats.iter().find(|s| s.name == "repeat").expect("repeat");
        assert_eq!(s.calls, 3);
        assert!(s.total >= Duration::from_micros(300));
        assert!(!render_report().is_empty());
        reset();
    }
}
