//! Structured event tracing: a bounded ring of [`TraceEvent`]s with an
//! environment-selected level and a JSONL sink.
//!
//! Tracing follows the same philosophy as the binary trace format in
//! `cache8t-trace`: events are cheap fixed-size records (no
//! allocation per event), serialization is explicit and versioned by
//! shape, and readers get typed errors. The level is read once from
//! `CACHE8T_TRACE` (`off`, `summary`, `event`, `verbose`;
//! unset means `off`) so the hot path pays a single integer compare
//! when tracing is disabled.

use std::io::{self, Write};
use std::sync::OnceLock;

use serde::{DeError, Deserialize, Serialize};

/// How much event detail to record.
///
/// Levels are ordered: each level includes everything below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Record nothing (the default).
    Off,
    /// Record only run-level summaries (metric snapshots), no events.
    Summary,
    /// Record structural events: flushes, fills, evictions, RMW
    /// sequences, suppressed writebacks.
    Event,
    /// Additionally record every individual access.
    Verbose,
}

impl TraceLevel {
    /// Environment variable controlling the global trace level.
    pub const ENV_VAR: &'static str = "CACHE8T_TRACE";

    /// Parses a level name (case-insensitive); unknown names are
    /// `None`.
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "" => Some(TraceLevel::Off),
            "summary" => Some(TraceLevel::Summary),
            "event" => Some(TraceLevel::Event),
            "verbose" => Some(TraceLevel::Verbose),
            _ => None,
        }
    }

    /// The level selected by `CACHE8T_TRACE`, read once per process.
    ///
    /// Unset or unrecognized values fall back to [`TraceLevel::Off`]
    /// (a typo in the variable must not silently slow a run down), but
    /// an unrecognized value earns a one-time stderr warning so a
    /// mistyped level does not silently produce an empty trace.
    pub fn from_env() -> TraceLevel {
        static LEVEL: OnceLock<TraceLevel> = OnceLock::new();
        *LEVEL.get_or_init(|| match std::env::var(Self::ENV_VAR) {
            Ok(v) => TraceLevel::parse(&v).unwrap_or_else(|| {
                eprintln!(
                    "warning: unrecognized {}={v:?} (expected off|summary|event|verbose); \
                     tracing stays off",
                    Self::ENV_VAR
                );
                TraceLevel::Off
            }),
            Err(_) => TraceLevel::Off,
        })
    }

    /// The level's canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Summary => "summary",
            TraceLevel::Event => "event",
            TraceLevel::Verbose => "verbose",
        }
    }
}

/// Which part of the stack emitted an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Component {
    /// The cache backend (residency, fills, evictions).
    Cache,
    /// The conventional-6T baseline controller.
    Conventional,
    /// The RMW (read-modify-write) 8T baseline controller.
    Rmw,
    /// The Write Grouping controller (WG and WG+RB).
    Wg,
    /// The word-coalescing write buffer controller.
    Coalesce,
    /// The SRAM array / port model.
    Sram,
    /// The simulator driver.
    Sim,
    /// The differential conformance harness (`cache8t-conform`).
    Conform,
}

/// What happened. The taxonomy mirrors the paper's traffic breakdown:
/// array accesses split into demand reads, write-group flushes, RMW
/// sequences, fills, and evictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// One CPU-visible access reached the controller
    /// (verbose level only). `detail` = 0 for read, 1 for write.
    Access,
    /// A set buffer was filled from the array. `detail` = words read.
    BufferFill,
    /// A write group flushed to the array. `detail` = group length
    /// (distinct dirty words written back).
    GroupFlush,
    /// A writeback was elided because every buffered word was silent
    /// (matched the array contents). `detail` = words compared.
    SilentElide,
    /// A read was served from the set buffer, bypassing the array.
    Bypass,
    /// An RMW sequence ran on the array. `detail` = burst size
    /// (writes folded into one read-modify-write pass).
    RmwSequence,
    /// A cache line was filled from the next level. `detail` = words.
    LineFill,
    /// A line was evicted. `detail` = 1 when dirty (written back),
    /// 0 when clean.
    Eviction,
    /// A raw SRAM row access. `detail` = 0 for a row read, 1 for a
    /// full-row write, 2 for a partial write, 3 for a precharge.
    RowAccess,
    /// The conformance harness observed a scheme disagreeing with the
    /// golden reference (wrong read value, lost write, broken
    /// invariant). `tick` is the op index in the replayed trace;
    /// `detail` is the divergence-kind discriminant assigned by
    /// `cache8t-conform`.
    Divergence,
}

/// One structured trace record.
///
/// `detail` is a kind-specific payload (documented per
/// [`EventKind`] variant) kept as a bare `u64` so emitting an event
/// never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Monotone request index at emission time.
    pub tick: u64,
    /// Emitting component.
    pub component: Component,
    /// Event classification.
    pub kind: EventKind,
    /// The address involved (word address; 0 when not applicable).
    pub addr: u64,
    /// Kind-specific payload.
    pub detail: u64,
}

impl TraceEvent {
    /// Convenience constructor.
    pub fn new(tick: u64, component: Component, kind: EventKind, addr: u64, detail: u64) -> Self {
        TraceEvent {
            tick,
            component,
            kind,
            addr,
            detail,
        }
    }
}

/// A bounded ring of trace events: the most recent `capacity` events
/// are kept, older ones are dropped (and counted).
#[derive(Debug, Clone)]
pub struct EventRing {
    buffer: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl EventRing {
    /// A ring keeping at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        EventRing {
            buffer: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when full.
    #[inline]
    pub fn push(&mut self, event: TraceEvent) {
        if self.buffer.len() < self.capacity {
            self.buffer.push(event);
        } else {
            self.buffer[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buffer[self.head..]
            .iter()
            .chain(self.buffer[..self.head].iter())
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// True when no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Removes all events (dropped count included).
    pub fn clear(&mut self) {
        self.buffer.clear();
        self.head = 0;
        self.dropped = 0;
    }
}

/// Default ring capacity used by [`Tracer::from_env`].
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// A level-gated event recorder.
///
/// Each controller stack owns one tracer; the level decides which
/// [`Tracer::emit`] calls actually record. With the level at
/// [`TraceLevel::Off`] an emit is a single branch on an enum
/// discriminant — cheap enough to leave in release hot paths.
#[derive(Debug, Clone)]
pub struct Tracer {
    level: TraceLevel,
    ring: EventRing,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(TraceLevel::Off, DEFAULT_RING_CAPACITY)
    }
}

impl Tracer {
    /// A tracer at an explicit level.
    pub fn new(level: TraceLevel, capacity: usize) -> Self {
        Tracer {
            level,
            ring: EventRing::new(capacity),
        }
    }

    /// A tracer at the `CACHE8T_TRACE` level with the default ring.
    pub fn from_env() -> Self {
        Tracer::new(TraceLevel::from_env(), DEFAULT_RING_CAPACITY)
    }

    /// The active level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Changes the level, e.g. to force tracing on in tests regardless
    /// of `CACHE8T_TRACE`. Already-recorded events are kept.
    pub fn set_level(&mut self, level: TraceLevel) {
        self.level = level;
    }

    /// True when structural events are recorded.
    #[inline]
    pub fn event_enabled(&self) -> bool {
        self.level >= TraceLevel::Event
    }

    /// True when per-access events are recorded.
    #[inline]
    pub fn verbose_enabled(&self) -> bool {
        self.level >= TraceLevel::Verbose
    }

    /// Records a structural event if the level allows it.
    #[inline]
    pub fn emit(&mut self, event: TraceEvent) {
        if self.level >= TraceLevel::Event {
            self.ring.push(event);
        }
    }

    /// Records a verbose (per-access) event if the level allows it.
    #[inline]
    pub fn emit_verbose(&mut self, event: TraceEvent) {
        if self.level >= TraceLevel::Verbose {
            self.ring.push(event);
        }
    }

    /// Recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Number of recorded events currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Discards all recorded events.
    pub fn clear(&mut self) {
        self.ring.clear();
    }

    /// Folds `other`'s events into `self`, re-sorting by tick so the
    /// merged stream stays chronological. Used when several components
    /// record into separate tracers.
    pub fn absorb(&mut self, other: &Tracer) {
        let mut merged: Vec<TraceEvent> = self.events().copied().collect();
        merged.extend(other.events().copied());
        merged.sort_by_key(|e| e.tick);
        let dropped = self.ring.dropped() + other.ring.dropped();
        let capacity = self.ring.capacity;
        self.ring.clear();
        self.ring.dropped = dropped;
        for e in merged.into_iter().rev().take(capacity).rev() {
            self.ring.push(e);
        }
    }

    /// Writes every recorded event as one JSON object per line.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer.
    pub fn write_jsonl<W: Write>(&self, mut writer: W) -> io::Result<()> {
        for event in self.events() {
            let line = serde_json::to_string(event).expect("serializing an event cannot fail");
            writer.write_all(line.as_bytes())?;
            writer.write_all(b"\n")?;
        }
        Ok(())
    }
}

/// Parses one JSONL line back into a [`TraceEvent`].
///
/// # Errors
///
/// Returns a [`DeError`] when the line is not valid JSON or does not
/// have the `TraceEvent` shape.
pub fn parse_jsonl_line(line: &str) -> Result<TraceEvent, DeError> {
    let value = serde_json::from_str(line)?;
    TraceEvent::from_json_value(&value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(tick: u64) -> TraceEvent {
        TraceEvent::new(
            tick,
            Component::Wg,
            EventKind::GroupFlush,
            0x40 + tick,
            tick % 8,
        )
    }

    #[test]
    fn levels_are_ordered() {
        assert!(TraceLevel::Off < TraceLevel::Summary);
        assert!(TraceLevel::Summary < TraceLevel::Event);
        assert!(TraceLevel::Event < TraceLevel::Verbose);
    }

    #[test]
    fn parse_accepts_known_names_only() {
        assert_eq!(TraceLevel::parse("EVENT"), Some(TraceLevel::Event));
        assert_eq!(TraceLevel::parse(" verbose "), Some(TraceLevel::Verbose));
        assert_eq!(TraceLevel::parse("0"), Some(TraceLevel::Off));
        assert_eq!(TraceLevel::parse("everything"), None);
    }

    #[test]
    fn ring_keeps_most_recent_events() {
        let mut ring = EventRing::new(4);
        for t in 0..10 {
            ring.push(event(t));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 6);
        let ticks: Vec<u64> = ring.iter().map(|e| e.tick).collect();
        assert_eq!(ticks, vec![6, 7, 8, 9]);
    }

    #[test]
    fn off_tracer_records_nothing() {
        let mut tracer = Tracer::new(TraceLevel::Off, 16);
        tracer.emit(event(1));
        tracer.emit_verbose(event(2));
        assert!(tracer.is_empty());
    }

    #[test]
    fn event_level_skips_verbose_records() {
        let mut tracer = Tracer::new(TraceLevel::Event, 16);
        tracer.emit(event(1));
        tracer.emit_verbose(event(2));
        assert_eq!(tracer.len(), 1);
    }

    #[test]
    fn jsonl_roundtrips_through_parse() {
        let mut tracer = Tracer::new(TraceLevel::Verbose, 16);
        let original = vec![
            TraceEvent::new(0, Component::Cache, EventKind::LineFill, 0x80, 8),
            TraceEvent::new(1, Component::Sram, EventKind::RowAccess, 0x80, 1),
            TraceEvent::new(2, Component::Rmw, EventKind::RmwSequence, 0x88, 3),
        ];
        for e in &original {
            tracer.emit(*e);
        }
        let mut buffer = Vec::new();
        tracer.write_jsonl(&mut buffer).expect("vec write");
        let text = String::from_utf8(buffer).expect("utf8");
        let parsed: Vec<TraceEvent> = text
            .lines()
            .map(|l| parse_jsonl_line(l).expect("line parses"))
            .collect();
        assert_eq!(parsed, original);
    }

    #[test]
    fn absorb_merges_chronologically() {
        let mut a = Tracer::new(TraceLevel::Event, 16);
        let mut b = Tracer::new(TraceLevel::Event, 16);
        a.emit(event(0));
        a.emit(event(4));
        b.emit(event(2));
        a.absorb(&b);
        let ticks: Vec<u64> = a.events().map(|e| e.tick).collect();
        assert_eq!(ticks, vec![0, 2, 4]);
    }
}
