//! A throttled, TTY-aware progress line for long-running batch work.
//!
//! [`ProgressLine`] repaints one `\r`-terminated stderr line at most
//! every ~100 ms, so a sweep over thousands of jobs costs a handful of
//! writes. Output is suppressed when stderr is not a terminal (CI logs
//! stay clean); `CACHE8T_PROGRESS=always` forces it on for piped runs
//! and `CACHE8T_PROGRESS=off` silences it everywhere.

use std::io::{IsTerminal, Write};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Environment variable overriding progress-line auto-detection.
pub const PROGRESS_ENV_VAR: &str = "CACHE8T_PROGRESS";

/// Minimum interval between repaints.
const REPAINT_EVERY: Duration = Duration::from_millis(100);

/// Whether the progress line draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressMode {
    /// Draw only when stderr is a terminal.
    Auto,
    /// Always draw (useful under `script`/CI debugging).
    Always,
    /// Never draw.
    Off,
}

impl ProgressMode {
    /// Resolves the mode from [`PROGRESS_ENV_VAR`] (`off`, `always`,
    /// anything else / unset → `Auto`).
    pub fn from_env() -> ProgressMode {
        match std::env::var(PROGRESS_ENV_VAR).as_deref() {
            Ok("off") | Ok("0") => ProgressMode::Off,
            Ok("always") | Ok("1") => ProgressMode::Always,
            _ => ProgressMode::Auto,
        }
    }

    fn enabled(self) -> bool {
        match self {
            ProgressMode::Auto => std::io::stderr().is_terminal(),
            ProgressMode::Always => true,
            ProgressMode::Off => false,
        }
    }
}

/// A single in-place progress line on stderr.
///
/// Safe to tick from multiple threads: the repaint throttle lives
/// behind a mutex, and ticks that lose the race or arrive inside the
/// throttle window are simply skipped.
#[derive(Debug)]
pub struct ProgressLine {
    label: &'static str,
    total: usize,
    enabled: bool,
    started: Instant,
    last_paint: Mutex<Option<Instant>>,
}

impl ProgressLine {
    /// A line labelled `label` over `total` work items.
    pub fn new(label: &'static str, total: usize, mode: ProgressMode) -> Self {
        ProgressLine {
            label,
            total,
            enabled: mode.enabled(),
            started: Instant::now(),
            last_paint: Mutex::new(None),
        }
    }

    /// `true` when this line actually draws.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records `done` finished items (`failed` of them failed) and
    /// repaints if the throttle window has passed.
    pub fn tick(&self, done: usize, failed: usize) {
        self.tick_eta(done, failed, None);
    }

    /// Like [`tick`](ProgressLine::tick), with an estimated time to
    /// completion appended (the sweep engine derives it from the
    /// per-job duration histogram). Throttling is unchanged.
    pub fn tick_eta(&self, done: usize, failed: usize, eta: Option<Duration>) {
        self.tick_rate(done, failed, eta, None);
    }

    /// Like [`tick_eta`](ProgressLine::tick_eta), with a live
    /// throughput figure (Mops/s) appended. Callers derive the rate
    /// from the telemetry sampler's *last window* rather than the
    /// cumulative mean, so the line tracks phase changes instead of
    /// averaging them away. Throttling is unchanged.
    pub fn tick_rate(&self, done: usize, failed: usize, eta: Option<Duration>, mops: Option<f64>) {
        if !self.enabled {
            return;
        }
        let Ok(mut last) = self.last_paint.try_lock() else {
            return; // a sibling thread is painting right now
        };
        let now = Instant::now();
        if let Some(previous) = *last {
            if now.duration_since(previous) < REPAINT_EVERY && done < self.total {
                return;
            }
        }
        *last = Some(now);
        let line = Self::render_frame_rate(
            self.label,
            done,
            failed,
            self.total,
            self.started.elapsed(),
            eta,
            mops,
        );
        let mut err = std::io::stderr().lock();
        let _ = write!(err, "\r{line}\x1b[K");
        let _ = err.flush();
    }

    /// Formats one progress-line frame. Pure so it is unit-testable
    /// without a terminal: an unknown ETA on an incomplete run renders
    /// as `--:--` (the estimator returns `None` before any job has
    /// finished or when the duration mean is 0 — never divide there,
    /// report "unknown").
    #[cfg(test)]
    fn render_frame(
        label: &str,
        done: usize,
        failed: usize,
        total: usize,
        elapsed: Duration,
        eta: Option<Duration>,
    ) -> String {
        Self::render_frame_rate(label, done, failed, total, elapsed, eta, None)
    }

    /// [`render_frame`](ProgressLine::render_frame) with an optional
    /// last-window throughput figure between the elapsed time and the
    /// ETA.
    fn render_frame_rate(
        label: &str,
        done: usize,
        failed: usize,
        total: usize,
        elapsed: Duration,
        eta: Option<Duration>,
        mops: Option<f64>,
    ) -> String {
        let failures = if failed > 0 {
            format!(", {failed} failed")
        } else {
            String::new()
        };
        let rate = match mops {
            Some(mops) if mops.is_finite() && mops > 0.0 => format!(", {mops:.1} Mops/s"),
            _ => String::new(),
        };
        let remaining = if done < total {
            match eta {
                Some(eta) => format!(", ~{}s left", eta.as_secs().max(1)),
                None => ", --:-- left".to_string(),
            }
        } else {
            String::new()
        };
        format!(
            "{}: {}/{}{} [{:.1}s{}{}]",
            label,
            done,
            total,
            failures,
            elapsed.as_secs_f64(),
            rate,
            remaining
        )
    }

    /// Ends the line with a newline so later output starts clean.
    pub fn finish(&self) {
        if !self.enabled {
            return;
        }
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err);
        let _ = err.flush();
    }
}

/// A progress reading frozen as data, for shipping over a wire instead
/// of painting a terminal: the serve daemon's `status`/`watch` verbs
/// report pool progress as one of these per update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressSnapshot {
    /// Work items finished (completed + failed).
    pub done: usize,
    /// Work items in the batch.
    pub total: usize,
    /// Items whose every attempt failed.
    pub failed: usize,
    /// Estimated milliseconds to completion, when known.
    pub eta_ms: Option<u64>,
    /// Last-window throughput in Mops/s, when known.
    pub mops: Option<f64>,
}

impl ProgressSnapshot {
    /// Serializes as a flat JSON object; unknown ETA / throughput are
    /// `null`, never fabricated zeros.
    pub fn to_value(&self) -> serde_json::Value {
        use serde_json::Value;
        let opt_u64 = |v: Option<u64>| v.map_or(Value::Null, Value::U64);
        Value::Object(vec![
            ("done".to_owned(), Value::U64(self.done as u64)),
            ("total".to_owned(), Value::U64(self.total as u64)),
            ("failed".to_owned(), Value::U64(self.failed as u64)),
            ("eta_ms".to_owned(), opt_u64(self.eta_ms)),
            (
                "mops".to_owned(),
                match self.mops {
                    Some(m) if m.is_finite() => Value::F64(m),
                    _ => Value::Null,
                },
            ),
        ])
    }

    /// Parses what [`to_value`](ProgressSnapshot::to_value) produced.
    ///
    /// # Errors
    ///
    /// Describes the first missing or mistyped field.
    pub fn from_value(value: &serde_json::Value) -> Result<ProgressSnapshot, String> {
        let field = |name: &str| {
            value
                .get(name)
                .and_then(serde_json::Value::as_u64)
                .ok_or_else(|| format!("progress snapshot missing `{name}`"))
        };
        Ok(ProgressSnapshot {
            done: field("done")? as usize,
            total: field("total")? as usize,
            failed: field("failed")? as usize,
            eta_ms: value.get("eta_ms").and_then(serde_json::Value::as_u64),
            mops: value.get("mops").and_then(serde_json::Value::as_f64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_mode_never_draws() {
        let line = ProgressLine::new("test", 10, ProgressMode::Off);
        assert!(!line.is_enabled());
        line.tick(5, 0); // must be a no-op, not a panic
        line.finish();
    }

    #[test]
    fn always_mode_draws() {
        let line = ProgressLine::new("test", 2, ProgressMode::Always);
        assert!(line.is_enabled());
        line.tick(1, 0);
        line.tick(2, 1);
        line.finish();
    }

    #[test]
    fn eta_ticks_draw() {
        let line = ProgressLine::new("test", 3, ProgressMode::Always);
        line.tick_eta(1, 0, Some(Duration::from_secs(9)));
        line.tick_eta(2, 1, Some(Duration::from_millis(10))); // clamps to ~1s
        line.tick_eta(3, 1, Some(Duration::from_secs(9))); // complete: no ETA shown
        line.finish();
        let off = ProgressLine::new("test", 3, ProgressMode::Off);
        off.tick_eta(1, 0, Some(Duration::from_secs(5))); // no-op
    }

    #[test]
    fn unknown_eta_renders_as_placeholder_not_garbage() {
        // Zero jobs done / zero duration mean: the estimator hands us
        // `None`, and the line must say so instead of a bogus number.
        let frame = ProgressLine::render_frame("sweep", 0, 0, 10, Duration::from_secs(2), None);
        assert_eq!(frame, "sweep: 0/10 [2.0s, --:-- left]");
        // A known ETA still renders (clamped up to 1s)...
        let frame = ProgressLine::render_frame(
            "sweep",
            3,
            1,
            10,
            Duration::from_secs(2),
            Some(Duration::from_millis(10)),
        );
        assert_eq!(frame, "sweep: 3/10, 1 failed [2.0s, ~1s left]");
        // ...and a complete run shows no ETA at all, known or not.
        let frame = ProgressLine::render_frame("sweep", 10, 0, 10, Duration::from_secs(2), None);
        assert_eq!(frame, "sweep: 10/10 [2.0s]");
        let frame = ProgressLine::render_frame(
            "sweep",
            10,
            0,
            10,
            Duration::from_secs(2),
            Some(Duration::from_secs(9)),
        );
        assert_eq!(frame, "sweep: 10/10 [2.0s]");
    }

    #[test]
    fn rate_renders_from_the_last_window_not_at_all_when_unknown() {
        // A known last-window rate appears between elapsed and ETA.
        let frame = ProgressLine::render_frame_rate(
            "sweep",
            3,
            0,
            10,
            Duration::from_secs(2),
            Some(Duration::from_secs(4)),
            Some(12.34),
        );
        assert_eq!(frame, "sweep: 3/10 [2.0s, 12.3 Mops/s, ~4s left]");
        // Unknown / degenerate rates are omitted, not rendered as 0 or
        // NaN.
        for bogus in [None, Some(0.0), Some(f64::NAN), Some(-1.0)] {
            let frame = ProgressLine::render_frame_rate(
                "sweep",
                3,
                0,
                10,
                Duration::from_secs(2),
                None,
                bogus,
            );
            assert_eq!(frame, "sweep: 3/10 [2.0s, --:-- left]");
        }
        // tick_rate is safe in every mode.
        let line = ProgressLine::new("test", 2, ProgressMode::Always);
        line.tick_rate(1, 0, None, Some(5.0));
        line.finish();
        let off = ProgressLine::new("test", 2, ProgressMode::Off);
        off.tick_rate(1, 0, None, Some(5.0));
    }

    #[test]
    fn progress_snapshot_round_trips() {
        let full = ProgressSnapshot {
            done: 3,
            total: 10,
            failed: 1,
            eta_ms: Some(4_200),
            mops: Some(12.5),
        };
        let parsed = ProgressSnapshot::from_value(&full.to_value()).expect("round trip");
        assert_eq!(parsed, full);

        // Unknown ETA / rate survive as absent, not as zeros.
        let sparse = ProgressSnapshot {
            eta_ms: None,
            mops: None,
            ..full
        };
        let value = sparse.to_value();
        assert_eq!(value.get("eta_ms"), Some(&serde_json::Value::Null));
        let parsed = ProgressSnapshot::from_value(&value).expect("round trip");
        assert_eq!(parsed, sparse);

        // NaN rates are dropped at serialization time.
        let nan = ProgressSnapshot {
            mops: Some(f64::NAN),
            ..full
        };
        assert_eq!(nan.to_value().get("mops"), Some(&serde_json::Value::Null));

        let err = ProgressSnapshot::from_value(&serde_json::Value::Object(vec![]))
            .expect_err("empty object");
        assert!(err.contains("done"), "unhelpful error: {err}");
    }

    #[test]
    fn mode_from_env_defaults_to_auto() {
        // The test runner may or may not have the variable set; only
        // assert the unset path through a scoped removal.
        std::env::remove_var(PROGRESS_ENV_VAR);
        assert_eq!(ProgressMode::from_env(), ProgressMode::Auto);
    }
}
