//! Observability layer for the cache8t workspace.
//!
//! Three composable pieces, designed so that a fully instrumented
//! controller costs nothing measurable when observability is off:
//!
//! * [`metrics`] — a per-component [`MetricRegistry`] of named
//!   counters, gauges, and [`Log2Histogram`]s. Handles are plain
//!   indexes, increments are inline `u64` adds, and registries merge
//!   at the end of a run into one JSON-serializable snapshot.
//! * [`trace`] — a bounded ring of structured [`TraceEvent`]s gated by
//!   the `CACHE8T_TRACE` environment variable
//!   ([`TraceLevel`]: `off` / `summary` / `event` / `verbose`), with a
//!   JSONL sink.
//! * [`span`] — RAII wall-clock span timers
//!   ([`span!`](crate::span!)) accumulating per-phase self/total time
//!   in a thread-local profiler.
//!
//! Two analysis pieces build on those:
//!
//! * [`timeline`] — wall-clock execution timelines: per-thread event
//!   buffers serialized as Chrome trace-event JSON
//!   (`chrome://tracing` / Perfetto), fed by the span profiler, the
//!   exec pool's scheduler, and the trace store
//!   (`--timeline-out` on the CLI and harness binaries).
//! * [`perfdiff`] — cross-run regression analysis: flattens two metric
//!   snapshots, aligns metrics by name, and reports deltas against a
//!   threshold (`cache8t perfdiff`).
//! * [`sampler`] — continuous telemetry: a deterministic
//!   op-count-cadence [`Sampler`] turning registry snapshots into
//!   bounded, JSONL-streamed per-window time series (`--series-out`,
//!   `cache8t watch`, `cache8t report-series`).
//!
//! Two smaller pieces round the layer out:
//!
//! * [`progress`] — the TTY-aware throttled [`ProgressLine`] the sweep
//!   engine repaints while a batch runs.
//! * [`oplog`] — a leveled, schema-versioned JSONL *operational* log
//!   for long-lived processes (the serve daemon's accept/submit/
//!   state-transition/shutdown records), filtered via `CACHE8T_LOG`.
//!
//! The simulator threads these through the controller stack: WG/WG+RB
//! and RMW controllers and the SRAM array emit events and metrics, the
//! bench harness snapshots registries into experiment results, and the
//! CLI exposes `--metrics-out` / `--trace-out` / `--timeline-out`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod oplog;
pub mod perfdiff;
pub mod progress;
pub mod sampler;
pub mod span;
pub mod timeline;
pub mod trace;

pub use metrics::{CounterId, GaugeId, HistogramId, Log2Histogram, MetricRegistry};
pub use oplog::{LogLevel, OpLog, OpLogStats, OPLOG_VERSION};
pub use perfdiff::{MetricDelta, PerfDiff};
pub use progress::{ProgressLine, ProgressMode, ProgressSnapshot};
pub use sampler::{Sampler, SamplerConfig, SeriesSample};
pub use span::{SpanGuard, SpanStat};
pub use timeline::{TimelineEvent, TimelinePhase, TimelineSnapshot, TimelineSpan, TrackSnapshot};
pub use trace::{Component, EventKind, EventRing, TraceEvent, TraceLevel, Tracer};
