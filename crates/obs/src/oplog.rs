//! Structured JSONL operational log for long-lived processes.
//!
//! Where [`crate::trace`] records *simulator* events on the replay hot
//! path, the oplog records *operational* events: a daemon accepting a
//! connection, admitting a job, repairing a journal, shutting down.
//! Each record is one schema-versioned JSON object per line:
//!
//! ```json
//! {"v":"1","ts_ms":1754650000123,"uptime_ms":452,"level":"info",
//!  "event":"submit","job":"job-1","fingerprint":"3f2a..."}
//! ```
//!
//! `v`, `ts_ms` (unix epoch milliseconds), `uptime_ms` (monotonic
//! milliseconds since the log was opened), `level`, and `event` are
//! always present; `job` threads the owning job id through every
//! record that has one; everything after is event-specific.
//!
//! Records are leveled ([`LogLevel`]) and filtered at emission time:
//! the threshold comes from the `CACHE8T_LOG` environment variable
//! (`off` / `error` / `warn` / `info` / `debug`, default `info`) via
//! [`LogLevel::from_env`], so operators dial verbosity without
//! recompiling. Sinks are stderr or a file (the daemon's `--log-out`);
//! writes are line-atomic behind a mutex and flushed per record, so a
//! `tail -f` of the log never sees a torn line.

use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use serde_json::Value;

/// Oplog record schema version (the `"v"` field of every line).
pub const OPLOG_VERSION: &str = "1";

/// Record severity. Ordering is by verbosity: a sink at threshold
/// `Info` emits `Error`, `Warn`, and `Info` records and suppresses
/// `Debug`; `Off` suppresses everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Emit nothing.
    Off,
    /// Failures that lose work or durability.
    Error,
    /// Degraded-but-continuing conditions (journal repair, ...).
    Warn,
    /// Lifecycle events: accept, submit, state transitions, shutdown.
    Info,
    /// Per-request chatter.
    Debug,
}

impl LogLevel {
    /// The wire name of this level.
    pub fn name(self) -> &'static str {
        match self {
            LogLevel::Off => "off",
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        }
    }

    /// Parses a level name (case-insensitive). `None` for unknown
    /// names.
    pub fn parse(name: &str) -> Option<LogLevel> {
        match name.to_ascii_lowercase().as_str() {
            "off" | "none" => Some(LogLevel::Off),
            "error" => Some(LogLevel::Error),
            "warn" | "warning" => Some(LogLevel::Warn),
            "info" => Some(LogLevel::Info),
            "debug" => Some(LogLevel::Debug),
            _ => None,
        }
    }

    /// The threshold from `CACHE8T_LOG`, defaulting to `Info` when the
    /// variable is unset or names an unknown level.
    pub fn from_env() -> LogLevel {
        std::env::var("CACHE8T_LOG")
            .ok()
            .and_then(|v| LogLevel::parse(&v))
            .unwrap_or(LogLevel::Info)
    }
}

/// Emission counters, for the daemon's `metrics` verb.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpLogStats {
    /// Records written to the sink.
    pub emitted: u64,
    /// Records filtered out by the level threshold.
    pub suppressed: u64,
    /// Records lost to sink write errors.
    pub dropped: u64,
}

/// A leveled, schema-versioned JSONL operational log.
///
/// Thread-safe: `record` takes `&self` and serializes writers behind
/// an internal mutex. A disabled log ([`OpLog::disabled`]) costs one
/// branch per record.
pub struct OpLog {
    threshold: LogLevel,
    sink: Option<Mutex<Box<dyn Write + Send>>>,
    epoch: Instant,
    emitted: AtomicU64,
    suppressed: AtomicU64,
    dropped: AtomicU64,
}

impl std::fmt::Debug for OpLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpLog")
            .field("threshold", &self.threshold)
            .field("enabled", &self.sink.is_some())
            .finish()
    }
}

impl OpLog {
    fn new(threshold: LogLevel, sink: Option<Box<dyn Write + Send>>) -> OpLog {
        OpLog {
            threshold,
            sink: sink.map(Mutex::new),
            epoch: Instant::now(),
            emitted: AtomicU64::new(0),
            suppressed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// A log that writes to stderr.
    pub fn to_stderr(threshold: LogLevel) -> OpLog {
        OpLog::new(threshold, Some(Box::new(std::io::stderr())))
    }

    /// A log that appends to the file at `path` (created if missing).
    ///
    /// # Errors
    ///
    /// Propagates open/create failures.
    pub fn to_file(path: &Path, threshold: LogLevel) -> std::io::Result<OpLog> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(OpLog::new(threshold, Some(Box::new(file))))
    }

    /// A log over an arbitrary writer (tests capture records this way).
    pub fn to_writer(writer: Box<dyn Write + Send>, threshold: LogLevel) -> OpLog {
        OpLog::new(threshold, Some(writer))
    }

    /// A log that drops every record.
    pub fn disabled() -> OpLog {
        OpLog::new(LogLevel::Off, None)
    }

    /// The active threshold.
    pub fn threshold(&self) -> LogLevel {
        self.threshold
    }

    /// Emission counters so far.
    pub fn stats(&self) -> OpLogStats {
        OpLogStats {
            emitted: self.emitted.load(Ordering::Relaxed),
            suppressed: self.suppressed.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }

    /// Emits one record at `level` for `event`, tagged with `job` when
    /// the event belongs to one, plus event-specific `fields`.
    /// Suppressed records cost one atomic increment.
    pub fn record(
        &self,
        level: LogLevel,
        event: &str,
        job: Option<&str>,
        fields: Vec<(String, Value)>,
    ) {
        let Some(sink) = &self.sink else {
            return;
        };
        if level == LogLevel::Off || level > self.threshold {
            self.suppressed.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64);
        let uptime_ms = self.epoch.elapsed().as_millis() as u64;
        let mut object = vec![
            ("v".to_owned(), Value::Str(OPLOG_VERSION.to_owned())),
            ("ts_ms".to_owned(), Value::U64(ts_ms)),
            ("uptime_ms".to_owned(), Value::U64(uptime_ms)),
            ("level".to_owned(), Value::Str(level.name().to_owned())),
            ("event".to_owned(), Value::Str(event.to_owned())),
        ];
        if let Some(job) = job {
            object.push(("job".to_owned(), Value::Str(job.to_owned())));
        }
        object.extend(fields);
        let mut line =
            serde_json::to_string(&Value::Object(object)).expect("oplog records serialize");
        line.push('\n');
        let mut writer = sink.lock().expect("oplog sink poisoned");
        match writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.flush())
        {
            Ok(()) => {
                self.emitted.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// [`record`](OpLog::record) at `Error`.
    pub fn error(&self, event: &str, job: Option<&str>, fields: Vec<(String, Value)>) {
        self.record(LogLevel::Error, event, job, fields);
    }

    /// [`record`](OpLog::record) at `Warn`.
    pub fn warn(&self, event: &str, job: Option<&str>, fields: Vec<(String, Value)>) {
        self.record(LogLevel::Warn, event, job, fields);
    }

    /// [`record`](OpLog::record) at `Info`.
    pub fn info(&self, event: &str, job: Option<&str>, fields: Vec<(String, Value)>) {
        self.record(LogLevel::Info, event, job, fields);
    }

    /// [`record`](OpLog::record) at `Debug`.
    pub fn debug(&self, event: &str, job: Option<&str>, fields: Vec<(String, Value)>) {
        self.record(LogLevel::Debug, event, job, fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A `Write` handle into a shared buffer, so tests can read back
    /// what the log emitted.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("buf").extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn lines(&self) -> Vec<Value> {
            let bytes = self.0.lock().expect("buf").clone();
            String::from_utf8(bytes)
                .expect("utf8")
                .lines()
                .map(|l| serde_json::from_str(l).expect("each oplog line parses"))
                .collect()
        }
    }

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(LogLevel::parse("DEBUG"), Some(LogLevel::Debug));
        assert_eq!(LogLevel::parse("warning"), Some(LogLevel::Warn));
        assert_eq!(LogLevel::parse("off"), Some(LogLevel::Off));
        assert_eq!(LogLevel::parse("chatty"), None);
        assert!(LogLevel::Error < LogLevel::Debug);
        assert!(LogLevel::Off < LogLevel::Error);
    }

    #[test]
    fn records_carry_schema_fields_and_respect_threshold() {
        let buf = SharedBuf::default();
        let log = OpLog::to_writer(Box::new(buf.clone()), LogLevel::Info);
        log.info(
            "submit",
            Some("job-1"),
            vec![("ops".to_owned(), Value::U64(500))],
        );
        log.debug("verb", None, Vec::new()); // below threshold
        log.warn("journal-repair", Some("job-1"), Vec::new());

        let lines = buf.lines();
        assert_eq!(lines.len(), 2, "debug was suppressed");
        for line in &lines {
            assert_eq!(line.get("v").and_then(Value::as_str), Some(OPLOG_VERSION));
            assert!(line.get("ts_ms").and_then(Value::as_u64).is_some());
            assert!(line.get("uptime_ms").and_then(Value::as_u64).is_some());
            assert!(line.get("level").and_then(Value::as_str).is_some());
            assert!(line.get("event").and_then(Value::as_str).is_some());
        }
        assert_eq!(
            lines[0].get("event").and_then(Value::as_str),
            Some("submit")
        );
        assert_eq!(lines[0].get("job").and_then(Value::as_str), Some("job-1"));
        assert_eq!(lines[0].get("ops").and_then(Value::as_u64), Some(500));
        assert_eq!(lines[1].get("level").and_then(Value::as_str), Some("warn"));

        let stats = log.stats();
        assert_eq!(stats.emitted, 2);
        assert_eq!(stats.suppressed, 1);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn disabled_log_emits_nothing() {
        let log = OpLog::disabled();
        log.error("accept", None, Vec::new());
        assert_eq!(log.stats(), OpLogStats::default());
    }

    #[test]
    fn file_sink_appends_lines() {
        let dir = std::env::temp_dir().join(format!("c8t-oplog-{}", std::process::id()));
        let path = dir.join("op.jsonl");
        {
            let log = OpLog::to_file(&path, LogLevel::Debug).expect("open");
            log.info("accept", None, Vec::new());
            log.debug(
                "verb",
                None,
                vec![("verb".to_owned(), Value::Str("status".to_owned()))],
            );
        }
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text.lines().count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
