//! Continuous telemetry: a deterministic op-count-cadence sampler.
//!
//! A [`Sampler`] snapshots a [`MetricRegistry`] every
//! [`cadence`](SamplerConfig::cadence) replayed operations and turns
//! each snapshot into a [`SeriesSample`] — the *per-window deltas* of
//! every counter, plus an instantaneous write-buffer occupancy
//! histogram probed from the controller. Samples land in a bounded
//! ring (old windows fall off the front) and, when a writer is
//! attached, stream out as one JSON line per window, so a 1 B-op
//! replay holds flat memory while still exporting its full history.
//!
//! Determinism is the design invariant: a sample row contains only
//! quantities derived from the replayed stream (op indexes and counter
//! deltas), never wall-clock time, so the same trace and seed produce
//! byte-identical JSONL regardless of `--jobs` or machine speed.
//! Wall-clock rates (Mops/s) are derived by *consumers* — the progress
//! line and `cache8t watch` — from sample arrival times.
//!
//! Schema (one object per line, `"v"` is [`SERIES_SCHEMA_VERSION`]):
//!
//! ```json
//! {"v":"1","bench":"gcc","scheme":"WG","window":3,
//!  "op_start":196608,"op_end":262144,
//!  "deltas":{"cache.line_fills":412,"ctrl.reads":39321,...},
//!  "occupancy":[0,2,1,5]}
//! ```

use std::collections::VecDeque;
use std::io::{self, Write};

use serde::Value;

use crate::metrics::MetricRegistry;

/// Default sampling cadence: one window every 65 536 replayed ops.
pub const DEFAULT_CADENCE: u64 = 65_536;

/// Default bound on the in-memory sample ring.
pub const DEFAULT_RING_CAPACITY: usize = 512;

/// Version tag stamped into every series row (`"v"` field).
pub const SERIES_SCHEMA_VERSION: &str = "1";

/// How a [`Sampler`] windows and retains samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerConfig {
    /// Replayed operations per window.
    pub cadence: u64,
    /// Maximum samples retained in memory; older windows are dropped
    /// from the ring (an attached writer has already streamed them).
    pub ring_capacity: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            cadence: DEFAULT_CADENCE,
            ring_capacity: DEFAULT_RING_CAPACITY,
        }
    }
}

impl SamplerConfig {
    /// A config with the given cadence and the default ring bound.
    ///
    /// # Panics
    ///
    /// Panics if `cadence` is 0.
    pub fn with_cadence(cadence: u64) -> Self {
        assert!(cadence > 0, "sampler cadence must be positive");
        SamplerConfig {
            cadence,
            ..SamplerConfig::default()
        }
    }
}

/// One telemetry window: counter deltas over a span of replayed ops.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSample {
    /// Benchmark label (empty for single-trace replays).
    pub bench: String,
    /// Scheme name (`"6T"`, `"RMW"`, `"WG"`, `"WG+RB"`, ...).
    pub scheme: String,
    /// Zero-based window index.
    pub window: u64,
    /// First replayed-op index covered by this window.
    pub op_start: u64,
    /// One past the last replayed-op index covered (so
    /// `op_end - op_start` is the window's op count).
    pub op_end: u64,
    /// Per-window counter deltas, sorted by name, zero deltas elided.
    pub deltas: Vec<(String, u64)>,
    /// Instantaneous write-buffer occupancy histogram at the window
    /// boundary: index = modified words in a live buffer, value =
    /// buffers with that occupancy. Empty for bufferless schemes.
    pub occupancy: Vec<u64>,
}

impl SeriesSample {
    /// Replayed operations covered by this window.
    pub fn ops(&self) -> u64 {
        self.op_end - self.op_start
    }

    /// The window delta of the counter called `name` (0 when absent).
    pub fn delta(&self, name: &str) -> u64 {
        self.deltas
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .map(|i| self.deltas[i].1)
            .unwrap_or(0)
    }

    /// Requests serviced in this window (`ctrl.reads + ctrl.writes`).
    pub fn requests(&self) -> u64 {
        self.delta("ctrl.reads") + self.delta("ctrl.writes")
    }

    /// Window miss rate: line fills per serviced request.
    pub fn miss_rate(&self) -> f64 {
        let requests = self.requests();
        if requests == 0 {
            0.0
        } else {
            self.delta("cache.line_fills") as f64 / requests as f64
        }
    }

    /// Window silent-write-suppression rate: silently suppressed word
    /// writes per write request.
    pub fn silent_rate(&self) -> f64 {
        let writes = self.delta("ctrl.writes");
        if writes == 0 {
            0.0
        } else {
            self.delta("wg.silent_suppressed") as f64 / writes as f64
        }
    }

    /// Window write-back traffic: dirty evictions plus Set-Buffer
    /// write-backs.
    pub fn writeback_traffic(&self) -> u64 {
        self.delta("cache.dirty_evictions") + self.delta("wg.writebacks")
    }

    /// Window WG grouping efficiency: writes retired through grouped
    /// row writes per write request (0 for non-WG schemes).
    pub fn grouping_efficiency(&self) -> f64 {
        let writes = self.delta("ctrl.writes");
        if writes == 0 {
            0.0
        } else {
            self.delta("wg.grouped_writes") as f64 / writes as f64
        }
    }

    /// Mean live-buffer occupancy (modified words per live buffer) at
    /// the window boundary, or 0.0 when no buffer was live.
    pub fn mean_occupancy(&self) -> f64 {
        let buffers: u64 = self.occupancy.iter().sum();
        if buffers == 0 {
            return 0.0;
        }
        let words: u64 = self
            .occupancy
            .iter()
            .enumerate()
            .map(|(words, &count)| words as u64 * count)
            .sum();
        words as f64 / buffers as f64
    }

    /// The sample as a JSON value in the series row schema.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("v".to_owned(), Value::Str(SERIES_SCHEMA_VERSION.to_owned())),
            ("bench".to_owned(), Value::Str(self.bench.clone())),
            ("scheme".to_owned(), Value::Str(self.scheme.clone())),
            ("window".to_owned(), Value::U64(self.window)),
            ("op_start".to_owned(), Value::U64(self.op_start)),
            ("op_end".to_owned(), Value::U64(self.op_end)),
            (
                "deltas".to_owned(),
                Value::Object(
                    self.deltas
                        .iter()
                        .map(|(name, v)| (name.clone(), Value::U64(*v)))
                        .collect(),
                ),
            ),
            (
                "occupancy".to_owned(),
                Value::Array(self.occupancy.iter().map(|&c| Value::U64(c)).collect()),
            ),
        ])
    }

    /// Parses a sample back from a series row value, `None` when the
    /// shape or version does not match.
    pub fn from_value(value: &Value) -> Option<SeriesSample> {
        if value.get("v").and_then(Value::as_str) != Some(SERIES_SCHEMA_VERSION) {
            return None;
        }
        let deltas_value = value.get("deltas")?;
        let Value::Object(entries) = deltas_value else {
            return None;
        };
        let mut deltas = Vec::with_capacity(entries.len());
        for (name, v) in entries {
            deltas.push((name.clone(), v.as_u64()?));
        }
        deltas.sort_by(|a, b| a.0.cmp(&b.0));
        let occupancy = value
            .get("occupancy")?
            .as_array()?
            .iter()
            .map(Value::as_u64)
            .collect::<Option<Vec<u64>>>()?;
        Some(SeriesSample {
            bench: value.get("bench")?.as_str()?.to_owned(),
            scheme: value.get("scheme")?.as_str()?.to_owned(),
            window: value.get("window")?.as_u64()?,
            op_start: value.get("op_start")?.as_u64()?,
            op_end: value.get("op_end")?.as_u64()?,
            deltas,
            occupancy,
        })
    }

    /// Serializes the sample as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(&self.to_value()).expect("series rows always serialize")
    }
}

/// Parses one JSONL series line, `None` on malformed input.
pub fn parse_series_line(line: &str) -> Option<SeriesSample> {
    let value: Value = serde_json::from_str(line).ok()?;
    SeriesSample::from_value(&value)
}

/// The windowed sampler: counts replayed ops, diffs counter snapshots
/// at every window boundary, retains a bounded ring, and optionally
/// streams each sample as JSONL.
///
/// Protocol: call [`note_op`](Sampler::note_op) once per replayed op;
/// when it returns `true` a window boundary was crossed and the caller
/// must call [`sample`](Sampler::sample) with the live registry. After
/// the replay, [`finish`](Sampler::finish) emits the final partial
/// window and flushes the writer.
pub struct Sampler {
    bench: String,
    scheme: String,
    config: SamplerConfig,
    ops_seen: u64,
    next_boundary: u64,
    window: u64,
    window_start_op: u64,
    prev: Vec<u64>,
    ring: VecDeque<SeriesSample>,
    emitted: u64,
    writer: Option<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for Sampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sampler")
            .field("bench", &self.bench)
            .field("scheme", &self.scheme)
            .field("config", &self.config)
            .field("ops_seen", &self.ops_seen)
            .field("emitted", &self.emitted)
            .field("ring_len", &self.ring.len())
            .field("has_writer", &self.writer.is_some())
            .finish()
    }
}

impl Sampler {
    /// A sampler labelling its rows with `bench`/`scheme`.
    ///
    /// # Panics
    ///
    /// Panics if the config's cadence is 0 or its ring capacity is 0.
    pub fn new(bench: &str, scheme: &str, config: SamplerConfig) -> Self {
        assert!(config.cadence > 0, "sampler cadence must be positive");
        assert!(
            config.ring_capacity > 0,
            "sampler ring capacity must be positive"
        );
        Sampler {
            bench: bench.to_owned(),
            scheme: scheme.to_owned(),
            config,
            ops_seen: 0,
            next_boundary: config.cadence,
            window: 0,
            window_start_op: 0,
            prev: Vec::new(),
            ring: VecDeque::new(),
            emitted: 0,
            writer: None,
        }
    }

    /// Attaches a JSONL writer; every subsequent sample streams out as
    /// one line.
    pub fn with_writer(mut self, writer: Box<dyn Write + Send>) -> Self {
        self.writer = Some(writer);
        self
    }

    /// The configured cadence.
    pub fn cadence(&self) -> u64 {
        self.config.cadence
    }

    /// Records one replayed op; `true` means a window boundary was hit
    /// and [`sample`](Sampler::sample) must be called.
    ///
    /// The comparison is `>=`, not `==`: if a caller ever skips a
    /// boundary (e.g. a controller without an observability surface has
    /// no registry to sample), the sampler asks again at the next op
    /// instead of silently never sampling again.
    #[inline]
    pub fn note_op(&mut self) -> bool {
        self.ops_seen += 1;
        self.ops_seen >= self.next_boundary
    }

    /// Re-snapshots the counter baseline without emitting a window.
    /// Called after a mid-replay counter reset (the warm-up boundary)
    /// so the enclosing window's deltas stay non-negative.
    pub fn rebaseline(&mut self, registry: &MetricRegistry) {
        self.prev.clear();
        self.prev.extend(registry.counters().map(|(_, v)| v));
    }

    /// Closes the current window: diffs `registry`'s counters against
    /// the previous snapshot, records `occupancy`, pushes the sample
    /// into the ring (dropping the oldest past capacity), and streams
    /// it if a writer is attached.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the attached writer (never fails
    /// without one).
    pub fn sample(&mut self, registry: &MetricRegistry, occupancy: Vec<u64>) -> io::Result<()> {
        let mut deltas = Vec::new();
        let mut current = Vec::with_capacity(self.prev.len());
        for (i, (name, value)) in registry.counters().enumerate() {
            let before = self.prev.get(i).copied().unwrap_or(0);
            // saturating: a counter reset without rebaseline() clamps
            // to 0 instead of wrapping.
            let delta = value.saturating_sub(before);
            if delta > 0 {
                deltas.push((name.to_owned(), delta));
            }
            current.push(value);
        }
        deltas.sort_by(|a, b| a.0.cmp(&b.0));
        self.prev = current;
        let sample = SeriesSample {
            bench: self.bench.clone(),
            scheme: self.scheme.clone(),
            window: self.window,
            op_start: self.window_start_op,
            op_end: self.ops_seen,
            deltas,
            occupancy,
        };
        self.window += 1;
        self.window_start_op = self.ops_seen;
        self.next_boundary = self.ops_seen + self.config.cadence;
        if let Some(writer) = &mut self.writer {
            let line = sample.to_json_line();
            writer.write_all(line.as_bytes())?;
            writer.write_all(b"\n")?;
        }
        if self.ring.len() == self.config.ring_capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(sample);
        self.emitted += 1;
        Ok(())
    }

    /// Emits the final partial window and flushes the writer.
    ///
    /// A trailing window is emitted when ops are pending *or* when
    /// counters moved since the last snapshot: a replay's end-of-stream
    /// `flush()` (write-buffer drain, final write-backs) can advance
    /// counters after the last op, and when the op count is an exact
    /// multiple of the cadence there is no pending partial window to
    /// absorb those deltas — without this they would never land in any
    /// window and `--series-out` totals would not reconcile with the
    /// final registry counters. Such a flush-only window has
    /// `op_start == op_end`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the attached writer.
    pub fn finish(&mut self, registry: &MetricRegistry, occupancy: Vec<u64>) -> io::Result<()> {
        if self.ops_seen > self.window_start_op || self.counters_moved(registry) {
            self.sample(registry, occupancy)?;
        }
        self.flush_writer()
    }

    /// `true` if any counter advanced past the previous snapshot
    /// (saturating, mirroring [`sample`](Sampler::sample)'s delta
    /// arithmetic — a reset without rebaseline reads as no movement).
    fn counters_moved(&self, registry: &MetricRegistry) -> bool {
        registry
            .counters()
            .enumerate()
            .any(|(i, (_, value))| value.saturating_sub(self.prev.get(i).copied().unwrap_or(0)) > 0)
    }

    /// Flushes the attached JSONL writer without emitting a window.
    /// Streamed replay calls this at chunk seams so live consumers
    /// (`cache8t watch`) see completed windows promptly; it never
    /// changes what bytes are written, only when.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the attached writer.
    pub fn flush_writer(&mut self) -> io::Result<()> {
        if let Some(writer) = &mut self.writer {
            writer.flush()?;
        }
        Ok(())
    }

    /// Samples retained in the ring, oldest first.
    pub fn ring(&self) -> impl Iterator<Item = &SeriesSample> {
        self.ring.iter()
    }

    /// Drains the ring into a vector, oldest first.
    pub fn take_ring(&mut self) -> Vec<SeriesSample> {
        self.ring.drain(..).collect()
    }

    /// The most recent sample, if any.
    pub fn last(&self) -> Option<&SeriesSample> {
        self.ring.back()
    }

    /// Total samples emitted (including any dropped from the ring).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Total replayed ops noted so far.
    pub fn ops_seen(&self) -> u64 {
        self.ops_seen
    }
}

/// Splits a per-window signal into phases: maximal runs whose values
/// stay within `tolerance` (absolute) of the running phase mean. Used
/// by `cache8t report-series` to produce phase-resolved cache-behavior
/// profiles — a workload whose miss rate steps from 2% to 9% mid-replay
/// reports as two phases instead of one misleading average.
///
/// Returns half-open `(start, end)` window-index ranges covering the
/// whole input (empty input → no phases). Deterministic: depends only
/// on the values and the tolerance.
pub fn segment_phases(values: &[f64], tolerance: f64) -> Vec<(usize, usize)> {
    let mut phases = Vec::new();
    let mut start = 0usize;
    let mut sum = 0.0f64;
    for (i, &v) in values.iter().enumerate() {
        if i > start {
            let mean = sum / (i - start) as f64;
            if (v - mean).abs() > tolerance {
                phases.push((start, i));
                start = i;
                sum = 0.0;
            }
        }
        sum += v;
    }
    if start < values.len() {
        phases.push((start, values.len()));
    }
    phases
}

/// The block characters used by [`sparkline`], lowest to highest.
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `values` as a unicode sparkline, scaled to the observed
/// min..max range (a flat series renders as all-low).
pub fn sparkline(values: &[f64]) -> String {
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= min || !v.is_finite() {
                SPARKS[0]
            } else {
                let t = (v - min) / (max - min);
                let idx = (t * (SPARKS.len() - 1) as f64).round() as usize;
                SPARKS[idx.min(SPARKS.len() - 1)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry_with(counts: &[(&str, u64)]) -> MetricRegistry {
        let mut r = MetricRegistry::new();
        for (name, v) in counts {
            let id = r.counter(name);
            r.add(id, *v);
        }
        r
    }

    #[test]
    fn windows_carry_counter_deltas_not_totals() {
        let mut s = Sampler::new("gcc", "WG", SamplerConfig::with_cadence(4));
        let mut r = registry_with(&[("ctrl.reads", 0), ("ctrl.writes", 0)]);
        for _ in 0..4 {
            assert!(!s.note_op() || s.ops_seen() == 4);
        }
        let id = r.counter("ctrl.reads");
        r.add(id, 10);
        s.sample(&r, Vec::new()).unwrap();
        r.add(id, 7);
        for _ in 0..4 {
            s.note_op();
        }
        s.sample(&r, Vec::new()).unwrap();
        let samples: Vec<_> = s.ring().collect();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].delta("ctrl.reads"), 10);
        assert_eq!(
            samples[1].delta("ctrl.reads"),
            7,
            "second window is a delta"
        );
        assert_eq!(samples[1].op_start, 4);
        assert_eq!(samples[1].op_end, 8);
    }

    #[test]
    fn note_op_fires_exactly_on_cadence_boundaries() {
        let mut s = Sampler::new("", "6T", SamplerConfig::with_cadence(3));
        let r = MetricRegistry::new();
        let mut fired = Vec::new();
        for i in 1..=9u64 {
            if s.note_op() {
                fired.push(i);
                s.sample(&r, Vec::new()).unwrap();
            }
        }
        assert_eq!(fired, vec![3, 6, 9]);
    }

    #[test]
    fn ring_is_bounded() {
        let config = SamplerConfig {
            cadence: 1,
            ring_capacity: 3,
        };
        let mut s = Sampler::new("", "6T", config);
        let r = MetricRegistry::new();
        for _ in 0..10 {
            s.note_op();
            s.sample(&r, Vec::new()).unwrap();
        }
        assert_eq!(s.ring().count(), 3);
        assert_eq!(s.emitted(), 10);
        let windows: Vec<u64> = s.ring().map(|sample| sample.window).collect();
        assert_eq!(windows, vec![7, 8, 9], "oldest windows fall off the front");
    }

    #[test]
    fn finish_emits_the_partial_tail_window() {
        let mut s = Sampler::new("", "RMW", SamplerConfig::with_cadence(100));
        let r = registry_with(&[("ctrl.reads", 5)]);
        for _ in 0..42 {
            assert!(!s.note_op());
        }
        s.finish(&r, Vec::new()).unwrap();
        let last = s.last().expect("partial window emitted");
        assert_eq!(last.op_start, 0);
        assert_eq!(last.op_end, 42);
        assert_eq!(last.delta("ctrl.reads"), 5);
        // A second finish with no new ops emits nothing.
        s.finish(&r, Vec::new()).unwrap();
        assert_eq!(s.emitted(), 1);
    }

    #[test]
    fn finish_captures_post_loop_deltas_at_exact_cadence_multiples() {
        // 6 ops at cadence 3: both boundaries fire and there is no
        // pending partial window. A post-loop flush() then moves the
        // counters — finish must still emit a trailing window carrying
        // those deltas or the series would not reconcile.
        let mut s = Sampler::new("", "WG", SamplerConfig::with_cadence(3));
        let mut r = MetricRegistry::new();
        let id = r.counter("wg.writebacks");
        for _ in 0..6 {
            if s.note_op() {
                r.add(id, 2);
                s.sample(&r, Vec::new()).unwrap();
            }
        }
        assert_eq!(s.emitted(), 2);
        r.add(id, 7); // the end-of-replay buffer drain
        s.finish(&r, Vec::new()).unwrap();
        assert_eq!(s.emitted(), 3, "flush deltas get their own window");
        let tail = s.last().unwrap();
        assert_eq!(tail.op_start, 6);
        assert_eq!(tail.op_end, 6, "flush-only window spans zero ops");
        assert_eq!(tail.delta("wg.writebacks"), 7);
        // Window totals reconcile with the final registry counters.
        let total: u64 = s.ring().map(|w| w.delta("wg.writebacks")).sum();
        assert_eq!(total, 11);
        // And with nothing further pending, finish stays idempotent.
        s.finish(&r, Vec::new()).unwrap();
        assert_eq!(s.emitted(), 3);
    }

    #[test]
    fn window_totals_reconcile_at_non_multiple_of_cadence() {
        let mut s = Sampler::new("", "RMW", SamplerConfig::with_cadence(4));
        let mut r = MetricRegistry::new();
        let id = r.counter("ctrl.reads");
        for _ in 0..10 {
            r.add(id, 1);
            if s.note_op() {
                s.sample(&r, Vec::new()).unwrap();
            }
        }
        r.add(id, 3); // post-loop flush movement
        s.finish(&r, Vec::new()).unwrap();
        let total: u64 = s.ring().map(|w| w.delta("ctrl.reads")).sum();
        assert_eq!(total, 13, "every counted event lands in some window");
        let tail = s.last().unwrap();
        assert_eq!(tail.op_start, 8);
        assert_eq!(tail.op_end, 10, "flush deltas merge into the partial tail");
    }

    #[test]
    fn missed_boundary_reasserts_on_the_next_op() {
        let mut s = Sampler::new("", "6T", SamplerConfig::with_cadence(3));
        let r = MetricRegistry::new();
        assert!(!s.note_op());
        assert!(!s.note_op());
        assert!(s.note_op(), "boundary at op 3");
        // The caller skipped sample() (no obs surface): the sampler
        // keeps asking instead of going silent forever.
        assert!(s.note_op());
        s.sample(&r, Vec::new()).unwrap();
        assert!(!s.note_op());
        let last = s.last().unwrap();
        assert_eq!((last.op_start, last.op_end), (0, 4));
    }

    #[test]
    fn rebaseline_absorbs_a_counter_reset() {
        let mut s = Sampler::new("", "WG", SamplerConfig::with_cadence(2));
        let mut r = registry_with(&[("ctrl.writes", 100)]);
        s.rebaseline(&r);
        r.reset();
        let id = r.counter("ctrl.writes");
        r.add(id, 3);
        s.note_op();
        s.note_op();
        s.sample(&r, Vec::new()).unwrap();
        // Without rebaseline the saturating delta would clamp to 0;
        // with it the reset itself must also not produce garbage.
        assert_eq!(s.last().unwrap().delta("ctrl.writes"), 0);
        r.add(id, 9);
        s.note_op();
        s.note_op();
        s.sample(&r, Vec::new()).unwrap();
        assert_eq!(s.last().unwrap().delta("ctrl.writes"), 9);
    }

    #[test]
    fn jsonl_round_trips_through_the_schema() {
        let sample = SeriesSample {
            bench: "gcc".to_owned(),
            scheme: "WG+RB".to_owned(),
            window: 7,
            op_start: 458_752,
            op_end: 524_288,
            deltas: vec![
                ("cache.line_fills".to_owned(), 412),
                ("ctrl.reads".to_owned(), 39_321),
            ],
            occupancy: vec![0, 2, 1],
        };
        let line = sample.to_json_line();
        let back = parse_series_line(&line).expect("own output parses");
        assert_eq!(back, sample);
        // Version mismatch is rejected, not misparsed.
        let other = line.replace("\"v\":\"1\"", "\"v\":\"999\"");
        assert!(parse_series_line(&other).is_none());
        assert!(parse_series_line("not json").is_none());
    }

    #[test]
    fn derived_rates_come_from_window_deltas() {
        let sample = SeriesSample {
            bench: String::new(),
            scheme: "WG".to_owned(),
            window: 0,
            op_start: 0,
            op_end: 100,
            deltas: vec![
                ("cache.dirty_evictions".to_owned(), 3),
                ("cache.line_fills".to_owned(), 10),
                ("ctrl.reads".to_owned(), 60),
                ("ctrl.writes".to_owned(), 40),
                ("wg.grouped_writes".to_owned(), 30),
                ("wg.silent_suppressed".to_owned(), 4),
                ("wg.writebacks".to_owned(), 5),
            ],
            occupancy: vec![1, 0, 3],
        };
        assert_eq!(sample.requests(), 100);
        assert!((sample.miss_rate() - 0.1).abs() < 1e-12);
        assert!((sample.silent_rate() - 0.1).abs() < 1e-12);
        assert_eq!(sample.writeback_traffic(), 8);
        assert!((sample.grouping_efficiency() - 0.75).abs() < 1e-12);
        assert!((sample.mean_occupancy() - 1.5).abs() < 1e-12);
        // Empty windows divide to 0, not NaN.
        let empty = SeriesSample {
            deltas: Vec::new(),
            occupancy: Vec::new(),
            ..sample
        };
        assert_eq!(empty.miss_rate(), 0.0);
        assert_eq!(empty.silent_rate(), 0.0);
        assert_eq!(empty.mean_occupancy(), 0.0);
    }

    #[test]
    fn writer_streams_one_line_per_window() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct Sink(Arc<Mutex<Vec<u8>>>);
        impl Write for Sink {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let sink = Sink(Arc::new(Mutex::new(Vec::new())));
        let buffer = sink.0.clone();
        let mut s =
            Sampler::new("gcc", "WG", SamplerConfig::with_cadence(2)).with_writer(Box::new(sink));
        let r = MetricRegistry::new();
        for _ in 0..5 {
            if s.note_op() {
                s.sample(&r, Vec::new()).unwrap();
            }
        }
        s.finish(&r, Vec::new()).unwrap();
        let text = String::from_utf8(buffer.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "2 full windows + 1 partial tail");
        for line in lines {
            let sample = parse_series_line(line).expect("schema-valid line");
            assert_eq!(sample.scheme, "WG");
            assert_eq!(sample.bench, "gcc");
        }
    }

    #[test]
    fn phase_segmentation_finds_steps_not_noise() {
        // Flat signal: one phase.
        assert_eq!(segment_phases(&[0.1; 6], 0.02), vec![(0, 6)]);
        // A clean step: two phases at the step index.
        let stepped = [0.02, 0.021, 0.019, 0.09, 0.091, 0.09];
        assert_eq!(segment_phases(&stepped, 0.02), vec![(0, 3), (3, 6)]);
        // Noise inside the tolerance does not fragment the phase.
        let noisy = [0.05, 0.06, 0.04, 0.055, 0.045];
        assert_eq!(segment_phases(&noisy, 0.02), vec![(0, 5)]);
        // Empty input: no phases; ranges always tile the input.
        assert!(segment_phases(&[], 0.02).is_empty());
        let three_step = [0.0, 0.0, 0.5, 0.5, 1.0, 1.0];
        let phases = segment_phases(&three_step, 0.1);
        assert_eq!(phases, vec![(0, 2), (2, 4), (4, 6)]);
        assert_eq!(phases.iter().map(|(s, e)| e - s).sum::<usize>(), 6);
    }

    #[test]
    fn sparkline_scales_to_range() {
        assert_eq!(sparkline(&[0.0, 1.0]), "▁█");
        assert_eq!(sparkline(&[1.0, 1.0, 1.0]), "▁▁▁", "flat renders low");
        assert_eq!(sparkline(&[]), "");
        let line = sparkline(&[0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(line.chars().count(), 5);
    }
}
