//! # cache8t-cpu — port-contention timing model
//!
//! The paper's §5.5 *argues* the performance effects of its techniques
//! without measuring them: RMW occupies the read port so writes block
//! concurrent reads; WG raises read-port availability by eliminating RMW
//! row reads; WG+RB additionally serves reads from the small Set-Buffer,
//! which is faster than an array access and is on the processor's critical
//! path. This crate quantifies those arguments with a deliberately simple
//! in-order timing model (an extension over the paper, reported as E1 in
//! `EXPERIMENTS.md`).
//!
//! ## Model
//!
//! The core retires one instruction per cycle, so memory requests arrive
//! paced by the trace's instruction density (a stream with 0.4 memory
//! operations per instruction presents one request every 2.5 cycles on
//! average). Gaps are geometrically distributed — memory operations
//! cluster, which is what exposes port contention: a load arriving one
//! cycle after an RMW store finds the read port held. Arrival times are
//! deterministic per trace (a fixed-seed internal generator), so runs are
//! reproducible. Each request's array cost (as reported by the controller's
//! [`AccessCost`]) is scheduled onto the 8T array's one read + one write
//! port ([`PortSet`]): row reads serialize on the
//! read port, row writes on the write port, and the writes of a request
//! start only after its reads (RMW ordering). A request served from the
//! Set-Buffer touches neither port and completes in
//! [`TimingConfig::buffer_cycles`].
//!
//! [`AccessCost`]: cache8t_core::AccessCost
//!
//! ## Example
//!
//! ```
//! use cache8t_core::{RmwController, WgRbController};
//! use cache8t_cpu::{PortTimingModel, TimingConfig};
//! use cache8t_sim::{CacheGeometry, ReplacementKind};
//! use cache8t_trace::{profiles, ProfiledGenerator, TraceGenerator};
//!
//! let g = CacheGeometry::paper_baseline();
//! let trace = ProfiledGenerator::new(
//!     profiles::by_name("bwaves").unwrap(), g, 7).collect(20_000);
//! let model = PortTimingModel::new(TimingConfig::default());
//!
//! let rmw = model.run(&mut RmwController::new(g, ReplacementKind::Lru), &trace);
//! let wgrb = model.run(&mut WgRbController::new(g, ReplacementKind::Lru), &trace);
//! assert!(wgrb.cycles < rmw.cycles, "WG+RB finishes the stream sooner");
//! assert!(wgrb.avg_read_latency() < rmw.avg_read_latency());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::fmt;

use serde::{Deserialize, Serialize};

use cache8t_core::Controller;
use cache8t_sram::{OpLatency, PortSet};
use cache8t_trace::Trace;

/// Cycle parameters of the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingConfig {
    /// Cycles one array row read holds the read port.
    pub array_read_cycles: u64,
    /// Cycles one array row write holds the write port.
    pub array_write_cycles: u64,
    /// Latency of a request served entirely from the Set-Buffer.
    pub buffer_cycles: u64,
    /// Number of independently ported sub-arrays (banks), selected by set
    /// index. `1` models the paper's baseline (a write-back occupies *the*
    /// read port); larger values model Park et al.'s hierarchical-RBL
    /// local RMW, where only the sub-array performing the write-back is
    /// unavailable (paper §2 related work).
    pub banks: usize,
}

impl TimingConfig {
    /// The default clocking: 2-cycle array operations (precharge + sense /
    /// drive + write), 1-cycle buffer access, a single monolithic array.
    pub const fn default_config() -> Self {
        TimingConfig {
            array_read_cycles: 2,
            array_write_cycles: 2,
            buffer_cycles: 1,
            banks: 1,
        }
    }

    /// The default clocking over `banks` independently ported sub-arrays.
    ///
    /// # Panics
    ///
    /// Panics if `banks == 0`.
    pub fn banked(banks: usize) -> Self {
        assert!(banks >= 1, "at least one bank is required");
        TimingConfig {
            banks,
            ..TimingConfig::default_config()
        }
    }
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig::default_config()
    }
}

/// What one run of the timing model observed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingReport {
    /// Requests serviced.
    pub requests: u64,
    /// Reads among them.
    pub reads: u64,
    /// Completion cycle of the last request.
    pub cycles: u64,
    /// Cycles requests spent waiting for a busy read port.
    pub read_port_stalls: u64,
    /// Cycles requests spent waiting for a busy write port.
    pub write_port_stalls: u64,
    /// Requests served from the Set-Buffer (no port usage).
    pub buffer_served: u64,
    /// Sum of read latencies (completion − arrival), for averaging.
    pub total_read_latency: u64,
    /// Cycles the read port was held.
    pub read_port_busy: u64,
}

impl TimingReport {
    /// Mean latency of read requests in cycles (0.0 if there were none).
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.total_read_latency as f64 / self.reads as f64
        }
    }

    /// Fraction of cycles the read port was free — the paper's read-port
    /// availability (§4.1): higher is better for servicing loads.
    pub fn read_port_availability(&self) -> f64 {
        if self.cycles == 0 {
            1.0
        } else {
            1.0 - self.read_port_busy as f64 / self.cycles as f64
        }
    }

    /// Requests per cycle.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.requests as f64 / self.cycles as f64
        }
    }
}

impl fmt::Display for TimingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} requests in {} cycles (throughput {:.3}/cyc), avg read latency {:.2}, \
             read-port availability {:.3}, stalls r {} / w {}",
            self.requests,
            self.cycles,
            self.throughput(),
            self.avg_read_latency(),
            self.read_port_availability(),
            self.read_port_stalls,
            self.write_port_stalls,
        )
    }
}

/// The in-order, one-request-per-cycle port timing model.
///
/// See the [crate docs](crate) for the model description and an example.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PortTimingModel {
    config: TimingConfig,
}

impl PortTimingModel {
    /// Creates a model with the given cycle parameters.
    pub fn new(config: TimingConfig) -> Self {
        PortTimingModel { config }
    }

    /// The cycle parameters.
    pub fn config(&self) -> TimingConfig {
        self.config
    }

    /// Drives `controller` through `trace`, scheduling every array
    /// operation onto the 1R+1W ports, and reports the timing outcome.
    ///
    /// The controller's functional and traffic state advance exactly as if
    /// it had been driven directly.
    pub fn run(&self, controller: &mut dyn Controller, trace: &Trace) -> TimingReport {
        let latency = OpLatency {
            read_cycles: self.config.array_read_cycles,
            write_cycles: self.config.array_write_cycles,
        };
        let banks = self.config.banks.max(1);
        let mut ports: Vec<PortSet> = (0..banks).map(|_| PortSet::new(latency)).collect();
        let geometry = controller.cache().geometry();
        let mut report = TimingReport::default();
        // One instruction retires per cycle; requests arrive at their
        // instruction's cycle. Gaps between consecutive memory operations
        // are geometric with the trace's mean instruction distance, from a
        // deterministic xorshift stream (bursty arrivals expose port
        // contention; fixed seed keeps runs reproducible).
        let instr_per_op = if trace.is_empty() {
            1.0
        } else {
            (trace.instructions() as f64 / trace.len() as f64).max(1.0)
        };
        let memop_prob = (1.0 / instr_per_op).min(1.0);
        let mut rng_state = 0x9E37_79B9_7F4A_7C15u64 ^ (trace.len() as u64);
        let mut next_u01 = move || {
            // xorshift64* — adequate for arrival jitter.
            rng_state ^= rng_state >> 12;
            rng_state ^= rng_state << 25;
            rng_state ^= rng_state >> 27;
            let bits = rng_state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11;
            (bits as f64 / (1u64 << 53) as f64).clamp(f64::MIN_POSITIVE, 1.0 - 1e-16)
        };
        let mut arrival = 0u64;

        for op in trace {
            let response = controller.access(op);
            report.requests += 1;
            if op.is_read() {
                report.reads += 1;
            }

            let bank = (geometry.set_index_of(op.addr) % banks as u64) as usize;
            let completion = if response.cost.buffer_hit {
                report.buffer_served += 1;
                arrival + self.config.buffer_cycles
            } else {
                let ports = &mut ports[bank];
                // Reads serialize on the bank's read port...
                let mut read_done = arrival;
                for _ in 0..response.cost.row_reads {
                    let start = read_done.max(ports.read_free_at());
                    report.read_port_stalls += start - read_done;
                    read_done = ports.issue_read(start).expect("issued at free time");
                }
                // ...then writes on the bank's write port (RMW ordering:
                // the row write follows the row read).
                let mut write_done = read_done;
                for _ in 0..response.cost.row_writes {
                    let start = write_done.max(ports.write_free_at());
                    report.write_port_stalls += start - write_done;
                    write_done = ports.issue_write(start).expect("issued at free time");
                }
                write_done.max(arrival + 1)
            };

            if op.is_read() {
                report.total_read_latency += completion - arrival;
            }
            report.cycles = report.cycles.max(completion);

            // Geometric gap (>= 1 instruction) to the next memory op.
            let gap = if memop_prob >= 1.0 {
                1
            } else {
                1 + (next_u01().ln() / (1.0 - memop_prob).ln()).floor() as u64
            };
            arrival += gap;
        }
        // Availability is reported over the most-loaded bank (the paper's
        // single-array case has exactly one).
        report.read_port_busy = ports
            .iter()
            .map(PortSet::read_busy_cycles)
            .max()
            .unwrap_or(0);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache8t_core::{ConventionalController, RmwController, WgController, WgRbController};
    use cache8t_sim::{Address, CacheGeometry, ReplacementKind};
    use cache8t_trace::{MemOp, ProfiledGenerator, TraceGenerator};

    fn geometry() -> CacheGeometry {
        CacheGeometry::new(4096, 4, 32).unwrap()
    }

    fn mixed_trace(n: u64) -> Trace {
        let mut gen = ProfiledGenerator::new(
            cache8t_trace::profiles::by_name("bwaves").unwrap(),
            CacheGeometry::paper_baseline(),
            13,
        );
        gen.collect(n as usize)
    }

    #[test]
    fn single_read_takes_array_latency() {
        let model = PortTimingModel::new(TimingConfig::default());
        let mut c = RmwController::new(geometry(), ReplacementKind::Lru);
        let trace = Trace::new(vec![MemOp::read(Address::new(0x40))], 1);
        let report = model.run(&mut c, &trace);
        assert_eq!(report.cycles, 2);
        assert_eq!(report.reads, 1);
        assert!((report.avg_read_latency() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rmw_write_blocks_following_read() {
        let model = PortTimingModel::new(TimingConfig::default());
        let mut c = RmwController::new(geometry(), ReplacementKind::Lru);
        let a = Address::new(0x40);
        // Write at cycle 0 holds the read port until cycle 2; the read
        // arriving at cycle 1 must stall one cycle.
        let trace = Trace::new(vec![MemOp::write(a, 1), MemOp::read(a.offset(64))], 2);
        let report = model.run(&mut c, &trace);
        assert_eq!(report.read_port_stalls, 1);
        assert!(report.avg_read_latency() > 2.0);
    }

    #[test]
    fn conventional_write_does_not_block_read_port() {
        let model = PortTimingModel::new(TimingConfig::default());
        let mut c = ConventionalController::new(geometry(), ReplacementKind::Lru);
        let a = Address::new(0x40);
        let trace = Trace::new(vec![MemOp::write(a, 1), MemOp::read(a.offset(64))], 2);
        let report = model.run(&mut c, &trace);
        assert_eq!(report.read_port_stalls, 0);
    }

    #[test]
    fn buffer_hits_take_one_cycle() {
        let model = PortTimingModel::new(TimingConfig::default());
        let mut c = WgRbController::new(geometry(), ReplacementKind::Lru);
        let a = Address::new(0x40);
        let trace = Trace::new(
            vec![MemOp::write(a, 1), MemOp::read(a), MemOp::write(a, 2)],
            3,
        );
        let report = model.run(&mut c, &trace);
        assert_eq!(report.buffer_served, 2, "bypassed read + grouped write");
    }

    #[test]
    fn scheme_ordering_on_a_write_heavy_stream() {
        let model = PortTimingModel::new(TimingConfig::default());
        let trace = mixed_trace(20_000);
        let g = CacheGeometry::paper_baseline();
        let rmw = model.run(&mut RmwController::new(g, ReplacementKind::Lru), &trace);
        let wg = model.run(&mut WgController::new(g, ReplacementKind::Lru), &trace);
        let wgrb = model.run(&mut WgRbController::new(g, ReplacementKind::Lru), &trace);
        // Arrivals pace the run identically, so total cycles barely move;
        // the paper's §5.5 effects show up in latency and port pressure.
        assert!(wgrb.avg_read_latency() < rmw.avg_read_latency());
        assert!(wgrb.read_port_stalls < rmw.read_port_stalls);
        // Paper §4.1: WG and WG+RB increase read-port availability.
        assert!(wg.read_port_availability() > rmw.read_port_availability());
        assert!(wgrb.read_port_availability() > wg.read_port_availability());
        // Paper §5.5: WG's performance cost is negligible (within 5 % of
        // RMW's total runtime), WG+RB does not run longer than RMW.
        assert!((wg.cycles as f64) < rmw.cycles as f64 * 1.05);
        assert!(wgrb.cycles <= rmw.cycles);
    }

    #[test]
    fn report_helpers_on_empty_run() {
        let r = TimingReport::default();
        assert_eq!(r.avg_read_latency(), 0.0);
        assert_eq!(r.read_port_availability(), 1.0);
        assert_eq!(r.throughput(), 0.0);
        assert!(!r.to_string().is_empty());
    }

    #[test]
    fn config_accessors() {
        let m = PortTimingModel::new(TimingConfig {
            array_read_cycles: 3,
            array_write_cycles: 4,
            buffer_cycles: 1,
            banks: 1,
        });
        assert_eq!(m.config().array_read_cycles, 3);
        assert_eq!(TimingConfig::default(), TimingConfig::default_config());
        assert_eq!(TimingConfig::banked(8).banks, 8);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        let _ = TimingConfig::banked(0);
    }

    #[test]
    fn banking_relieves_rmw_port_pressure() {
        // Park et al. (paper §2): performing the RMW locally in a sub-array
        // leaves the other sub-arrays available. With banked ports the same
        // RMW stream stalls loads less.
        let trace = mixed_trace(20_000);
        let g = CacheGeometry::paper_baseline();
        let mono = PortTimingModel::new(TimingConfig::default())
            .run(&mut RmwController::new(g, ReplacementKind::Lru), &trace);
        let banked = PortTimingModel::new(TimingConfig::banked(8))
            .run(&mut RmwController::new(g, ReplacementKind::Lru), &trace);
        assert!(banked.read_port_stalls < mono.read_port_stalls);
        assert!(banked.avg_read_latency() <= mono.avg_read_latency());
    }
}
