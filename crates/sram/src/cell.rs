//! SRAM cell state machines.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The logical content of an SRAM cell.
///
/// A real cell always holds *some* voltage, but after a half-select upset
/// the value is unpredictable. Modelling that state explicitly (rather than
/// picking an arbitrary bit) makes corruption impossible to miss in tests:
/// any read of an upset cell yields [`CellValue::Unknown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellValue {
    /// The cell stores logic 0.
    Zero,
    /// The cell stores logic 1.
    One,
    /// The cell was disturbed (half-selected write without RMW) and its
    /// content is unpredictable.
    Unknown,
}

impl CellValue {
    /// Converts a bit to a known cell value.
    #[inline]
    pub fn from_bit(bit: bool) -> Self {
        if bit {
            CellValue::One
        } else {
            CellValue::Zero
        }
    }

    /// Returns the stored bit, or `None` if the value is unknown.
    #[inline]
    pub fn bit(self) -> Option<bool> {
        match self {
            CellValue::Zero => Some(false),
            CellValue::One => Some(true),
            CellValue::Unknown => None,
        }
    }

    /// `true` unless the cell was disturbed.
    #[inline]
    pub fn is_known(self) -> bool {
        !matches!(self, CellValue::Unknown)
    }
}

impl fmt::Display for CellValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellValue::Zero => f.write_str("0"),
            CellValue::One => f.write_str("1"),
            CellValue::Unknown => f.write_str("X"),
        }
    }
}

/// Which transistor topology a cell (or array) uses.
///
/// The topology decides the write protocol: 6T cells tolerate half-selected
/// columns during writes (they are biased as pseudo-reads, per Park et al.),
/// so a partial-row write is safe; 8T cells do not, so every write must be a
/// read-modify-write of the full row. The topology also decides the minimum
/// reliable operating voltage, modelled in `cache8t-energy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Classic six-transistor cell: one shared read/write port, unstable at
    /// low voltage, but half-select-safe during writes.
    SixT,
    /// Eight-transistor cell (paper Figure 1): decoupled read port (M7/M8),
    /// stable at low voltage, but write word-line assertion disturbs
    /// half-selected columns.
    EightT,
}

impl CellKind {
    /// `true` if a partial-row write corrupts half-selected cells, i.e. the
    /// array requires RMW for writes.
    #[inline]
    pub const fn requires_rmw(self) -> bool {
        matches!(self, CellKind::EightT)
    }

    /// Number of transistors per cell.
    #[inline]
    pub const fn transistors(self) -> u32 {
        match self {
            CellKind::SixT => 6,
            CellKind::EightT => 8,
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellKind::SixT => f.write_str("6T"),
            CellKind::EightT => f.write_str("8T"),
        }
    }
}

/// An eight-transistor SRAM cell (paper Figure 1).
///
/// The cross-coupled inverter pair (M1–M4) stores the value; M5/M6 are the
/// write access transistors controlled by the write word line (WWL); M7/M8
/// form the decoupled read stack: with the read bit line (RBL) precharged,
/// raising the read word line (RWL) discharges RBL through M7/M8 iff the
/// cell stores 0 — so reads never disturb the storage node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cell8T {
    q: CellValue,
}

impl Cell8T {
    /// A fresh cell holding logic 0 (power-up state is arbitrary in
    /// silicon; the model picks 0 for determinism).
    pub const fn new() -> Self {
        Cell8T { q: CellValue::Zero }
    }

    /// The stored value.
    #[inline]
    pub const fn value(&self) -> CellValue {
        self.q
    }

    /// Read via the decoupled port: RBL precharged, RWL raised.
    ///
    /// Non-destructive regardless of the stored value — this is the
    /// read-stability benefit of the 8T topology.
    #[inline]
    pub fn read(&self) -> CellValue {
        self.q
    }

    /// Write via WWL with the bit lines actively driven to `bit`.
    #[inline]
    pub fn write_driven(&mut self, bit: bool) {
        self.q = CellValue::from_bit(bit);
    }

    /// WWL raised while the write bit lines are *not* driven (half-selected
    /// column during a naive partial-row write).
    ///
    /// The 8T cell's write-optimized access transistors fight the floating
    /// bit lines and the stored value is lost.
    #[inline]
    pub fn write_floating(&mut self) {
        self.q = CellValue::Unknown;
    }

    /// Directly force a value (used to model soft errors in tests).
    #[inline]
    pub fn force(&mut self, value: CellValue) {
        self.q = value;
    }
}

impl Default for Cell8T {
    fn default() -> Self {
        Cell8T::new()
    }
}

/// A six-transistor SRAM cell, for baseline comparisons.
///
/// The key behavioural difference from [`Cell8T`]: when the (single) word
/// line rises during a write, half-selected 6T cells are biased like a read
/// and keep their value — so 6T arrays do not need RMW.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cell6T {
    q: CellValue,
}

impl Cell6T {
    /// A fresh cell holding logic 0.
    pub const fn new() -> Self {
        Cell6T { q: CellValue::Zero }
    }

    /// The stored value.
    #[inline]
    pub const fn value(&self) -> CellValue {
        self.q
    }

    /// Read through the shared port. Non-destructive at nominal voltage.
    #[inline]
    pub fn read(&self) -> CellValue {
        self.q
    }

    /// Write with driven bit lines.
    #[inline]
    pub fn write_driven(&mut self, bit: bool) {
        self.q = CellValue::from_bit(bit);
    }

    /// Word line raised with undriven (precharged) bit lines: the 6T cell
    /// sees a pseudo-read and retains its value.
    #[inline]
    pub fn write_floating(&mut self) {
        // Half-selected 6T columns are read-biased; no disturbance at
        // nominal voltage.
    }

    /// Directly force a value (used to model soft errors in tests).
    #[inline]
    pub fn force(&mut self, value: CellValue) {
        self.q = value;
    }
}

impl Default for Cell6T {
    fn default() -> Self {
        Cell6T::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_value_bit_roundtrip() {
        assert_eq!(CellValue::from_bit(true), CellValue::One);
        assert_eq!(CellValue::from_bit(false), CellValue::Zero);
        assert_eq!(CellValue::One.bit(), Some(true));
        assert_eq!(CellValue::Zero.bit(), Some(false));
        assert_eq!(CellValue::Unknown.bit(), None);
        assert!(CellValue::One.is_known());
        assert!(!CellValue::Unknown.is_known());
    }

    #[test]
    fn cell_value_display() {
        assert_eq!(CellValue::Zero.to_string(), "0");
        assert_eq!(CellValue::One.to_string(), "1");
        assert_eq!(CellValue::Unknown.to_string(), "X");
    }

    #[test]
    fn eight_t_read_is_nondestructive() {
        let mut c = Cell8T::new();
        c.write_driven(true);
        for _ in 0..10 {
            assert_eq!(c.read(), CellValue::One);
        }
    }

    #[test]
    fn eight_t_half_select_corrupts() {
        let mut c = Cell8T::new();
        c.write_driven(true);
        c.write_floating();
        assert_eq!(c.read(), CellValue::Unknown);
    }

    #[test]
    fn six_t_half_select_is_safe() {
        let mut c = Cell6T::new();
        c.write_driven(true);
        c.write_floating();
        assert_eq!(c.read(), CellValue::One);
    }

    #[test]
    fn kind_protocol_flags() {
        assert!(CellKind::EightT.requires_rmw());
        assert!(!CellKind::SixT.requires_rmw());
        assert_eq!(CellKind::EightT.transistors(), 8);
        assert_eq!(CellKind::SixT.transistors(), 6);
        assert_eq!(CellKind::EightT.to_string(), "8T");
        assert_eq!(CellKind::SixT.to_string(), "6T");
    }

    #[test]
    fn force_overrides_state() {
        let mut c = Cell8T::new();
        c.force(CellValue::Unknown);
        assert_eq!(c.value(), CellValue::Unknown);
        c.write_driven(false);
        assert_eq!(c.value(), CellValue::Zero);
        let mut c6 = Cell6T::new();
        c6.force(CellValue::One);
        assert_eq!(c6.value(), CellValue::One);
    }

    #[test]
    fn default_cells_hold_zero() {
        assert_eq!(Cell8T::default().value(), CellValue::Zero);
        assert_eq!(Cell6T::default().value(), CellValue::Zero);
    }
}
