//! Error types for the array model.

use std::error::Error;
use std::fmt;

/// Errors raised by [`SramArray`](crate::SramArray) operations and
/// configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArrayError {
    /// A configuration parameter was zero.
    EmptyDimension {
        /// Which parameter was zero: `"rows"`, `"words_per_row"` or
        /// `"word_bits"`.
        what: &'static str,
    },
    /// A word wider than 64 bits was requested (the model packs words into
    /// `u64`).
    WordTooWide {
        /// The rejected width.
        word_bits: u32,
    },
    /// A row index was out of range.
    RowOutOfRange {
        /// The rejected row.
        row: usize,
        /// Number of rows in the array.
        rows: usize,
    },
    /// A word index was out of range for the row.
    WordOutOfRange {
        /// The rejected word index.
        word: usize,
        /// Words per row in the array.
        words_per_row: usize,
    },
    /// A full-row write supplied the wrong number of words.
    WrongRowWidth {
        /// Number of words supplied.
        got: usize,
        /// Words per row in the array.
        expected: usize,
    },
}

impl fmt::Display for ArrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrayError::EmptyDimension { what } => {
                write!(f, "array dimension `{what}` must be nonzero")
            }
            ArrayError::WordTooWide { word_bits } => {
                write!(f, "words are limited to 64 bits, got {word_bits}")
            }
            ArrayError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range for array with {rows} rows")
            }
            ArrayError::WordOutOfRange {
                word,
                words_per_row,
            } => {
                write!(
                    f,
                    "word {word} out of range for rows of {words_per_row} words"
                )
            }
            ArrayError::WrongRowWidth { got, expected } => {
                write!(f, "row write needs exactly {expected} words, got {got}")
            }
        }
    }
}

impl Error for ArrayError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_offending_values() {
        assert!(ArrayError::EmptyDimension { what: "rows" }
            .to_string()
            .contains("rows"));
        assert!(ArrayError::WordTooWide { word_bits: 128 }
            .to_string()
            .contains("128"));
        assert!(ArrayError::RowOutOfRange { row: 9, rows: 4 }
            .to_string()
            .contains('9'));
        assert!(ArrayError::WordOutOfRange {
            word: 5,
            words_per_row: 4
        }
        .to_string()
        .contains('5'));
        assert!(ArrayError::WrongRowWidth {
            got: 3,
            expected: 4
        }
        .to_string()
        .contains('3'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<ArrayError>();
    }
}
