//! Array event recording.

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};

/// One observable array operation, in the order it happened.
///
/// Events let tests and the `sram_rmw_walkthrough` harness assert the exact
/// sequencing of the paper's Figure 2 RMW protocol (precharge → row read →
/// latch → drive → row write).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrayEvent {
    /// Read bit lines precharged (RMW step 1 / read step 1).
    Precharge {
        /// The row about to be read.
        row: usize,
    },
    /// Read word line raised; the whole row was sensed (RMW step 2–3).
    ReadRow {
        /// The row that was read.
        row: usize,
    },
    /// Write drivers loaded and write word line raised for a full row
    /// (RMW step 4–5, or a Set-Buffer write-back).
    WriteRow {
        /// The row that was written.
        row: usize,
    },
    /// A *partial* row write without RMW — only legal on 6T arrays; on 8T
    /// arrays this event is always accompanied by half-select corruption.
    PartialWriteRow {
        /// The row that was written.
        row: usize,
        /// The word whose columns were actively driven.
        word: usize,
    },
}

impl ArrayEvent {
    /// The row the event touched.
    pub fn row(&self) -> usize {
        match *self {
            ArrayEvent::Precharge { row }
            | ArrayEvent::ReadRow { row }
            | ArrayEvent::WriteRow { row }
            | ArrayEvent::PartialWriteRow { row, .. } => row,
        }
    }
}

impl fmt::Display for ArrayEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrayEvent::Precharge { row } => write!(f, "precharge(row={row})"),
            ArrayEvent::ReadRow { row } => write!(f, "read-row(row={row})"),
            ArrayEvent::WriteRow { row } => write!(f, "write-row(row={row})"),
            ArrayEvent::PartialWriteRow { row, word } => {
                write!(f, "partial-write-row(row={row}, word={word})")
            }
        }
    }
}

/// A bounded log of recent [`ArrayEvent`]s.
///
/// Disabled by default (capacity 0) so bulk simulation pays nothing;
/// enable with [`EventLog::with_capacity`] for tests and walkthroughs.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: VecDeque<ArrayEvent>,
    capacity: usize,
    total: u64,
}

impl EventLog {
    /// A disabled log that records nothing.
    pub fn disabled() -> Self {
        EventLog::default()
    }

    /// A log keeping the most recent `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            events: VecDeque::with_capacity(capacity),
            capacity,
            total: 0,
        }
    }

    /// `true` if the log records events.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records an event (dropping the oldest if at capacity).
    pub fn record(&mut self, event: ArrayEvent) {
        self.total += 1;
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &ArrayEvent> {
        self.events.iter()
    }

    /// Total events ever recorded (including dropped ones).
    #[inline]
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Drops all retained events (the total count is preserved).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_counts_but_keeps_nothing() {
        let mut log = EventLog::disabled();
        assert!(!log.is_enabled());
        log.record(ArrayEvent::Precharge { row: 0 });
        assert_eq!(log.total_recorded(), 1);
        assert_eq!(log.events().count(), 0);
    }

    #[test]
    fn bounded_log_drops_oldest() {
        let mut log = EventLog::with_capacity(2);
        assert!(log.is_enabled());
        log.record(ArrayEvent::Precharge { row: 0 });
        log.record(ArrayEvent::ReadRow { row: 0 });
        log.record(ArrayEvent::WriteRow { row: 0 });
        let kept: Vec<_> = log.events().copied().collect();
        assert_eq!(
            kept,
            vec![
                ArrayEvent::ReadRow { row: 0 },
                ArrayEvent::WriteRow { row: 0 }
            ]
        );
        assert_eq!(log.total_recorded(), 3);
    }

    #[test]
    fn clear_retains_total() {
        let mut log = EventLog::with_capacity(4);
        log.record(ArrayEvent::ReadRow { row: 1 });
        log.clear();
        assert_eq!(log.events().count(), 0);
        assert_eq!(log.total_recorded(), 1);
    }

    #[test]
    fn event_row_and_display() {
        let e = ArrayEvent::PartialWriteRow { row: 3, word: 1 };
        assert_eq!(e.row(), 3);
        assert_eq!(e.to_string(), "partial-write-row(row=3, word=1)");
        assert_eq!(
            ArrayEvent::Precharge { row: 2 }.to_string(),
            "precharge(row=2)"
        );
        assert_eq!(ArrayEvent::ReadRow { row: 2 }.row(), 2);
        assert_eq!(
            ArrayEvent::WriteRow { row: 2 }.to_string(),
            "write-row(row=2)"
        );
    }
}
