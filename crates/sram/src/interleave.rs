//! Bit interleaving: the word↔column mapping of an interleaved SRAM row.

use serde::{Deserialize, Serialize};

/// The bit-interleaved layout of one SRAM array row.
///
/// To keep multi-bit soft-error upsets confined to *different* words (so
/// that cheap single-error-correcting codes suffice, paper §2), the bits of
/// each word are not stored contiguously. With `w` words per row, bit `b`
/// of word `i` lives in physical column `b * w + i`: walking along the row,
/// consecutive columns belong to consecutive *words*, and the `w` columns of
/// any aligned group all carry the same bit position of different words.
///
/// This is exactly why column selection is an issue: activating a row
/// touches every column, but a write targets the columns of only one word.
///
/// # Example
///
/// ```
/// use cache8t_sram::InterleaveMap;
///
/// let map = InterleaveMap::new(4, 8); // 4 words x 8 bits = 32 columns
/// assert_eq!(map.column_of(0, 0), 0);
/// assert_eq!(map.column_of(1, 0), 1); // adjacent column, different word
/// assert_eq!(map.column_of(0, 1), 4);
/// let (word, bit) = map.word_bit_of(5);
/// assert_eq!((word, bit), (1, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InterleaveMap {
    words_per_row: usize,
    word_bits: u32,
}

impl InterleaveMap {
    /// Creates the mapping for rows of `words_per_row` words of `word_bits`
    /// bits each.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(words_per_row: usize, word_bits: u32) -> Self {
        assert!(words_per_row > 0, "words_per_row must be nonzero");
        assert!(word_bits > 0, "word_bits must be nonzero");
        InterleaveMap {
            words_per_row,
            word_bits,
        }
    }

    /// Words stored in one row.
    #[inline]
    pub const fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Bits per word.
    #[inline]
    pub const fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// Total columns in a row.
    #[inline]
    pub const fn columns(&self) -> usize {
        self.words_per_row * self.word_bits as usize
    }

    /// Physical column of bit `bit` of word `word`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `word` or `bit` is out of range.
    #[inline]
    pub fn column_of(&self, word: usize, bit: u32) -> usize {
        debug_assert!(word < self.words_per_row);
        debug_assert!(bit < self.word_bits);
        bit as usize * self.words_per_row + word
    }

    /// Inverse mapping: the `(word, bit)` stored in physical column `col`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `col` is out of range.
    #[inline]
    pub fn word_bit_of(&self, col: usize) -> (usize, u32) {
        debug_assert!(col < self.columns());
        (col % self.words_per_row, (col / self.words_per_row) as u32)
    }

    /// Iterator over the physical columns of `word`, in bit order.
    pub fn columns_of_word(&self, word: usize) -> impl Iterator<Item = usize> + '_ {
        let w = self.words_per_row;
        (0..self.word_bits).map(move |b| b as usize * w + word)
    }

    /// The largest number of bits any single word loses to a burst upset of
    /// `burst` physically adjacent columns.
    ///
    /// With interleaving degree `w = words_per_row`, a burst of up to `w`
    /// adjacent columns corrupts at most one bit per word — the property
    /// that makes single-error correction sufficient (paper §2).
    pub fn max_bits_per_word_in_burst(&self, burst: usize) -> u32 {
        if burst == 0 {
            return 0;
        }
        // A burst of length L hits ceil(L / w) bits of the worst-case word.
        (burst.div_ceil(self.words_per_row)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_a_bijection() {
        let map = InterleaveMap::new(4, 16);
        let mut seen = vec![false; map.columns()];
        for word in 0..4 {
            for bit in 0..16 {
                let col = map.column_of(word, bit);
                assert!(!seen[col], "column {col} mapped twice");
                seen[col] = true;
                assert_eq!(map.word_bit_of(col), (word, bit));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn adjacent_columns_hold_different_words() {
        let map = InterleaveMap::new(4, 8);
        for col in 0..map.columns() - 1 {
            let (w0, _) = map.word_bit_of(col);
            let (w1, _) = map.word_bit_of(col + 1);
            if (col + 1) % 4 != 0 {
                assert_ne!(w0, w1, "columns {col},{} share word {w0}", col + 1);
            }
        }
    }

    #[test]
    fn burst_within_interleave_degree_hits_one_bit_per_word() {
        let map = InterleaveMap::new(8, 32);
        assert_eq!(map.max_bits_per_word_in_burst(0), 0);
        assert_eq!(map.max_bits_per_word_in_burst(1), 1);
        assert_eq!(map.max_bits_per_word_in_burst(8), 1);
        assert_eq!(map.max_bits_per_word_in_burst(9), 2);
        assert_eq!(map.max_bits_per_word_in_burst(16), 2);
    }

    #[test]
    fn columns_of_word_matches_forward_map() {
        let map = InterleaveMap::new(4, 8);
        let cols: Vec<usize> = map.columns_of_word(2).collect();
        assert_eq!(cols.len(), 8);
        for (bit, col) in cols.iter().enumerate() {
            assert_eq!(*col, map.column_of(2, bit as u32));
        }
    }

    #[test]
    fn single_word_row_degenerates_to_contiguous() {
        let map = InterleaveMap::new(1, 8);
        for bit in 0..8 {
            assert_eq!(map.column_of(0, bit), bit as usize);
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_words_rejected() {
        let _ = InterleaveMap::new(0, 8);
    }
}
