//! Banked (sub-arrayed) SRAM: the physical substrate of Park et al.'s
//! local RMW (paper §2).
//!
//! Large SRAMs are split into sub-arrays with hierarchical bit lines; Park
//! et al. exploit this to perform the RMW write-back *inside* one
//! sub-array, leaving the others able to service requests. [`BankedArray`]
//! models exactly that: rows are distributed over `banks` sub-arrays (by
//! row index modulo, matching a cache's set-index banking), each with its
//! own 1R+1W [`PortSet`]; an RMW occupies only its own bank's ports.

use std::fmt;

use crate::{ArrayConfig, ArrayError, OpLatency, PortBusyError, PortSet, SramArray};

/// An 8T SRAM split into independently ported sub-arrays.
///
/// # Example
///
/// ```
/// use cache8t_sram::{ArrayConfig, BankedArray, OpLatency};
///
/// # fn main() -> Result<(), cache8t_sram::ArrayError> {
/// let config = ArrayConfig::new(8, 4, 16)?;
/// let mut array = BankedArray::new(config, 4, OpLatency::single_cycle())?;
///
/// // An RMW in bank 0 (row 0) and a read in bank 1 (row 1) overlap...
/// let rmw_done = array.issue_rmw(0, 0, 0, 7).unwrap();
/// let read_done = array.issue_read(1, 0).unwrap();
/// assert_eq!(rmw_done, 2);
/// assert_eq!(read_done.1, 1);
/// // ...while a read in bank 0 must wait for the local RMW.
/// assert!(array.issue_read(4, 0).is_err()); // row 4 is bank 0 again
/// # Ok(())
/// # }
/// ```
pub struct BankedArray {
    banks: Vec<SramArray>,
    ports: Vec<PortSet>,
    rows: usize,
}

impl BankedArray {
    /// Splits `config.rows()` over `banks` sub-arrays (row `r` lives in
    /// bank `r % banks`), each with its own ports.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::EmptyDimension`] if `banks` is zero or does
    /// not divide the row count.
    pub fn new(config: ArrayConfig, banks: usize, latency: OpLatency) -> Result<Self, ArrayError> {
        if banks == 0 || !config.rows().is_multiple_of(banks) {
            return Err(ArrayError::EmptyDimension { what: "rows" });
        }
        let per_bank = ArrayConfig::new(
            config.rows() / banks,
            config.words_per_row(),
            config.word_bits(),
        )?;
        Ok(BankedArray {
            banks: (0..banks).map(|_| SramArray::new(per_bank)).collect(),
            ports: (0..banks).map(|_| PortSet::new(latency)).collect(),
            rows: config.rows(),
        })
    }

    /// Number of sub-arrays.
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// Total rows across all banks.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Maps a global row to `(bank, local_row)`.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::RowOutOfRange`] if `row >= rows()`.
    pub fn locate(&self, row: usize) -> Result<(usize, usize), ArrayError> {
        if row >= self.rows {
            return Err(ArrayError::RowOutOfRange {
                row,
                rows: self.rows,
            });
        }
        Ok((row % self.banks.len(), row / self.banks.len()))
    }

    /// The sub-array holding `row` (for data inspection).
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::RowOutOfRange`] for a bad row.
    pub fn bank_of(&self, row: usize) -> Result<&SramArray, ArrayError> {
        let (bank, _) = self.locate(row)?;
        Ok(&self.banks[bank])
    }

    /// Issues a row read at cycle `now`, using only the owning bank's read
    /// port. Returns the sensed words and the completion cycle.
    ///
    /// # Errors
    ///
    /// Returns a range error for a bad row; a [`PortBusyError`] (inside
    /// `Ok(Err(..))` is avoided — busy ports surface as `Err` via
    /// [`ArrayError`]-independent [`PortBusyError`]) when the bank's read
    /// port is occupied.
    #[allow(clippy::type_complexity)]
    pub fn issue_read(
        &mut self,
        row: usize,
        now: u64,
    ) -> Result<(Vec<Option<u64>>, u64), BankedIssueError> {
        let (bank, local) = self.locate(row)?;
        let done = self.ports[bank].issue_read(now)?;
        let words = self.banks[bank].read_row(local)?;
        Ok((words, done))
    }

    /// Issues a *local* RMW of one word at cycle `now`: read phase then
    /// write phase, both confined to the owning bank's ports (Park et
    /// al.'s scheme). Returns the completion cycle.
    ///
    /// # Errors
    ///
    /// Returns a range error for a bad row/word or a port-busy error when
    /// the bank cannot accept the RMW.
    pub fn issue_rmw(
        &mut self,
        row: usize,
        word: usize,
        now: u64,
        value: u64,
    ) -> Result<u64, BankedIssueError> {
        let (bank, local) = self.locate(row)?;
        let done = self.ports[bank].issue_rmw(now)?;
        self.banks[bank].rmw_write_word(local, word, value)?;
        Ok(done)
    }

    /// Total activations summed over all banks.
    pub fn total_activations(&self) -> u64 {
        self.banks
            .iter()
            .map(|b| b.counters().total_activations())
            .sum()
    }

    /// Exports the aggregate counters into an obs registry: the per-bank
    /// `sram.*` counters accumulate (each bank's bridge adds into the same
    /// names), the port busy-cycle gauges are summed over banks, and a
    /// `sram.banks` gauge records the sub-array count.
    pub fn export_obs_metrics(&self, registry: &mut cache8t_obs::MetricRegistry) {
        for bank in &self.banks {
            bank.export_obs_metrics(registry);
        }
        let read: u64 = self.ports.iter().map(PortSet::read_busy_cycles).sum();
        let write: u64 = self.ports.iter().map(PortSet::write_busy_cycles).sum();
        let id = registry.gauge("sram.read_port_busy_cycles");
        registry.set(id, read as i64);
        let id = registry.gauge("sram.write_port_busy_cycles");
        registry.set(id, write as i64);
        let id = registry.gauge("sram.banks");
        registry.set(id, self.banks.len() as i64);
    }

    /// Converts every bank's retained event log into obs trace events,
    /// with `addr` mapped back to the *global* row index
    /// (`local * banks + bank`, the inverse of [`locate`](Self::locate)).
    pub fn obs_trace_events(&self) -> Vec<cache8t_obs::TraceEvent> {
        let banks = self.banks.len() as u64;
        let mut events = Vec::new();
        for (bank, array) in self.banks.iter().enumerate() {
            events.extend(array.obs_trace_events().into_iter().map(|mut e| {
                e.addr = e.addr * banks + bank as u64;
                e
            }));
        }
        events
    }
}

impl fmt::Debug for BankedArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BankedArray")
            .field("banks", &self.banks.len())
            .field("rows", &self.rows)
            .field("total_activations", &self.total_activations())
            .finish_non_exhaustive()
    }
}

/// Why a banked issue failed: either the address was bad or the bank's
/// port was busy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BankedIssueError {
    /// Row or word out of range.
    Array(ArrayError),
    /// The owning bank's port is occupied.
    PortBusy(PortBusyError),
}

impl fmt::Display for BankedIssueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BankedIssueError::Array(e) => write!(f, "{e}"),
            BankedIssueError::PortBusy(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BankedIssueError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BankedIssueError::Array(e) => Some(e),
            BankedIssueError::PortBusy(e) => Some(e),
        }
    }
}

impl From<ArrayError> for BankedIssueError {
    fn from(e: ArrayError) -> Self {
        BankedIssueError::Array(e)
    }
}

impl From<PortBusyError> for BankedIssueError {
    fn from(e: PortBusyError) -> Self {
        BankedIssueError::PortBusy(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> BankedArray {
        BankedArray::new(
            ArrayConfig::new(8, 4, 16).unwrap(),
            4,
            OpLatency::single_cycle(),
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_divisibility() {
        let config = ArrayConfig::new(8, 4, 16).unwrap();
        assert!(BankedArray::new(config, 0, OpLatency::single_cycle()).is_err());
        assert!(BankedArray::new(config, 3, OpLatency::single_cycle()).is_err());
        let a = BankedArray::new(config, 2, OpLatency::single_cycle()).unwrap();
        assert_eq!(a.banks(), 2);
        assert_eq!(a.rows(), 8);
    }

    #[test]
    fn rows_interleave_across_banks() {
        let a = array();
        assert_eq!(a.locate(0).unwrap(), (0, 0));
        assert_eq!(a.locate(1).unwrap(), (1, 0));
        assert_eq!(a.locate(5).unwrap(), (1, 1));
        assert_eq!(a.locate(7).unwrap(), (3, 1));
        assert!(a.locate(8).is_err());
    }

    #[test]
    fn rmw_in_one_bank_does_not_block_others() {
        let mut a = array();
        a.issue_rmw(0, 0, 0, 5).unwrap(); // bank 0 busy [0,2)
                                          // Banks 1..3 are free at cycle 0.
        for row in 1..4 {
            a.issue_read(row, 0).unwrap();
        }
        // Bank 0 is not.
        assert!(matches!(
            a.issue_read(4, 0),
            Err(BankedIssueError::PortBusy(_))
        ));
        // After the local RMW completes, bank 0 reads again.
        let (words, done) = a.issue_read(4, 2).unwrap();
        assert_eq!(done, 3);
        assert_eq!(words.len(), 4);
    }

    #[test]
    fn data_lands_in_the_right_bank_row() {
        let mut a = array();
        a.issue_rmw(6, 2, 0, 0xAB).unwrap(); // bank 2, local row 1
        let bank = a.bank_of(6).unwrap();
        assert_eq!(bank.peek_row(1).unwrap()[2], Some(0xAB));
        // The sibling row in the same bank is untouched.
        assert_eq!(bank.peek_row(0).unwrap()[2], Some(0));
        assert_eq!(a.total_activations(), 2);
    }

    #[test]
    fn issue_read_returns_row_contents() {
        let mut a = array();
        a.issue_rmw(3, 1, 0, 0x7F).unwrap();
        let (words, _) = a.issue_read(3, 5).unwrap();
        assert_eq!(words[1], Some(0x7F));
    }

    #[test]
    fn obs_bridge_aggregates_banks_and_remaps_rows() {
        use crate::EventLog;
        let mut a = array();
        for bank in &mut a.banks {
            bank.set_event_log(EventLog::with_capacity(8));
        }
        a.issue_rmw(6, 2, 0, 0xAB).unwrap(); // bank 2, local row 1
        a.issue_read(1, 0).unwrap(); // bank 1, local row 0

        let mut reg = cache8t_obs::MetricRegistry::new();
        a.export_obs_metrics(&mut reg);
        assert_eq!(reg.counter_by_name("sram.rmw_ops"), Some(1));
        assert_eq!(reg.counter_by_name("sram.row_reads"), Some(2)); // RMW read phase + demand read
        let names = reg.names();
        assert!(names.contains(&"sram.banks"));
        assert!(names.contains(&"sram.read_port_busy_cycles"));

        let events = a.obs_trace_events();
        assert!(!events.is_empty());
        // Every event's addr is a valid *global* row, and the rows touched
        // (6 via the RMW, 1 via the read) appear under their global index.
        assert!(events.iter().all(|e| (e.addr as usize) < a.rows()));
        assert!(events.iter().any(|e| e.addr == 6));
        assert!(events.iter().any(|e| e.addr == 1));
    }

    #[test]
    fn errors_carry_sources() {
        let mut a = array();
        let err = a.issue_read(99, 0).unwrap_err();
        assert!(matches!(err, BankedIssueError::Array(_)));
        assert!(std::error::Error::source(&err).is_some());
        assert!(!err.to_string().is_empty());
        a.issue_rmw(0, 0, 0, 1).unwrap();
        let busy = a.issue_rmw(0, 0, 0, 2).unwrap_err();
        assert!(matches!(busy, BankedIssueError::PortBusy(_)));
    }
}
