//! The 8T array's decoupled read/write ports.
//!
//! An 8T array has one read port (RWL + RBL) and one write port (WWL +
//! WBL/WBLB) that can in principle serve one read and one write in the same
//! cycle (paper §1). RMW destroys that concurrency: the row read of the RMW
//! sequence occupies the read port, so a write blocks a concurrent read
//! (paper §2, citing Park et al.). [`PortSet`] models exactly this resource
//! conflict; `cache8t-cpu` builds its timing model on it.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Which array port an operation needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortKind {
    /// The decoupled read port (RWL/RBL).
    Read,
    /// The write port (WWL/WBL).
    Write,
}

impl fmt::Display for PortKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortKind::Read => f.write_str("read port"),
            PortKind::Write => f.write_str("write port"),
        }
    }
}

/// Cycle costs of the primitive array operations.
///
/// Defaults are in cycles of the array clock: a row read and a row write
/// each take one cycle; an RMW is a read followed by a write (two cycles,
/// holding the read port for the first and the write port for the second —
/// plus the write-back multiplexing, folded into the write cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpLatency {
    /// Cycles a row read holds the read port.
    pub read_cycles: u64,
    /// Cycles a row write holds the write port.
    pub write_cycles: u64,
}

impl OpLatency {
    /// One cycle per row operation — the model's default clocking.
    pub const fn single_cycle() -> Self {
        OpLatency {
            read_cycles: 1,
            write_cycles: 1,
        }
    }
}

impl Default for OpLatency {
    fn default() -> Self {
        OpLatency::single_cycle()
    }
}

/// An operation was issued while its port was still busy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortBusyError {
    /// The contended port.
    pub port: PortKind,
    /// The cycle at which the port becomes free.
    pub free_at: u64,
}

impl fmt::Display for PortBusyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} busy until cycle {}", self.port, self.free_at)
    }
}

impl std::error::Error for PortBusyError {}

/// Occupancy tracker for the 1R + 1W ports of an 8T array.
///
/// Operations are issued at a caller-supplied cycle; the tracker either
/// schedules them (returning the completion cycle) or reports when the
/// contended port frees up. It also accumulates busy-cycle totals so the
/// read-port-availability numbers of paper §4.1 can be computed.
///
/// # Example
///
/// ```
/// use cache8t_sram::{OpLatency, PortSet};
///
/// let mut ports = PortSet::new(OpLatency::single_cycle());
/// // A read and an independent write can overlap (the 8T benefit)...
/// assert_eq!(ports.issue_read(0).unwrap(), 1);
/// assert_eq!(ports.issue_write(0).unwrap(), 1);
/// // ...but an RMW write holds *both* ports.
/// let done = ports.issue_rmw(1).unwrap();
/// assert_eq!(done, 3);
/// assert!(ports.issue_read(1).is_err(), "read port taken by the RMW");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PortSet {
    latency: OpLatency,
    read_free_at: u64,
    write_free_at: u64,
    read_busy_cycles: u64,
    write_busy_cycles: u64,
}

impl PortSet {
    /// Creates an idle port set with the given operation latencies.
    pub fn new(latency: OpLatency) -> Self {
        PortSet {
            latency,
            ..PortSet::default()
        }
    }

    /// Cycle at which the read port is next free.
    #[inline]
    pub fn read_free_at(&self) -> u64 {
        self.read_free_at
    }

    /// Cycle at which the write port is next free.
    #[inline]
    pub fn write_free_at(&self) -> u64 {
        self.write_free_at
    }

    /// Total cycles the read port has been held.
    #[inline]
    pub fn read_busy_cycles(&self) -> u64 {
        self.read_busy_cycles
    }

    /// Total cycles the write port has been held.
    #[inline]
    pub fn write_busy_cycles(&self) -> u64 {
        self.write_busy_cycles
    }

    /// Exports the busy-cycle totals into an obs registry as
    /// `sram.read_port_busy_cycles` / `sram.write_port_busy_cycles`
    /// (gauges: a snapshot of occupancy, not a merged count).
    pub fn export_obs_metrics(&self, registry: &mut cache8t_obs::MetricRegistry) {
        let read = registry.gauge("sram.read_port_busy_cycles");
        registry.set(read, self.read_busy_cycles as i64);
        let write = registry.gauge("sram.write_port_busy_cycles");
        registry.set(write, self.write_busy_cycles as i64);
    }

    /// Issues a row read at cycle `now`.
    ///
    /// # Errors
    ///
    /// Returns [`PortBusyError`] if the read port is busy.
    pub fn issue_read(&mut self, now: u64) -> Result<u64, PortBusyError> {
        if now < self.read_free_at {
            return Err(PortBusyError {
                port: PortKind::Read,
                free_at: self.read_free_at,
            });
        }
        self.read_free_at = now + self.latency.read_cycles;
        self.read_busy_cycles += self.latency.read_cycles;
        Ok(self.read_free_at)
    }

    /// Issues a row write at cycle `now` (no RMW — a full-row write such as
    /// a Set-Buffer write-back, which needs no prior row read).
    ///
    /// # Errors
    ///
    /// Returns [`PortBusyError`] if the write port is busy.
    pub fn issue_write(&mut self, now: u64) -> Result<u64, PortBusyError> {
        if now < self.write_free_at {
            return Err(PortBusyError {
                port: PortKind::Write,
                free_at: self.write_free_at,
            });
        }
        self.write_free_at = now + self.latency.write_cycles;
        self.write_busy_cycles += self.latency.write_cycles;
        Ok(self.write_free_at)
    }

    /// Issues an RMW at cycle `now`: the row read occupies the read port,
    /// then the merged row write occupies the write port.
    ///
    /// # Errors
    ///
    /// Returns [`PortBusyError`] naming the first busy port.
    pub fn issue_rmw(&mut self, now: u64) -> Result<u64, PortBusyError> {
        if now < self.read_free_at {
            return Err(PortBusyError {
                port: PortKind::Read,
                free_at: self.read_free_at,
            });
        }
        if now + self.latency.read_cycles < self.write_free_at {
            return Err(PortBusyError {
                port: PortKind::Write,
                free_at: self.write_free_at,
            });
        }
        self.read_free_at = now + self.latency.read_cycles;
        self.read_busy_cycles += self.latency.read_cycles;
        self.write_free_at = self.read_free_at + self.latency.write_cycles;
        self.write_busy_cycles += self.latency.write_cycles;
        Ok(self.write_free_at)
    }

    /// `true` if a read issued at `now` would not block.
    #[inline]
    pub fn read_available(&self, now: u64) -> bool {
        now >= self.read_free_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_and_write_overlap() {
        let mut p = PortSet::new(OpLatency::single_cycle());
        assert_eq!(p.issue_read(5).unwrap(), 6);
        assert_eq!(p.issue_write(5).unwrap(), 6);
        assert_eq!(p.read_busy_cycles(), 1);
        assert_eq!(p.write_busy_cycles(), 1);
    }

    #[test]
    fn rmw_blocks_concurrent_read() {
        let mut p = PortSet::new(OpLatency::single_cycle());
        assert_eq!(p.issue_rmw(0).unwrap(), 2);
        let err = p.issue_read(0).unwrap_err();
        assert_eq!(err.port, PortKind::Read);
        assert_eq!(err.free_at, 1);
        assert!(p.read_available(1));
        assert_eq!(p.issue_read(1).unwrap(), 2);
    }

    #[test]
    fn busy_port_reports_free_time() {
        let mut p = PortSet::new(OpLatency {
            read_cycles: 3,
            write_cycles: 2,
        });
        p.issue_read(0).unwrap();
        let err = p.issue_read(2).unwrap_err();
        assert_eq!(err.free_at, 3);
        assert!(err.to_string().contains("read port"));
        p.issue_read(3).unwrap();
    }

    #[test]
    fn rmw_respects_pending_write() {
        let mut p = PortSet::new(OpLatency::single_cycle());
        // Write busy until cycle 3.
        p.issue_write(2).unwrap();
        // RMW at 0 would want the write port at cycle 1 < 3.
        let err = p.issue_rmw(0).unwrap_err();
        assert_eq!(err.port, PortKind::Write);
    }

    #[test]
    fn busy_cycle_accounting_accumulates() {
        let mut p = PortSet::new(OpLatency::single_cycle());
        p.issue_rmw(0).unwrap();
        p.issue_rmw(2).unwrap();
        assert_eq!(p.read_busy_cycles(), 2);
        assert_eq!(p.write_busy_cycles(), 2);
    }

    #[test]
    fn port_kind_display() {
        assert_eq!(PortKind::Read.to_string(), "read port");
        assert_eq!(PortKind::Write.to_string(), "write port");
    }
}
