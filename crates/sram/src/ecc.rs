//! SEC-DED error correction — the reason bit interleaving exists.
//!
//! The paper's §2: *"bit-interleaving is used to reduce the probability of
//! upsetting two bits in one word making using simple and low cost one bit
//! correction techniques possible"*. This module supplies that "simple and
//! low cost" technique — a Hamming(72,64) single-error-correct /
//! double-error-detect code — and an [`EccArray`] pairing a data array with
//! its check-bit array, so the soft-error story is demonstrable end to end:
//! a multi-bit burst lands on adjacent columns, interleaving spreads it to
//! at most one bit per word, and SEC-DED repairs every word.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ArrayConfig, ArrayError, CellKind, SramArray};

/// Codeword length: 64 data bits + 8 check bits.
const CODE_BITS: u32 = 72;

/// Outcome of decoding one SEC-DED codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EccStatus {
    /// No error detected.
    Clean,
    /// A single-bit error was detected and corrected.
    Corrected {
        /// 1-based codeword position of the flipped bit (1..=72).
        position: u32,
    },
    /// A double-bit error was detected; the data is unrecoverable.
    Uncorrectable,
}

impl EccStatus {
    /// `true` unless the error was uncorrectable.
    pub fn is_usable(self) -> bool {
        !matches!(self, EccStatus::Uncorrectable)
    }
}

impl fmt::Display for EccStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EccStatus::Clean => f.write_str("clean"),
            EccStatus::Corrected { position } => write!(f, "corrected(bit {position})"),
            EccStatus::Uncorrectable => f.write_str("uncorrectable"),
        }
    }
}

/// The Hamming(72,64) SEC-DED codec.
///
/// Codeword positions are numbered 1..=72. Positions that are powers of two
/// (1, 2, 4, 8, 16, 32, 64) hold the seven Hamming check bits; position 72
/// would be data, but the eighth check bit is the *overall parity*, kept
/// separately as bit 7 of the check byte. The 64 data bits fill the
/// remaining positions in ascending order.
///
/// # Example
///
/// ```
/// use cache8t_sram::{EccStatus, SecDed64};
///
/// let data = 0xDEAD_BEEF_0123_4567;
/// let check = SecDed64::encode(data);
/// // A cosmic ray flips one data bit...
/// let upset = data ^ (1 << 17);
/// let (fixed, status) = SecDed64::decode(upset, check);
/// assert_eq!(fixed, data);
/// assert!(matches!(status, EccStatus::Corrected { .. }));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecDed64;

/// `true` if codeword position `pos` (1-based) holds a Hamming check bit.
fn is_check_position(pos: u32) -> bool {
    pos.is_power_of_two()
}

/// Maps data bit index (0..64) to its codeword position (1..=72, skipping
/// check positions).
fn data_position(bit: u32) -> u32 {
    debug_assert!(bit < 64);
    // Precomputing would be faster; clarity wins at this scale.
    let mut remaining = bit;
    for pos in 1..=CODE_BITS {
        if is_check_position(pos) {
            continue;
        }
        if remaining == 0 {
            return pos;
        }
        remaining -= 1;
    }
    unreachable!("64 data positions exist in 72 bits")
}

/// Inverse of [`data_position`]: codeword position to data bit index.
fn position_data_bit(pos: u32) -> Option<u32> {
    if is_check_position(pos) || pos == 0 || pos > CODE_BITS {
        return None;
    }
    let mut bit = 0;
    for p in 1..pos {
        if !is_check_position(p) {
            bit += 1;
        }
    }
    Some(bit)
}

impl SecDed64 {
    /// Computes the 8 check bits for `data`: bits 0..7 are the Hamming
    /// parities for syndrome bits 1, 2, 4, 8, 16, 32, 64; bit 7 is the
    /// overall codeword parity.
    pub fn encode(data: u64) -> u8 {
        let mut check = 0u8;
        // Hamming parities over data positions.
        for (i, mask) in [1u32, 2, 4, 8, 16, 32, 64].iter().enumerate() {
            let mut parity = false;
            for bit in 0..64 {
                if data >> bit & 1 == 1 && data_position(bit) & mask != 0 {
                    parity = !parity;
                }
            }
            if parity {
                check |= 1 << i;
            }
        }
        // Overall parity over data + the seven Hamming bits.
        let ones = data.count_ones() + u32::from(check & 0x7F).count_ones();
        if ones % 2 == 1 {
            check |= 0x80;
        }
        check
    }

    /// Decodes a possibly-corrupted `(data, check)` pair, returning the
    /// corrected data and what happened.
    ///
    /// Corrections in check positions return the data unchanged (the error
    /// was in the redundancy). [`EccStatus::Uncorrectable`] returns the
    /// data as received.
    pub fn decode(data: u64, check: u8) -> (u64, EccStatus) {
        // Syndrome and overall parity over the *received* codeword: data
        // bits at their positions, Hamming bits at the power-of-two
        // positions, the stored overall-parity bit on top.
        let mut syndrome = 0u32;
        let mut ones = 0u32;
        for bit in 0..64 {
            if data >> bit & 1 == 1 {
                syndrome ^= data_position(bit);
                ones += 1;
            }
        }
        for j in 0..7 {
            if check >> j & 1 == 1 {
                syndrome ^= 1u32 << j;
                ones += 1;
            }
        }
        let overall_odd = (ones + u32::from(check >> 7)) % 2 == 1;
        match (syndrome, overall_odd) {
            (0, false) => (data, EccStatus::Clean),
            // The overall-parity bit itself flipped; data is intact.
            (0, true) => (
                data,
                EccStatus::Corrected {
                    position: CODE_BITS,
                },
            ),
            (s, true) => {
                if s > CODE_BITS {
                    // Syndrome points outside the codeword: miscorrection
                    // risk; treat as uncorrectable.
                    return (data, EccStatus::Uncorrectable);
                }
                match position_data_bit(s) {
                    Some(bit) => (data ^ (1u64 << bit), EccStatus::Corrected { position: s }),
                    None => (data, EccStatus::Corrected { position: s }), // check-bit error
                }
            }
            (_, false) => (data, EccStatus::Uncorrectable),
        }
    }
}

/// An 8T data array paired with its SEC-DED check-bit array.
///
/// Real arrays store the check bits as extra (equally interleaved) columns;
/// modelling them as a parallel [`SramArray`] keeps the 64-bit word limit
/// of the base model while preserving the behaviour that matters: check
/// bits travel with their word through every read, write and RMW.
///
/// # Example
///
/// ```
/// use cache8t_sram::{ArrayConfig, EccArray, EccStatus};
///
/// # fn main() -> Result<(), cache8t_sram::ArrayError> {
/// let mut array = EccArray::new(ArrayConfig::new(4, 4, 64)?)?;
/// array.rmw_write_word(0, 1, 0xABCD)?;
/// // Strike one bit of word 1's data columns.
/// array.flip_data_bit(0, 1, 7)?;
/// let (value, status) = array.read_word_corrected(0, 1)?;
/// assert_eq!(value, Some(0xABCD));
/// assert!(matches!(status, EccStatus::Corrected { .. }));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EccArray {
    data: SramArray,
    check: SramArray,
}

impl EccArray {
    /// Creates a zeroed ECC-protected 8T array. `config.word_bits()` must
    /// be 64 (the codec is fixed at Hamming(72,64)).
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::WordTooWide`] if the word width is not 64, or
    /// any error from the underlying array construction.
    pub fn new(config: ArrayConfig) -> Result<Self, ArrayError> {
        if config.word_bits() != 64 {
            return Err(ArrayError::WordTooWide {
                word_bits: config.word_bits(),
            });
        }
        let check_config = ArrayConfig::new(config.rows(), config.words_per_row(), 8)?;
        Ok(EccArray {
            data: SramArray::new(config),
            check: SramArray::with_kind(check_config, CellKind::EightT),
        })
    }

    /// The data array (counters, peeking).
    pub fn data_array(&self) -> &SramArray {
        &self.data
    }

    /// The check-bit array.
    pub fn check_array(&self) -> &SramArray {
        &self.check
    }

    /// RMW-writes one word and its freshly encoded check bits.
    ///
    /// # Errors
    ///
    /// Propagates range errors from the underlying arrays.
    pub fn rmw_write_word(
        &mut self,
        row: usize,
        word: usize,
        value: u64,
    ) -> Result<(), ArrayError> {
        self.data.rmw_write_word(row, word, value)?;
        self.check
            .rmw_write_word(row, word, u64::from(SecDed64::encode(value)))?;
        Ok(())
    }

    /// Reads one word and runs SEC-DED over it.
    ///
    /// Returns `(None, Uncorrectable)` when the stored value is physically
    /// unknown (half-select corruption cannot be repaired by ECC — it is
    /// an erasure of a whole row, not a bit flip).
    ///
    /// # Errors
    ///
    /// Propagates range errors from the underlying arrays.
    pub fn read_word_corrected(
        &mut self,
        row: usize,
        word: usize,
    ) -> Result<(Option<u64>, EccStatus), ArrayError> {
        let data = self.data.read_word(row, word)?;
        let check = self.check.read_word(row, word)?;
        match (data, check) {
            (Some(data), Some(check)) => {
                let (fixed, status) = SecDed64::decode(data, check as u8);
                if status.is_usable() {
                    Ok((Some(fixed), status))
                } else {
                    Ok((None, status))
                }
            }
            _ => Ok((None, EccStatus::Uncorrectable)),
        }
    }

    /// Flips one *data* bit of a stored word (a soft-error strike).
    ///
    /// # Errors
    ///
    /// Returns a range error for a bad row/word; `bit` is checked with a
    /// panic in debug builds.
    pub fn flip_data_bit(&mut self, row: usize, word: usize, bit: u32) -> Result<(), ArrayError> {
        debug_assert!(bit < 64);
        let col = self.data.config().interleave_map().column_of(word, bit);
        self.data.flip_cell(row, col)
    }

    /// Strikes `burst` physically adjacent data columns starting at
    /// `start_col` in `row` — the multi-bit upset scenario interleaving
    /// protects against.
    ///
    /// # Errors
    ///
    /// Returns a range error for a bad row; out-of-range columns are
    /// clipped.
    pub fn strike_burst(
        &mut self,
        row: usize,
        start_col: usize,
        burst: usize,
    ) -> Result<(), ArrayError> {
        let columns = self.data.config().columns();
        for col in start_col..(start_col + burst).min(columns) {
            self.data.flip_cell(row, col)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_roundtrip() {
        for data in [0u64, u64::MAX, 0xDEAD_BEEF, 0x0123_4567_89AB_CDEF] {
            let check = SecDed64::encode(data);
            let (decoded, status) = SecDed64::decode(data, check);
            assert_eq!(decoded, data);
            assert_eq!(status, EccStatus::Clean);
        }
    }

    #[test]
    fn every_single_data_bit_flip_is_corrected() {
        let data = 0xA5A5_5A5A_0F0F_F0F0u64;
        let check = SecDed64::encode(data);
        for bit in 0..64 {
            let upset = data ^ (1u64 << bit);
            let (decoded, status) = SecDed64::decode(upset, check);
            assert_eq!(decoded, data, "bit {bit}");
            assert!(
                matches!(status, EccStatus::Corrected { .. }),
                "bit {bit}: {status}"
            );
        }
    }

    #[test]
    fn every_single_check_bit_flip_is_tolerated() {
        let data = 0x1234_5678_9ABC_DEF0u64;
        let check = SecDed64::encode(data);
        for bit in 0..8 {
            let upset_check = check ^ (1u8 << bit);
            let (decoded, status) = SecDed64::decode(data, upset_check);
            assert_eq!(decoded, data, "check bit {bit}");
            assert!(
                matches!(status, EccStatus::Corrected { .. }),
                "check bit {bit}"
            );
        }
    }

    #[test]
    fn double_data_bit_flips_are_detected() {
        let data = 0xCAFE_BABE_DEAD_F00Du64;
        let check = SecDed64::encode(data);
        for (a, b) in [(0u32, 1u32), (5, 40), (62, 63), (10, 33)] {
            let upset = data ^ (1u64 << a) ^ (1u64 << b);
            let (_, status) = SecDed64::decode(upset, check);
            assert_eq!(status, EccStatus::Uncorrectable, "bits {a},{b}");
        }
    }

    #[test]
    fn data_plus_check_double_flip_is_detected() {
        let data = 7u64;
        let check = SecDed64::encode(data);
        let (_, status) = SecDed64::decode(data ^ 2, check ^ 1);
        assert_eq!(status, EccStatus::Uncorrectable);
    }

    #[test]
    fn position_maps_are_inverse() {
        for bit in 0..64 {
            let pos = data_position(bit);
            assert!(!is_check_position(pos));
            assert_eq!(position_data_bit(pos), Some(bit));
        }
        for pos in [1u32, 2, 4, 8, 16, 32, 64] {
            assert_eq!(position_data_bit(pos), None);
        }
    }

    #[test]
    fn ecc_array_corrects_a_strike_per_word() {
        let mut array = EccArray::new(ArrayConfig::new(2, 4, 64).unwrap()).unwrap();
        for word in 0..4 {
            array
                .rmw_write_word(1, word, 0x1111 * (word as u64 + 1))
                .unwrap();
        }
        // A 4-column burst with 4-way interleaving: one bit per word.
        array.strike_burst(1, 8, 4).unwrap();
        for word in 0..4 {
            let (value, status) = array.read_word_corrected(1, word).unwrap();
            assert_eq!(value, Some(0x1111 * (word as u64 + 1)), "word {word}");
            assert!(matches!(status, EccStatus::Corrected { .. }), "word {word}");
        }
    }

    #[test]
    fn ecc_array_detects_two_strikes_in_one_word() {
        let mut array = EccArray::new(ArrayConfig::new(2, 4, 64).unwrap()).unwrap();
        array.rmw_write_word(0, 2, 0xFEED).unwrap();
        array.flip_data_bit(0, 2, 3).unwrap();
        array.flip_data_bit(0, 2, 44).unwrap();
        let (value, status) = array.read_word_corrected(0, 2).unwrap();
        assert_eq!(value, None);
        assert_eq!(status, EccStatus::Uncorrectable);
    }

    #[test]
    fn ecc_array_rejects_narrow_words() {
        assert!(matches!(
            EccArray::new(ArrayConfig::new(2, 4, 32).unwrap()),
            Err(ArrayError::WordTooWide { word_bits: 32 })
        ));
    }

    #[test]
    fn status_display_and_usability() {
        assert_eq!(EccStatus::Clean.to_string(), "clean");
        assert!(EccStatus::Clean.is_usable());
        assert!(EccStatus::Corrected { position: 3 }.is_usable());
        assert!(!EccStatus::Uncorrectable.is_usable());
        assert!(EccStatus::Corrected { position: 3 }
            .to_string()
            .contains('3'));
    }
}
