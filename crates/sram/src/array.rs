//! The interleaved SRAM array (paper Figure 2).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ArrayError, ArrayEvent, CellKind, CellValue, EventLog, InterleaveMap};

/// Dimensions of an SRAM array: `rows` rows, each holding `words_per_row`
/// interleaved words of `word_bits` bits.
///
/// For an L1 cache organized one set per row (the arrangement the paper's
/// Set-Buffer assumes — the buffer holds exactly one row), use
/// [`ArrayConfig::for_cache_sets`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArrayConfig {
    rows: usize,
    map: InterleaveMap,
}

impl ArrayConfig {
    /// Creates a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::EmptyDimension`] if any dimension is zero and
    /// [`ArrayError::WordTooWide`] if `word_bits > 64`.
    pub fn new(rows: usize, words_per_row: usize, word_bits: u32) -> Result<Self, ArrayError> {
        if rows == 0 {
            return Err(ArrayError::EmptyDimension { what: "rows" });
        }
        if words_per_row == 0 {
            return Err(ArrayError::EmptyDimension {
                what: "words_per_row",
            });
        }
        if word_bits == 0 {
            return Err(ArrayError::EmptyDimension { what: "word_bits" });
        }
        if word_bits > 64 {
            return Err(ArrayError::WordTooWide { word_bits });
        }
        Ok(ArrayConfig {
            rows,
            map: InterleaveMap::new(words_per_row, word_bits),
        })
    }

    /// Configuration for a cache with `num_sets` sets of `set_bytes` bytes,
    /// one set per row, stored as interleaved 64-bit words.
    ///
    /// # Errors
    ///
    /// Returns an error if `set_bytes` is not a positive multiple of 8 or
    /// `num_sets` is zero.
    pub fn for_cache_sets(num_sets: u64, set_bytes: u64) -> Result<Self, ArrayError> {
        if set_bytes == 0 || !set_bytes.is_multiple_of(8) {
            return Err(ArrayError::EmptyDimension {
                what: "words_per_row",
            });
        }
        ArrayConfig::new(num_sets as usize, (set_bytes / 8) as usize, 64)
    }

    /// Number of rows.
    #[inline]
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Words per row.
    #[inline]
    pub const fn words_per_row(&self) -> usize {
        self.map.words_per_row()
    }

    /// Bits per word.
    #[inline]
    pub const fn word_bits(&self) -> u32 {
        self.map.word_bits()
    }

    /// Columns per row.
    #[inline]
    pub const fn columns(&self) -> usize {
        self.map.columns()
    }

    /// The bit-interleaving layout of each row.
    #[inline]
    pub const fn interleave_map(&self) -> InterleaveMap {
        self.map
    }

    /// Total storage bits.
    #[inline]
    pub const fn total_bits(&self) -> u64 {
        self.rows as u64 * self.columns() as u64
    }

    fn mask(&self) -> u64 {
        if self.word_bits() == 64 {
            u64::MAX
        } else {
            (1u64 << self.word_bits()) - 1
        }
    }
}

/// Operation counters, the raw material of the paper's access-frequency
/// figures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayCounters {
    /// Read-bit-line precharge phases.
    pub precharges: u64,
    /// Full-row reads (RWL activations).
    pub row_reads: u64,
    /// Full-row writes (WWL activations with all columns driven).
    pub row_writes: u64,
    /// Partial-row writes (WWL activations with only one word driven).
    pub partial_writes: u64,
    /// Complete RMW sequences.
    pub rmw_ops: u64,
    /// Cells whose value was lost to half-select disturbance.
    pub cells_corrupted: u64,
}

impl ArrayCounters {
    /// Total word-line activations of any kind — the "cache access
    /// frequency" the paper counts.
    pub fn total_activations(&self) -> u64 {
        self.row_reads + self.row_writes + self.partial_writes
    }

    /// Verifies the laws the counter protocol guarantees by
    /// construction: every row read is preceded by exactly one
    /// precharge, every complete RMW sequence contains one row read and
    /// one row write, and cell corruption only ever comes from partial
    /// writes. Returns a description of the first violated law — used
    /// by the conformance harness to catch accounting drift.
    pub fn check_conservation(&self) -> Result<(), String> {
        if self.precharges != self.row_reads {
            return Err(format!(
                "precharges ({}) != row reads ({}): a read skipped its precharge phase",
                self.precharges, self.row_reads
            ));
        }
        if self.rmw_ops > self.row_reads || self.rmw_ops > self.row_writes {
            return Err(format!(
                "rmw ops ({}) exceed row reads ({}) or row writes ({})",
                self.rmw_ops, self.row_reads, self.row_writes
            ));
        }
        if self.cells_corrupted > 0 && self.partial_writes == 0 {
            return Err(format!(
                "{} cells corrupted without any partial write",
                self.cells_corrupted
            ));
        }
        Ok(())
    }
}

/// A bit-accurate SRAM array with configurable cell topology.
///
/// The array stores one [`CellValue`] per column and implements the three
/// write protocols discussed in the paper:
///
/// - [`write_row_full`](Self::write_row_full): every column driven — always
///   safe, used by RMW's final phase and by Set-Buffer write-backs;
/// - [`write_word_naive`](Self::write_word_naive): only the selected word's
///   columns driven — corrupts half-selected columns on 8T arrays;
/// - [`rmw_write_word`](Self::rmw_write_word): Morita et al.'s
///   read-modify-write — safe but costs a row read per write.
///
/// See the [crate docs](crate) for a usage example.
#[derive(Clone)]
pub struct SramArray {
    config: ArrayConfig,
    kind: CellKind,
    cells: Vec<CellValue>,
    counters: ArrayCounters,
    log: EventLog,
}

impl SramArray {
    /// Creates a zero-initialized 8T array.
    pub fn new(config: ArrayConfig) -> Self {
        SramArray::with_kind(config, CellKind::EightT)
    }

    /// Creates a zero-initialized array of the given cell topology.
    pub fn with_kind(config: ArrayConfig, kind: CellKind) -> Self {
        SramArray {
            config,
            kind,
            cells: vec![CellValue::Zero; config.rows() * config.columns()],
            counters: ArrayCounters::default(),
            log: EventLog::disabled(),
        }
    }

    /// The array configuration.
    #[inline]
    pub fn config(&self) -> ArrayConfig {
        self.config
    }

    /// The cell topology.
    #[inline]
    pub fn cell_kind(&self) -> CellKind {
        self.kind
    }

    /// Accumulated operation counters.
    #[inline]
    pub fn counters(&self) -> &ArrayCounters {
        &self.counters
    }

    /// Resets the counters to zero.
    pub fn reset_counters(&mut self) {
        self.counters = ArrayCounters::default();
    }

    /// Replaces the event log (use [`EventLog::with_capacity`] to enable
    /// recording).
    pub fn set_event_log(&mut self, log: EventLog) {
        self.log = log;
    }

    /// The event log.
    #[inline]
    pub fn event_log(&self) -> &EventLog {
        &self.log
    }

    /// Exports the accumulated counters into an obs registry under the
    /// `sram.*` namespace.
    ///
    /// The hot paths keep their plain [`ArrayCounters`] fields; this
    /// bridge is called once at snapshot time, so the array itself never
    /// pays for registry lookups.
    pub fn export_obs_metrics(&self, registry: &mut cache8t_obs::MetricRegistry) {
        let c = &self.counters;
        for (name, value) in [
            ("sram.precharges", c.precharges),
            ("sram.row_reads", c.row_reads),
            ("sram.row_writes", c.row_writes),
            ("sram.partial_writes", c.partial_writes),
            ("sram.rmw_ops", c.rmw_ops),
            ("sram.cells_corrupted", c.cells_corrupted),
        ] {
            let id = registry.counter(name);
            registry.add(id, value);
        }
    }

    /// Converts the retained [`EventLog`] entries into obs trace events
    /// (`Component::Sram`, `EventKind::RowAccess`; `detail` = 0 read,
    /// 1 full-row write, 2 partial write, 3 precharge).
    ///
    /// The array has no notion of the controller's request tick, so the
    /// events are stamped with their position in the log; merge them into
    /// a [`Tracer`](cache8t_obs::Tracer) with
    /// [`Tracer::absorb`](cache8t_obs::Tracer::absorb) if interleaving
    /// with controller events is needed.
    pub fn obs_trace_events(&self) -> Vec<cache8t_obs::TraceEvent> {
        use cache8t_obs::{Component, EventKind, TraceEvent};
        self.log
            .events()
            .enumerate()
            .map(|(i, e)| {
                let detail = match e {
                    ArrayEvent::ReadRow { .. } => 0,
                    ArrayEvent::WriteRow { .. } => 1,
                    ArrayEvent::PartialWriteRow { .. } => 2,
                    ArrayEvent::Precharge { .. } => 3,
                };
                TraceEvent::new(
                    i as u64,
                    Component::Sram,
                    EventKind::RowAccess,
                    e.row() as u64,
                    detail,
                )
            })
            .collect()
    }

    fn check_row(&self, row: usize) -> Result<(), ArrayError> {
        if row >= self.config.rows() {
            return Err(ArrayError::RowOutOfRange {
                row,
                rows: self.config.rows(),
            });
        }
        Ok(())
    }

    fn check_word(&self, word: usize) -> Result<(), ArrayError> {
        if word >= self.config.words_per_row() {
            return Err(ArrayError::WordOutOfRange {
                word,
                words_per_row: self.config.words_per_row(),
            });
        }
        Ok(())
    }

    fn row_cells(&self, row: usize) -> &[CellValue] {
        let cols = self.config.columns();
        &self.cells[row * cols..(row + 1) * cols]
    }

    fn row_cells_mut(&mut self, row: usize) -> &mut [CellValue] {
        let cols = self.config.columns();
        &mut self.cells[row * cols..(row + 1) * cols]
    }

    fn extract_word(&self, row: usize, word: usize) -> Option<u64> {
        let map = self.config.interleave_map();
        let cells = self.row_cells(row);
        let mut value = 0u64;
        for bit in 0..map.word_bits() {
            match cells[map.column_of(word, bit)].bit() {
                Some(true) => value |= 1u64 << bit,
                Some(false) => {}
                None => return None,
            }
        }
        Some(value)
    }

    /// Reads the whole row through the read port (precharge + RWL), as the
    /// RMW sequence and the Set-Buffer fill do.
    ///
    /// Returns the sensed words; a word is `None` if any of its cells was
    /// corrupted. Counts one precharge and one row read.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::RowOutOfRange`] for a bad row.
    pub fn read_row(&mut self, row: usize) -> Result<Vec<Option<u64>>, ArrayError> {
        self.check_row(row)?;
        self.counters.precharges += 1;
        self.counters.row_reads += 1;
        self.log.record(ArrayEvent::Precharge { row });
        self.log.record(ArrayEvent::ReadRow { row });
        Ok((0..self.config.words_per_row())
            .map(|w| self.extract_word(row, w))
            .collect())
    }

    /// Reads one word: a full row activation with the column multiplexers
    /// routing only the selected word to the output (paper §2).
    ///
    /// Costs exactly the same as [`read_row`](Self::read_row) — the
    /// half-selected columns are sensed and discarded by the mux.
    ///
    /// # Errors
    ///
    /// Returns an error for a bad row or word index.
    pub fn read_word(&mut self, row: usize, word: usize) -> Result<Option<u64>, ArrayError> {
        self.check_row(row)?;
        self.check_word(word)?;
        self.counters.precharges += 1;
        self.counters.row_reads += 1;
        self.log.record(ArrayEvent::Precharge { row });
        self.log.record(ArrayEvent::ReadRow { row });
        Ok(self.extract_word(row, word))
    }

    /// Writes a full row with every column actively driven.
    ///
    /// This is safe on both topologies: there are no half-selected columns.
    /// Values wider than `word_bits` are masked.
    ///
    /// # Errors
    ///
    /// Returns an error for a bad row or a slice whose length differs from
    /// `words_per_row`.
    pub fn write_row_full(&mut self, row: usize, words: &[u64]) -> Result<(), ArrayError> {
        self.check_row(row)?;
        if words.len() != self.config.words_per_row() {
            return Err(ArrayError::WrongRowWidth {
                got: words.len(),
                expected: self.config.words_per_row(),
            });
        }
        let mask = self.config.mask();
        let map = self.config.interleave_map();
        for (w, &value) in words.iter().enumerate() {
            let value = value & mask;
            for bit in 0..map.word_bits() {
                let col = map.column_of(w, bit);
                let idx = row * self.config.columns() + col;
                self.cells[idx] = CellValue::from_bit(value >> bit & 1 == 1);
            }
        }
        self.counters.row_writes += 1;
        self.log.record(ArrayEvent::WriteRow { row });
        Ok(())
    }

    /// Writes a full row whose source words may already be unknown (e.g.
    /// writing back latched data that contains corrupted cells).
    ///
    /// # Errors
    ///
    /// Same as [`write_row_full`](Self::write_row_full).
    pub fn write_row_values(
        &mut self,
        row: usize,
        words: &[Option<u64>],
    ) -> Result<(), ArrayError> {
        self.check_row(row)?;
        if words.len() != self.config.words_per_row() {
            return Err(ArrayError::WrongRowWidth {
                got: words.len(),
                expected: self.config.words_per_row(),
            });
        }
        let mask = self.config.mask();
        let map = self.config.interleave_map();
        for (w, value) in words.iter().enumerate() {
            for bit in 0..map.word_bits() {
                let col = map.column_of(w, bit);
                let idx = row * self.config.columns() + col;
                self.cells[idx] = match value {
                    Some(v) => CellValue::from_bit((v & mask) >> bit & 1 == 1),
                    None => CellValue::Unknown,
                };
            }
        }
        self.counters.row_writes += 1;
        self.log.record(ArrayEvent::WriteRow { row });
        Ok(())
    }

    /// A naive partial-row write: drives only the selected word's columns
    /// and raises the write word line.
    ///
    /// On an 8T array every half-selected cell in the row loses its value
    /// (the column-selection issue, paper §2); on a 6T array the
    /// half-selected cells are read-biased and survive. The operation is
    /// modelled so that the corruption is *observable*, which is the
    /// physical justification for RMW.
    ///
    /// # Errors
    ///
    /// Returns an error for a bad row or word index.
    pub fn write_word_naive(
        &mut self,
        row: usize,
        word: usize,
        value: u64,
    ) -> Result<(), ArrayError> {
        self.check_row(row)?;
        self.check_word(word)?;
        let mask = self.config.mask();
        let value = value & mask;
        let map = self.config.interleave_map();
        let cols = self.config.columns();
        let requires_rmw = self.kind.requires_rmw();
        let mut corrupted = 0u64;
        {
            let cells = self.row_cells_mut(row);
            for (col, cell) in cells.iter_mut().enumerate().take(cols) {
                let (w, bit) = map.word_bit_of(col);
                if w == word {
                    *cell = CellValue::from_bit(value >> bit & 1 == 1);
                } else if requires_rmw && *cell != CellValue::Unknown {
                    *cell = CellValue::Unknown;
                    corrupted += 1;
                }
            }
        }
        self.counters.cells_corrupted += corrupted;
        self.counters.partial_writes += 1;
        self.log.record(ArrayEvent::PartialWriteRow { row, word });
        Ok(())
    }

    /// Morita et al.'s read-modify-write: read the row into the write-back
    /// latches, merge the new word, drive *all* bit lines, write the row.
    ///
    /// Counts one precharge, one row read, one row write, and one RMW
    /// operation; no cell is ever corrupted.
    ///
    /// # Errors
    ///
    /// Returns an error for a bad row or word index.
    pub fn rmw_write_word(
        &mut self,
        row: usize,
        word: usize,
        value: u64,
    ) -> Result<(), ArrayError> {
        self.check_word(word)?;
        let mut latched = self.read_row(row)?;
        latched[word] = Some(value & self.config.mask());
        self.write_row_values(row, &latched)?;
        self.counters.rmw_ops += 1;
        Ok(())
    }

    /// Peeks at the stored words of a row without modelling an access (no
    /// counters, no events). For assertions and debugging.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::RowOutOfRange`] for a bad row.
    pub fn peek_row(&self, row: usize) -> Result<Vec<Option<u64>>, ArrayError> {
        self.check_row(row)?;
        Ok((0..self.config.words_per_row())
            .map(|w| self.extract_word(row, w))
            .collect())
    }

    /// Flips a single cell's stored bit (a soft-error strike). Cells whose
    /// value is already unknown stay unknown.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::RowOutOfRange`] for a bad row; the column is
    /// checked with a panic in debug builds.
    pub fn flip_cell(&mut self, row: usize, col: usize) -> Result<(), ArrayError> {
        self.check_row(row)?;
        debug_assert!(col < self.config.columns());
        let idx = row * self.config.columns() + col;
        self.cells[idx] = match self.cells[idx] {
            CellValue::Zero => CellValue::One,
            CellValue::One => CellValue::Zero,
            CellValue::Unknown => CellValue::Unknown,
        };
        Ok(())
    }

    /// Forces a single cell to a value (models a soft-error strike; used by
    /// the interleaving tests).
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::RowOutOfRange`] for a bad row; the column is
    /// checked with a panic in debug builds.
    pub fn force_cell(
        &mut self,
        row: usize,
        col: usize,
        value: CellValue,
    ) -> Result<(), ArrayError> {
        self.check_row(row)?;
        debug_assert!(col < self.config.columns());
        let idx = row * self.config.columns() + col;
        self.cells[idx] = value;
        Ok(())
    }
}

impl fmt::Debug for SramArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SramArray")
            .field("config", &self.config)
            .field("kind", &self.kind)
            .field("counters", &self.counters)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SramArray {
        SramArray::new(ArrayConfig::new(4, 4, 8).unwrap())
    }

    #[test]
    fn counter_conservation_holds_after_real_operations() {
        let mut a = small();
        a.read_row(0).unwrap();
        a.rmw_write_word(1, 0, 0xAB).unwrap();
        a.write_row_full(2, &[1, 2, 3, 4]).unwrap();
        assert_eq!(a.counters().check_conservation(), Ok(()));
        // Hand-corrupted counters are flagged.
        let mut bad = *a.counters();
        bad.precharges += 1;
        assert!(bad.check_conservation().unwrap_err().contains("precharge"));
        let mut bad = *a.counters();
        bad.rmw_ops = bad.row_reads + bad.row_writes + 1;
        assert!(bad.check_conservation().unwrap_err().contains("rmw"));
        let bad = ArrayCounters {
            cells_corrupted: 3,
            ..ArrayCounters::default()
        };
        assert!(bad
            .check_conservation()
            .unwrap_err()
            .contains("partial write"));
    }

    #[test]
    fn config_validates() {
        assert!(matches!(
            ArrayConfig::new(0, 4, 8),
            Err(ArrayError::EmptyDimension { what: "rows" })
        ));
        assert!(matches!(
            ArrayConfig::new(4, 0, 8),
            Err(ArrayError::EmptyDimension { .. })
        ));
        assert!(matches!(
            ArrayConfig::new(4, 4, 0),
            Err(ArrayError::EmptyDimension { .. })
        ));
        assert!(matches!(
            ArrayConfig::new(4, 4, 65),
            Err(ArrayError::WordTooWide { word_bits: 65 })
        ));
    }

    #[test]
    fn for_cache_sets_matches_baseline_geometry() {
        // 64 KB / 4-way / 32 B -> 512 sets of 128 B.
        let c = ArrayConfig::for_cache_sets(512, 128).unwrap();
        assert_eq!(c.rows(), 512);
        assert_eq!(c.words_per_row(), 16);
        assert_eq!(c.word_bits(), 64);
        assert_eq!(c.total_bits(), 512 * 128 * 8);
        assert!(ArrayConfig::for_cache_sets(512, 0).is_err());
        assert!(ArrayConfig::for_cache_sets(512, 12).is_err());
    }

    #[test]
    fn full_row_write_then_read() {
        let mut a = small();
        a.write_row_full(2, &[1, 2, 3, 4]).unwrap();
        assert_eq!(
            a.read_row(2).unwrap(),
            vec![Some(1), Some(2), Some(3), Some(4)]
        );
        assert_eq!(a.counters().row_writes, 1);
        assert_eq!(a.counters().row_reads, 1);
        assert_eq!(a.counters().precharges, 1);
    }

    #[test]
    fn obs_bridge_exports_counters_and_events() {
        use cache8t_obs::EventKind;
        let mut a = small();
        a.set_event_log(EventLog::with_capacity(16));
        a.write_row_full(2, &[1, 2, 3, 4]).unwrap();
        a.read_row(2).unwrap();
        let mut reg = cache8t_obs::MetricRegistry::new();
        a.export_obs_metrics(&mut reg);
        assert_eq!(reg.counter_by_name("sram.row_writes"), Some(1));
        assert_eq!(reg.counter_by_name("sram.row_reads"), Some(1));
        assert_eq!(reg.counter_by_name("sram.precharges"), Some(1));
        let events = a.obs_trace_events();
        // write-row, precharge, read-row.
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.kind == EventKind::RowAccess));
        assert_eq!(events[0].detail, 1, "full-row write");
        assert_eq!(events[1].detail, 3, "precharge");
        assert_eq!(events[2].detail, 0, "row read");
        assert_eq!(events[2].addr, 2);
    }

    #[test]
    fn values_are_masked_to_word_width() {
        let mut a = small();
        a.write_row_full(0, &[0x1FF, 0, 0, 0]).unwrap();
        assert_eq!(a.peek_row(0).unwrap()[0], Some(0xFF));
    }

    #[test]
    fn naive_write_corrupts_8t_half_selected_words() {
        let mut a = small();
        a.write_row_full(1, &[0xAA, 0xBB, 0xCC, 0xDD]).unwrap();
        a.write_word_naive(1, 2, 0x55).unwrap();
        let row = a.peek_row(1).unwrap();
        assert_eq!(row[2], Some(0x55), "selected word written correctly");
        assert_eq!(row[0], None, "half-selected word corrupted");
        assert_eq!(row[1], None);
        assert_eq!(row[3], None);
        assert_eq!(a.counters().cells_corrupted, 24); // 3 words x 8 bits
        assert_eq!(a.counters().partial_writes, 1);
    }

    #[test]
    fn naive_write_is_safe_on_6t() {
        let mut a = SramArray::with_kind(ArrayConfig::new(4, 4, 8).unwrap(), CellKind::SixT);
        a.write_row_full(1, &[0xAA, 0xBB, 0xCC, 0xDD]).unwrap();
        a.write_word_naive(1, 2, 0x55).unwrap();
        assert_eq!(
            a.peek_row(1).unwrap(),
            vec![Some(0xAA), Some(0xBB), Some(0x55), Some(0xDD)]
        );
        assert_eq!(a.counters().cells_corrupted, 0);
    }

    #[test]
    fn rmw_preserves_half_selected_words() {
        let mut a = small();
        a.write_row_full(3, &[9, 8, 7, 6]).unwrap();
        a.reset_counters();
        a.rmw_write_word(3, 0, 42).unwrap();
        assert_eq!(
            a.peek_row(3).unwrap(),
            vec![Some(42), Some(8), Some(7), Some(6)]
        );
        let c = a.counters();
        assert_eq!(c.rmw_ops, 1);
        assert_eq!(c.row_reads, 1);
        assert_eq!(c.row_writes, 1);
        assert_eq!(c.precharges, 1);
        assert_eq!(c.cells_corrupted, 0);
        assert_eq!(c.total_activations(), 2, "RMW costs two activations");
    }

    #[test]
    fn corruption_does_not_double_count() {
        let mut a = small();
        a.write_word_naive(0, 0, 1).unwrap();
        let after_first = a.counters().cells_corrupted;
        a.write_word_naive(0, 1, 1).unwrap();
        // Word 0's cells get re-corrupted conceptually but are already
        // Unknown; only word 2 and 3's cells are newly lost... except word 1
        // is now driven. Newly corrupted cells: word 0 only (8 bits were
        // known? no — word 0 was just written driven, so it was known).
        assert_eq!(after_first, 24);
        assert_eq!(a.counters().cells_corrupted, 24 + 8);
    }

    #[test]
    fn read_word_costs_a_full_activation() {
        let mut a = small();
        a.write_row_full(0, &[5, 6, 7, 8]).unwrap();
        a.reset_counters();
        assert_eq!(a.read_word(0, 1).unwrap(), Some(6));
        assert_eq!(a.counters().row_reads, 1);
        assert_eq!(a.counters().precharges, 1);
    }

    #[test]
    fn out_of_range_errors() {
        let mut a = small();
        assert!(matches!(
            a.read_row(4),
            Err(ArrayError::RowOutOfRange { .. })
        ));
        assert!(matches!(
            a.read_word(0, 4),
            Err(ArrayError::WordOutOfRange { .. })
        ));
        assert!(matches!(
            a.write_row_full(0, &[0; 3]),
            Err(ArrayError::WrongRowWidth { .. })
        ));
        assert!(matches!(
            a.write_word_naive(9, 0, 0),
            Err(ArrayError::RowOutOfRange { .. })
        ));
        assert!(matches!(
            a.rmw_write_word(0, 9, 0),
            Err(ArrayError::WordOutOfRange { .. })
        ));
    }

    #[test]
    fn event_log_records_rmw_sequence() {
        let mut a = small();
        a.set_event_log(EventLog::with_capacity(8));
        a.rmw_write_word(1, 0, 3).unwrap();
        let events: Vec<_> = a.event_log().events().copied().collect();
        assert_eq!(
            events,
            vec![
                ArrayEvent::Precharge { row: 1 },
                ArrayEvent::ReadRow { row: 1 },
                ArrayEvent::WriteRow { row: 1 },
            ]
        );
    }

    #[test]
    fn soft_error_strike_confined_by_interleaving() {
        // 4-way interleaving: a 4-column burst hits 4 *different* words.
        let mut a = small();
        a.write_row_full(0, &[0xFF; 4]).unwrap();
        for col in 0..4 {
            a.force_cell(0, col, CellValue::Unknown).unwrap();
        }
        let row = a.peek_row(0).unwrap();
        assert!(
            row.iter().all(|w| w.is_none()),
            "each word lost exactly one bit"
        );
        // One bit per word is correctable by SEC codes; the interleave map
        // guarantees the bound.
        assert_eq!(a.config().interleave_map().max_bits_per_word_in_burst(4), 1);
    }

    #[test]
    fn rmw_propagates_previously_unknown_cells() {
        let mut a = small();
        a.write_row_full(0, &[1, 2, 3, 4]).unwrap();
        a.force_cell(0, 0, CellValue::Unknown).unwrap(); // word 0, bit 0
        a.rmw_write_word(0, 1, 9).unwrap();
        let row = a.peek_row(0).unwrap();
        assert_eq!(row[1], Some(9));
        assert_eq!(row[0], None, "unknown data stays unknown through RMW");
        assert_eq!(row[2], Some(3));
    }
}
