//! # cache8t-sram — bit-accurate 8T/6T SRAM array model
//!
//! This crate models the circuit-level substrate of *"Performance and Power
//! Solutions for Caches Using 8T SRAM Cells"* (Farahani & Baniasadi, MICRO
//! 2012): the 8T SRAM cell of the paper's Figure 1, the interleaved array of
//! Figure 2, and the read-modify-write (RMW) sequence of Morita et al. that
//! the paper's techniques exist to make cheaper.
//!
//! Three physical facts drive the paper, and all three are *observable* in
//! this model rather than assumed:
//!
//! 1. **Bit interleaving.** Soft-error resilience requires spreading the
//!    bits of one word across the row so that a multi-bit upset hits
//!    different words ([`InterleaveMap`]). Consequently a row activation
//!    selects cells of *many* words — the column-selection issue.
//! 2. **Half-select corruption.** An 8T cell is optimized for writes; when
//!    its write word line rises while its write bit lines are not driven,
//!    the stored value is lost. [`SramArray::write_word_naive`] demonstrates
//!    this: it corrupts the half-selected columns (their value becomes
//!    [`CellValue::Unknown`]), which is why a plain partial-row write is
//!    unusable.
//! 3. **RMW.** [`SramArray::rmw_write_word`] performs the paper's five-step
//!    sequence — precharge, read row into the write-back latches, merge the
//!    new word, drive all bit lines, raise the write word line — which is
//!    safe but costs an extra row read and occupies the read port
//!    ([`PortSet`]).
//!
//! The array keeps [`ArrayCounters`] (precharges, row reads, row writes, RMW
//! operations) — the same quantities the paper's Figures 9–11 are computed
//! from one level up, in `cache8t-core`.
//!
//! ## Example: why RMW is needed
//!
//! ```
//! use cache8t_sram::{ArrayConfig, CellValue, SramArray};
//!
//! # fn main() -> Result<(), cache8t_sram::ArrayError> {
//! let config = ArrayConfig::new(4, 4, 8)?; // 4 rows, 4 words x 8 bits each
//! let mut array = SramArray::new(config);
//! array.write_row_full(0, &[0xAA, 0xBB, 0xCC, 0xDD])?;
//!
//! // A naive partial write clobbers the half-selected words...
//! let mut naive = array.clone();
//! naive.write_word_naive(0, 1, 0x11)?;
//! assert!(naive.read_word(0, 0)?.is_none(), "word 0 was corrupted");
//!
//! // ...while RMW preserves them.
//! array.rmw_write_word(0, 1, 0x11)?;
//! assert_eq!(array.read_word(0, 0)?, Some(0xAA));
//! assert_eq!(array.read_word(0, 1)?, Some(0x11));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod array;
mod banked;
mod cell;
mod ecc;
mod error;
mod event;
mod interleave;
mod ports;

pub use array::{ArrayConfig, ArrayCounters, SramArray};
pub use banked::{BankedArray, BankedIssueError};
pub use cell::{Cell6T, Cell8T, CellKind, CellValue};
pub use ecc::{EccArray, EccStatus, SecDed64};
pub use error::ArrayError;
pub use event::{ArrayEvent, EventLog};
pub use interleave::InterleaveMap;
pub use ports::{OpLatency, PortBusyError, PortKind, PortSet};
