//! Property tests for the SRAM array model: RMW preserves data under any
//! operation sequence, naive writes never do (on 8T), and the interleave
//! map is a bijection at every size.

use proptest::prelude::*;

use cache8t_sram::{ArrayConfig, CellKind, InterleaveMap, SramArray};

#[derive(Debug, Clone)]
enum ArrayOp {
    RmwWrite { row: usize, word: usize, value: u64 },
    ReadRow { row: usize },
    WriteRowFull { row: usize, words: Vec<u64> },
}

const ROWS: usize = 4;
const WORDS: usize = 4;
const BITS: u32 = 16;

fn op_strategy() -> impl Strategy<Value = ArrayOp> {
    prop_oneof![
        (0..ROWS, 0..WORDS, any::<u64>()).prop_map(|(row, word, value)| ArrayOp::RmwWrite {
            row,
            word,
            value
        }),
        (0..ROWS).prop_map(|row| ArrayOp::ReadRow { row }),
        (0..ROWS, prop::collection::vec(any::<u64>(), WORDS..=WORDS))
            .prop_map(|(row, words)| ArrayOp::WriteRowFull { row, words }),
    ]
}

fn mask(v: u64) -> u64 {
    v & ((1u64 << BITS) - 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rmw_only_sequences_never_corrupt(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let config = ArrayConfig::new(ROWS, WORDS, BITS).expect("valid");
        let mut array = SramArray::new(config);
        let mut model = vec![vec![0u64; WORDS]; ROWS];
        for op in &ops {
            match op {
                ArrayOp::RmwWrite { row, word, value } => {
                    array.rmw_write_word(*row, *word, *value).expect("in range");
                    model[*row][*word] = mask(*value);
                }
                ArrayOp::ReadRow { row } => {
                    let sensed = array.read_row(*row).expect("in range");
                    for (w, cell) in sensed.iter().enumerate() {
                        prop_assert_eq!(*cell, Some(model[*row][w]));
                    }
                }
                ArrayOp::WriteRowFull { row, words } => {
                    array.write_row_full(*row, words).expect("in range");
                    for (w, v) in words.iter().enumerate() {
                        model[*row][w] = mask(*v);
                    }
                }
            }
        }
        prop_assert_eq!(array.counters().cells_corrupted, 0);
        for (row, expected) in model.iter().enumerate() {
            let actual = array.peek_row(row).expect("in range");
            for (w, v) in expected.iter().enumerate() {
                prop_assert_eq!(actual[w], Some(*v), "row {} word {}", row, w);
            }
        }
    }

    #[test]
    fn naive_write_corrupts_every_other_word_on_8t(
        row in 0..ROWS,
        word in 0..WORDS,
        value in any::<u64>(),
    ) {
        let config = ArrayConfig::new(ROWS, WORDS, BITS).expect("valid");
        let mut array = SramArray::new(config);
        for r in 0..ROWS {
            array.write_row_full(r, &[1, 2, 3, 4]).expect("in range");
        }
        array.write_word_naive(row, word, value).expect("in range");
        let sensed = array.peek_row(row).expect("in range");
        for (w, cell) in sensed.iter().enumerate() {
            if w == word {
                prop_assert_eq!(*cell, Some(mask(value)));
            } else {
                prop_assert_eq!(*cell, None, "word {} should be corrupted", w);
            }
        }
        // Other rows are untouched.
        for r in (0..ROWS).filter(|r| *r != row) {
            prop_assert!(array.peek_row(r).expect("in range").iter().all(|w| w.is_some()));
        }
    }

    #[test]
    fn naive_write_is_always_safe_on_6t(
        row in 0..ROWS,
        word in 0..WORDS,
        value in any::<u64>(),
    ) {
        let config = ArrayConfig::new(ROWS, WORDS, BITS).expect("valid");
        let mut array = SramArray::with_kind(config, CellKind::SixT);
        array.write_row_full(row, &[9, 8, 7, 6]).expect("in range");
        array.write_word_naive(row, word, value).expect("in range");
        let sensed = array.peek_row(row).expect("in range");
        let expected = [9u64, 8, 7, 6];
        for (w, cell) in sensed.iter().enumerate() {
            let want = if w == word { mask(value) } else { expected[w] };
            prop_assert_eq!(*cell, Some(want));
        }
        prop_assert_eq!(array.counters().cells_corrupted, 0);
    }

    #[test]
    fn activation_accounting_is_exact(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let config = ArrayConfig::new(ROWS, WORDS, BITS).expect("valid");
        let mut array = SramArray::new(config);
        let (mut reads, mut writes, mut rmws) = (0u64, 0u64, 0u64);
        for op in &ops {
            match op {
                ArrayOp::RmwWrite { row, word, value } => {
                    array.rmw_write_word(*row, *word, *value).expect("in range");
                    reads += 1;
                    writes += 1;
                    rmws += 1;
                }
                ArrayOp::ReadRow { row } => {
                    array.read_row(*row).expect("in range");
                    reads += 1;
                }
                ArrayOp::WriteRowFull { row, words } => {
                    array.write_row_full(*row, words).expect("in range");
                    writes += 1;
                }
            }
        }
        let c = array.counters();
        prop_assert_eq!(c.row_reads, reads);
        prop_assert_eq!(c.row_writes, writes);
        prop_assert_eq!(c.rmw_ops, rmws);
        prop_assert_eq!(c.precharges, reads, "every read precharges once");
        prop_assert_eq!(c.total_activations(), reads + writes);
    }

    #[test]
    fn interleave_map_is_a_bijection(words in 1usize..32, bits in 1u32..64) {
        let map = InterleaveMap::new(words, bits);
        let mut seen = vec![false; map.columns()];
        for word in 0..words {
            for bit in 0..bits {
                let col = map.column_of(word, bit);
                prop_assert!(!seen[col]);
                seen[col] = true;
                prop_assert_eq!(map.word_bit_of(col), (word, bit));
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // The soft-error guarantee: bursts up to the interleave degree hit
        // at most one bit per word.
        prop_assert_eq!(map.max_bits_per_word_in_burst(words), 1);
    }
}

mod ecc_properties {
    use proptest::prelude::*;

    use cache8t_sram::{ArrayConfig, EccArray, EccStatus, SecDed64};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn any_single_bit_error_is_corrected(data in any::<u64>(), pos in 0u32..72) {
            let check = SecDed64::encode(data);
            // Flip one bit anywhere in the codeword: data bit, Hamming
            // bit, or the overall-parity bit.
            let (upset_data, upset_check) = if pos < 64 {
                (data ^ (1u64 << pos), check)
            } else {
                (data, check ^ (1u8 << (pos - 64)))
            };
            let (decoded, status) = SecDed64::decode(upset_data, upset_check);
            prop_assert_eq!(decoded, data);
            prop_assert!(matches!(status, EccStatus::Corrected { .. }), "{}", status);
        }

        #[test]
        fn any_double_bit_error_is_never_missed(
            data in any::<u64>(),
            a in 0u32..72,
            b in 0u32..72,
        ) {
            prop_assume!(a != b);
            let check = SecDed64::encode(data);
            let flip = |d: u64, c: u8, pos: u32| {
                if pos < 64 { (d ^ (1u64 << pos), c) } else { (d, c ^ (1u8 << (pos - 64))) }
            };
            let (d1, c1) = flip(data, check, a);
            let (d2, c2) = flip(d1, c1, b);
            let (_, status) = SecDed64::decode(d2, c2);
            // SEC-DED guarantee: a double error is never reported Clean and
            // never silently "corrected" back to the wrong data as Clean.
            prop_assert_eq!(status, EccStatus::Uncorrectable);
        }

        #[test]
        fn interleaved_bursts_within_degree_always_recover(
            start in 0usize..250,
            burst in 1usize..=4,
            values in prop::collection::vec(any::<u64>(), 4..=4),
        ) {
            // 4 words per row, 64 bits each -> 256 data columns, degree 4.
            let mut array = EccArray::new(ArrayConfig::new(2, 4, 64).expect("valid"))
                .expect("64-bit words");
            for (w, v) in values.iter().enumerate() {
                array.rmw_write_word(1, w, *v).expect("in range");
            }
            prop_assume!(start + burst <= 256);
            array.strike_burst(1, start, burst).expect("in range");
            for (w, v) in values.iter().enumerate() {
                let (value, status) = array.read_word_corrected(1, w).expect("in range");
                prop_assert_eq!(value, Some(*v), "word {}", w);
                prop_assert!(status.is_usable());
            }
        }
    }
}
