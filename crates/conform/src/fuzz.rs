//! Seeded randomized trace fuzzing with failing-prefix shrinking.
//!
//! [`fuzz_trace`] draws a conflict-heavy random request stream whose
//! shape is tuned to exercise the buffering schemes: the address space
//! is only twice the cache capacity (constant set conflicts and
//! evictions) and write values come from a four-value domain (organic
//! silent writes, the input Write Grouping's Dirty bit exists for).
//! Streams are a pure function of the seed, so every failure is
//! replayable from two integers.
//!
//! When a replay diverges, [`shrink`] reduces the trace to a minimal
//! reproducer: a binary search finds the shortest still-failing prefix,
//! then delta-debugging passes carve out every op whose removal keeps
//! the failure alive. [`write_repro`] persists the result in the
//! workspace's `C8TT` trace format so `cache8t check --trace` (or any
//! other tool) can replay it directly.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use cache8t_sim::{Address, CacheGeometry};
use cache8t_trace::{MemOp, Trace};
use rand::{rngs::SmallRng, Rng, SeedableRng};

use crate::{replay, ConformConfig, ConformReport};

/// Conventional location for shrunk reproducers.
pub const DEFAULT_REPRO_DIR: &str = "results/repro";

/// Generates a deterministic random trace of `ops` requests for
/// `geometry`: word-aligned addresses over twice the cache's capacity,
/// ~55 % writes, values in `0..4`.
pub fn fuzz_trace(seed: u64, ops: usize, geometry: CacheGeometry) -> Trace {
    let mut rng = SmallRng::seed_from_u64(seed);
    let words = (geometry.capacity_bytes() / 8).max(1) * 2;
    let mut out = Vec::with_capacity(ops);
    for _ in 0..ops {
        let addr = Address::new(rng.gen_range(0..words) * 8);
        if rng.gen_bool(0.45) {
            out.push(MemOp::read(addr));
        } else {
            out.push(MemOp::write(addr, rng.gen_range(0..4)));
        }
    }
    Trace::new(out, ops as u64)
}

/// One fuzz round: generate the seeded trace and replay it.
pub fn fuzz_round(seed: u64, ops: usize, config: &ConformConfig) -> (Trace, ConformReport) {
    let trace = fuzz_trace(seed, ops, config.geometry);
    let report = replay(&trace, config);
    (trace, report)
}

fn fails(ops: &[MemOp], config: &ConformConfig) -> bool {
    let trace = Trace::new(ops.to_vec(), ops.len() as u64);
    !replay(&trace, config).pass()
}

/// Shrinks a failing trace to a minimal reproducer, or returns `None`
/// if the trace actually passes under `config`.
///
/// Phase 1 binary-searches the shortest still-failing prefix (the
/// invariant "the kept range fails" holds at every step, so the result
/// fails even for non-monotonic failures). Phase 2 runs greedy
/// delta-debugging: chunks of halving size are removed while the
/// failure survives, down to single ops, so the reproducer contains
/// only load-bearing requests.
pub fn shrink(trace: &Trace, config: &ConformConfig) -> Option<Trace> {
    let full = trace.ops();
    if !fails(full, config) {
        return None;
    }

    // Phase 1: shortest failing prefix. `hi` always fails.
    let (mut lo, mut hi) = (0usize, full.len());
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if fails(&full[..mid], config) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let mut ops: Vec<MemOp> = full[..hi].to_vec();

    // Phase 2: remove any chunk whose absence keeps the failure.
    let mut chunk = (ops.len() / 2).max(1);
    loop {
        let mut start = 0;
        let mut removed_any = false;
        while start < ops.len() && ops.len() > 1 {
            let end = (start + chunk).min(ops.len());
            let mut candidate = Vec::with_capacity(ops.len() - (end - start));
            candidate.extend_from_slice(&ops[..start]);
            candidate.extend_from_slice(&ops[end..]);
            if !candidate.is_empty() && fails(&candidate, config) {
                ops = candidate;
                removed_any = true;
                // Do not advance: the next chunk slid into `start`.
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            if !removed_any {
                break;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }

    let n = ops.len() as u64;
    Some(Trace::new(ops, n))
}

/// Writes `trace` as `<dir>/<label>.c8tt`, creating the directory.
///
/// # Errors
///
/// Propagates filesystem errors from directory creation or the write.
pub fn write_repro(dir: &Path, label: &str, trace: &Trace) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let sanitized: String = label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let path = dir.join(format!("{sanitized}.c8tt"));
    let mut writer = io::BufWriter::new(fs::File::create(&path)?);
    trace.write_to(&mut writer)?;
    io::Write::flush(&mut writer)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache8t_core::WgFault;

    fn tiny() -> CacheGeometry {
        CacheGeometry::new(256, 2, 32).expect("valid test geometry")
    }

    #[test]
    fn fuzz_traces_are_deterministic_per_seed() {
        let a = fuzz_trace(7, 300, tiny());
        let b = fuzz_trace(7, 300, tiny());
        let c = fuzz_trace(8, 300, tiny());
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 300);
        assert!(a.writes() > 0 && a.reads() > 0);
    }

    #[test]
    fn healthy_controllers_survive_fuzz_rounds() {
        let config = ConformConfig::new(tiny());
        for seed in 0..8 {
            let (_, report) = fuzz_round(seed, 400, &config);
            assert!(
                report.pass(),
                "seed {seed} diverged: {:?}",
                report.divergences
            );
        }
    }

    #[test]
    fn shrink_returns_none_for_passing_traces() {
        let config = ConformConfig::new(tiny());
        let trace = fuzz_trace(3, 100, tiny());
        assert!(shrink(&trace, &config).is_none());
    }

    #[test]
    fn shrink_produces_a_small_still_failing_reproducer() {
        let mut config = ConformConfig::new(tiny());
        config.wg_fault = Some(WgFault::SkipDirtyBit);
        let (trace, report) = fuzz_round(11, 800, &config);
        assert!(!report.pass(), "the armed fault must trip the harness");
        let repro = shrink(&trace, &config).expect("failing trace shrinks");
        assert!(!repro.is_empty());
        assert!(
            repro.len() <= 64,
            "reproducer should be tiny, got {} ops",
            repro.len()
        );
        assert!(
            !replay(&repro, &config).pass(),
            "the shrunk trace must still fail"
        );
    }

    #[test]
    fn repro_files_round_trip() {
        let dir = std::env::temp_dir().join(format!("cache8t-repro-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let trace = fuzz_trace(5, 40, tiny());
        let path = write_repro(&dir, "seed5 round:1", &trace).expect("write");
        assert_eq!(path.file_name().unwrap(), "seed5_round_1.c8tt");
        let back = Trace::read_from(fs::File::open(&path).expect("open")).expect("parse");
        assert_eq!(back, trace);
        let _ = fs::remove_dir_all(&dir);
    }
}
