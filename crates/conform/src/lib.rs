//! # cache8t-conform — the differential conformance harness
//!
//! The paper's central functional claim (§4–§5) is that Write Grouping
//! and Read Bypassing are *transparent*: every read returns the same
//! value the conventional 6T or RMW cache would return, silent-write
//! suppression never drops a dirty block, and buffer bypassing never
//! serves stale data. This crate *proves* that claim for a concrete
//! trace by replaying it in lockstep through every scheme plus a flat
//! golden-memory reference model, checking three families of laws:
//!
//! 1. **Value equivalence** — per-op read values and post-`flush`
//!    [`peek_word`](cache8t_core::Controller::peek_word) images must
//!    match the golden model for every scheme.
//! 2. **Stat conservation** — hits + misses = accesses per scheme, all
//!    schemes agree on the full [`CacheStats`](cache8t_sim::CacheStats),
//!    line fills are scheme-independent, array traffic obeys the
//!    paper's ordering (6T ≤ RMW, WG ≤ RMW, WG+RB ≤ WG), and
//!    `wg.silent_suppressed` never exceeds closed groups.
//! 3. **Buffer coherence** — every Tag-Buffer entry mirrors a valid
//!    cache line, and a clear Dirty bit implies the Set-Buffer holds
//!    exactly the array's data.
//!
//! Every violation becomes a structured [`Divergence`] and a
//! [`Component::Conform`]/[`EventKind::Divergence`] trace event. The
//! [`fuzz`] module drives [`replay`] with seeded random traces and
//! shrinks any failure to a minimal reproducer.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod fuzz;

use std::collections::BTreeMap;
use std::fmt;

use cache8t_core::{
    CoalescingController, Controller, ConventionalController, RmwController, WgController, WgFault,
    WgRbController,
};
use cache8t_obs::{Component, EventKind, TraceEvent, TraceLevel, Tracer};
use cache8t_sim::{Address, CacheGeometry, ReplacementKind};
use cache8t_trace::Trace;

/// One of the cache schemes the harness can replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeId {
    /// Conventional 6T baseline (one array access per write).
    SixT,
    /// The 8T read-modify-write baseline.
    Rmw,
    /// Write Grouping.
    Wg,
    /// Write Grouping + Read Bypassing.
    WgRb,
    /// The coalescing write buffer, with this many block entries.
    Coalesce(usize),
}

impl SchemeId {
    /// Parses one scheme name as accepted by the CLI: `6t`, `rmw`,
    /// `wg`, `wg+rb`/`wgrb`, `coalesce:<entries>`.
    pub fn parse(s: &str) -> Result<SchemeId, String> {
        let s = s.trim().to_ascii_lowercase();
        match s.as_str() {
            "6t" => Ok(SchemeId::SixT),
            "rmw" => Ok(SchemeId::Rmw),
            "wg" => Ok(SchemeId::Wg),
            "wg+rb" | "wgrb" => Ok(SchemeId::WgRb),
            other => {
                if let Some(entries) = other.strip_prefix("coalesce:") {
                    let n: usize = entries
                        .parse()
                        .map_err(|_| format!("bad coalesce entry count `{entries}`"))?;
                    if n == 0 {
                        return Err("coalesce needs at least 1 entry".to_string());
                    }
                    Ok(SchemeId::Coalesce(n))
                } else {
                    Err(format!(
                        "unknown scheme `{other}` (expected 6t|rmw|wg|wg+rb|coalesce:<n>)"
                    ))
                }
            }
        }
    }

    /// Parses a comma-separated scheme list.
    pub fn parse_list(s: &str) -> Result<Vec<SchemeId>, String> {
        let schemes: Vec<SchemeId> = s
            .split(',')
            .filter(|p| !p.trim().is_empty())
            .map(SchemeId::parse)
            .collect::<Result<_, _>>()?;
        if schemes.is_empty() {
            return Err("empty scheme list".to_string());
        }
        Ok(schemes)
    }

    /// The display label, matching the controllers' `name()`.
    pub fn label(self) -> String {
        match self {
            SchemeId::SixT => "6T".to_string(),
            SchemeId::Rmw => "RMW".to_string(),
            SchemeId::Wg => "WG".to_string(),
            SchemeId::WgRb => "WG+RB".to_string(),
            SchemeId::Coalesce(n) => format!("CoalesceWB({n})"),
        }
    }

    /// The full suite the harness checks by default: all five schemes
    /// of the workspace.
    pub fn default_suite() -> Vec<SchemeId> {
        vec![
            SchemeId::SixT,
            SchemeId::Rmw,
            SchemeId::Wg,
            SchemeId::WgRb,
            SchemeId::Coalesce(4),
        ]
    }
}

impl fmt::Display for SchemeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct ConformConfig {
    /// Cache geometry every scheme is instantiated at.
    pub geometry: CacheGeometry,
    /// Replacement policy (shared — it must be, for lockstep equality).
    pub replacement: ReplacementKind,
    /// The schemes to replay, in order. The first is the hit/miss
    /// reference.
    pub schemes: Vec<SchemeId>,
    /// Stop recording divergences after this many (the replay still
    /// runs to completion so stats stay meaningful).
    pub max_divergences: usize,
    /// Arm this fault in every WG/WG+RB backend — self-test hook used
    /// to prove the harness catches real equivalence bugs.
    pub wg_fault: Option<WgFault>,
}

impl ConformConfig {
    /// The default configuration at `geometry`: all five schemes, LRU,
    /// a 64-divergence cap, no fault.
    pub fn new(geometry: CacheGeometry) -> Self {
        ConformConfig {
            geometry,
            replacement: ReplacementKind::Lru,
            schemes: SchemeId::default_suite(),
            max_divergences: 64,
            wg_fault: None,
        }
    }
}

/// Which law a [`Divergence`] violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DivergenceKind {
    /// A scheme returned the wrong value for an access.
    ValueMismatch,
    /// A scheme disagreed with the reference scheme on hit/miss.
    HitDisagreement,
    /// After `flush`, `peek_word` disagreed with the golden memory.
    FinalValue,
    /// Schemes ended the replay with different `CacheStats`.
    StatsMismatch,
    /// A per-scheme counter law failed (hits+misses=accesses,
    /// eviction bounds, `wg.silent_suppressed` ≤ closed groups, …).
    ConservationLaw,
    /// Cross-scheme traffic ordering failed (e.g. WG wrote the array
    /// more often than RMW) or line fills were scheme-dependent.
    TrafficOrdering,
    /// A Tag-Buffer entry names a tag the cache set does not hold.
    BufferTagGhost,
    /// The Dirty bit is clear but the Set-Buffer differs from the
    /// array — exactly the state that loses data on a silent elision.
    BufferStaleClean,
}

impl DivergenceKind {
    /// Stable discriminant carried in the trace event's `detail` field.
    pub fn discriminant(self) -> u64 {
        match self {
            DivergenceKind::ValueMismatch => 0,
            DivergenceKind::HitDisagreement => 1,
            DivergenceKind::FinalValue => 2,
            DivergenceKind::StatsMismatch => 3,
            DivergenceKind::ConservationLaw => 4,
            DivergenceKind::TrafficOrdering => 5,
            DivergenceKind::BufferTagGhost => 6,
            DivergenceKind::BufferStaleClean => 7,
        }
    }

    /// Short kebab-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            DivergenceKind::ValueMismatch => "value-mismatch",
            DivergenceKind::HitDisagreement => "hit-disagreement",
            DivergenceKind::FinalValue => "final-value",
            DivergenceKind::StatsMismatch => "stats-mismatch",
            DivergenceKind::ConservationLaw => "conservation-law",
            DivergenceKind::TrafficOrdering => "traffic-ordering",
            DivergenceKind::BufferTagGhost => "buffer-tag-ghost",
            DivergenceKind::BufferStaleClean => "buffer-stale-clean",
        }
    }
}

/// One observed disagreement between a scheme and the golden model (or
/// between schemes).
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Index of the op being replayed when the divergence was seen;
    /// `ops_replayed` for end-of-run checks.
    pub op_index: u64,
    /// Label of the diverging scheme.
    pub scheme: String,
    /// The violated law.
    pub kind: DivergenceKind,
    /// The address involved (0 when not address-specific).
    pub addr: u64,
    /// The value the law requires.
    pub expected: u64,
    /// The value observed.
    pub actual: u64,
    /// Human-readable context.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "op {} [{}] {}: {} (expected {:#x}, got {:#x}, addr {:#x})",
            self.op_index,
            self.scheme,
            self.kind.name(),
            self.detail,
            self.expected,
            self.actual,
            self.addr
        )
    }
}

/// The outcome of one lockstep replay.
#[derive(Debug)]
pub struct ConformReport {
    /// Ops replayed through every scheme.
    pub ops_replayed: u64,
    /// Labels of the replayed schemes, in configuration order.
    pub schemes: Vec<String>,
    /// Recorded divergences (capped at `max_divergences`).
    pub divergences: Vec<Divergence>,
    /// Divergences observed beyond the cap (recorded only as a count).
    pub suppressed: u64,
    /// Structured event stream: one [`EventKind::Divergence`] event per
    /// recorded divergence, ready for `write_jsonl`.
    pub tracer: Tracer,
}

impl ConformReport {
    /// `true` when no law was violated.
    pub fn pass(&self) -> bool {
        self.divergences.is_empty() && self.suppressed == 0
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        if self.pass() {
            format!(
                "conformance PASS: {} ops x {} schemes, 0 divergences",
                self.ops_replayed,
                self.schemes.len()
            )
        } else {
            format!(
                "conformance FAIL: {} ops x {} schemes, {} divergence(s){}",
                self.ops_replayed,
                self.schemes.len(),
                self.divergences.len(),
                if self.suppressed > 0 {
                    format!(" (+{} suppressed)", self.suppressed)
                } else {
                    String::new()
                }
            )
        }
    }
}

/// A concrete controller, wrapped so WG internals stay inspectable
/// (a `Box<dyn Controller>` would hide `buffer_snapshots`).
enum Backend {
    SixT(ConventionalController),
    Rmw(RmwController),
    Wg(WgController),
    WgRb(WgRbController),
    Coalesce(CoalescingController),
}

impl Backend {
    fn build(id: SchemeId, config: &ConformConfig) -> Backend {
        let g = config.geometry;
        let r = config.replacement;
        match id {
            SchemeId::SixT => Backend::SixT(ConventionalController::new(g, r)),
            SchemeId::Rmw => Backend::Rmw(RmwController::new(g, r)),
            SchemeId::Wg => {
                let mut c = WgController::new(g, r);
                c.inject_fault(config.wg_fault);
                Backend::Wg(c)
            }
            SchemeId::WgRb => {
                let mut c = WgRbController::new(g, r);
                c.inject_fault(config.wg_fault);
                Backend::WgRb(c)
            }
            SchemeId::Coalesce(entries) => {
                Backend::Coalesce(CoalescingController::new(g, r, entries))
            }
        }
    }

    fn ctrl(&self) -> &dyn Controller {
        match self {
            Backend::SixT(c) => c,
            Backend::Rmw(c) => c,
            Backend::Wg(c) => c,
            Backend::WgRb(c) => c,
            Backend::Coalesce(c) => c,
        }
    }

    fn ctrl_mut(&mut self) -> &mut dyn Controller {
        match self {
            Backend::SixT(c) => c,
            Backend::Rmw(c) => c,
            Backend::Wg(c) => c,
            Backend::WgRb(c) => c,
            Backend::Coalesce(c) => c,
        }
    }

    /// The WG view, when this backend has Set-Buffers to inspect.
    fn wg_view(&self) -> Option<&WgController> {
        match self {
            Backend::Wg(c) => Some(c),
            Backend::WgRb(c) => Some(c.as_wg()),
            _ => None,
        }
    }
}

/// Collects divergences up to a cap and mirrors each into the tracer.
struct Recorder {
    divergences: Vec<Divergence>,
    suppressed: u64,
    max: usize,
    tracer: Tracer,
}

impl Recorder {
    fn new(max: usize) -> Self {
        Recorder {
            divergences: Vec::new(),
            suppressed: 0,
            max,
            tracer: Tracer::new(TraceLevel::Event, max.max(1)),
        }
    }

    fn record(&mut self, d: Divergence) {
        if self.divergences.len() >= self.max {
            self.suppressed += 1;
            return;
        }
        self.tracer.emit(TraceEvent::new(
            d.op_index,
            Component::Conform,
            EventKind::Divergence,
            d.addr,
            d.kind.discriminant(),
        ));
        self.divergences.push(d);
    }
}

/// Replays `trace` in lockstep through every configured scheme and a
/// flat golden memory, checking value equivalence, stat conservation,
/// and buffer coherence. See the [crate docs](crate) for the invariant
/// catalogue.
pub fn replay(trace: &Trace, config: &ConformConfig) -> ConformReport {
    assert!(
        !config.schemes.is_empty(),
        "at least one scheme is required"
    );
    let mut backends: Vec<(String, Backend)> = config
        .schemes
        .iter()
        .map(|&id| (id.label(), Backend::build(id, config)))
        .collect();
    let mut rec = Recorder::new(config.max_divergences);
    let ref_label = config.schemes[0].label();

    // The golden model: a flat word-addressed memory, zero-initialized
    // like MainMemory. `touched` keys every address the trace used so
    // the final sweep also covers read-only locations.
    let mut golden: BTreeMap<u64, u64> = BTreeMap::new();
    let mut touched: BTreeMap<u64, ()> = BTreeMap::new();

    for (i, op) in trace.iter().enumerate() {
        let op_index = i as u64;
        touched.insert(op.addr.raw(), ());
        let expected = if op.is_read() {
            golden.get(&op.addr.raw()).copied().unwrap_or(0)
        } else {
            golden.insert(op.addr.raw(), op.value);
            op.value
        };

        let mut reference_hit: Option<bool> = None;
        for (label, backend) in &mut backends {
            let response = backend.ctrl_mut().access(op);
            if response.value != expected {
                rec.record(Divergence {
                    op_index,
                    scheme: label.clone(),
                    kind: DivergenceKind::ValueMismatch,
                    addr: op.addr.raw(),
                    expected,
                    actual: response.value,
                    detail: format!("{op} returned the wrong value"),
                });
            }
            match reference_hit {
                None => reference_hit = Some(response.hit),
                Some(reference) => {
                    if response.hit != reference {
                        rec.record(Divergence {
                            op_index,
                            scheme: label.clone(),
                            kind: DivergenceKind::HitDisagreement,
                            addr: op.addr.raw(),
                            expected: u64::from(reference),
                            actual: u64::from(response.hit),
                            detail: format!("hit/miss disagrees with {ref_label} for {op}"),
                        });
                    }
                }
            }
        }

        for (label, backend) in &backends {
            check_buffer_coherence(label, backend, op_index, &mut rec);
        }
        if rec.divergences.len() >= rec.max && rec.suppressed > 0 {
            // Already past the cap and still diverging: the prefix is
            // long since damning, stop burning time.
            break;
        }
    }

    let ops_replayed = trace.len() as u64;
    for (_, backend) in &mut backends {
        backend.ctrl_mut().flush();
    }

    // Final architectural image: every touched word must match golden.
    for (&raw, ()) in &touched {
        let expected = golden.get(&raw).copied().unwrap_or(0);
        for (label, backend) in &backends {
            let actual = backend.ctrl().peek_word(Address::new(raw));
            if actual != expected {
                rec.record(Divergence {
                    op_index: ops_replayed,
                    scheme: label.clone(),
                    kind: DivergenceKind::FinalValue,
                    addr: raw,
                    expected,
                    actual,
                    detail: "post-flush peek_word disagrees with golden memory".to_string(),
                });
            }
        }
    }

    check_stat_laws(&backends, ops_replayed, &mut rec);

    ConformReport {
        ops_replayed,
        schemes: backends.iter().map(|(l, _)| l.clone()).collect(),
        divergences: rec.divergences,
        suppressed: rec.suppressed,
        tracer: rec.tracer,
    }
}

/// Buffer-coherence invariants for a WG/WG+RB backend:
/// every Tag-Buffer entry mirrors a valid cache line with that tag, and
/// a clear Dirty bit implies the Set-Buffer equals the array image.
fn check_buffer_coherence(label: &str, backend: &Backend, op_index: u64, rec: &mut Recorder) {
    let Some(wg) = backend.wg_view() else {
        return;
    };
    let cache = wg.cache();
    for view in wg.buffer_views() {
        let set = cache.set(view.set_index());
        for (way, tag) in view.tags().iter().enumerate() {
            let Some(tag) = *tag else { continue };
            let line = set.line(way);
            if !line.is_valid() || line.tag() != tag {
                rec.record(Divergence {
                    op_index,
                    scheme: label.to_string(),
                    kind: DivergenceKind::BufferTagGhost,
                    addr: view.set_index(),
                    expected: tag,
                    actual: if line.is_valid() {
                        line.tag()
                    } else {
                        u64::MAX
                    },
                    detail: format!(
                        "Tag-Buffer way {way} of set {} names a tag the cache does not hold",
                        view.set_index()
                    ),
                });
                continue;
            }
            // Clean buffer ⟹ buffered data equals the array copy.
            // (The converse does not hold: an ABA rewrite leaves the
            // Dirty bit set with data that happens to match.)
            if !view.dirty() && view.way_data(way) != line.data() {
                let word = view
                    .way_data(way)
                    .iter()
                    .zip(line.data())
                    .position(|(a, b)| a != b)
                    .unwrap_or(0);
                rec.record(Divergence {
                    op_index,
                    scheme: label.to_string(),
                    kind: DivergenceKind::BufferStaleClean,
                    addr: view.set_index(),
                    expected: line.data()[word],
                    actual: view.way_data(way)[word],
                    detail: format!(
                        "Dirty bit clear but Set-Buffer way {way} word {word} differs from the array"
                    ),
                });
            }
        }
    }
}

/// End-of-run stat conservation and cross-scheme traffic laws.
fn check_stat_laws(backends: &[(String, Backend)], ops_replayed: u64, rec: &mut Recorder) {
    let end = Divergence {
        op_index: ops_replayed,
        scheme: String::new(),
        kind: DivergenceKind::ConservationLaw,
        addr: 0,
        expected: 0,
        actual: 0,
        detail: String::new(),
    };

    // Per-scheme laws.
    for (label, backend) in backends {
        let stats = backend.ctrl().stats();
        if let Err(law) = stats.check_conservation() {
            rec.record(Divergence {
                scheme: label.clone(),
                detail: law,
                ..end.clone()
            });
        }
        if stats.accesses() != ops_replayed {
            rec.record(Divergence {
                scheme: label.clone(),
                expected: ops_replayed,
                actual: stats.accesses(),
                detail: "stats.accesses() != ops replayed".to_string(),
                ..end.clone()
            });
        }
        if let Some(obs) = backend.ctrl().obs() {
            let reg = obs.registry();
            if let (Some(suppressed), Some(groups)) = (
                reg.counter_by_name("wg.silent_suppressed"),
                reg.counter_by_name("wg.groups"),
            ) {
                if suppressed > groups {
                    rec.record(Divergence {
                        scheme: label.clone(),
                        expected: groups,
                        actual: suppressed,
                        detail: "wg.silent_suppressed exceeds closed groups".to_string(),
                        ..end.clone()
                    });
                }
            }
        }
    }

    // Cross-scheme laws. The reference is the first scheme.
    let (ref_label, ref_backend) = &backends[0];
    let ref_stats = *ref_backend.ctrl().stats();
    let ref_fills = ref_backend.ctrl().traffic().line_fills;
    for (label, backend) in &backends[1..] {
        if *backend.ctrl().stats() != ref_stats {
            rec.record(Divergence {
                scheme: label.clone(),
                kind: DivergenceKind::StatsMismatch,
                detail: format!(
                    "CacheStats diverge from {ref_label}: {} vs {}",
                    backend.ctrl().stats(),
                    ref_stats
                ),
                ..end.clone()
            });
        }
        let fills = backend.ctrl().traffic().line_fills;
        if fills != ref_fills {
            rec.record(Divergence {
                scheme: label.clone(),
                kind: DivergenceKind::TrafficOrdering,
                expected: ref_fills,
                actual: fills,
                detail: format!("line fills diverge from {ref_label}"),
                ..end.clone()
            });
        }
    }

    // Array-traffic ordering between the paper's schemes, when present.
    let find = |want: &str| {
        backends
            .iter()
            .find(|(l, _)| l == want)
            .map(|(_, b)| b.ctrl())
    };
    let (six_t, rmw, wg, wgrb) = (find("6T"), find("RMW"), find("WG"), find("WG+RB"));
    let mut ordering = |name: &str, lhs: u64, rhs: u64, scheme: &str| {
        if lhs > rhs {
            rec.record(Divergence {
                scheme: scheme.to_string(),
                kind: DivergenceKind::TrafficOrdering,
                expected: rhs,
                actual: lhs,
                detail: name.to_string(),
                ..end.clone()
            });
        }
    };
    if let (Some(six_t), Some(rmw)) = (six_t, rmw) {
        ordering(
            "6T array accesses exceed RMW's",
            six_t.array_accesses(),
            rmw.array_accesses(),
            "6T",
        );
    }
    if let (Some(wg), Some(rmw)) = (wg, rmw) {
        ordering(
            "WG array accesses exceed RMW's",
            wg.array_accesses(),
            rmw.array_accesses(),
            "WG",
        );
        ordering(
            "WG array writes exceed RMW's",
            wg.traffic().write_port_activations(),
            rmw.traffic().write_port_activations(),
            "WG",
        );
    }
    if let (Some(wgrb), Some(wg)) = (wgrb, wg) {
        ordering(
            "WG+RB array accesses exceed WG's",
            wgrb.array_accesses(),
            wg.array_accesses(),
            "WG+RB",
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache8t_trace::MemOp;

    fn tiny() -> CacheGeometry {
        CacheGeometry::new(256, 2, 32).expect("valid test geometry")
    }

    fn trace_of(ops: Vec<MemOp>) -> Trace {
        let n = ops.len() as u64;
        Trace::new(ops, n)
    }

    #[test]
    fn scheme_parsing_round_trips() {
        assert_eq!(SchemeId::parse("6t"), Ok(SchemeId::SixT));
        assert_eq!(SchemeId::parse("WG+RB"), Ok(SchemeId::WgRb));
        assert_eq!(SchemeId::parse("wgrb"), Ok(SchemeId::WgRb));
        assert_eq!(SchemeId::parse("coalesce:8"), Ok(SchemeId::Coalesce(8)));
        assert!(SchemeId::parse("coalesce:0").is_err());
        assert!(SchemeId::parse("9t").is_err());
        let list = SchemeId::parse_list("6t,rmw, wg").expect("valid list");
        assert_eq!(list, vec![SchemeId::SixT, SchemeId::Rmw, SchemeId::Wg]);
        assert!(SchemeId::parse_list("").is_err());
        assert_eq!(SchemeId::default_suite().len(), 5);
    }

    #[test]
    fn healthy_schemes_pass_a_conflict_heavy_trace() {
        // Writes and reads over colliding sets with silent rewrites.
        let mut ops = Vec::new();
        for i in 0..200u64 {
            let addr = Address::new((i * 13 % 64) * 8);
            if i % 3 == 0 {
                ops.push(MemOp::read(addr));
            } else {
                ops.push(MemOp::write(addr, i % 4));
            }
        }
        let report = replay(&trace_of(ops), &ConformConfig::new(tiny()));
        assert!(
            report.pass(),
            "unexpected divergences: {:?}",
            report.divergences
        );
        assert_eq!(report.ops_replayed, 200);
        assert_eq!(report.schemes.len(), 5);
        assert!(report.tracer.is_empty(), "no events on a clean run");
    }

    #[test]
    fn injected_dirty_bit_fault_is_caught() {
        let mut config = ConformConfig::new(tiny());
        config.wg_fault = Some(WgFault::SkipDirtyBit);
        // A non-silent write followed by an eviction of the buffer: the
        // faulty WG elides the write-back and loses the value.
        let ops = vec![
            MemOp::write(Address::new(0x20), 3),
            MemOp::write(Address::new(0x00), 1),
            MemOp::read(Address::new(0x20)),
        ];
        let report = replay(&trace_of(ops), &config);
        assert!(!report.pass());
        assert!(
            report
                .divergences
                .iter()
                .any(|d| d.kind == DivergenceKind::ValueMismatch
                    || d.kind == DivergenceKind::FinalValue
                    || d.kind == DivergenceKind::BufferStaleClean),
            "expected a value or coherence divergence, got {:?}",
            report.divergences
        );
        // Each recorded divergence has a matching structured event.
        assert_eq!(report.tracer.len(), report.divergences.len());
        assert!(report
            .tracer
            .events()
            .all(|e| e.component == Component::Conform && e.kind == EventKind::Divergence));
    }

    #[test]
    fn divergence_cap_suppresses_but_counts() {
        let mut config = ConformConfig::new(tiny());
        config.wg_fault = Some(WgFault::SkipDirtyBit);
        config.max_divergences = 2;
        let mut ops = Vec::new();
        for i in 0..100u64 {
            ops.push(MemOp::write(Address::new((i % 64) * 8), i + 1));
        }
        for i in 0..64u64 {
            ops.push(MemOp::read(Address::new(i * 8)));
        }
        let report = replay(&trace_of(ops), &config);
        assert!(!report.pass());
        assert!(report.divergences.len() <= 2);
        assert!(report.suppressed > 0, "the cap must count what it drops");
        assert!(report.summary().contains("suppressed"));
    }
}
