//! Equivalence of the SoA cache core with the original representation.
//!
//! The `DataCache` rework (flat data arena + `PolicyTable` enum dispatch)
//! must be *behaviour-preserving*: same hit/miss stream, same eviction
//! victims, same post-flush memory images as the per-line
//! `Box<dyn ReplacementPolicy>` design it replaced. These tests pin that:
//!
//! 1. a per-set trait-object reference model (built exactly the way the
//!    old `CacheSet` built its policies, including the per-set Random
//!    seed derivation) is replayed in lockstep against `DataCache`,
//!    asserting identical victim ways and eviction metadata on every
//!    fill;
//! 2. the full conformance harness replays all five schemes at every
//!    replacement kind and must report zero divergences — identical
//!    stats, read values, and post-flush `peek_word` images.

use cache8t_conform::{replay, ConformConfig, SchemeId};
use cache8t_sim::{
    Address, CacheGeometry, DataCache, MainMemory, ReplacementKind, ReplacementPolicy,
};
use cache8t_trace::{profiles, ProfiledGenerator, TraceGenerator};

/// The replacement kinds the rework must preserve bit-for-bit.
fn all_kinds() -> [ReplacementKind; 4] {
    [
        ReplacementKind::Lru,
        ReplacementKind::Fifo,
        ReplacementKind::Random { seed: 7 },
        ReplacementKind::TreePlru,
    ]
}

/// Reference model of one cache set as the pre-SoA representation kept
/// it: a tag per way plus a boxed per-set policy. The Random seed is
/// derived per set with the same mixing the original `CacheSet::new`
/// used (and `PolicyTable` must reproduce).
struct RefSet {
    tags: Vec<Option<u64>>,
    policy: Box<dyn ReplacementPolicy>,
}

impl RefSet {
    fn new(kind: ReplacementKind, set_index: u64, ways: usize) -> Self {
        let kind = match kind {
            ReplacementKind::Random { seed } => ReplacementKind::Random {
                seed: seed ^ set_index.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            },
            other => other,
        };
        RefSet {
            tags: vec![None; ways],
            policy: kind.build(ways),
        }
    }

    fn find(&self, tag: u64) -> Option<usize> {
        self.tags.iter().position(|t| *t == Some(tag))
    }

    /// Mirrors the cache's fill-slot selection: first invalid way, else
    /// the policy's victim. Returns `(way, evicted_tag)`.
    fn fill(&mut self, tag: u64) -> (usize, Option<u64>) {
        let way = match self.tags.iter().position(Option::is_none) {
            Some(way) => way,
            None => self.policy.victim(),
        };
        let evicted = self.tags[way];
        self.tags[way] = Some(tag);
        self.policy.filled(way);
        (way, evicted)
    }
}

/// Small xorshift stream so the test needs no RNG crate plumbing.
fn next_raw(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[test]
fn fill_victims_match_the_trait_object_reference() {
    let geometry = CacheGeometry::new(512, 4, 32).expect("valid geometry");
    for kind in all_kinds() {
        let mut cache = DataCache::new(geometry, kind);
        let memory = MainMemory::new(geometry.block_bytes());
        let mut reference: Vec<RefSet> = (0..geometry.num_sets())
            .map(|set| RefSet::new(kind, set, geometry.ways() as usize))
            .collect();
        let mut state = 0x0123_4567_89ab_cdef_u64;
        let mut evictions = 0u64;
        for _ in 0..20_000 {
            // 64 blocks: enough conflict pressure to evict constantly.
            let raw = (next_raw(&mut state) % 64) * geometry.block_bytes();
            let addr = Address::new(raw);
            let set_index = geometry.set_index_of(addr);
            let tag = geometry.tag_of(addr);
            let refset = &mut reference[set_index as usize];
            match cache.probe(addr) {
                Some(way) => {
                    assert_eq!(
                        refset.find(tag),
                        Some(way),
                        "{kind}: hit way diverged in set {set_index}"
                    );
                    cache.touch(addr);
                    refset.policy.touch(way);
                }
                None => {
                    assert_eq!(refset.find(tag), None, "{kind}: phantom hit");
                    let base = geometry.block_base(addr);
                    let out = cache.fill(base, memory.read_block_ref(base));
                    let (ref_way, ref_evicted) = refset.fill(tag);
                    let way = cache.probe(addr).expect("resident after fill");
                    assert_eq!(way, ref_way, "{kind}: victim way diverged");
                    let evicted_tag = out.evicted.map(|e| geometry.tag_of(e.base));
                    assert_eq!(
                        evicted_tag, ref_evicted,
                        "{kind}: evicted tag diverged in set {set_index}"
                    );
                    evictions += u64::from(evicted_tag.is_some());
                }
            }
        }
        assert_eq!(
            cache.stats().evictions,
            evictions,
            "{kind}: eviction count drifted from the lockstep driver"
        );
        assert!(evictions > 1_000, "{kind}: the stream must stress eviction");
    }
}

#[test]
fn all_schemes_agree_at_every_replacement_kind() {
    let profile = profiles::by_name("gcc").expect("gcc is in the suite");
    let geometry = CacheGeometry::new(2 * 1024, 2, 32).expect("small geometry");
    let trace = ProfiledGenerator::new(profile, geometry, 42).collect(8_000);
    for kind in all_kinds() {
        let mut config = ConformConfig::new(geometry);
        config.replacement = kind;
        config.schemes = SchemeId::default_suite();
        let report = replay(&trace, &config);
        assert!(
            report.pass(),
            "{kind}: conformance failed after the SoA rework:\n{}\n{}",
            report.summary(),
            report
                .divergences
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert_eq!(report.ops_replayed, 8_000);
    }
}
