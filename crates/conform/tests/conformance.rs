//! End-to-end conformance: every checked-in workload profile replays
//! cleanly through all five schemes, and an injected Dirty-bit fault is
//! both caught and shrunk to a tiny reproducer.

use cache8t_conform::{
    fuzz::{fuzz_round, shrink, write_repro},
    replay, ConformConfig, DivergenceKind, SchemeId,
};
use cache8t_core::WgFault;
use cache8t_exec::{run_jobs, ExecOptions};
use cache8t_sim::CacheGeometry;
use cache8t_trace::{profiles, ProfiledGenerator, Trace, TraceGenerator};

/// Small enough for constant conflicts, fast tier-1 runtime.
fn tiny() -> CacheGeometry {
    CacheGeometry::new(1024, 2, 32).expect("valid test geometry")
}

/// Satellite: `flush()` + `peek_word()` equivalence across all five
/// backends on every checked-in workload profile. The golden-memory
/// sweep inside `replay` compares each scheme's post-flush `peek_word`
/// against the architectural value for every touched address, so a
/// clean report *is* the equivalence statement.
#[test]
fn all_profiles_replay_cleanly_through_every_scheme() {
    let names = profiles::names();
    assert_eq!(names.len(), 25, "the checked-in profile set moved");
    let jobs: Vec<_> = names
        .iter()
        .map(|&name| {
            move || {
                let profile = profiles::by_name(name).expect("profile exists");
                let trace = ProfiledGenerator::new(profile, tiny(), 0xC8).collect(1200);
                let report = replay(&trace, &ConformConfig::new(tiny()));
                (name, report)
            }
        })
        .collect();
    let exec = ExecOptions {
        workers: 0,
        retries: 0,
    };
    let report = run_jobs(jobs, &exec, None);
    let mut checked = 0;
    for outcome in report.outcomes {
        let (name, r) = outcome.completed().expect("replay job must not panic");
        assert!(
            r.pass(),
            "profile {name} diverged: {}",
            r.divergences
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        );
        assert_eq!(r.ops_replayed, 1200);
        assert_eq!(r.schemes.len(), 5);
        checked += 1;
    }
    assert_eq!(checked, 25);
}

/// A subset of schemes can be checked in isolation and still agrees
/// with the golden memory (exercises the `--schemes` path of the CLI).
#[test]
fn scheme_subsets_are_checkable() {
    let profile = profiles::by_name("mcf").expect("profile exists");
    let trace = ProfiledGenerator::new(profile, tiny(), 7).collect(800);
    let mut config = ConformConfig::new(tiny());
    config.schemes = vec![SchemeId::Wg, SchemeId::WgRb, SchemeId::Coalesce(8)];
    let report = replay(&trace, &config);
    assert!(report.pass(), "{}", report.summary());
    assert_eq!(report.schemes, vec!["WG", "WG+RB", "CoalesceWB(8)"]);
}

/// Acceptance criterion: arming `WgFault::SkipDirtyBit` makes the WG
/// controller drop grouped writes on eviction; the harness must catch
/// the divergence on a fuzzed trace and shrink it to a reproducer of
/// at most 64 ops that still fails and survives a C8TT round trip.
#[test]
fn injected_dirty_bit_fault_is_caught_and_shrunk() {
    let mut config = ConformConfig::new(tiny());
    config.wg_fault = Some(WgFault::SkipDirtyBit);

    let (trace, report) = fuzz_round(0xBAD, 1500, &config);
    assert!(!report.pass(), "the fault must be observable");
    assert!(
        report.divergences.iter().any(|d| matches!(
            d.kind,
            DivergenceKind::ValueMismatch | DivergenceKind::FinalValue
        )),
        "a dropped dirty bit must surface as lost data, got {:?}",
        report.divergences
    );

    let repro = shrink(&trace, &config).expect("failing trace shrinks");
    assert!(
        repro.len() <= 64,
        "reproducer must be minimal, got {} ops",
        repro.len()
    );
    assert!(!replay(&repro, &config).pass(), "reproducer still fails");

    // The reproducer must not implicate the healthy implementation.
    let healthy = ConformConfig::new(tiny());
    assert!(
        replay(&repro, &healthy).pass(),
        "healthy schemes stay clean"
    );

    // Round-trip through the on-disk C8TT format used by `cache8t check`.
    let dir = std::env::temp_dir().join(format!("cache8t-conform-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let path = write_repro(&dir, "wg-skip-dirty-seed-0xBAD", &repro).expect("write repro");
    let back =
        Trace::read_from(std::fs::File::open(&path).expect("open repro")).expect("parse repro");
    assert_eq!(back, repro);
    assert!(!replay(&back, &config).pass(), "reloaded repro still fails");
    let _ = std::fs::remove_dir_all(&dir);
}
