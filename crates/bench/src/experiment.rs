//! The per-benchmark experiment runner shared by all harness binaries.

use std::io::Write;
use std::path::Path;

use serde::Serialize;

use cache8t_core::{
    ArrayTraffic, Controller, ConventionalController, CountingPolicy, RmwController, WgController,
    WgRbController,
};
use cache8t_obs::{span, MetricRegistry, SpanGuard, TraceEvent};
use cache8t_sim::{CacheGeometry, CacheStats, ReplacementKind};
use cache8t_trace::analyze::StreamStats;
use cache8t_trace::{profiles, ProfiledGenerator, Trace, TraceGenerator, WorkloadProfile};

use crate::cli::CommonArgs;

/// How a run is set up: geometry, stream length and warm-up.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RunConfig {
    /// Cache geometry under test.
    #[serde(skip)]
    pub geometry: CacheGeometry,
    /// Measured operations per benchmark.
    pub ops: usize,
    /// Warm-up operations before counters reset (the paper fast-forwards
    /// 1 B of its 10 B instructions; we keep the same 10 % ratio).
    pub warmup_ops: usize,
    /// Seed for the trace generator.
    pub seed: u64,
}

impl RunConfig {
    /// A config over `geometry` with `ops` measured operations, 10 %
    /// warm-up, and the given seed.
    pub fn new(geometry: CacheGeometry, ops: usize, seed: u64) -> Self {
        RunConfig {
            geometry,
            ops,
            warmup_ops: ops / 10,
            seed,
        }
    }
}

/// One controller's outcome on one benchmark.
#[derive(Debug, Clone, Serialize)]
pub struct SchemeResult {
    /// Scheme name (`"6T"`, `"RMW"`, `"WG"`, `"WG+RB"`).
    pub scheme: &'static str,
    /// Array activations under demand-only counting.
    pub array_accesses: u64,
    /// The full traffic ledger.
    pub traffic: ArrayTraffic,
    /// Request-level hit/miss statistics.
    pub stats: CacheStats,
    /// Metric-registry snapshot (counters, gauges, histograms) taken
    /// after the measured region; `Null` when the controller has no
    /// observability bundle.
    pub metrics: serde_json::Value,
    /// Structural trace events recorded during the measured region.
    /// Empty unless `CACHE8T_TRACE` is `event` or `verbose`; excluded
    /// from the serialized result (use `--trace-out` for the JSONL).
    #[serde(skip)]
    pub events: Vec<TraceEvent>,
    /// The live registry behind `metrics`, kept for merging and
    /// terminal rendering (`report_card`); excluded from JSON.
    #[serde(skip)]
    pub registry: MetricRegistry,
}

/// All schemes' outcomes on one benchmark, plus the measured stream
/// statistics.
#[derive(Debug, Clone, Serialize)]
pub struct BenchmarkResult {
    /// Benchmark name.
    pub name: String,
    /// Measured Figure-3/4/5 statistics of the generated stream.
    pub stream: StreamStats,
    /// Conventional (6T) controller outcome.
    pub conventional: SchemeResult,
    /// RMW baseline outcome.
    pub rmw: SchemeResult,
    /// Write Grouping outcome.
    pub wg: SchemeResult,
    /// Write Grouping + Read Bypassing outcome.
    pub wgrb: SchemeResult,
}

impl BenchmarkResult {
    /// RMW's access increase over the conventional cache (the paper's ">32 %
    /// on average, max 47 %" motivation).
    pub fn rmw_increase(&self) -> f64 {
        if self.conventional.array_accesses == 0 {
            return 0.0;
        }
        self.rmw.array_accesses as f64 / self.conventional.array_accesses as f64 - 1.0
    }

    /// WG's access reduction vs RMW (the left bars of Figures 9–11).
    pub fn wg_reduction(&self) -> f64 {
        self.wg
            .traffic
            .reduction_vs(&self.rmw.traffic, CountingPolicy::DemandOnly)
    }

    /// WG+RB's access reduction vs RMW (the right bars of Figures 9–11).
    pub fn wgrb_reduction(&self) -> f64 {
        self.wgrb
            .traffic
            .reduction_vs(&self.rmw.traffic, CountingPolicy::DemandOnly)
    }
}

fn run_scheme(controller: &mut dyn Controller, trace: &Trace, warmup_ops: usize) -> SchemeResult {
    // The controller name is 'static, so it doubles as the span label:
    // the span report breaks replay time down per scheme.
    let _span = SpanGuard::enter(controller.name());
    for (i, op) in trace.iter().enumerate() {
        if i == warmup_ops {
            controller.reset_counters();
        }
        controller.access(op);
    }
    controller.flush();
    let (metrics, events, registry) = match controller.obs() {
        Some(obs) => (
            obs.registry().to_value(),
            obs.tracer().events().copied().collect(),
            obs.registry().clone(),
        ),
        None => (serde_json::Value::Null, Vec::new(), MetricRegistry::new()),
    };
    SchemeResult {
        scheme: controller.name(),
        array_accesses: controller.array_accesses(),
        traffic: *controller.traffic(),
        stats: *controller.stats(),
        metrics,
        events,
        registry,
    }
}

/// Runs one benchmark profile through all four controllers over an
/// identical trace.
pub fn run_benchmark(profile: &WorkloadProfile, config: RunConfig) -> BenchmarkResult {
    // Traces are shaped at the paper's *reference* geometry and replayed
    // unchanged against every cache configuration — the paper's own
    // methodology (one Pin trace, many cache models). This is what lets
    // the Figure 10/11 sensitivity effects emerge from spatial locality
    // rather than being re-generated away.
    let trace = {
        let _span = span!("bench.generate");
        let mut generator = ProfiledGenerator::new(
            profile.clone(),
            CacheGeometry::paper_baseline(),
            config.seed,
        );
        generator.collect(config.warmup_ops + config.ops)
    };
    // Stream statistics are measured on the measured region only.
    let stream = {
        let _span = span!("bench.stream_stats");
        let (_, measured) = trace.clone().split_warmup(config.warmup_ops);
        StreamStats::measure(&measured, config.geometry)
    };

    let replacement = ReplacementKind::Lru;
    let conventional = run_scheme(
        &mut ConventionalController::new(config.geometry, replacement),
        &trace,
        config.warmup_ops,
    );
    let rmw = run_scheme(
        &mut RmwController::new(config.geometry, replacement),
        &trace,
        config.warmup_ops,
    );
    let wg = run_scheme(
        &mut WgController::new(config.geometry, replacement),
        &trace,
        config.warmup_ops,
    );
    let wgrb = run_scheme(
        &mut WgRbController::new(config.geometry, replacement),
        &trace,
        config.warmup_ops,
    );

    BenchmarkResult {
        name: profile.name.clone(),
        stream,
        conventional,
        rmw,
        wg,
        wgrb,
    }
}

/// Runs the full 25-benchmark suite.
pub fn run_suite(config: RunConfig) -> Vec<BenchmarkResult> {
    profiles::spec2006()
        .iter()
        .map(|p| run_benchmark(p, config))
        .collect()
}

impl BenchmarkResult {
    /// The four scheme results in canonical order.
    pub fn schemes(&self) -> [&SchemeResult; 4] {
        [&self.conventional, &self.rmw, &self.wg, &self.wgrb]
    }
}

/// Builds the `--metrics-out` document: one entry per benchmark holding
/// every scheme's metric-registry snapshot.
pub fn metrics_report(results: &[BenchmarkResult]) -> serde_json::Value {
    let benchmarks = results
        .iter()
        .map(|r| {
            let schemes = r
                .schemes()
                .iter()
                .map(|s| (s.scheme.to_string(), s.metrics.clone()))
                .collect();
            serde_json::Value::Object(vec![
                ("name".to_string(), serde_json::Value::Str(r.name.clone())),
                ("schemes".to_string(), serde_json::Value::Object(schemes)),
            ])
        })
        .collect();
    serde_json::Value::Object(vec![(
        "benchmarks".to_string(),
        serde_json::Value::Array(benchmarks),
    )])
}

/// Writes every recorded trace event as JSONL (one `TraceEvent` object
/// per line, benchmarks and schemes in run order), the format
/// `cache8t_obs::trace::parse_jsonl_line` reads back.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_trace_jsonl<W: Write>(mut w: W, results: &[BenchmarkResult]) -> std::io::Result<()> {
    for r in results {
        for s in r.schemes() {
            for event in &s.events {
                let line =
                    serde_json::to_string(event).expect("serializing a trace event cannot fail");
                writeln!(w, "{line}")?;
            }
        }
    }
    Ok(())
}

/// Honors the shared `--metrics-out` / `--trace-out` flags: writes the
/// metric snapshot and/or the event JSONL when the paths are set.
///
/// # Errors
///
/// Returns the underlying I/O error if either file cannot be written.
pub fn write_observability(args: &CommonArgs, results: &[BenchmarkResult]) -> std::io::Result<()> {
    if let Some(path) = &args.metrics_out {
        write_metrics_file(path, results)?;
        eprintln!("metrics snapshot written to {}", path.display());
    }
    if let Some(path) = &args.trace_out {
        let file = std::fs::File::create(path)?;
        write_trace_jsonl(std::io::BufWriter::new(file), results)?;
        eprintln!("trace events written to {}", path.display());
    }
    Ok(())
}

fn write_metrics_file(path: &Path, results: &[BenchmarkResult]) -> std::io::Result<()> {
    let doc = metrics_report(results);
    let mut text =
        serde_json::to_string_pretty(&doc).expect("serializing a metric snapshot cannot fail");
    text.push('\n');
    std::fs::write(path, text)
}

/// Arithmetic mean of a per-benchmark metric.
pub fn average<F: Fn(&BenchmarkResult) -> f64>(results: &[BenchmarkResult], f: F) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    results.iter().map(f).sum::<f64>() / results.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> RunConfig {
        RunConfig::new(CacheGeometry::paper_baseline(), 20_000, 7)
    }

    #[test]
    fn benchmark_run_produces_consistent_results() {
        let p = profiles::by_name("gcc").unwrap();
        let r = run_benchmark(&p, small_config());
        assert_eq!(r.name, "gcc");
        // Functional behaviour identical across schemes.
        assert_eq!(r.conventional.stats, r.rmw.stats);
        assert_eq!(r.rmw.stats, r.wg.stats);
        assert_eq!(r.wg.stats, r.wgrb.stats);
        // Traffic strictly ordered: 6T < WG+RB < WG < RMW.
        assert!(r.wgrb.array_accesses < r.wg.array_accesses);
        assert!(r.wg.array_accesses < r.rmw.array_accesses);
        assert!(r.conventional.array_accesses < r.rmw.array_accesses);
        assert!(r.rmw_increase() > 0.0);
        assert!(r.wg_reduction() > 0.0);
        assert!(r.wgrb_reduction() > r.wg_reduction());
    }

    #[test]
    fn runs_are_deterministic() {
        let p = profiles::by_name("mcf").unwrap();
        let a = run_benchmark(&p, small_config());
        let b = run_benchmark(&p, small_config());
        assert_eq!(a.rmw.array_accesses, b.rmw.array_accesses);
        assert_eq!(a.wgrb.array_accesses, b.wgrb.array_accesses);
    }

    #[test]
    fn scheme_results_carry_metric_snapshots() {
        let p = profiles::by_name("gcc").unwrap();
        let r = run_benchmark(&p, small_config());
        for s in r.schemes() {
            let serde_json::Value::Object(sections) = &s.metrics else {
                panic!("{} metrics not an object", s.scheme);
            };
            assert!(
                sections.iter().any(|(k, _)| k == "counters"),
                "{} snapshot missing counters",
                s.scheme
            );
        }
        // The scheme-specific names the CI smoke check greps for.
        let text = serde_json::to_string(&metrics_report(&[r])).unwrap();
        for name in [
            "rmw.sequences",
            "rmw.burst",
            "wg.groups",
            "wg.group_len",
            "wg.silent_suppressed",
        ] {
            assert!(text.contains(name), "report missing {name}");
        }
    }

    #[test]
    fn average_helper() {
        let p = profiles::by_name("gcc").unwrap();
        let r = vec![run_benchmark(&p, small_config())];
        let avg = average(&r, BenchmarkResult::wg_reduction);
        assert!((avg - r[0].wg_reduction()).abs() < 1e-12);
        assert_eq!(average(&[], BenchmarkResult::wg_reduction), 0.0);
    }
}
