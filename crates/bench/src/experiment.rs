//! The per-benchmark experiment runner shared by all harness binaries.
//!
//! The runner itself now lives in [`cache8t_exec::experiment`] so the
//! parallel sweep engine and the serial figure binaries drive the exact
//! same measurement code; this module re-exports it and keeps the
//! harness-side output helpers (`--metrics-out` / `--trace-out`) that
//! need the CLI types.

use std::io::Write;
use std::path::Path;

pub use cache8t_exec::experiment::{
    average, generate_trace, measure_stream, run_benchmark, run_benchmark_on_trace, run_scheme,
    run_scheme_on_trace, run_suite, BenchmarkResult, RunConfig, SchemeKind, SchemeResult,
};

use crate::cli::CommonArgs;

/// Builds the `--metrics-out` document: one entry per benchmark holding
/// every scheme's metric-registry snapshot.
pub fn metrics_report(results: &[BenchmarkResult]) -> serde_json::Value {
    let benchmarks = results
        .iter()
        .map(|r| {
            let schemes = r
                .schemes()
                .iter()
                .map(|s| (s.scheme.to_string(), s.metrics.clone()))
                .collect();
            serde_json::Value::Object(vec![
                ("name".to_string(), serde_json::Value::Str(r.name.clone())),
                ("schemes".to_string(), serde_json::Value::Object(schemes)),
            ])
        })
        .collect();
    serde_json::Value::Object(vec![(
        "benchmarks".to_string(),
        serde_json::Value::Array(benchmarks),
    )])
}

/// Writes every recorded trace event as JSONL (one `TraceEvent` object
/// per line, benchmarks and schemes in run order), the format
/// `cache8t_obs::trace::parse_jsonl_line` reads back.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_trace_jsonl<W: Write>(mut w: W, results: &[BenchmarkResult]) -> std::io::Result<()> {
    for r in results {
        for s in r.schemes() {
            for event in &s.events {
                let line =
                    serde_json::to_string(event).expect("serializing a trace event cannot fail");
                writeln!(w, "{line}")?;
            }
        }
    }
    Ok(())
}

/// Writes every telemetry window recorded by a sampled run as JSONL
/// (one [`cache8t_obs::SeriesSample`] object per line, benchmarks and
/// schemes in run order) — the format `cache8t watch` and
/// `cache8t report-series` read, and `cache8t_obs::sampler::
/// parse_series_line` parses. Rows carry only stream-derived
/// quantities, so the output is byte-identical for any `--jobs`.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_series_jsonl<W: Write>(mut w: W, results: &[BenchmarkResult]) -> std::io::Result<()> {
    for r in results {
        for s in r.schemes() {
            for sample in &s.series {
                writeln!(w, "{}", sample.to_json_line())?;
            }
        }
    }
    Ok(())
}

/// Honors the shared `--metrics-out` / `--trace-out` /
/// `--timeline-out` / `--series-out` flags: writes the metric snapshot,
/// the event JSONL, the drained execution timeline, and/or the
/// telemetry time-series when the paths are set.
///
/// # Errors
///
/// Returns the underlying I/O error if any file cannot be written.
pub fn write_observability(args: &CommonArgs, results: &[BenchmarkResult]) -> std::io::Result<()> {
    if let Some(path) = &args.metrics_out {
        write_metrics_file(path, results)?;
        eprintln!("metrics snapshot written to {}", path.display());
    }
    if let Some(path) = &args.series_out {
        let file = std::fs::File::create(path)?;
        write_series_jsonl(std::io::BufWriter::new(file), results)?;
        eprintln!("telemetry series written to {}", path.display());
    }
    if let Some(path) = &args.trace_out {
        let file = std::fs::File::create(path)?;
        write_trace_jsonl(std::io::BufWriter::new(file), results)?;
        eprintln!("trace events written to {}", path.display());
    }
    if let Some(path) = &args.timeline_out {
        cache8t_obs::timeline::disable();
        let snapshot = cache8t_obs::timeline::drain();
        let file = std::fs::File::create(path)?;
        snapshot.write_chrome_json(std::io::BufWriter::new(file))?;
        eprintln!(
            "timeline ({} events on {} tracks) written to {}",
            snapshot.event_count(),
            snapshot.tracks.len(),
            path.display()
        );
    }
    Ok(())
}

fn write_metrics_file(path: &Path, results: &[BenchmarkResult]) -> std::io::Result<()> {
    let doc = metrics_report(results);
    let mut text =
        serde_json::to_string_pretty(&doc).expect("serializing a metric snapshot cannot fail");
    text.push('\n');
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache8t_sim::CacheGeometry;
    use cache8t_trace::profiles;

    fn small_config() -> RunConfig {
        RunConfig::new(CacheGeometry::paper_baseline(), 20_000, 7)
    }

    #[test]
    fn benchmark_run_produces_consistent_results() {
        let p = profiles::by_name("gcc").unwrap();
        let r = run_benchmark(&p, small_config());
        assert_eq!(r.name, "gcc");
        // Functional behaviour identical across schemes.
        assert_eq!(r.conventional.stats, r.rmw.stats);
        assert_eq!(r.rmw.stats, r.wg.stats);
        assert_eq!(r.wg.stats, r.wgrb.stats);
        // Traffic strictly ordered: 6T < WG+RB < WG < RMW.
        assert!(r.wgrb.array_accesses < r.wg.array_accesses);
        assert!(r.wg.array_accesses < r.rmw.array_accesses);
        assert!(r.conventional.array_accesses < r.rmw.array_accesses);
        assert!(r.rmw_increase() > 0.0);
        assert!(r.wg_reduction() > 0.0);
        assert!(r.wgrb_reduction() > r.wg_reduction());
    }

    #[test]
    fn runs_are_deterministic() {
        let p = profiles::by_name("mcf").unwrap();
        let a = run_benchmark(&p, small_config());
        let b = run_benchmark(&p, small_config());
        assert_eq!(a.rmw.array_accesses, b.rmw.array_accesses);
        assert_eq!(a.wgrb.array_accesses, b.wgrb.array_accesses);
    }

    #[test]
    fn scheme_results_carry_metric_snapshots() {
        let p = profiles::by_name("gcc").unwrap();
        let r = run_benchmark(&p, small_config());
        for s in r.schemes() {
            let serde_json::Value::Object(sections) = &s.metrics else {
                panic!("{} metrics not an object", s.scheme);
            };
            assert!(
                sections.iter().any(|(k, _)| k == "counters"),
                "{} snapshot missing counters",
                s.scheme
            );
        }
        // The scheme-specific names the CI smoke check greps for.
        let text = serde_json::to_string(&metrics_report(&[r])).unwrap();
        for name in [
            "rmw.sequences",
            "rmw.burst",
            "wg.groups",
            "wg.group_len",
            "wg.silent_suppressed",
        ] {
            assert!(text.contains(name), "report missing {name}");
        }
    }

    #[test]
    fn average_helper() {
        let p = profiles::by_name("gcc").unwrap();
        let r = vec![run_benchmark(&p, small_config())];
        let avg = average(&r, BenchmarkResult::wg_reduction);
        assert!((avg - r[0].wg_reduction()).abs() < 1e-12);
        assert_eq!(average(&[], BenchmarkResult::wg_reduction), 0.0);
    }
}
