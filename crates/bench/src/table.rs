//! Minimal plain-text table printing for the harness binaries.

use std::fmt::Write as _;

/// A left-aligned text table with a header row and an optional trailing
/// summary row separated by a rule.
///
/// # Example
///
/// ```
/// use cache8t_bench::table::Table;
///
/// let mut t = Table::new(&["benchmark", "WG", "WG+RB"]);
/// t.row(&["bwaves".to_string(), "47.0%".to_string(), "49.1%".to_string()]);
/// t.summary(&["average".to_string(), "27.0%".to_string(), "33.0%".to_string()]);
/// let rendered = t.render();
/// assert!(rendered.contains("bwaves"));
/// assert!(rendered.contains("average"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    summary: Option<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new(header: &[&str]) -> Self {
        assert!(!header.is_empty(), "a table needs at least one column");
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            summary: None,
        }
    }

    /// Appends a data row (padded/truncated to the header width).
    pub fn row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.iter().take(self.header.len()).cloned().collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Sets the summary row printed under a rule.
    pub fn summary(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.iter().take(self.header.len()).cloned().collect();
        row.resize(self.header.len(), String::new());
        self.summary = Some(row);
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in self.rows.iter().chain(self.summary.iter()) {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        widths
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let widths = self.widths();
        let mut out = String::new();
        let write_row = |out: &mut String, row: &[String]| {
            for (i, (cell, w)) in row.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}");
            }
            // Trim per-line trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let rule_len = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        if let Some(summary) = &self.summary {
            out.push_str(&"-".repeat(rule_len));
            out.push('\n');
            write_row(&mut out, summary);
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a fraction as a percentage with one decimal, e.g. `0.27` →
/// `"27.0%"`.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_rows_and_summary() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(&["x".to_string(), "y".to_string()]);
        t.summary(&["avg".to_string(), "z".to_string()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].starts_with("x"));
        assert!(lines[4].starts_with("avg"));
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only".to_string()]);
        t.row(&["1".to_string(), "2".to_string(), "extra".to_string()]);
        let s = t.render();
        assert!(s.contains("only"));
        assert!(!s.contains("extra"));
    }

    #[test]
    fn columns_align() {
        let mut t = Table::new(&["name", "v"]);
        t.row(&["longname".to_string(), "1".to_string()]);
        t.row(&["s".to_string(), "2".to_string()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        let col = lines[2].find('1').unwrap();
        assert_eq!(lines[3].find('2').unwrap(), col);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.27), "27.0%");
        assert_eq!(pct(0.475), "47.5%");
        assert_eq!(pct(0.0), "0.0%");
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_header_rejected() {
        let _ = Table::new(&[]);
    }
}
