//! Tiny argument parsing shared by the harness binaries.
//!
//! Every binary accepts the same flags, so a dependency-free parser
//! suffices:
//!
//! - `--ops N` — measured operations per benchmark (default 2,000,000);
//! - `--seed S` — generator seed (default 42);
//! - `--jobs N` — worker threads for the sweep engine (default: the
//!   machine's available parallelism);
//! - `--json` — additionally emit the raw results as JSON to stdout;
//! - `--metrics-out PATH` — write the metric-registry snapshot of every
//!   scheme as JSON to `PATH`;
//! - `--trace-out PATH` — write the recorded trace events as JSONL to
//!   `PATH` (set `CACHE8T_TRACE=event` or `verbose` to record any);
//! - `--timeline-out PATH` — record a wall-clock execution timeline and
//!   write it as Chrome trace-event JSON (Perfetto-loadable) to `PATH`;
//! - `--series-out PATH` — sample windowed telemetry (one window every
//!   65,536 replayed ops) during every scheme run and write the
//!   time-series as JSONL to `PATH`.

use std::path::PathBuf;
use std::sync::Arc;

use cache8t_exec::{ExecOptions, SweepOptions, TraceStore};
use cache8t_obs::SamplerConfig;

/// Parsed common flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommonArgs {
    /// Measured operations per benchmark.
    pub ops: usize,
    /// Generator seed.
    pub seed: u64,
    /// Sweep-engine worker threads; `None` = available parallelism.
    pub jobs: Option<usize>,
    /// Emit raw JSON after the table.
    pub json: bool,
    /// Write the per-scheme metric snapshots as JSON to this path.
    pub metrics_out: Option<PathBuf>,
    /// Write the recorded trace events as JSONL to this path.
    pub trace_out: Option<PathBuf>,
    /// Write a Chrome trace-event timeline (Perfetto) to this path.
    pub timeline_out: Option<PathBuf>,
    /// Write windowed telemetry time-series as JSONL to this path.
    pub series_out: Option<PathBuf>,
}

impl Default for CommonArgs {
    fn default() -> Self {
        CommonArgs::new()
    }
}

impl CommonArgs {
    /// The defaults every binary starts from.
    pub fn new() -> Self {
        CommonArgs {
            ops: 2_000_000,
            seed: 42,
            jobs: None,
            json: false,
            metrics_out: None,
            trace_out: None,
            timeline_out: None,
            series_out: None,
        }
    }

    /// The sweep-engine options these flags select: `--jobs` workers,
    /// an in-memory trace store (point `CACHE8T_TRACE_STORE` at a
    /// directory to cache traces on disk), and a progress line on TTYs.
    pub fn sweep_options(&self) -> SweepOptions {
        SweepOptions {
            exec: ExecOptions {
                workers: self.jobs.unwrap_or(0),
                retries: 0,
            },
            shard: None,
            progress: true,
            store: Arc::new(TraceStore::from_env()),
            series: self.series_out.is_some().then(SamplerConfig::default),
            ..SweepOptions::default()
        }
    }

    /// Parses `std::env::args()`-style arguments (the first element is the
    /// program name and is ignored).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags or malformed
    /// values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = CommonArgs::new();
        let mut iter = args.into_iter().skip(1);
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--ops" => {
                    let v = iter.next().ok_or("--ops requires a value")?;
                    out.ops = v
                        .replace('_', "")
                        .parse()
                        .map_err(|_| format!("invalid --ops value `{v}`"))?;
                    if out.ops == 0 {
                        return Err("--ops must be positive".to_string());
                    }
                }
                "--seed" => {
                    let v = iter.next().ok_or("--seed requires a value")?;
                    out.seed = v
                        .parse()
                        .map_err(|_| format!("invalid --seed value `{v}`"))?;
                }
                "--jobs" => {
                    let v = iter.next().ok_or("--jobs requires a value")?;
                    let jobs: usize = v
                        .parse()
                        .map_err(|_| format!("invalid --jobs value `{v}`"))?;
                    if jobs == 0 {
                        return Err("--jobs must be positive".to_string());
                    }
                    out.jobs = Some(jobs);
                }
                "--json" => out.json = true,
                "--metrics-out" => {
                    let v = iter.next().ok_or("--metrics-out requires a path")?;
                    out.metrics_out = Some(PathBuf::from(v));
                }
                "--trace-out" => {
                    let v = iter.next().ok_or("--trace-out requires a path")?;
                    out.trace_out = Some(PathBuf::from(v));
                }
                "--timeline-out" => {
                    let v = iter.next().ok_or("--timeline-out requires a path")?;
                    out.timeline_out = Some(PathBuf::from(v));
                }
                "--series-out" => {
                    let v = iter.next().ok_or("--series-out requires a path")?;
                    out.series_out = Some(PathBuf::from(v));
                }
                "--help" | "-h" => {
                    return Err("usage: <binary> [--ops N] [--seed S] [--jobs N] [--json] \
                         [--metrics-out PATH] [--trace-out PATH] [--timeline-out PATH] \
                         [--series-out PATH]"
                        .to_string())
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(out)
    }

    /// Parses the process arguments, printing the error and exiting with
    /// status 2 on failure. Turns timeline recording on when
    /// `--timeline-out` is given, so every phase from the first trace
    /// generation onward lands in the trace.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args()) {
            Ok(args) => {
                if args.timeline_out.is_some() {
                    cache8t_obs::timeline::enable();
                    cache8t_obs::timeline::set_track_name("main");
                }
                args
            }
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CommonArgs, String> {
        CommonArgs::parse(
            std::iter::once("bin".to_string()).chain(args.iter().map(|s| s.to_string())),
        )
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.ops, 2_000_000);
        assert_eq!(a.seed, 42);
        assert_eq!(a.jobs, None);
        assert!(!a.json);
        assert_eq!(a.metrics_out, None);
        assert_eq!(a.trace_out, None);
        assert_eq!(a.timeline_out, None);
        assert_eq!(a.series_out, None);
        assert!(a.sweep_options().series.is_none());
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&[
            "--ops",
            "10_000",
            "--seed",
            "7",
            "--jobs",
            "4",
            "--json",
            "--metrics-out",
            "m.json",
            "--trace-out",
            "t.jsonl",
            "--timeline-out",
            "tl.json",
            "--series-out",
            "s.jsonl",
        ])
        .unwrap();
        assert_eq!(a.ops, 10_000);
        assert_eq!(a.seed, 7);
        assert_eq!(a.jobs, Some(4));
        assert!(a.json);
        assert_eq!(a.metrics_out, Some(PathBuf::from("m.json")));
        assert_eq!(a.trace_out, Some(PathBuf::from("t.jsonl")));
        assert_eq!(a.timeline_out, Some(PathBuf::from("tl.json")));
        assert_eq!(a.series_out, Some(PathBuf::from("s.jsonl")));
        assert_eq!(
            a.sweep_options().series,
            Some(SamplerConfig::default()),
            "--series-out turns sampling on at the default cadence"
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--ops"]).is_err());
        assert!(parse(&["--ops", "abc"]).is_err());
        assert!(parse(&["--ops", "0"]).is_err());
        assert!(parse(&["--jobs"]).is_err());
        assert!(parse(&["--jobs", "0"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--help"]).is_err());
        assert!(parse(&["--metrics-out"]).is_err());
        assert!(parse(&["--trace-out"]).is_err());
        assert!(parse(&["--timeline-out"]).is_err());
        assert!(parse(&["--series-out"]).is_err());
    }
}
