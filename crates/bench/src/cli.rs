//! Tiny argument parsing shared by the harness binaries.
//!
//! Every binary accepts the same flags, so a dependency-free parser
//! suffices:
//!
//! - `--ops N` — measured operations per benchmark (default 2,000,000);
//! - `--seed S` — generator seed (default 42);
//! - `--json` — additionally emit the raw results as JSON to stdout.

/// Parsed common flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommonArgs {
    /// Measured operations per benchmark.
    pub ops: usize,
    /// Generator seed.
    pub seed: u64,
    /// Emit raw JSON after the table.
    pub json: bool,
}

impl Default for CommonArgs {
    fn default() -> Self {
        CommonArgs {
            ops: 2_000_000,
            seed: 42,
            json: false,
        }
    }
}

impl CommonArgs {
    /// Parses `std::env::args()`-style arguments (the first element is the
    /// program name and is ignored).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags or malformed
    /// values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = CommonArgs::default();
        let mut iter = args.into_iter().skip(1);
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--ops" => {
                    let v = iter.next().ok_or("--ops requires a value")?;
                    out.ops = v
                        .replace('_', "")
                        .parse()
                        .map_err(|_| format!("invalid --ops value `{v}`"))?;
                    if out.ops == 0 {
                        return Err("--ops must be positive".to_string());
                    }
                }
                "--seed" => {
                    let v = iter.next().ok_or("--seed requires a value")?;
                    out.seed = v
                        .parse()
                        .map_err(|_| format!("invalid --seed value `{v}`"))?;
                }
                "--json" => out.json = true,
                "--help" | "-h" => {
                    return Err("usage: <binary> [--ops N] [--seed S] [--json]".to_string())
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(out)
    }

    /// Parses the process arguments, printing the error and exiting with
    /// status 2 on failure.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args()) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CommonArgs, String> {
        CommonArgs::parse(
            std::iter::once("bin".to_string()).chain(args.iter().map(|s| s.to_string())),
        )
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.ops, 2_000_000);
        assert_eq!(a.seed, 42);
        assert!(!a.json);
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&["--ops", "10_000", "--seed", "7", "--json"]).unwrap();
        assert_eq!(a.ops, 10_000);
        assert_eq!(a.seed, 7);
        assert!(a.json);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--ops"]).is_err());
        assert!(parse(&["--ops", "abc"]).is_err());
        assert!(parse(&["--ops", "0"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }
}
