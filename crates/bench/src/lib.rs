//! # cache8t-bench — figure/table regeneration harness
//!
//! One binary per figure/table of the paper (see `DESIGN.md` §4 for the
//! full index):
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig03_access_frequency` | Figure 3: read/write accesses per instruction |
//! | `fig04_consecutive_scenarios` | Figure 4: RR/RW/WR/WW same-set breakdown |
//! | `fig05_silent_writes` | Figure 5: silent write frequency |
//! | `motivation_rmw_traffic` | §1/§3: RMW traffic increase vs conventional |
//! | `fig09_access_reduction` | Figure 9: WG / WG+RB access reduction (baseline cache) |
//! | `fig10_blocksize_sensitivity` | Figure 10: 32 KB / 64 B blocks |
//! | `fig11_cachesize_sensitivity` | Figure 11: 32 KB and 128 KB |
//! | `table_area_overhead` | §5.4: Set-Buffer / Tag-Buffer overhead |
//! | `sram_rmw_walkthrough` | Figures 1–2: cell/array behaviour and the RMW sequence |
//! | `ext_performance` | extension E1: §5.5 performance arguments, quantified |
//! | `ext_power_dvfs` | extension E2: §5.5 power arguments + DVFS headroom |
//! | `ext_ablations` | extension E3: design-choice ablations |
//! | `ext_alternatives` | extension E4: §2 related work (coalescing buffer, local RMW, word-granularity writes) |
//! | `ext_soft_errors` | extension E5: burst upsets vs SEC-DED, with/without interleaving |
//! | `ext_sweeps` | extension E6: write-share / silent / WW-locality / associativity sweeps |
//! | `ext_context_switch` | extension E7: multiprogramming / context-switch sensitivity |
//! | `report_card` | scores every text-anchored paper claim PASS/FAIL (nonzero exit on failure) |
//!
//! Every binary accepts `--ops N` (default 2,000,000) and `--seed S`
//! (default 42); results are deterministic per seed. This library crate
//! holds the shared machinery: the per-benchmark experiment runner and a
//! plain-text table printer.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod cli;
pub mod experiment;
pub mod table;
