//! Demonstrates the paper's **Figures 1–2 circuit behaviour** on the
//! bit-accurate array model: why bit-interleaved 8T arrays cannot use plain
//! partial writes (half-select corruption), and how the RMW sequence fixes
//! it at the cost of an extra row read.
//!
//! This is the physical-motivation walkthrough; it uses no workloads and
//! takes no flags.

use cache8t_sram::{ArrayConfig, ArrayEvent, CellKind, EventLog, SramArray};

fn main() {
    let config = ArrayConfig::new(4, 4, 8).expect("small demo array");
    println!(
        "8T SRAM array: {} rows x {} words x {} bits (bit-interleaved)\n",
        config.rows(),
        config.words_per_row(),
        config.word_bits()
    );

    // --- Step 1: bit interleaving spreads words across the row. ---
    let map = config.interleave_map();
    println!("column layout of one row (word index per physical column):");
    let owners: Vec<String> = (0..map.columns())
        .map(|c| map.word_bit_of(c).0.to_string())
        .collect();
    println!("  [{}]", owners.join(" "));
    println!(
        "  -> a burst of up to {} adjacent upsets hits at most {} bit per word (SEC-correctable)\n",
        map.words_per_row(),
        map.max_bits_per_word_in_burst(map.words_per_row())
    );

    // --- Step 2: naive partial write corrupts half-selected words (8T). ---
    let mut array = SramArray::new(config);
    array
        .write_row_full(0, &[0xAA, 0xBB, 0xCC, 0xDD])
        .expect("in range");
    println!("row 0 before:  {:?}", fmt_row(&array, 0));
    let mut naive = array.clone();
    naive.write_word_naive(0, 1, 0x11).expect("in range");
    println!("naive write of word 1 = 0x11 (8T):");
    println!(
        "row 0 after:   {:?}   <- half-selected words LOST",
        fmt_row(&naive, 0)
    );
    println!("cells corrupted: {}\n", naive.counters().cells_corrupted);

    // --- Step 3: the same partial write is safe on a 6T array. ---
    let mut six_t = SramArray::with_kind(config, CellKind::SixT);
    six_t
        .write_row_full(0, &[0xAA, 0xBB, 0xCC, 0xDD])
        .expect("in range");
    six_t.write_word_naive(0, 1, 0x11).expect("in range");
    println!("same naive write on 6T:");
    println!(
        "row 0 after:   {:?}   <- half-selected cells read-biased, safe\n",
        fmt_row(&six_t, 0)
    );

    // --- Step 4: RMW on 8T preserves everything, costs two activations. ---
    array.set_event_log(EventLog::with_capacity(16));
    array.reset_counters();
    array.rmw_write_word(0, 1, 0x11).expect("in range");
    println!("RMW write of word 1 = 0x11 (8T), event sequence (paper Figure 2):");
    for event in array.event_log().events() {
        let label = match event {
            ArrayEvent::Precharge { .. } => "1. precharge RBLs",
            ArrayEvent::ReadRow { .. } => "2-3. raise RWL, latch entire row",
            ArrayEvent::WriteRow { .. } => "4-5. merge word, drive WBLs, raise WWL",
            ArrayEvent::PartialWriteRow { .. } => "partial write (unexpected)",
        };
        println!("  {event}  ({label})");
    }
    println!("row 0 after:   {:?}", fmt_row(&array, 0));
    let c = array.counters();
    println!(
        "cost: {} row read + {} row write = {} activations per store (vs 1 for 6T)",
        c.row_reads,
        c.row_writes,
        c.total_activations()
    );
    println!("      read port occupied during the read phase -> no concurrent load (paper S2)");
}

fn fmt_row(array: &SramArray, row: usize) -> Vec<String> {
    array
        .peek_row(row)
        .expect("row in range")
        .iter()
        .map(|w| match w {
            Some(v) => format!("{v:#04x}"),
            None => "XX".to_string(),
        })
        .collect()
}
