//! Regenerates the paper's **Figure 10**: cache-access-frequency reduction
//! for a 32 KB cache with 64 B blocks.
//!
//! Paper reference values: WG 29 % and WG+RB 37 % on average — both higher
//! than the baseline configuration because larger blocks raise the
//! Set-Buffer hit rate (more of a workload's footprint maps to the
//! buffered set).

use cache8t_bench::cli::CommonArgs;
use cache8t_bench::experiment::{average, BenchmarkResult};
use cache8t_bench::table::{pct, Table};
use cache8t_exec::{run_suites, GeometryPoint};

fn main() {
    let args = CommonArgs::from_env();
    let blocks64 = GeometryPoint::named("blocks64").expect("known geometry");
    let results = run_suites(vec![blocks64], args.ops, args.seed, &args.sweep_options())
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        })
        .remove(0);

    println!("Figure 10: access reduction with block size = 64B (32KB, 4-way)");
    println!("paper: WG 29% avg, WG+RB 37% avg (up from 27%/33% at 32B blocks)\n");

    let mut table = Table::new(&["benchmark", "WG", "WG+RB"]);
    for r in &results {
        table.row(&[
            r.name.clone(),
            pct(r.wg_reduction()),
            pct(r.wgrb_reduction()),
        ]);
    }
    table.summary(&[
        "average".to_string(),
        pct(average(&results, BenchmarkResult::wg_reduction)),
        pct(average(&results, BenchmarkResult::wgrb_reduction)),
    ]);
    table.print();

    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&results).expect("results serialize")
        );
    }
}
