//! **Extension E2** — quantifies the paper's power story:
//!
//! 1. §5.5: WG and WG+RB reduce dynamic access energy by replacing
//!    full-array accesses with Set-Buffer accesses (priced with the
//!    CACTI-style array model);
//! 2. §1: an 8T cache unblocks DVFS — the 6T Vmin wall forfeits most of
//!    the `V²` energy headroom that 8T cells reach.
//!
//! The paper reports no numbers for either ("part of our ongoing
//! research"); the values below are this reproduction's estimates.

use cache8t_bench::cli::CommonArgs;
use cache8t_bench::experiment::{run_suite, RunConfig};
use cache8t_bench::table::{pct, Table};
use cache8t_energy::dvfs::DvfsLadder;
use cache8t_energy::power::SchemeEnergy;
use cache8t_energy::{ArrayModel, CellKind, TechnologyNode};
use cache8t_sim::CacheGeometry;

fn main() {
    let args = CommonArgs::from_env();
    let geometry = CacheGeometry::paper_baseline();
    let node = TechnologyNode::nm32();
    let model = ArrayModel::for_cache(geometry, node, CellKind::EightT);
    let v = node.vdd_nominal();

    println!("Extension E2: dynamic access energy per scheme (32nm, nominal V)");
    println!("(pricing each scheme's array traffic with the CACTI-style model)\n");

    let results = run_suite(RunConfig::new(geometry, args.ops, args.seed));
    let mut table = Table::new(&["benchmark", "RMW", "WG saving", "WG+RB saving"]);
    let mut wg_savings = Vec::new();
    let mut wgrb_savings = Vec::new();
    for r in &results {
        let rmw = SchemeEnergy::price(&r.rmw.traffic, &model, v);
        let wg = SchemeEnergy::price(&r.wg.traffic, &model, v);
        let wgrb = SchemeEnergy::price(&r.wgrb.traffic, &model, v);
        wg_savings.push(wg.saving_vs(&rmw));
        wgrb_savings.push(wgrb.saving_vs(&rmw));
        table.row(&[
            r.name.clone(),
            format!("{:.1} nJ", rmw.total().value() / 1000.0),
            pct(wg.saving_vs(&rmw)),
            pct(wgrb.saving_vs(&rmw)),
        ]);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    table.summary(&[
        "average".to_string(),
        String::new(),
        pct(avg(&wg_savings)),
        pct(avg(&wgrb_savings)),
    ]);
    table.print();

    println!("\nDVFS headroom (paper S1: the cache bounds Vmin):");
    let mut dvfs_table = Table::new(&[
        "node",
        "6T Vmin",
        "8T Vmin",
        "energy/op floor (6T cache)",
        "energy/op floor (8T cache)",
    ]);
    for node in TechnologyNode::all() {
        let l6 = DvfsLadder::for_cache(node, CellKind::SixT, 8);
        let l8 = DvfsLadder::for_cache(node, CellKind::EightT, 8);
        dvfs_table.row(&[
            node.name().to_string(),
            format!("{:.2} V", node.vmin(CellKind::SixT).value()),
            format!("{:.2} V", node.vmin(CellKind::EightT).value()),
            pct(l6.lowest().relative_energy_per_op),
            pct(l8.lowest().relative_energy_per_op),
        ]);
    }
    dvfs_table.print();
    println!("\n(energy floors relative to nominal-voltage operation; lower is better)");

    if args.json {
        let json = serde_json::json!({
            "wg_saving_avg": avg(&wg_savings),
            "wgrb_saving_avg": avg(&wgrb_savings),
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&json).expect("json serialize")
        );
    }
}
