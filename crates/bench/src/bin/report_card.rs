//! The reproduction report card: runs the core experiments and scores
//! every text-anchored claim of the paper against this build, in one
//! table.
//!
//! This is the machine-checkable form of `EXPERIMENTS.md` — the same
//! checks as `tests/calibration.rs`, but over a configurable run length
//! and printed as a PASS/FAIL report. Exit status is nonzero if any check
//! fails, so it can gate CI or a release.

use std::process::ExitCode;

use cache8t_bench::cli::CommonArgs;
use cache8t_bench::experiment::{average, write_observability, BenchmarkResult};
use cache8t_bench::table::Table;
use cache8t_exec::{run_sweep, GeometryPoint, SweepPlan};
use cache8t_obs::MetricRegistry;

/// One scored claim.
struct Check {
    claim: &'static str,
    paper: String,
    measured: String,
    pass: bool,
}

impl Check {
    fn value(claim: &'static str, paper: f64, measured: f64, tolerance: f64) -> Self {
        Check {
            claim,
            paper: format!("{:.1}%", paper * 100.0),
            measured: format!("{:.1}%", measured * 100.0),
            pass: (measured - paper).abs() <= tolerance,
        }
    }

    fn bound(claim: &'static str, paper: String, measured: String, pass: bool) -> Self {
        Check {
            claim,
            paper,
            measured,
            pass,
        }
    }
}

fn main() -> ExitCode {
    let args = CommonArgs::from_env();
    println!(
        "cache8t report card — {} ops/benchmark, seed {}\n",
        args.ops, args.seed
    );

    // One declarative plan over all four paper geometries, executed on
    // the sweep engine: every geometry replays the same 25 shared traces
    // (generated once through the trace store), and the merged results
    // are identical to four serial `run_suite` calls.
    let plan = SweepPlan::suite(
        ["baseline", "blocks64", "small", "large"]
            .iter()
            .map(|label| GeometryPoint::named(label).expect("paper geometry"))
            .collect(),
        args.ops,
        args.seed,
    );
    let outcome = run_sweep(&plan, &args.sweep_options());
    let sweep_metrics = outcome.metrics.clone();
    let worker_spans = outcome.spans.clone();
    let mut suites = match outcome.into_complete() {
        Ok(suites) => suites,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let large = suites.pop().expect("four geometries");
    let small = suites.pop().expect("three geometries");
    let blocks64 = suites.pop().expect("two geometries");
    let baseline = suites.pop().expect("one geometry");

    let n = baseline.len() as f64;
    let stream_avg =
        |f: &dyn Fn(&BenchmarkResult) -> f64| -> f64 { baseline.iter().map(f).sum::<f64>() / n };
    let bwaves = baseline
        .iter()
        .find(|r| r.name == "bwaves")
        .expect("bwaves in suite");

    let avg_wg = average(&baseline, BenchmarkResult::wg_reduction);
    let avg_wgrb = average(&baseline, BenchmarkResult::wgrb_reduction);
    let max_rmw = baseline
        .iter()
        .map(BenchmarkResult::rmw_increase)
        .fold(0.0f64, f64::max);
    let wgrb_wins = baseline
        .iter()
        .filter(|r| r.wgrb_reduction() > r.wg_reduction())
        .count();

    let checks = vec![
        // Figure 3.
        Check::value(
            "Fig 3: avg reads/instr",
            0.26,
            stream_avg(&|r| r.stream.read_per_instr),
            0.02,
        ),
        Check::value(
            "Fig 3: avg writes/instr",
            0.14,
            stream_avg(&|r| r.stream.write_per_instr),
            0.02,
        ),
        Check::bound(
            "Fig 3: bwaves writes/instr > 22%",
            "> 22%".into(),
            format!("{:.1}%", bwaves.stream.write_per_instr * 100.0),
            bwaves.stream.write_per_instr > 0.22,
        ),
        // Figure 4.
        Check::value(
            "Fig 4: avg same-set pairs",
            0.27,
            stream_avg(&|r| r.stream.consecutive.total()),
            0.03,
        ),
        Check::value(
            "Fig 4: bwaves WW share",
            0.24,
            bwaves.stream.consecutive.ww,
            0.02,
        ),
        // Figure 5.
        Check::bound(
            "Fig 5: avg silent writes > 42%",
            "> 42%".into(),
            format!(
                "{:.1}%",
                stream_avg(&|r| r.stream.silent_write_fraction) * 100.0
            ),
            stream_avg(&|r| r.stream.silent_write_fraction) > 0.42,
        ),
        Check::value(
            "Fig 5: bwaves silent writes",
            0.77,
            bwaves.stream.silent_write_fraction,
            0.03,
        ),
        // Motivation.
        Check::bound(
            "S1: RMW increase avg > 32%",
            "> 32%".into(),
            format!(
                "{:.1}%",
                average(&baseline, BenchmarkResult::rmw_increase) * 100.0
            ),
            average(&baseline, BenchmarkResult::rmw_increase) > 0.30,
        ),
        Check::value("S1: RMW increase max", 0.47, max_rmw, 0.04),
        // Figure 9.
        Check::value("Fig 9: WG avg reduction", 0.27, avg_wg, 0.03),
        Check::value("Fig 9: WG+RB avg reduction", 0.33, avg_wgrb, 0.03),
        Check::value(
            "Fig 9: bwaves WG reduction",
            0.47,
            bwaves.wg_reduction(),
            0.04,
        ),
        Check::bound(
            "Fig 9: WG+RB > WG everywhere",
            "25/25".into(),
            format!("{wgrb_wins}/25"),
            wgrb_wins == baseline.len(),
        ),
        // Figure 10.
        Check::value(
            "Fig 10: WG avg @ 64B blocks",
            0.29,
            average(&blocks64, BenchmarkResult::wg_reduction),
            0.04,
        ),
        Check::value(
            "Fig 10: WG+RB avg @ 64B blocks",
            0.37,
            average(&blocks64, BenchmarkResult::wgrb_reduction),
            0.04,
        ),
        // Figure 11.
        Check::value(
            "Fig 11: WG avg @ 32KB",
            0.269,
            average(&small, BenchmarkResult::wg_reduction),
            0.04,
        ),
        Check::value(
            "Fig 11: WG+RB avg @ 128KB",
            0.321,
            average(&large, BenchmarkResult::wgrb_reduction),
            0.04,
        ),
        Check::bound(
            "Fig 11: capacity is second-order",
            "< 2 pts apart".into(),
            format!(
                "{:.1} pts",
                (average(&small, BenchmarkResult::wg_reduction)
                    - average(&large, BenchmarkResult::wg_reduction))
                .abs()
                    * 100.0
            ),
            (average(&small, BenchmarkResult::wg_reduction)
                - average(&large, BenchmarkResult::wg_reduction))
            .abs()
                < 0.02,
        ),
        // §5.4 is geometry-only and cannot drift; checked in unit tests.
    ];

    let mut table = Table::new(&["claim", "paper", "measured", "verdict"]);
    let mut failures = 0;
    for c in &checks {
        table.row(&[
            c.claim.to_string(),
            c.paper.clone(),
            c.measured.clone(),
            if c.pass { "PASS".into() } else { "FAIL".into() },
        ]);
        if !c.pass {
            failures += 1;
        }
    }
    table.summary(&[
        format!("{} checks", checks.len()),
        String::new(),
        String::new(),
        if failures == 0 {
            "ALL PASS".into()
        } else {
            format!("{failures} FAIL")
        },
    ]);
    table.print();

    // Metric-registry snapshots, summed over the baseline suite: the
    // telemetry behind the verdicts above (group sizes, silent elisions,
    // RMW bursts).
    println!(
        "\nMetric registry (baseline geometry, summed over {} benchmarks):",
        baseline.len()
    );
    for scheme in ["RMW", "WG", "WG+RB"] {
        let mut merged = MetricRegistry::new();
        for r in &baseline {
            for s in r.schemes() {
                if s.scheme == scheme {
                    merged.merge(&s.registry);
                }
            }
        }
        println!("\n[{scheme}]");
        print!("{}", merged.render_table());
    }

    // Scheduler/trace-store telemetry: varies with machine and thread
    // count, so it is printed here but never part of the result JSON.
    println!("\n[sweep engine]");
    print!("{}", sweep_metrics.render_table());
    if !worker_spans.is_empty() {
        println!("\n[worker spans] (merged across {} ops jobs)", args.ops);
        print!("{}", cache8t_obs::span::render_stats(&worker_spans));
    }

    if args.json {
        let json: Vec<_> = checks
            .iter()
            .map(|c| {
                serde_json::json!({
                    "claim": c.claim, "paper": c.paper,
                    "measured": c.measured, "pass": c.pass,
                })
            })
            .collect();
        println!(
            "{}",
            serde_json::to_string_pretty(&json).expect("checks serialize")
        );
    }

    if let Err(e) = write_observability(&args, &baseline) {
        eprintln!("failed to write observability output: {e}");
        return ExitCode::FAILURE;
    }

    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
