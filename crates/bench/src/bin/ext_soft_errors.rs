//! **Extension E5** — the soft-error story behind bit interleaving (paper
//! §2): Monte-Carlo burst strikes against interleaved and non-interleaved
//! 8T arrays with SEC-DED protection.
//!
//! The paper takes as given that "bit interleaving is used to reduce the
//! probability of upsetting two bits in one word making using simple and
//! low cost one bit correction techniques possible" — and accepts the
//! column-selection problem as the price. This harness demonstrates the
//! trade quantitatively: without interleaving, any burst of two or more
//! adjacent upsets defeats SEC-DED; with degree-16 interleaving (one cache
//! set per row), bursts up to 16 columns wide are always corrected.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use cache8t_bench::cli::CommonArgs;
use cache8t_bench::table::{pct, Table};
use cache8t_sram::{ArrayConfig, EccArray};

/// Words per row in the interleaved layout (one baseline cache set).
const INTERLEAVED_WORDS: usize = 16;

/// One Monte-Carlo trial: write known data, strike a burst at a random
/// column, try to read everything back through SEC-DED.
fn trial(rng: &mut SmallRng, words_per_row: usize, burst: usize) -> bool {
    let config = ArrayConfig::new(1, words_per_row, 64).expect("valid config");
    let mut array = EccArray::new(config).expect("64-bit words");
    for w in 0..words_per_row {
        array
            .rmw_write_word(0, w, 0xABCD_0000 + w as u64)
            .expect("in range");
    }
    let columns = words_per_row * 64;
    let start = rng.gen_range(0..columns.saturating_sub(burst).max(1));
    array.strike_burst(0, start, burst).expect("in range");
    (0..words_per_row).all(|w| {
        let (value, status) = array.read_word_corrected(0, w).expect("in range");
        status.is_usable() && value == Some(0xABCD_0000 + w as u64)
    })
}

fn main() {
    let args = CommonArgs::from_env();
    let trials = (args.ops / 1000).clamp(200, 5_000);
    let mut rng = SmallRng::seed_from_u64(args.seed);

    println!("Extension E5: burst soft errors vs SEC-DED, with and without interleaving");
    println!(
        "({trials} Monte-Carlo strikes per cell; rows of {INTERLEAVED_WORDS} x 64-bit words)\n"
    );

    let mut table = Table::new(&[
        "burst width (adjacent columns)",
        "non-interleaved recovery",
        "interleaved recovery",
    ]);
    let mut json_rows = Vec::new();
    for burst in [1usize, 2, 3, 4, 8, 16, 17, 24] {
        let flat_ok = (0..trials).filter(|_| trial(&mut rng, 1, burst)).count();
        let inter_ok = (0..trials)
            .filter(|_| trial(&mut rng, INTERLEAVED_WORDS, burst))
            .count();
        let flat = flat_ok as f64 / trials as f64;
        let inter = inter_ok as f64 / trials as f64;
        table.row(&[burst.to_string(), pct(flat), pct(inter)]);
        json_rows.push(serde_json::json!({
            "burst": burst, "flat_recovery": flat, "interleaved_recovery": inter,
        }));
    }
    table.print();

    println!("\nreading: one column per word is the guarantee — with degree-{INTERLEAVED_WORDS}");
    println!(
        "interleaving every burst up to {INTERLEAVED_WORDS} wide is fully correctable, while the"
    );
    println!("non-interleaved layout already fails at width 2. This is why the paper's");
    println!("caches interleave, why interleaving forces RMW writes, and therefore why");
    println!("WG/WG+RB have an RMW problem worth solving.");

    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&json_rows).expect("rows serialize")
        );
    }
}
