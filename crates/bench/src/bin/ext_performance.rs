//! **Extension E1** — quantifies the paper's §5.5 performance arguments
//! with the port-contention timing model:
//!
//! - RMW occupies the read port for every store, stalling loads;
//! - WG raises read-port availability (§4.1) and "its performance cost is
//!   negligible" because stores are off the critical path;
//! - WG+RB lowers average load latency by serving Tag-Buffer hits from the
//!   Set-Buffer.
//!
//! The paper does not report numbers for these effects ("part of our
//! ongoing research"); the values below are this reproduction's estimates.

use cache8t_bench::cli::CommonArgs;
use cache8t_bench::table::{pct, Table};
use cache8t_core::{
    Controller, ConventionalController, RmwController, WgController, WgRbController,
};
use cache8t_cpu::{PortTimingModel, TimingConfig, TimingReport};
use cache8t_sim::{CacheGeometry, ReplacementKind};
use cache8t_trace::{profiles, ProfiledGenerator, TraceGenerator};

fn main() {
    let args = CommonArgs::from_env();
    let geometry = CacheGeometry::paper_baseline();
    let model = PortTimingModel::new(TimingConfig::default());

    println!("Extension E1: timing estimates for the paper's S5.5 arguments");
    println!("(in-order issue, 2-cycle array ops, 1-cycle Set-Buffer; averages over the suite)\n");

    let mut totals: Vec<(&str, Vec<TimingReport>)> = vec![
        ("6T", Vec::new()),
        ("RMW", Vec::new()),
        ("WG", Vec::new()),
        ("WG+RB", Vec::new()),
    ];
    for profile in profiles::spec2006() {
        let trace = ProfiledGenerator::new(profile.clone(), geometry, args.seed).collect(args.ops);
        let mut controllers: Vec<Box<dyn Controller>> = vec![
            Box::new(ConventionalController::new(geometry, ReplacementKind::Lru)),
            Box::new(RmwController::new(geometry, ReplacementKind::Lru)),
            Box::new(WgController::new(geometry, ReplacementKind::Lru)),
            Box::new(WgRbController::new(geometry, ReplacementKind::Lru)),
        ];
        for (slot, controller) in totals.iter_mut().zip(controllers.iter_mut()) {
            slot.1.push(model.run(controller.as_mut(), &trace));
        }
    }

    let mut table = Table::new(&[
        "scheme",
        "avg read latency",
        "read-port stalls/req",
        "read-port availability",
        "buffer-served",
    ]);
    let mut json_rows = Vec::new();
    for (name, reports) in &totals {
        let lat = reports
            .iter()
            .map(TimingReport::avg_read_latency)
            .sum::<f64>()
            / reports.len() as f64;
        let avail = reports
            .iter()
            .map(TimingReport::read_port_availability)
            .sum::<f64>()
            / reports.len() as f64;
        let stalls: u64 = reports.iter().map(|r| r.read_port_stalls).sum();
        let served: u64 = reports.iter().map(|r| r.buffer_served).sum();
        let requests: u64 = reports.iter().map(|r| r.requests).sum();
        table.row(&[
            name.to_string(),
            format!("{lat:.2} cyc"),
            format!("{:.3}", stalls as f64 / requests as f64),
            pct(avail),
            pct(served as f64 / requests as f64),
        ]);
        json_rows.push(serde_json::json!({
            "scheme": name,
            "avg_read_latency": lat,
            "read_port_stalls_per_request": stalls as f64 / requests as f64,
            "read_port_availability": avail,
        }));
    }
    table.print();
    println!("\npaper S5.5 checkpoints: WG's cost is negligible and it cuts load");
    println!("latency vs RMW; WG+RB improves further (loads served from the buffer);");
    println!("S4.1: WG and WG+RB raise read-port availability over RMW.");

    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&json_rows).expect("rows serialize")
        );
    }
}
