//! Regenerates the paper's **Figure 5**: the fraction of write operations
//! that are silent (store the value already present, per Lepak & Lipasti).
//!
//! Paper reference values: more than 42 % of writes are silent on average;
//! bwaves reaches 77 %.

use cache8t_bench::cli::CommonArgs;
use cache8t_bench::table::{pct, Table};
use cache8t_sim::CacheGeometry;
use cache8t_trace::analyze::StreamStats;
use cache8t_trace::{profiles, ProfiledGenerator, TraceGenerator};

fn main() {
    let args = CommonArgs::from_env();
    let geometry = CacheGeometry::paper_baseline();

    println!("Figure 5: silent write frequency");
    println!("paper: average > 42%; bwaves 77%\n");

    let mut table = Table::new(&["benchmark", "silent writes"]);
    let mut fractions = Vec::new();
    for profile in profiles::spec2006() {
        let trace = ProfiledGenerator::new(profile.clone(), geometry, args.seed).collect(args.ops);
        let stats = StreamStats::measure(&trace, geometry);
        table.row(&[profile.name.clone(), pct(stats.silent_write_fraction)]);
        fractions.push((profile.name.clone(), stats.silent_write_fraction));
    }
    let avg = fractions.iter().map(|(_, f)| f).sum::<f64>() / fractions.len() as f64;
    table.summary(&["average".to_string(), pct(avg)]);
    table.print();

    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&fractions).expect("fractions serialize")
        );
    }
}
