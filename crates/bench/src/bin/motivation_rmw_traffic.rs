//! Regenerates the paper's **motivation numbers** (§1, §3): the increase in
//! cache access frequency caused by adopting RMW, relative to a
//! conventional (6T-style, one-access-per-write) cache.
//!
//! Paper reference values: "RMW increases cache access frequency by more
//! than 32 % on average (max 47 %)".

use cache8t_bench::cli::CommonArgs;
use cache8t_bench::experiment::{
    average, run_suite, write_observability, BenchmarkResult, RunConfig,
};
use cache8t_bench::table::{pct, Table};
use cache8t_sim::CacheGeometry;

fn main() {
    let args = CommonArgs::from_env();
    let config = RunConfig::new(CacheGeometry::paper_baseline(), args.ops, args.seed);
    let results = run_suite(config);

    println!("Motivation: RMW traffic increase over a conventional cache");
    println!("paper: more than 32% on average, max 47%\n");

    let mut table = Table::new(&["benchmark", "6T accesses", "RMW accesses", "increase"]);
    for r in &results {
        table.row(&[
            r.name.clone(),
            r.conventional.array_accesses.to_string(),
            r.rmw.array_accesses.to_string(),
            pct(r.rmw_increase()),
        ]);
    }
    let max = results
        .iter()
        .map(BenchmarkResult::rmw_increase)
        .fold(0.0f64, f64::max);
    table.summary(&[
        format!("average (max {})", pct(max)),
        String::new(),
        String::new(),
        pct(average(&results, BenchmarkResult::rmw_increase)),
    ]);
    table.print();

    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&results).expect("results serialize")
        );
    }
    if let Err(e) = write_observability(&args, &results) {
        eprintln!("failed to write observability output: {e}");
        std::process::exit(1);
    }
}
