//! Regenerates the paper's **§5.4 area-overhead analysis**: the storage
//! cost of the Set-Buffer and Tag-Buffer relative to the cache.
//!
//! Paper reference values, for the baseline 64 KB / 4-way / 32 B cache and
//! 48-bit physical addresses:
//! - the Set-Buffer holds one cache set (128 B) → less than 0.2 % of the
//!   cache capacity;
//! - the Tag-Buffer needs fewer than 150 bits (4 tags + set index).

use cache8t_bench::cli::CommonArgs;
use cache8t_bench::table::Table;
use cache8t_energy::{ArrayModel, CellKind, TechnologyNode};
use cache8t_sim::CacheGeometry;

/// Physical address width assumed by the paper's §5.4.
const PHYSICAL_ADDRESS_BITS: u32 = 48;

fn main() {
    let args = CommonArgs::from_env();
    println!("Section 5.4: Set-Buffer / Tag-Buffer area overhead");
    println!("paper: Set-Buffer < 0.2% of cache capacity; Tag-Buffer < 150 bits\n");

    let mut table = Table::new(&[
        "cache",
        "set size",
        "set-buffer overhead",
        "tag-buffer bits",
        "latch-area estimate (32nm 8T)",
    ]);

    let node = TechnologyNode::nm32();
    let mut rows = Vec::new();
    for geometry in [
        CacheGeometry::paper_small(),
        CacheGeometry::paper_baseline(),
        CacheGeometry::paper_large(),
        CacheGeometry::paper_large_blocks(),
    ] {
        let model = ArrayModel::for_cache(geometry, node, CellKind::EightT);
        let set_bytes = geometry.set_bytes();
        let capacity_overhead = model.buffer_capacity_overhead(set_bytes);
        let tag_buffer_bits = geometry.ways() * u64::from(geometry.tag_bits(PHYSICAL_ADDRESS_BITS))
            + u64::from(geometry.index_bits());
        let area_overhead = model.buffer_area_overhead(set_bytes);
        table.row(&[
            format!(
                "{}KB/{}-way/{}B",
                geometry.capacity_bytes() / 1024,
                geometry.ways(),
                geometry.block_bytes()
            ),
            format!("{set_bytes}B"),
            format!("{:.3}%", capacity_overhead * 100.0),
            tag_buffer_bits.to_string(),
            format!("{:.3}%", area_overhead * 100.0),
        ]);
        rows.push((geometry, capacity_overhead, tag_buffer_bits));
    }
    table.print();

    let baseline = CacheGeometry::paper_baseline();
    let baseline_tag_bits = baseline.ways() * u64::from(baseline.tag_bits(PHYSICAL_ADDRESS_BITS))
        + u64::from(baseline.index_bits());
    println!(
        "\nbaseline check: Set-Buffer {}B = {:.3}% of {}KB (< 0.2%), Tag-Buffer {} bits (< 150)",
        baseline.set_bytes(),
        100.0 * baseline.set_bytes() as f64 / baseline.capacity_bytes() as f64,
        baseline.capacity_bytes() / 1024,
        baseline_tag_bits,
    );

    if args.json {
        let json: Vec<_> = rows
            .iter()
            .map(|(g, o, t)| {
                serde_json::json!({
                    "capacity_bytes": g.capacity_bytes(),
                    "set_bytes": g.set_bytes(),
                    "set_buffer_overhead": o,
                    "tag_buffer_bits": t,
                })
            })
            .collect();
        println!(
            "{}",
            serde_json::to_string_pretty(&json).expect("rows serialize")
        );
    }
}
