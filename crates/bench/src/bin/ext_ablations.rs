//! **Extension E3** — ablations of the design choices `DESIGN.md` calls
//! out, all measured as suite-average access reduction vs RMW on the
//! baseline cache:
//!
//! - **silent-write detection off**: how much of WG's benefit comes from
//!   the Dirty bit (paper §4.1 credits silent stores for a large share);
//! - **read bypassing alone** vs grouping alone (decomposing WG+RB);
//! - **Set-Buffer depth**: the paper uses one buffer; deeper buffers are
//!   listed as the natural extension;
//! - **replacement policy**: LRU (the paper's) vs FIFO/Random/Tree-PLRU.

use cache8t_bench::cli::CommonArgs;
use cache8t_bench::table::{pct, Table};
use cache8t_core::{Controller, CountingPolicy, RmwController, WgController, WgOptions};
use cache8t_sim::{CacheGeometry, ReplacementKind};
use cache8t_trace::{profiles, ProfiledGenerator, TraceGenerator};

/// Average reduction of `options` vs RMW over the whole suite.
fn suite_reduction(options: WgOptions, replacement: ReplacementKind, ops: usize, seed: u64) -> f64 {
    let geometry = CacheGeometry::paper_baseline();
    let mut total = 0.0;
    let suite = profiles::spec2006();
    for profile in &suite {
        let trace = ProfiledGenerator::new(profile.clone(), geometry, seed).collect(ops);
        let mut rmw = RmwController::new(geometry, replacement);
        let mut wg = WgController::with_options(geometry, replacement, options);
        for op in &trace {
            rmw.access(op);
            wg.access(op);
        }
        wg.flush();
        total += wg
            .traffic()
            .reduction_vs(rmw.traffic(), CountingPolicy::DemandOnly);
    }
    total / suite.len() as f64
}

fn main() {
    let args = CommonArgs::from_env();
    // Ablations sweep many configurations; use a fraction of the ops per
    // point so the default run stays tractable.
    let ops = (args.ops / 4).max(10_000);

    println!("Extension E3: ablations (suite-average access reduction vs RMW, 64KB baseline)\n");

    let mut table = Table::new(&["configuration", "reduction vs RMW"]);
    let lru = ReplacementKind::Lru;
    let configs: Vec<(String, WgOptions, ReplacementKind)> = vec![
        ("WG (paper)".into(), WgOptions::wg(), lru),
        ("WG+RB (paper)".into(), WgOptions::wg_rb(), lru),
        (
            "WG without silent detection".into(),
            WgOptions {
                silent_detection: false,
                ..WgOptions::wg()
            },
            lru,
        ),
        (
            "WG+RB without silent detection".into(),
            WgOptions {
                silent_detection: false,
                ..WgOptions::wg_rb()
            },
            lru,
        ),
        (
            "WG, 2 Set-Buffers".into(),
            WgOptions {
                buffer_depth: 2,
                ..WgOptions::wg()
            },
            lru,
        ),
        (
            "WG+RB, 2 Set-Buffers".into(),
            WgOptions {
                buffer_depth: 2,
                ..WgOptions::wg_rb()
            },
            lru,
        ),
        (
            "WG+RB, 4 Set-Buffers".into(),
            WgOptions {
                buffer_depth: 4,
                ..WgOptions::wg_rb()
            },
            lru,
        ),
        (
            "WG+RB, 8 Set-Buffers".into(),
            WgOptions {
                buffer_depth: 8,
                ..WgOptions::wg_rb()
            },
            lru,
        ),
        (
            "WG+RB, FIFO replacement".into(),
            WgOptions::wg_rb(),
            ReplacementKind::Fifo,
        ),
        (
            "WG+RB, random replacement".into(),
            WgOptions::wg_rb(),
            ReplacementKind::Random { seed: args.seed },
        ),
        (
            "WG+RB, tree-PLRU replacement".into(),
            WgOptions::wg_rb(),
            ReplacementKind::TreePlru,
        ),
    ];

    let mut json_rows = Vec::new();
    for (label, options, replacement) in configs {
        let reduction = suite_reduction(options, replacement, ops, args.seed);
        table.row(&[label.clone(), pct(reduction)]);
        json_rows.push(serde_json::json!({ "config": label, "reduction": reduction }));
    }
    table.print();
    println!("\nreading: silent detection accounts for a large share of WG's benefit;");
    println!("deeper buffers keep helping (diminishing); replacement policy is second-order.");

    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&json_rows).expect("rows serialize")
        );
    }
}
