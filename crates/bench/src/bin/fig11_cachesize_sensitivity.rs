//! Regenerates the paper's **Figure 11**: cache-access-frequency reduction
//! for 32 KB and 128 KB caches (32 B blocks, 4-way).
//!
//! Paper reference values: WG 26.9 % (32 KB) and 26.6 % (128 KB); WG+RB
//! 32.6 % and 32.1 % — i.e. the techniques are essentially insensitive to
//! cache size, because grouping depends on *consecutive-access* locality,
//! not on capacity.

use cache8t_bench::cli::CommonArgs;
use cache8t_bench::experiment::{average, BenchmarkResult};
use cache8t_bench::table::{pct, Table};
use cache8t_exec::{run_suites, GeometryPoint};

fn main() {
    let args = CommonArgs::from_env();
    let points = ["small", "large"]
        .iter()
        .map(|label| GeometryPoint::named(label).expect("known geometry"))
        .collect();
    let mut suites =
        run_suites(points, args.ops, args.seed, &args.sweep_options()).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        });
    let large = suites.pop().expect("two geometries");
    let small = suites.pop().expect("one geometry");

    println!("Figure 11: access reduction for 32KB and 128KB caches (4-way, 32B)");
    println!("paper: WG 26.9%/26.6%, WG+RB 32.6%/32.1% -> insensitive to cache size\n");

    let mut table = Table::new(&[
        "benchmark",
        "WG (32KB)",
        "WG+RB (32KB)",
        "WG (128KB)",
        "WG+RB (128KB)",
    ]);
    for (s, l) in small.iter().zip(&large) {
        table.row(&[
            s.name.clone(),
            pct(s.wg_reduction()),
            pct(s.wgrb_reduction()),
            pct(l.wg_reduction()),
            pct(l.wgrb_reduction()),
        ]);
    }
    table.summary(&[
        "average".to_string(),
        pct(average(&small, BenchmarkResult::wg_reduction)),
        pct(average(&small, BenchmarkResult::wgrb_reduction)),
        pct(average(&large, BenchmarkResult::wg_reduction)),
        pct(average(&large, BenchmarkResult::wgrb_reduction)),
    ]);
    table.print();

    if args.json {
        let both: Vec<_> = small.iter().zip(&large).collect();
        println!(
            "{}",
            serde_json::to_string_pretty(&both).expect("results serialize")
        );
    }
}
