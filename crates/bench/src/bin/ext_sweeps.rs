//! **Extension E6** — parametric sweeps beyond the paper's two sensitivity
//! studies, showing *why* the figures look the way they do:
//!
//! - **write share**: WG's benefit scales with the fraction of stores
//!   (RMW's overhead is exactly the write share, so the headroom grows
//!   with it);
//! - **silent fraction**: the Dirty bit converts silent-store frequency
//!   directly into eliminated write-backs;
//! - **WW locality**: grouping lives on consecutive same-set writes;
//! - **associativity**: a wider set means a bigger Set-Buffer row and more
//!   tags per Tag-Buffer entry, raising hit opportunity at constant
//!   capacity.
//!
//! Each sweep varies one parameter of a mid-suite synthetic profile with
//! everything else held fixed. The points all run as independent jobs on
//! the execution engine; the associativity sweep's five geometries share
//! one generated trace through the trace store.

use std::sync::Arc;

use cache8t_bench::cli::CommonArgs;
use cache8t_bench::table::{pct, Table};
use cache8t_core::{Controller, CountingPolicy, RmwController, WgController, WgRbController};
use cache8t_exec::{run_jobs, ExecOptions, JobOutcome, TraceStore};
use cache8t_sim::{CacheGeometry, ReplacementKind};
use cache8t_trace::{PairLocality, Trace, WorkloadProfile};

/// The suite-average-like base point for all sweeps.
fn base_profile() -> WorkloadProfile {
    WorkloadProfile {
        name: "sweep-base".to_string(),
        mem_per_instr: 0.40,
        read_share: 0.65,
        locality: PairLocality {
            rr: 0.10,
            rw: 0.04,
            wr: 0.04,
            ww: 0.10,
        },
        silent_fraction: 0.45,
        working_set_blocks: 15_000,
        zipf_exponent: 1.0,
        write_revisit: 0.45,
        read_after_write: 0.10,
        silent_correlation: 0.7,
        spatial_adjacency: 0.35,
    }
}

/// Replays a shared trace at one geometry and returns (WG, WG+RB)
/// reductions.
fn point(trace: &Trace, geometry: CacheGeometry) -> (f64, f64) {
    let mut rmw = RmwController::new(geometry, ReplacementKind::Lru);
    let mut wg = WgController::new(geometry, ReplacementKind::Lru);
    let mut wgrb = WgRbController::new(geometry, ReplacementKind::Lru);
    for op in trace {
        rmw.access(op);
        wg.access(op);
        wgrb.access(op);
    }
    wg.flush();
    wgrb.flush();
    (
        wg.traffic()
            .reduction_vs(rmw.traffic(), CountingPolicy::DemandOnly),
        wgrb.traffic()
            .reduction_vs(rmw.traffic(), CountingPolicy::DemandOnly),
    )
}

/// One sweep point: which table it belongs to, the fixed row cells, and
/// the (profile, geometry) to run.
struct SweepPoint {
    section: usize,
    cells: Vec<String>,
    profile: WorkloadProfile,
    geometry: CacheGeometry,
}

fn main() {
    let args = CommonArgs::from_env();
    let ops = (args.ops / 10).max(20_000);
    let baseline = CacheGeometry::paper_baseline();

    println!("Extension E6: parameter sweeps around a suite-average workload\n");

    let mut points: Vec<SweepPoint> = Vec::new();

    // --- Section 0: write share. ---
    for write_share in [0.1, 0.2, 0.3, 0.4, 0.5] {
        let mut p = base_profile();
        p.read_share = 1.0 - write_share;
        // Scale the write-involving pair targets with the write share so
        // the *relative* write locality stays constant.
        let scale = write_share / 0.35;
        p.locality.ww = (0.10 * scale).min(0.5 * write_share);
        p.locality.rw = 0.04 * scale;
        p.locality.wr = 0.04 * scale;
        if p.validate().is_err() {
            continue;
        }
        points.push(SweepPoint {
            section: 0,
            cells: vec![format!("{:.0}%", write_share * 100.0)],
            profile: p,
            geometry: baseline,
        });
    }

    // --- Section 1: silent fraction. ---
    for silent in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let mut p = base_profile();
        p.silent_fraction = silent;
        points.push(SweepPoint {
            section: 1,
            cells: vec![format!("{:.0}%", silent * 100.0)],
            profile: p,
            geometry: baseline,
        });
    }

    // --- Section 2: WW pair locality. ---
    for ww in [0.02, 0.06, 0.10, 0.15, 0.20] {
        let mut p = base_profile();
        p.locality.ww = ww;
        if p.validate().is_err() {
            continue;
        }
        points.push(SweepPoint {
            section: 2,
            cells: vec![format!("{:.0}%", ww * 100.0)],
            profile: p,
            geometry: baseline,
        });
    }

    // --- Section 3: associativity at constant 64 KB capacity. ---
    for ways in [1u64, 2, 4, 8, 16] {
        let geometry = CacheGeometry::new(64 * 1024, ways, 32).expect("valid geometry");
        points.push(SweepPoint {
            section: 3,
            cells: vec![format!("{ways}-way"), format!("{}B", geometry.set_bytes())],
            profile: base_profile(),
            geometry,
        });
    }

    // All points in one batch: the five associativity geometries share a
    // single generated trace through the store (the profile fingerprint,
    // not the geometry, keys generation).
    let store = Arc::new(TraceStore::in_memory());
    let jobs: Vec<_> = points
        .iter()
        .map(|sp| {
            let store = Arc::clone(&store);
            move || {
                let trace = store.get(&sp.profile, args.seed, ops);
                point(&trace, sp.geometry)
            }
        })
        .collect();
    let exec = ExecOptions {
        workers: args.jobs.unwrap_or(0),
        retries: 0,
    };
    let report = run_jobs(jobs, &exec, None);

    let mut tables = [
        Table::new(&["write share of memops", "WG", "WG+RB"]),
        Table::new(&["silent fraction", "WG", "WG+RB"]),
        Table::new(&["WW same-set pairs", "WG", "WG+RB"]),
        Table::new(&[
            "associativity (64KB, 32B blocks)",
            "set size",
            "WG",
            "WG+RB",
        ]),
    ];
    let mut failed = false;
    for (sp, outcome) in points.iter().zip(report.outcomes) {
        match outcome {
            JobOutcome::Completed((wg, wgrb)) => {
                let mut row = sp.cells.clone();
                row.push(pct(wg));
                row.push(pct(wgrb));
                tables[sp.section].row(&row);
            }
            JobOutcome::Failed { message, .. } => {
                eprintln!("sweep point {:?} failed: {message}", sp.cells);
                failed = true;
            }
            JobOutcome::Cancelled => {
                eprintln!("sweep point {:?} cancelled", sp.cells);
                failed = true;
            }
        }
    }
    for (i, table) in tables.into_iter().enumerate() {
        if i > 0 {
            println!();
        }
        table.print();
    }

    println!("\nreading: benefits grow with write share, silent fraction and WW locality");
    println!("(each is one of the paper's three exploited behaviours); wider sets help");
    println!("up to the baseline 4-way (bigger rows per entry), then saturate — the\nextra ways cover blocks the workload rarely co-touches.");

    if failed {
        std::process::exit(1);
    }
}
