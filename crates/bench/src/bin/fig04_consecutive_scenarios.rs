//! Regenerates the paper's **Figure 4**: the breakdown of consecutive
//! accesses to the same cache set into the four scenarios RR, RW, WR, WW,
//! as fractions of all adjacent request pairs.
//!
//! Paper reference values: 27 % of accesses target the same set as their
//! predecessor on average, with RR and WW accounting for the largest
//! shares; bwaves has the largest WW share (24 %).

use cache8t_bench::cli::CommonArgs;
use cache8t_bench::table::{pct, Table};
use cache8t_sim::CacheGeometry;
use cache8t_trace::analyze::StreamStats;
use cache8t_trace::{profiles, ProfiledGenerator, TraceGenerator};

fn main() {
    let args = CommonArgs::from_env();
    let geometry = CacheGeometry::paper_baseline();

    println!("Figure 4: breakdown of consecutive same-set access scenarios");
    println!("paper: 27% same-set on average; RR and WW dominate; bwaves WW = 24%\n");

    let mut table = Table::new(&["benchmark", "RR", "RW", "WR", "WW", "total"]);
    let mut stats_all = Vec::new();
    for profile in profiles::spec2006() {
        let trace = ProfiledGenerator::new(profile.clone(), geometry, args.seed).collect(args.ops);
        let stats = StreamStats::measure(&trace, geometry);
        let c = stats.consecutive;
        table.row(&[
            profile.name.clone(),
            pct(c.rr),
            pct(c.rw),
            pct(c.wr),
            pct(c.ww),
            pct(c.total()),
        ]);
        stats_all.push(stats);
    }
    let n = stats_all.len() as f64;
    let avg = |f: &dyn Fn(&StreamStats) -> f64| stats_all.iter().map(f).sum::<f64>() / n;
    table.summary(&[
        "average".to_string(),
        pct(avg(&|s| s.consecutive.rr)),
        pct(avg(&|s| s.consecutive.rw)),
        pct(avg(&|s| s.consecutive.wr)),
        pct(avg(&|s| s.consecutive.ww)),
        pct(avg(&|s| s.consecutive.total())),
    ]);
    table.print();

    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&stats_all).expect("stats serialize")
        );
    }
}
