//! Regenerates the paper's **Figure 3**: read and write accesses to the L1
//! data cache as a fraction of executed instructions, per benchmark.
//!
//! Paper reference values: 26 % reads + 14 % writes on average; writes
//! exceed 22 % for the most write-intensive benchmark (bwaves).

use cache8t_bench::cli::CommonArgs;
use cache8t_bench::table::{pct, Table};
use cache8t_sim::CacheGeometry;
use cache8t_trace::analyze::StreamStats;
use cache8t_trace::{profiles, ProfiledGenerator, TraceGenerator};

fn main() {
    let args = CommonArgs::from_env();
    let geometry = CacheGeometry::paper_baseline();

    println!("Figure 3: read/write access frequency (fraction of instructions)");
    println!("paper: average 26% reads + 14% writes; bwaves writes > 22%\n");

    let mut table = Table::new(&["benchmark", "reads/instr", "writes/instr", "mem/instr"]);
    let mut stats_all = Vec::new();
    for profile in profiles::spec2006() {
        let trace = ProfiledGenerator::new(profile.clone(), geometry, args.seed).collect(args.ops);
        let stats = StreamStats::measure(&trace, geometry);
        table.row(&[
            profile.name.clone(),
            pct(stats.read_per_instr),
            pct(stats.write_per_instr),
            pct(stats.read_per_instr + stats.write_per_instr),
        ]);
        stats_all.push(stats);
    }
    let n = stats_all.len() as f64;
    let avg_r = stats_all.iter().map(|s| s.read_per_instr).sum::<f64>() / n;
    let avg_w = stats_all.iter().map(|s| s.write_per_instr).sum::<f64>() / n;
    table.summary(&[
        "average".to_string(),
        pct(avg_r),
        pct(avg_w),
        pct(avg_r + avg_w),
    ]);
    table.print();

    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&stats_all).expect("stats serialize")
        );
    }
}
