//! **Extension E4** — the paper's §2 related work, quantified against WG
//! and WG+RB on equal terms:
//!
//! - **coalescing write buffer** (classic block-granularity store
//!   coalescing, the pre-existing alternative to the Set-Buffer), at
//!   several capacities;
//! - **Park et al. local RMW** (hierarchical read bit lines: the RMW only
//!   occupies its own sub-array) — same traffic as RMW, but the timing
//!   model with banked ports shows the latency benefit;
//! - **Chang et al. word-granularity writes** (non-interleaved arrays):
//!   functionally the conventional one-access-per-write scheme, but its
//!   price is paid in soft-error protection (see `ext_soft_errors`) and
//!   write word-line driver area, not in traffic.
//!
//! Traffic is the suite average reduction vs RMW; latency comes from the
//! port timing model.

use cache8t_bench::cli::CommonArgs;
use cache8t_bench::table::{pct, Table};
use cache8t_core::{
    CoalescingController, Controller, ConventionalController, CountingPolicy, RmwController,
    WgController, WgRbController,
};
use cache8t_cpu::{PortTimingModel, TimingConfig};
use cache8t_sim::{CacheGeometry, ReplacementKind};
use cache8t_trace::{profiles, ProfiledGenerator, TraceGenerator};

fn main() {
    let args = CommonArgs::from_env();
    let ops = (args.ops / 4).max(10_000);
    let geometry = CacheGeometry::paper_baseline();
    let suite = profiles::spec2006();

    println!("Extension E4: alternatives from the paper's related work (suite averages)\n");

    // (label, controller factory, banks for the timing model)
    type Factory = Box<dyn Fn() -> Box<dyn Controller>>;
    let configs: Vec<(&str, Factory, usize)> = vec![
        (
            "RMW (baseline)",
            Box::new(move || Box::new(RmwController::new(geometry, ReplacementKind::Lru))),
            1,
        ),
        (
            "RMW + local sub-arrays (Park et al., 8 banks)",
            Box::new(move || Box::new(RmwController::new(geometry, ReplacementKind::Lru))),
            8,
        ),
        (
            "word-granularity writes (Chang et al.)",
            Box::new(move || Box::new(ConventionalController::new(geometry, ReplacementKind::Lru))),
            1,
        ),
        (
            "coalescing write buffer, 1 entry",
            Box::new(move || {
                Box::new(CoalescingController::new(geometry, ReplacementKind::Lru, 1))
            }),
            1,
        ),
        (
            "coalescing write buffer, 4 entries",
            Box::new(move || {
                Box::new(CoalescingController::new(geometry, ReplacementKind::Lru, 4))
            }),
            1,
        ),
        (
            "coalescing write buffer, 8 entries",
            Box::new(move || {
                Box::new(CoalescingController::new(geometry, ReplacementKind::Lru, 8))
            }),
            1,
        ),
        (
            "WG (paper)",
            Box::new(move || Box::new(WgController::new(geometry, ReplacementKind::Lru))),
            1,
        ),
        (
            "WG+RB (paper)",
            Box::new(move || Box::new(WgRbController::new(geometry, ReplacementKind::Lru))),
            1,
        ),
    ];

    let mut table = Table::new(&[
        "scheme",
        "traffic vs RMW",
        "avg read latency",
        "read-port avail.",
    ]);
    let mut json_rows = Vec::new();
    for (label, build, banks) in &configs {
        let model = PortTimingModel::new(TimingConfig::banked(*banks));
        let mut reduction_sum = 0.0;
        let mut latency_sum = 0.0;
        let mut avail_sum = 0.0;
        for profile in &suite {
            let trace = ProfiledGenerator::new(profile.clone(), geometry, args.seed).collect(ops);
            let mut rmw = RmwController::new(geometry, ReplacementKind::Lru);
            for op in &trace {
                rmw.access(op);
            }
            let mut controller = build();
            let report = model.run(controller.as_mut(), &trace);
            controller.flush();
            reduction_sum += controller
                .traffic()
                .reduction_vs(rmw.traffic(), CountingPolicy::DemandOnly);
            latency_sum += report.avg_read_latency();
            avail_sum += report.read_port_availability();
        }
        let n = suite.len() as f64;
        table.row(&[
            label.to_string(),
            pct(reduction_sum / n),
            format!("{:.2} cyc", latency_sum / n),
            pct(avail_sum / n),
        ]);
        json_rows.push(serde_json::json!({
            "scheme": label,
            "traffic_reduction": reduction_sum / n,
            "avg_read_latency": latency_sum / n,
            "read_port_availability": avail_sum / n,
        }));
    }
    table.print();

    println!("\nreading: sub-arraying (Park) fixes RMW's port problem but none of its");
    println!("traffic; block-granularity coalescing with one entry roughly ties plain WG,");
    println!("but even 8 block entries trail WG+RB — the Set-Buffer covers a whole array");
    println!("row (all four blocks of a set) and bypasses reads, at one entry's cost;");
    println!("word-granularity writes (Chang) beat RMW on traffic by construction but");
    println!("give up the interleaved soft-error protection (see ext_soft_errors) and");
    println!("need larger write word-line drivers (paper S2).");

    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&json_rows).expect("rows serialize")
        );
    }
}
