//! **Extension E7** — context-switch sensitivity: how multiprogramming
//! degrades Write Grouping.
//!
//! The paper evaluates single programs. Under multiprogramming every
//! context switch moves the request stream to a different address space,
//! breaking the consecutive same-set runs WG groups. This harness mixes
//! four benchmark streams round-robin and sweeps the scheduling quantum;
//! the single-program suite average (~27 %/33 %) is the asymptote.

use cache8t_bench::cli::CommonArgs;
use cache8t_bench::table::{pct, Table};
use cache8t_core::{Controller, CountingPolicy, RmwController, WgController, WgRbController};
use cache8t_sim::{CacheGeometry, ReplacementKind};
use cache8t_trace::{profiles, MultiprogramMix, ProfiledGenerator, TraceGenerator};

/// The four-program mix: a spread of write intensities.
const MIX: [&str; 4] = ["bwaves", "gcc", "mcf", "lbm"];

fn build_mix(seed: u64, quantum: usize) -> MultiprogramMix {
    let geometry = CacheGeometry::paper_baseline();
    let streams = MIX
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let profile = profiles::by_name(name).expect("profile exists");
            Box::new(ProfiledGenerator::new(profile, geometry, seed + i as u64))
                as Box<dyn TraceGenerator>
        })
        .collect();
    MultiprogramMix::new(streams, quantum)
}

fn main() {
    let args = CommonArgs::from_env();
    let ops = (args.ops / 4).max(40_000);
    let geometry = CacheGeometry::paper_baseline();

    println!(
        "Extension E7: WG/WG+RB under multiprogramming ({} round-robin)",
        MIX.join("+")
    );
    println!("(quantum = operations between context switches; {ops} ops per point)\n");

    let mut table = Table::new(&["quantum (ops)", "context switches", "WG", "WG+RB"]);
    let mut json_rows = Vec::new();
    for quantum in [10usize, 100, 1_000, 10_000, ops / 4] {
        let mut mix = build_mix(args.seed, quantum);
        let trace = mix.collect(ops);
        let mut rmw = RmwController::new(geometry, ReplacementKind::Lru);
        let mut wg = WgController::new(geometry, ReplacementKind::Lru);
        let mut wgrb = WgRbController::new(geometry, ReplacementKind::Lru);
        for op in &trace {
            rmw.access(op);
            wg.access(op);
            wgrb.access(op);
        }
        wg.flush();
        wgrb.flush();
        let wg_red = wg
            .traffic()
            .reduction_vs(rmw.traffic(), CountingPolicy::DemandOnly);
        let wgrb_red = wgrb
            .traffic()
            .reduction_vs(rmw.traffic(), CountingPolicy::DemandOnly);
        table.row(&[
            quantum.to_string(),
            mix.context_switches().to_string(),
            pct(wg_red),
            pct(wgrb_red),
        ]);
        json_rows.push(serde_json::json!({
            "quantum": quantum,
            "wg": wg_red,
            "wgrb": wgrb_red,
        }));
    }
    table.print();

    println!("\nreading: the cost per switch is bounded at one wasted group (the");
    println!("Set-Buffer re-fills on the first write after a switch), so even extreme");
    println!("switching only shaves a few points off the mix's own average; realistic");
    println!("quanta (thousands of ops) behave like uninterrupted programs.");

    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&json_rows).expect("rows serialize")
        );
    }
}
