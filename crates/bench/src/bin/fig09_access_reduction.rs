//! Regenerates the paper's **Figure 9**: cache-access-frequency reduction
//! of WG and WG+RB relative to the RMW baseline, on the baseline cache
//! (64 KB, 4-way, 32 B blocks, LRU), one bar pair per SPEC CPU2006
//! benchmark plus the average.
//!
//! Paper reference values: WG 27 % average (47 % max, bwaves); WG+RB 33 %
//! average, and WG+RB outperforms WG on every benchmark.

use cache8t_bench::cli::CommonArgs;
use cache8t_bench::experiment::{average, write_observability, BenchmarkResult};
use cache8t_bench::table::{pct, Table};
use cache8t_exec::{run_suites, GeometryPoint};

fn main() {
    let args = CommonArgs::from_env();
    let baseline = GeometryPoint::named("baseline").expect("known geometry");
    let results = run_suites(vec![baseline], args.ops, args.seed, &args.sweep_options())
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        })
        .remove(0);

    println!("Figure 9: cache access frequency reduction vs RMW (64KB, 4-way, 32B, LRU)");
    println!("paper: WG avg 27% (max 47% on bwaves), WG+RB avg 33%, WG+RB > WG everywhere\n");

    let mut table = Table::new(&["benchmark", "RMW accesses", "WG", "WG+RB"]);
    for r in &results {
        table.row(&[
            r.name.clone(),
            r.rmw.array_accesses.to_string(),
            pct(r.wg_reduction()),
            pct(r.wgrb_reduction()),
        ]);
    }
    table.summary(&[
        "average".to_string(),
        String::new(),
        pct(average(&results, BenchmarkResult::wg_reduction)),
        pct(average(&results, BenchmarkResult::wgrb_reduction)),
    ]);
    table.print();

    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&results).expect("results serialize")
        );
    }
    if let Err(e) = write_observability(&args, &results) {
        eprintln!("failed to write observability output: {e}");
        std::process::exit(1);
    }
}
