//! Criterion benchmarks: throughput of the individual substrates (trace
//! generation, functional cache, bit-level SRAM array, timing model).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use cache8t_core::RmwController;
use cache8t_cpu::{PortTimingModel, TimingConfig};
use cache8t_sim::{Address, CacheGeometry, DataCache, MainMemory, ReplacementKind};
use cache8t_sram::{ArrayConfig, SramArray};
use cache8t_trace::{profiles, ProfiledGenerator, TraceGenerator};

const OPS: usize = 50_000;

fn bench_trace_generation(c: &mut Criterion) {
    let profile = profiles::by_name("bwaves").expect("bwaves is in the suite");
    let geometry = CacheGeometry::paper_baseline();
    let mut group = c.benchmark_group("trace_generation");
    group.throughput(Throughput::Elements(OPS as u64));
    group.bench_function("profiled_generator", |b| {
        b.iter(|| {
            let mut generator = ProfiledGenerator::new(profile.clone(), geometry, 42);
            generator.collect(OPS).len()
        });
    });
    group.finish();
}

fn bench_functional_cache(c: &mut Criterion) {
    let geometry = CacheGeometry::paper_baseline();
    let mut group = c.benchmark_group("functional_cache");
    group.throughput(Throughput::Elements(OPS as u64));
    group.bench_function("fill_and_read", |b| {
        b.iter(|| {
            let mut cache = DataCache::new(geometry, ReplacementKind::Lru);
            let memory = MainMemory::new(geometry.block_bytes());
            let mut hits = 0u64;
            for i in 0..OPS as u64 {
                let addr = Address::new((i % 4096) * 8);
                match cache.read_word(addr) {
                    Some(_) => hits += 1,
                    None => {
                        cache.fill(geometry.block_base(addr), memory.read_block_ref(addr));
                    }
                }
            }
            hits
        });
    });
    group.finish();
}

fn bench_sram_array(c: &mut Criterion) {
    // One row of the baseline cache: 16 words of 64 bits.
    let config = ArrayConfig::for_cache_sets(512, 128).expect("baseline array");
    let mut group = c.benchmark_group("sram_array");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("rmw_write_word", |b| {
        b.iter(|| {
            let mut array = SramArray::new(config);
            for i in 0..10_000u64 {
                array
                    .rmw_write_word((i % 512) as usize, (i % 16) as usize, i)
                    .expect("in range");
            }
            array.counters().rmw_ops
        });
    });
    group.finish();
}

fn bench_timing_model(c: &mut Criterion) {
    let profile = profiles::by_name("gcc").expect("gcc is in the suite");
    let geometry = CacheGeometry::paper_baseline();
    let trace = ProfiledGenerator::new(profile, geometry, 42).collect(OPS);
    let model = PortTimingModel::new(TimingConfig::default());
    let mut group = c.benchmark_group("timing_model");
    group.throughput(Throughput::Elements(OPS as u64));
    group.bench_function("port_timing_rmw", |b| {
        b.iter(|| {
            let mut controller = RmwController::new(geometry, ReplacementKind::Lru);
            model.run(&mut controller, &trace).cycles
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_trace_generation, bench_functional_cache, bench_sram_array, bench_timing_model
}
criterion_main!(benches);
