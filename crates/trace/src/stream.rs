//! Bounded-memory chunked trace production.
//!
//! The materialized path builds a whole [`Trace`] in memory before replay,
//! so memory — not compute — bounds replay length. This module slices the
//! same deterministic op stream into [`TraceChunk`]s of a fixed size:
//! replaying chunks in order visits exactly the byte sequence the
//! materialized trace would hold, while only one or two chunks are resident
//! at a time.
//!
//! Two invariants make streamed replay bit-identical to materialized
//! replay:
//!
//! 1. **Op identity.** Generators are deterministic sequential streams, so
//!    collecting `n` ops in chunks of any size yields the same ops in the
//!    same order as one `collect(n)` call.
//! 2. **Instruction telescoping.** Each chunk carries the
//!    `instructions_retired()` delta across its generation, so the sum of
//!    per-chunk instruction counts equals the materialized trace's total
//!    exactly — no pro-rating drift at chunk seams.

use crate::{MemOp, Trace, TraceGenerator};

/// A contiguous slice of a trace: the ops, where they sit in the stream,
/// and the instructions they represent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceChunk {
    ops: Vec<MemOp>,
    start_op: u64,
    instructions: u64,
}

impl TraceChunk {
    /// Creates a chunk from its parts. `start_op` is the global index of
    /// the chunk's first op within the full stream.
    pub fn new(ops: Vec<MemOp>, start_op: u64, instructions: u64) -> Self {
        TraceChunk {
            ops,
            start_op,
            instructions,
        }
    }

    /// The operations, in program order.
    #[inline]
    pub fn ops(&self) -> &[MemOp] {
        &self.ops
    }

    /// Number of operations in this chunk.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the chunk holds no operations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Global index of the first op in this chunk.
    #[inline]
    pub fn start_op(&self) -> u64 {
        self.start_op
    }

    /// Global index one past the last op in this chunk.
    #[inline]
    pub fn end_op(&self) -> u64 {
        self.start_op + self.ops.len() as u64
    }

    /// Instructions (memory + interleaved non-memory) this chunk
    /// represents.
    #[inline]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }
}

/// Adapts a [`TraceGenerator`] into a bounded sequence of [`TraceChunk`]s.
///
/// Yields `ceil(total_ops / chunk_ops)` chunks; all but possibly the last
/// hold exactly `chunk_ops` ops. Concatenating the chunks reproduces
/// `generator.collect(total_ops)` byte-for-byte, and their instruction
/// counts sum to the same total (see the module docs).
#[derive(Debug)]
pub struct ChunkedGenerator<G> {
    generator: G,
    chunk_ops: usize,
    total_ops: u64,
    produced: u64,
}

impl<G: TraceGenerator> ChunkedGenerator<G> {
    /// Wraps `generator`, slicing the next `total_ops` ops into chunks of
    /// `chunk_ops`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_ops == 0`.
    pub fn new(generator: G, chunk_ops: usize, total_ops: u64) -> Self {
        assert!(chunk_ops > 0, "chunk size must be at least one op");
        ChunkedGenerator {
            generator,
            chunk_ops,
            total_ops,
            produced: 0,
        }
    }

    /// Wraps a generator that has already produced `produced` ops of the
    /// stream (the caller fast-forwarded or checkpointed it there), so
    /// chunks resume at the right global indices. `produced` must be a
    /// chunk boundary.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_ops == 0`, `produced > total_ops`, or `produced`
    /// is not a multiple of `chunk_ops`.
    pub fn resume(generator: G, chunk_ops: usize, total_ops: u64, produced: u64) -> Self {
        assert!(chunk_ops > 0, "chunk size must be at least one op");
        assert!(produced <= total_ops, "resume point past the stream end");
        assert!(
            produced.is_multiple_of(chunk_ops as u64),
            "resume point {produced} is not a chunk boundary (chunk_ops {chunk_ops})"
        );
        ChunkedGenerator {
            generator,
            chunk_ops,
            total_ops,
            produced,
        }
    }

    /// Global index of the next op to be produced.
    #[inline]
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Produces the next chunk, or `None` when `total_ops` have been
    /// produced.
    pub fn next_chunk(&mut self) -> Option<TraceChunk> {
        let remaining = self.total_ops - self.produced;
        if remaining == 0 {
            return None;
        }
        let n = (self.chunk_ops as u64).min(remaining) as usize;
        let start = self.produced;
        let instr_before = self.generator.instructions_retired();
        let mut ops = Vec::with_capacity(n);
        for _ in 0..n {
            ops.push(self.generator.next_op());
        }
        let instructions = self.generator.instructions_retired() - instr_before;
        self.produced += n as u64;
        Some(TraceChunk::new(ops, start, instructions))
    }

    /// Consumes the adapter, returning the inner generator (positioned
    /// after the last produced op).
    pub fn into_inner(self) -> G {
        self.generator
    }
}

impl<G: TraceGenerator> Iterator for ChunkedGenerator<G> {
    type Item = TraceChunk;

    fn next(&mut self) -> Option<TraceChunk> {
        self.next_chunk()
    }
}

/// Collects a full chunk sequence back into a materialized [`Trace`].
///
/// Mostly useful in tests asserting chunked/materialized equivalence.
pub fn assemble_chunks<I: IntoIterator<Item = TraceChunk>>(chunks: I) -> Trace {
    let mut ops = Vec::new();
    let mut instructions = 0;
    for chunk in chunks {
        debug_assert_eq!(chunk.start_op() as usize, ops.len(), "chunk out of order");
        ops.extend_from_slice(chunk.ops());
        instructions += chunk.instructions();
    }
    Trace::new(ops, instructions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{profiles, ProfiledGenerator};
    use cache8t_sim::CacheGeometry;

    fn generator(seed: u64) -> ProfiledGenerator {
        let profile = profiles::by_name("gcc").expect("gcc profile exists");
        ProfiledGenerator::new(profile.clone(), CacheGeometry::paper_baseline(), seed)
    }

    #[test]
    fn chunked_generation_matches_materialized() {
        let total = 10_000u64;
        let expected = generator(7).collect(total as usize);
        for chunk_ops in [1usize, 64, 1000, 4096, 10_000, 20_000] {
            let chunks: Vec<TraceChunk> =
                ChunkedGenerator::new(generator(7), chunk_ops, total).collect();
            let assembled = assemble_chunks(chunks);
            assert_eq!(assembled, expected, "chunk_ops={chunk_ops}");
        }
    }

    #[test]
    fn chunk_instructions_telescope_to_the_total() {
        let total = 5_000u64;
        let expected = generator(11).collect(total as usize);
        let chunks: Vec<TraceChunk> = ChunkedGenerator::new(generator(11), 777, total).collect();
        let summed: u64 = chunks.iter().map(|c| c.instructions()).sum();
        assert_eq!(summed, expected.instructions());
        // Chunk boundaries tile the stream with no gaps or overlaps.
        let mut next = 0;
        for chunk in &chunks {
            assert_eq!(chunk.start_op(), next);
            next = chunk.end_op();
        }
        assert_eq!(next, total);
    }

    #[test]
    fn chunk_sizes_cover_the_tail() {
        let chunks: Vec<TraceChunk> = ChunkedGenerator::new(generator(3), 1024, 2500).collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), 1024);
        assert_eq!(chunks[1].len(), 1024);
        assert_eq!(chunks[2].len(), 452);
        assert!(!chunks[2].is_empty());
    }

    #[test]
    fn zero_total_yields_no_chunks() {
        let mut g = ChunkedGenerator::new(generator(1), 128, 0);
        assert!(g.next_chunk().is_none());
        assert_eq!(g.produced(), 0);
    }

    #[test]
    fn cloned_generator_continues_identically() {
        let mut a = generator(9);
        for _ in 0..1000 {
            a.next_op();
        }
        let mut b = a.clone();
        for _ in 0..1000 {
            assert_eq!(a.next_op(), b.next_op());
        }
        assert_eq!(a.instructions_retired(), b.instructions_retired());
    }
}
