//! The profiled Markov trace generator.

use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use cache8t_sim::{AccessKind, Address, CacheGeometry, FastMap};

use crate::profile::KindChain;
use crate::{MemOp, Trace, WorkloadProfile, ZipfSampler};

/// A source of memory operations.
///
/// Generators are infinite streams: [`next_op`](TraceGenerator::next_op)
/// always produces another request. They also track how many instructions
/// (memory and non-memory) the stream represents so Figure-3-style
/// per-instruction statistics can be computed.
pub trait TraceGenerator {
    /// Produces the next memory operation.
    fn next_op(&mut self) -> MemOp;

    /// Instructions (memory + interleaved non-memory) represented so far.
    fn instructions_retired(&self) -> u64;

    /// Collects the next `n` operations into a [`Trace`].
    fn collect(&mut self, n: usize) -> Trace
    where
        Self: Sized,
    {
        let start = self.instructions_retired();
        let mut ops: Vec<MemOp> = Vec::with_capacity(n);
        for _ in 0..n {
            ops.push(self.next_op());
        }
        Trace::new(ops, self.instructions_retired() - start)
    }
}

/// Number of recently touched blocks remembered per set for same-set
/// revisits.
const HOT_BLOCKS_PER_SET: usize = 4;

/// The SPEC-2006-substituting workload generator.
///
/// `ProfiledGenerator` realizes a [`WorkloadProfile`] as a concrete request
/// stream over a given cache geometry:
///
/// - request *kinds* follow a two-state Markov chain whose stationary
///   distribution matches the profile's read share and whose transition
///   rates make the Figure-4 same-set pair targets feasible;
/// - a *same-set* transition revisits a recently touched block of the
///   previous request's set (so Tag-Buffer hits in `cache8t-core` arise the
///   way they do in real streams);
/// - other requests pick a block from the working set with Zipf-skewed
///   popularity, scattered over the sets by a multiplicative permutation;
/// - write values are silent (equal to the architecturally stored value)
///   with the profile's silent fraction, tracked against a shadow memory
///   image; non-silent writes draw from a monotone counter and can never
///   collide with a stored value.
///
/// All randomness comes from the seed passed to [`ProfiledGenerator::new`];
/// the stream is fully deterministic.
///
/// See the [crate docs](crate) for an end-to-end example.
///
/// The generator is `Clone`: a clone continues the stream from the same
/// point, independently of the original. The streaming trace store uses
/// this to checkpoint generator state at chunk boundaries.
#[derive(Clone)]
pub struct ProfiledGenerator {
    profile: WorkloadProfile,
    geometry: CacheGeometry,
    chain: KindChain,
    zipf: ZipfSampler,
    rng: SmallRng,
    /// Shadow of architectural memory at word granularity (sparse; absent
    /// words hold 0).
    shadow: FastMap<u64, u64>,
    /// Recently touched blocks per set, most recent first.
    hot: FastMap<u64, Vec<u64>>,
    prev_kind: AccessKind,
    prev_set: u64,
    prev_block: u64,
    /// Block/set of the most recent write, for the long-range revisit
    /// mechanisms (`write_revisit` / `read_after_write`).
    last_write_block: Option<u64>,
    /// Whether the previous write was silent (state of the two-state
    /// silence chain).
    last_write_silent: bool,
    instructions: u64,
    /// Accumulates the fractional part of the non-memory instruction gap.
    instr_carry: f64,
    fresh_counter: u64,
}

impl ProfiledGenerator {
    /// Creates a generator for `profile` over `geometry`, seeded with
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the profile is invalid (use
    /// [`WorkloadProfile::validate`] to check fallibly first).
    pub fn new(profile: WorkloadProfile, geometry: CacheGeometry, seed: u64) -> Self {
        let chain = profile
            .kind_chain()
            .unwrap_or_else(|e| panic!("invalid workload profile `{}`: {e}", profile.name));
        let zipf = ZipfSampler::new(profile.working_set_blocks, profile.zipf_exponent);
        let mut rng = SmallRng::seed_from_u64(seed);
        let prev_block = 0;
        let prev_set = 0;
        // Start from a random kind drawn from the stationary distribution.
        let prev_kind = if rng.gen::<f64>() < profile.read_share {
            AccessKind::Read
        } else {
            AccessKind::Write
        };
        // Size the bookkeeping maps from the profile footprint so steady
        // state is reached without rehashing: the shadow image holds at
        // most one entry per working-set word (capped — huge working sets
        // are touched sparsely) and the hot lists one entry per cache set.
        let footprint_words = (profile.working_set_blocks as usize)
            .saturating_mul(geometry.block_words())
            .min(1 << 20);
        let hot_sets = (geometry.num_sets() as usize).min(1 << 16);
        ProfiledGenerator {
            profile,
            geometry,
            chain,
            zipf,
            rng,
            shadow: FastMap::with_capacity_and_hasher(footprint_words, Default::default()),
            hot: FastMap::with_capacity_and_hasher(hot_sets, Default::default()),
            prev_kind,
            prev_set,
            prev_block,
            last_write_block: None,
            last_write_silent: false,
            instructions: 0,
            instr_carry: 0.0,
            fresh_counter: 0,
        }
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// The cache geometry the stream is shaped for.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Maps a Zipf rank to a block id scattered across the sets.
    ///
    /// Ranks are permuted with a multiplicative hash so that popular blocks
    /// do not cluster in the low-numbered sets.
    fn rank_to_block(&self, rank: u64) -> u64 {
        const SCATTER_PRIME: u64 = 1_000_000_007;
        (rank.wrapping_mul(SCATTER_PRIME)) % self.profile.working_set_blocks
    }

    /// Byte base address of a block id.
    fn block_base(&self, block: u64) -> Address {
        Address::new(block * self.geometry.block_bytes())
    }

    fn set_of_block(&self, block: u64) -> u64 {
        self.geometry.set_index_of(self.block_base(block))
    }

    fn touch_hot(&mut self, set: u64, block: u64) {
        let list = self.hot.entry(set).or_default();
        if let Some(pos) = list.iter().position(|&b| b == block) {
            list.remove(pos);
        }
        list.insert(0, block);
        list.truncate(HOT_BLOCKS_PER_SET);
    }

    /// Picks a block for a same-set revisit: usually the previous block,
    /// otherwise one of the set's recently touched blocks.
    fn same_set_block(&mut self) -> u64 {
        // Borrow the hot list in place: this runs on every same-set
        // transition, so cloning it would allocate per generated op. The
        // RNG draw order is identical to the cloning version (an absent or
        // single-entry list draws nothing).
        if let Some(list) = self.hot.get(&self.prev_set) {
            if list.len() > 1 && self.rng.gen::<f64>() < 0.3 {
                let idx = self.rng.gen_range(0..list.len());
                return list[idx];
            }
        }
        self.prev_block
    }

    /// The silence probability of the next write under the two-state
    /// silence chain: stationary fraction `s` with persistence
    /// `q = s + c (1 - s)` (where `c` is the correlation), giving bursty
    /// silence while keeping the marginal at exactly `s`.
    fn silent_probability(&self) -> f64 {
        let s = self.profile.silent_fraction;
        let c = self.profile.silent_correlation;
        if s <= 0.0 || s >= 1.0 || c <= 0.0 {
            return s;
        }
        let q = s + c * (1.0 - s);
        if self.last_write_silent {
            q
        } else {
            // Entry rate chosen so the stationary distribution stays `s`.
            s * (1.0 - q) / (1.0 - s)
        }
    }

    /// Long-range revisit of the most recently written block/set, skipped
    /// whenever it would coincide with the previous request's set (that
    /// case is governed by the explicit same-set Markov transitions).
    fn long_range_revisit(&mut self, kind: AccessKind) -> Option<u64> {
        let mut block = self.last_write_block?;
        let p = match kind {
            AccessKind::Write => self.profile.write_revisit,
            AccessKind::Read => self.profile.read_after_write,
        };
        if self.rng.gen::<f64>() >= p {
            return None;
        }
        // Spatial locality: some revisits target the buddy block (the
        // neighbour completing a larger-aligned pair), which is what larger
        // cache blocks capture (paper Figure 10).
        if self.rng.gen::<f64>() < self.profile.spatial_adjacency {
            let buddy = block ^ 1;
            if buddy < self.profile.working_set_blocks {
                block = buddy;
            }
        }
        if self.set_of_block(block) == self.prev_set {
            return None;
        }
        Some(block)
    }

    fn advance_instructions(&mut self) {
        // Each memory op represents 1 / mem_per_instr instructions on
        // average; carry the fractional part so the long-run density is
        // exact.
        let per_op = 1.0 / self.profile.mem_per_instr;
        let total = per_op + self.instr_carry;
        let whole = total.floor();
        self.instr_carry = total - whole;
        self.instructions += whole as u64;
    }
}

impl TraceGenerator for ProfiledGenerator {
    fn next_op(&mut self) -> MemOp {
        // 1. Kind, from the Markov chain.
        let p_read = match self.prev_kind {
            AccessKind::Read => self.chain.a,
            AccessKind::Write => self.chain.b,
        };
        let kind = if self.rng.gen::<f64>() < p_read {
            AccessKind::Read
        } else {
            AccessKind::Write
        };

        // 2. Same set as the previous access?
        let prev_idx = usize::from(self.prev_kind.is_write());
        let cur_idx = usize::from(kind.is_write());
        let same_set = self.rng.gen::<f64>() < self.chain.p_same[prev_idx][cur_idx];

        // 3. Block. Same-set continuations revisit the previous set; other
        // requests may exercise long-range write locality (returning to the
        // most recently written block's set), guarded so that they never
        // create an *adjacent* same-set pair and therefore leave the
        // Figure-4 statistics untouched; the rest draw from the Zipf-skewed
        // working set.
        let block = if same_set {
            self.same_set_block()
        } else if let Some(revisit) = self.long_range_revisit(kind) {
            revisit
        } else {
            let rank = self.zipf.sample(&mut self.rng);
            self.rank_to_block(rank)
        };
        let set = self.set_of_block(block);
        self.touch_hot(set, block);

        // 4. Word within the block.
        let word = self.rng.gen_range(0..self.geometry.block_words() as u64);
        let addr = self.block_base(block).offset(word * 8);

        // 5. Value (writes only).
        let op = match kind {
            AccessKind::Read => MemOp::read(addr),
            AccessKind::Write => {
                let silent = self.rng.gen::<f64>() < self.silent_probability();
                self.last_write_silent = silent;
                let value = if silent {
                    self.shadow.get(&addr.raw()).copied().unwrap_or(0)
                } else {
                    // A monotone counter starting at 1 never collides with
                    // the zero-initialized memory image, and the shadow
                    // update below keeps collisions with *stored* values
                    // impossible (values are unique per write).
                    self.fresh_counter += 1;
                    self.fresh_counter
                };
                self.shadow.insert(addr.raw(), value);
                MemOp::write(addr, value)
            }
        };

        self.prev_kind = kind;
        self.prev_set = set;
        self.prev_block = block;
        if kind.is_write() {
            self.last_write_block = Some(block);
        }
        self.advance_instructions();
        op
    }

    fn instructions_retired(&self) -> u64 {
        self.instructions
    }
}

impl fmt::Debug for ProfiledGenerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProfiledGenerator")
            .field("profile", &self.profile.name)
            .field("geometry", &self.geometry)
            .field("instructions", &self.instructions)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use super::*;
    use crate::PairLocality;

    fn profile() -> WorkloadProfile {
        WorkloadProfile {
            name: "unit".to_string(),
            mem_per_instr: 0.4,
            read_share: 0.65,
            locality: PairLocality {
                rr: 0.10,
                rw: 0.04,
                wr: 0.04,
                ww: 0.09,
            },
            silent_fraction: 0.42,
            working_set_blocks: 4096,
            zipf_exponent: 0.8,
            write_revisit: 0.0,
            read_after_write: 0.0,
            silent_correlation: 0.0,
            spatial_adjacency: 0.0,
        }
    }

    fn generator(seed: u64) -> ProfiledGenerator {
        ProfiledGenerator::new(profile(), CacheGeometry::paper_baseline(), seed)
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let a = generator(7).collect(500);
        let b = generator(7).collect(500);
        assert_eq!(a, b);
        let c = generator(8).collect(500);
        assert_ne!(a, c);
    }

    #[test]
    fn read_share_is_respected() {
        let t = generator(1).collect(50_000);
        let share = t.reads() as f64 / t.len() as f64;
        assert!((share - 0.65).abs() < 0.02, "read share {share}");
    }

    #[test]
    fn instruction_density_is_respected() {
        let mut g = generator(2);
        let t = g.collect(50_000);
        let density = t.len() as f64 / t.instructions() as f64;
        assert!((density - 0.4).abs() < 0.01, "density {density}");
    }

    #[test]
    fn addresses_stay_in_working_set() {
        let g_profile = profile();
        let limit = g_profile.working_set_blocks * 32; // block_bytes = 32
        let t = generator(3).collect(10_000);
        for op in &t {
            assert!(
                op.addr.raw() < limit,
                "address {} beyond working set",
                op.addr
            );
        }
    }

    #[test]
    fn word_addresses_are_aligned() {
        let t = generator(4).collect(5_000);
        for op in &t {
            assert!(op.addr.is_aligned(8));
        }
    }

    #[test]
    fn silent_fraction_is_respected_against_shadow_replay() {
        let t = generator(5).collect(80_000);
        let mut shadow: HashMap<u64, u64> = HashMap::new();
        let mut silent = 0u64;
        let mut writes = 0u64;
        for op in &t {
            if op.is_write() {
                writes += 1;
                let old = shadow.get(&op.addr.raw()).copied().unwrap_or(0);
                if old == op.value {
                    silent += 1;
                }
                shadow.insert(op.addr.raw(), op.value);
            }
        }
        let frac = silent as f64 / writes as f64;
        assert!((frac - 0.42).abs() < 0.02, "silent fraction {frac}");
    }

    #[test]
    fn same_set_pairs_match_targets_roughly() {
        let geometry = CacheGeometry::paper_baseline();
        let t = generator(6).collect(120_000);
        let ops = t.ops();
        let mut counts = [[0u64; 2]; 2];
        for pair in ops.windows(2) {
            if geometry.set_index_of(pair[0].addr) == geometry.set_index_of(pair[1].addr) {
                counts[usize::from(pair[0].is_write())][usize::from(pair[1].is_write())] += 1;
            }
        }
        let n = (ops.len() - 1) as f64;
        let rr = counts[0][0] as f64 / n;
        let ww = counts[1][1] as f64 / n;
        assert!((rr - 0.10).abs() < 0.03, "rr {rr}");
        assert!((ww - 0.09).abs() < 0.03, "ww {ww}");
    }

    #[test]
    #[should_panic(expected = "invalid workload profile")]
    fn invalid_profile_panics_with_name() {
        let mut p = profile();
        p.read_share = 2.0;
        let _ = ProfiledGenerator::new(p, CacheGeometry::paper_baseline(), 0);
    }

    #[test]
    fn accessors_expose_inputs() {
        let g = generator(9);
        assert_eq!(g.profile().name, "unit");
        assert_eq!(g.geometry(), CacheGeometry::paper_baseline());
    }
}
