//! Approximate Zipf sampling for working-set skew.

use rand::Rng;

/// A sampler of approximately Zipf-distributed ranks in `0..n`.
///
/// Workload locality in the profiled generator comes from two mechanisms:
/// the explicit same-set Markov transitions (short-range, calibrated to the
/// paper's Figure 4) and a skewed choice of blocks from the working set
/// (long-range reuse, which sets the cache miss rate and the incidental
/// Tag-Buffer hit rate). The skew follows a power law with exponent `s`:
/// rank `k` is drawn with probability roughly proportional to
/// `1 / (k+1)^s`.
///
/// The implementation inverts the CDF of the *continuous* bounded power
/// law and floors the result — an O(1), allocation-free approximation of a
/// true Zipf distribution that is amply accurate for workload modelling
/// (the calibration tests measure the resulting stream statistics rather
/// than assuming them).
///
/// # Example
///
/// ```
/// use cache8t_trace::ZipfSampler;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let zipf = ZipfSampler::new(1000, 0.9);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let mut low = 0;
/// for _ in 0..1000 {
///     let rank = zipf.sample(&mut rng);
///     assert!(rank < 1000);
///     if rank < 10 { low += 1; }
/// }
/// assert!(low > 100, "a skewed sampler concentrates on low ranks, got {low}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfSampler {
    n: u64,
    s: f64,
}

impl ZipfSampler {
    /// Creates a sampler over ranks `0..n` with exponent `s >= 0`.
    ///
    /// `s = 0` degenerates to the uniform distribution.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `s < 0`, or `s` is not finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "rank universe must be nonempty");
        assert!(
            s.is_finite() && s >= 0.0,
            "exponent must be finite and nonnegative"
        );
        ZipfSampler { n, s }
    }

    /// Size of the rank universe.
    #[inline]
    pub fn universe(&self) -> u64 {
        self.n
    }

    /// The skew exponent.
    #[inline]
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Draws one rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.n == 1 {
            return 0;
        }
        let u: f64 = rng.gen::<f64>();
        let n = self.n as f64;
        let x = if self.s == 0.0 {
            // Uniform.
            u * n
        } else if (self.s - 1.0).abs() < 1e-9 {
            // s = 1: CDF over [1, n+1) is ln(x)/ln(n+1).
            ((n + 1.0).ln() * u).exp()
        } else {
            // General s: inverse CDF of the bounded continuous power law
            // on [1, n+1).
            let p = 1.0 - self.s;
            let hi = (n + 1.0).powf(p);
            (u * (hi - 1.0) + 1.0).powf(1.0 / p)
        };
        // Continuous support is [1, n+1); shift to 0-based ranks and clamp
        // against floating-point edge cases.
        let rank = (x.floor() as u64).saturating_sub(if self.s == 0.0 { 0 } else { 1 });
        rank.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn histogram(zipf: &ZipfSampler, samples: usize, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut hist = vec![0u64; zipf.universe() as usize];
        for _ in 0..samples {
            hist[zipf.sample(&mut rng) as usize] += 1;
        }
        hist
    }

    #[test]
    fn samples_stay_in_range() {
        let zipf = ZipfSampler::new(17, 1.3);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 17);
        }
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let zipf = ZipfSampler::new(10, 0.0);
        let hist = histogram(&zipf, 100_000, 7);
        for &count in &hist {
            let frac = count as f64 / 100_000.0;
            assert!((frac - 0.1).abs() < 0.02, "uniform bucket off: {frac}");
        }
    }

    #[test]
    fn higher_exponent_concentrates_more() {
        let mild = histogram(&ZipfSampler::new(1000, 0.5), 50_000, 11);
        let steep = histogram(&ZipfSampler::new(1000, 1.5), 50_000, 11);
        let mild_top: u64 = mild[..10].iter().sum();
        let steep_top: u64 = steep[..10].iter().sum();
        assert!(
            steep_top > 2 * mild_top,
            "steeper skew should hit top ranks more: {steep_top} vs {mild_top}"
        );
    }

    #[test]
    fn exponent_one_is_supported() {
        let zipf = ZipfSampler::new(100, 1.0);
        let hist = histogram(&zipf, 50_000, 13);
        assert!(hist[0] > hist[50], "rank 0 should dominate rank 50");
        assert!(hist.iter().sum::<u64>() == 50_000);
    }

    #[test]
    fn monotone_decreasing_on_average() {
        let hist = histogram(&ZipfSampler::new(50, 0.9), 200_000, 17);
        // Compare coarse halves rather than individual buckets.
        let first: u64 = hist[..25].iter().sum();
        let second: u64 = hist[25..].iter().sum();
        assert!(first > second);
    }

    #[test]
    fn single_rank_universe() {
        let zipf = ZipfSampler::new(1, 2.0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(zipf.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn zero_universe_rejected() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_exponent_rejected() {
        let _ = ZipfSampler::new(10, -1.0);
    }

    #[test]
    fn accessors() {
        let z = ZipfSampler::new(42, 0.7);
        assert_eq!(z.universe(), 42);
        assert!((z.exponent() - 0.7).abs() < 1e-12);
    }
}
