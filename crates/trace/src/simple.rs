//! Simple synthetic generators for tests, examples and microbenchmarks.

use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use cache8t_sim::Address;

use crate::{MemOp, TraceGenerator};

/// Uniformly random reads/writes over a flat address range.
///
/// Useful as a worst-case stream for the paper's techniques: with no set
/// locality there is almost nothing for Write Grouping to group.
///
/// # Example
///
/// ```
/// use cache8t_trace::{TraceGenerator, UniformRandom};
///
/// let mut g = UniformRandom::new(1 << 20, 0.5, 42);
/// let t = g.collect(1000);
/// assert_eq!(t.len(), 1000);
/// ```
pub struct UniformRandom {
    span_bytes: u64,
    write_share: f64,
    rng: SmallRng,
    counter: u64,
    instructions: u64,
}

impl UniformRandom {
    /// Creates a generator over `[0, span_bytes)` where a fraction
    /// `write_share` of operations are writes.
    ///
    /// # Panics
    ///
    /// Panics if `span_bytes < 8` or `write_share` is outside `[0, 1]`.
    pub fn new(span_bytes: u64, write_share: f64, seed: u64) -> Self {
        assert!(span_bytes >= 8, "address span must hold at least one word");
        assert!(
            (0.0..=1.0).contains(&write_share),
            "write share must be in [0, 1]"
        );
        UniformRandom {
            span_bytes,
            write_share,
            rng: SmallRng::seed_from_u64(seed),
            counter: 0,
            instructions: 0,
        }
    }
}

impl TraceGenerator for UniformRandom {
    fn next_op(&mut self) -> MemOp {
        self.instructions += 1;
        let addr = Address::new(self.rng.gen_range(0..self.span_bytes / 8) * 8);
        if self.rng.gen::<f64>() < self.write_share {
            self.counter += 1;
            MemOp::write(addr, self.counter)
        } else {
            MemOp::read(addr)
        }
    }

    fn instructions_retired(&self) -> u64 {
        self.instructions
    }
}

impl fmt::Debug for UniformRandom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UniformRandom")
            .field("span_bytes", &self.span_bytes)
            .field("write_share", &self.write_share)
            .finish_non_exhaustive()
    }
}

/// A strided read-modify-write loop, the classic dense-array kernel
/// (`a[i] = f(a[i])` with stride `stride_bytes`).
///
/// Each iteration issues a read of the element followed by a write to the
/// same address — a stream of WR/RW same-set pairs, the pattern Figure 8's
/// example is built from.
#[derive(Debug)]
pub struct StridedLoop {
    base: Address,
    elems: u64,
    stride_bytes: u64,
    index: u64,
    pending_write: bool,
    counter: u64,
    instructions: u64,
}

impl StridedLoop {
    /// Creates a loop over `elems` elements starting at `base`, advancing
    /// `stride_bytes` per element and wrapping around at the end.
    ///
    /// # Panics
    ///
    /// Panics if `elems == 0`, `stride_bytes < 8`, or `stride_bytes` is not
    /// a multiple of 8.
    pub fn new(base: Address, elems: u64, stride_bytes: u64) -> Self {
        assert!(elems > 0, "loop must cover at least one element");
        assert!(
            stride_bytes >= 8 && stride_bytes.is_multiple_of(8),
            "stride must be a positive multiple of 8 bytes"
        );
        StridedLoop {
            base,
            elems,
            stride_bytes,
            index: 0,
            pending_write: false,
            counter: 0,
            instructions: 0,
        }
    }

    fn current_addr(&self) -> Address {
        self.base.offset(self.index * self.stride_bytes)
    }
}

impl TraceGenerator for StridedLoop {
    fn next_op(&mut self) -> MemOp {
        self.instructions += 2; // model one ALU instruction per memop
        if self.pending_write {
            self.pending_write = false;
            let addr = self.current_addr();
            self.index = (self.index + 1) % self.elems;
            self.counter += 1;
            MemOp::write(addr, self.counter)
        } else {
            self.pending_write = true;
            MemOp::read(self.current_addr())
        }
    }

    fn instructions_retired(&self) -> u64 {
        self.instructions
    }
}

/// A pointer-chasing generator: dependent reads over a shuffled ring with
/// occasional writes.
///
/// Pointer chasing has essentially no same-set locality between consecutive
/// accesses and a large working set — a stress case where WG's Set-Buffer
/// rarely hits and the technique must at least do no harm.
pub struct PointerChase {
    ring: Vec<u64>,
    position: usize,
    write_share: f64,
    rng: SmallRng,
    counter: u64,
    instructions: u64,
}

impl PointerChase {
    /// Creates a chase over `nodes` 64-byte nodes with the given fraction
    /// of writes interleaved, deterministically shuffled with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `write_share` is outside `[0, 1]`.
    pub fn new(nodes: usize, write_share: f64, seed: u64) -> Self {
        assert!(nodes > 0, "chase needs at least one node");
        assert!(
            (0.0..=1.0).contains(&write_share),
            "write share must be in [0, 1]"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        // Sattolo's algorithm: a single cycle through all nodes.
        let mut ring: Vec<u64> = (0..nodes as u64).collect();
        for i in (1..nodes).rev() {
            let j = rng.gen_range(0..i);
            ring.swap(i, j);
        }
        PointerChase {
            ring,
            position: 0,
            write_share,
            rng,
            counter: 0,
            instructions: 0,
        }
    }

    fn node_addr(&self, node: u64) -> Address {
        Address::new(node * 64)
    }
}

impl TraceGenerator for PointerChase {
    fn next_op(&mut self) -> MemOp {
        self.instructions += 3; // pointer arithmetic between hops
        let node = self.ring[self.position];
        self.position = node as usize % self.ring.len();
        let addr = self.node_addr(node);
        if self.rng.gen::<f64>() < self.write_share {
            self.counter += 1;
            MemOp::write(addr.offset(8), self.counter)
        } else {
            MemOp::read(addr)
        }
    }

    fn instructions_retired(&self) -> u64 {
        self.instructions
    }
}

impl fmt::Debug for PointerChase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PointerChase")
            .field("nodes", &self.ring.len())
            .field("write_share", &self.write_share)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_random_respects_write_share() {
        let mut g = UniformRandom::new(1 << 16, 0.3, 9);
        let t = g.collect(20_000);
        let share = t.writes() as f64 / t.len() as f64;
        assert!((share - 0.3).abs() < 0.02, "write share {share}");
        assert_eq!(g.instructions_retired(), 20_000);
    }

    #[test]
    fn uniform_random_addresses_in_span() {
        let mut g = UniformRandom::new(4096, 0.5, 1);
        for _ in 0..1000 {
            let op = g.next_op();
            assert!(op.addr.raw() < 4096);
            assert!(op.addr.is_aligned(8));
        }
    }

    #[test]
    fn strided_loop_alternates_read_write_same_addr() {
        let mut g = StridedLoop::new(Address::new(0x1000), 4, 32);
        let r0 = g.next_op();
        let w0 = g.next_op();
        assert!(r0.is_read());
        assert!(w0.is_write());
        assert_eq!(r0.addr, w0.addr);
        let r1 = g.next_op();
        assert_eq!(r1.addr, Address::new(0x1020));
    }

    #[test]
    fn strided_loop_wraps() {
        let mut g = StridedLoop::new(Address::new(0), 2, 8);
        let addrs: Vec<u64> = (0..8).map(|_| g.next_op().addr.raw()).collect();
        assert_eq!(addrs, vec![0, 0, 8, 8, 0, 0, 8, 8]);
    }

    #[test]
    fn pointer_chase_visits_all_nodes() {
        let mut g = PointerChase::new(64, 0.0, 5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(g.next_op().addr.raw());
        }
        // Sattolo's shuffle produces one full cycle.
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn pointer_chase_instruction_density() {
        let mut g = PointerChase::new(16, 0.2, 5);
        let t = g.collect(100);
        assert_eq!(t.instructions(), 300);
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn uniform_random_rejects_tiny_span() {
        let _ = UniformRandom::new(4, 0.5, 0);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn strided_rejects_bad_stride() {
        let _ = StridedLoop::new(Address::new(0), 4, 12);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn chase_rejects_empty() {
        let _ = PointerChase::new(0, 0.0, 0);
    }
}
