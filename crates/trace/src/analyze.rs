//! Trace analysis: measures the paper's motivation statistics (Figures
//! 3–5) from any request stream.

use std::fmt;

use serde::{Deserialize, Serialize};

use cache8t_sim::{CacheGeometry, FastMap, FastSet};

use crate::{MemOp, Trace};

/// The measured breakdown of consecutive same-set accesses (paper Figure
/// 4), as fractions of all adjacent request pairs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ConsecutiveBreakdown {
    /// Read → read to the same set.
    pub rr: f64,
    /// Read → write to the same set.
    pub rw: f64,
    /// Write → read to the same set.
    pub wr: f64,
    /// Write → write to the same set.
    pub ww: f64,
}

impl ConsecutiveBreakdown {
    /// Total same-set fraction.
    pub fn total(&self) -> f64 {
        self.rr + self.rw + self.wr + self.ww
    }
}

/// Stream statistics corresponding to the paper's Figures 3, 4 and 5.
///
/// [`StreamStats::measure`] computes them from a [`Trace`]:
///
/// - Figure 3: [`read_per_instr`](Self::read_per_instr) and
///   [`write_per_instr`](Self::write_per_instr);
/// - Figure 4: [`consecutive`](Self::consecutive);
/// - Figure 5: [`silent_write_fraction`](Self::silent_write_fraction),
///   determined by replaying writes against a zero-initialized shadow
///   memory (the definition of a silent store from Lepak & Lipasti).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Memory reads per executed instruction.
    pub read_per_instr: f64,
    /// Memory writes per executed instruction.
    pub write_per_instr: f64,
    /// Reads as a fraction of memory operations.
    pub read_share: f64,
    /// Same-set consecutive-pair breakdown.
    pub consecutive: ConsecutiveBreakdown,
    /// Fraction of writes that stored the already-present value.
    pub silent_write_fraction: f64,
    /// Number of distinct cache sets touched.
    pub distinct_sets: u64,
    /// Number of distinct blocks touched.
    pub distinct_blocks: u64,
}

impl StreamStats {
    /// Measures a trace against a cache geometry (the geometry defines
    /// which addresses share a set).
    ///
    /// Returns all-zero statistics for an empty trace.
    pub fn measure(trace: &Trace, geometry: CacheGeometry) -> Self {
        StreamStats::measure_ops(trace.ops(), trace.instructions(), geometry)
    }

    /// Measures a borrowed slice of operations representing
    /// `instructions` executed instructions — the allocation-free entry
    /// point the sweep engine uses on the measured region of a trace
    /// (see [`Trace::measured_region`]).
    pub fn measure_ops(ops: &[MemOp], instructions: u64, geometry: CacheGeometry) -> Self {
        if ops.is_empty() {
            return StreamStats::default();
        }
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut silent = 0u64;
        let mut shadow: FastMap<u64, u64> = FastMap::default();
        let mut sets: FastSet<u64> = FastSet::default();
        let mut blocks: FastSet<u64> = FastSet::default();
        let mut pair_counts = [[0u64; 2]; 2];

        let mut prev_set = u64::MAX;
        let mut prev_write = false;
        for (i, op) in ops.iter().enumerate() {
            if op.is_read() {
                reads += 1;
            } else {
                writes += 1;
                let old = shadow.get(&op.addr.raw()).copied().unwrap_or(0);
                if old == op.value {
                    silent += 1;
                }
                shadow.insert(op.addr.raw(), op.value);
            }
            let set = geometry.set_index_of(op.addr);
            sets.insert(set);
            blocks.insert(geometry.block_base(op.addr).raw());
            if i > 0 && set == prev_set {
                pair_counts[usize::from(prev_write)][usize::from(op.is_write())] += 1;
            }
            prev_set = set;
            prev_write = op.is_write();
        }

        let pairs = (ops.len() - 1).max(1) as f64;
        let instr = instructions.max(1) as f64;
        StreamStats {
            read_per_instr: reads as f64 / instr,
            write_per_instr: writes as f64 / instr,
            read_share: reads as f64 / ops.len() as f64,
            consecutive: ConsecutiveBreakdown {
                rr: pair_counts[0][0] as f64 / pairs,
                rw: pair_counts[0][1] as f64 / pairs,
                wr: pair_counts[1][0] as f64 / pairs,
                ww: pair_counts[1][1] as f64 / pairs,
            },
            silent_write_fraction: if writes == 0 {
                0.0
            } else {
                silent as f64 / writes as f64
            },
            distinct_sets: sets.len() as u64,
            distinct_blocks: blocks.len() as u64,
        }
    }
}

impl fmt::Display for StreamStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads/instr {:.3}, writes/instr {:.3}, same-set pairs {:.3} (rr {:.3}, rw {:.3}, wr {:.3}, ww {:.3}), silent writes {:.3}",
            self.read_per_instr,
            self.write_per_instr,
            self.consecutive.total(),
            self.consecutive.rr,
            self.consecutive.rw,
            self.consecutive.wr,
            self.consecutive.ww,
            self.silent_write_fraction,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemOp;
    use cache8t_sim::Address;

    fn geometry() -> CacheGeometry {
        CacheGeometry::paper_baseline()
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let stats = StreamStats::measure(&Trace::default(), geometry());
        assert_eq!(stats, StreamStats::default());
    }

    #[test]
    fn counts_reads_and_writes_per_instruction() {
        // 2 reads + 2 writes over 10 instructions.
        let t = Trace::new(
            vec![
                MemOp::read(Address::new(0x00)),
                MemOp::write(Address::new(0x40), 1),
                MemOp::read(Address::new(0x80)),
                MemOp::write(Address::new(0xC0), 2),
            ],
            10,
        );
        let s = StreamStats::measure(&t, geometry());
        assert!((s.read_per_instr - 0.2).abs() < 1e-12);
        assert!((s.write_per_instr - 0.2).abs() < 1e-12);
        assert!((s.read_share - 0.5).abs() < 1e-12);
    }

    #[test]
    fn classifies_consecutive_same_set_pairs() {
        let g = geometry();
        // Same set: same address. Different set: +block_bytes (next set).
        let a = Address::new(0x1000);
        let far = Address::new(0x1000 + g.block_bytes());
        assert_ne!(g.set_index_of(a), g.set_index_of(far));
        let t = Trace::new(
            vec![
                MemOp::read(a),     // -
                MemOp::read(a),     // RR same
                MemOp::write(a, 1), // RW same
                MemOp::write(a, 2), // WW same
                MemOp::read(a),     // WR same
                MemOp::read(far),   // different set
            ],
            6,
        );
        let s = StreamStats::measure(&t, g);
        let pairs = 5.0;
        assert!((s.consecutive.rr - 1.0 / pairs).abs() < 1e-12);
        assert!((s.consecutive.rw - 1.0 / pairs).abs() < 1e-12);
        assert!((s.consecutive.ww - 1.0 / pairs).abs() < 1e-12);
        assert!((s.consecutive.wr - 1.0 / pairs).abs() < 1e-12);
        assert!((s.consecutive.total() - 4.0 / pairs).abs() < 1e-12);
    }

    #[test]
    fn silent_writes_replay_against_zero_memory() {
        let a = Address::new(0x100);
        let t = Trace::new(
            vec![
                MemOp::write(a, 0), // silent: memory starts at 0
                MemOp::write(a, 5), // not silent
                MemOp::write(a, 5), // silent
                MemOp::write(a, 0), // not silent
            ],
            4,
        );
        let s = StreamStats::measure(&t, geometry());
        assert!((s.silent_write_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn counts_distinct_sets_and_blocks() {
        let g = geometry();
        let t = Trace::new(
            vec![
                MemOp::read(Address::new(0x00)),
                MemOp::read(Address::new(0x08)), // same block
                MemOp::read(Address::new(0x20)), // new block, new set
                MemOp::read(Address::new(0x00)), // repeat
            ],
            4,
        );
        let s = StreamStats::measure(&t, g);
        assert_eq!(s.distinct_blocks, 2);
        assert_eq!(s.distinct_sets, 2);
    }

    #[test]
    fn display_is_informative() {
        let t = Trace::new(vec![MemOp::read(Address::new(0))], 1);
        let s = StreamStats::measure(&t, geometry());
        assert!(s.to_string().contains("reads/instr"));
    }

    #[test]
    fn read_only_trace_has_zero_silent_fraction() {
        let t = Trace::new(vec![MemOp::read(Address::new(0)); 10], 10);
        let s = StreamStats::measure(&t, geometry());
        assert_eq!(s.silent_write_fraction, 0.0);
        assert_eq!(s.write_per_instr, 0.0);
    }
}
