//! Trace analysis: measures the paper's motivation statistics (Figures
//! 3–5) from any request stream.

use std::fmt;

use serde::{Deserialize, Serialize};

use cache8t_sim::{CacheGeometry, FastMap, FastSet};

use crate::{MemOp, Trace};

/// The measured breakdown of consecutive same-set accesses (paper Figure
/// 4), as fractions of all adjacent request pairs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ConsecutiveBreakdown {
    /// Read → read to the same set.
    pub rr: f64,
    /// Read → write to the same set.
    pub rw: f64,
    /// Write → read to the same set.
    pub wr: f64,
    /// Write → write to the same set.
    pub ww: f64,
}

impl ConsecutiveBreakdown {
    /// Total same-set fraction.
    pub fn total(&self) -> f64 {
        self.rr + self.rw + self.wr + self.ww
    }
}

/// Stream statistics corresponding to the paper's Figures 3, 4 and 5.
///
/// [`StreamStats::measure`] computes them from a [`Trace`]:
///
/// - Figure 3: [`read_per_instr`](Self::read_per_instr) and
///   [`write_per_instr`](Self::write_per_instr);
/// - Figure 4: [`consecutive`](Self::consecutive);
/// - Figure 5: [`silent_write_fraction`](Self::silent_write_fraction),
///   determined by replaying writes against a zero-initialized shadow
///   memory (the definition of a silent store from Lepak & Lipasti).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Memory reads per executed instruction.
    pub read_per_instr: f64,
    /// Memory writes per executed instruction.
    pub write_per_instr: f64,
    /// Reads as a fraction of memory operations.
    pub read_share: f64,
    /// Same-set consecutive-pair breakdown.
    pub consecutive: ConsecutiveBreakdown,
    /// Fraction of writes that stored the already-present value.
    pub silent_write_fraction: f64,
    /// Number of distinct cache sets touched.
    pub distinct_sets: u64,
    /// Number of distinct blocks touched.
    pub distinct_blocks: u64,
}

impl StreamStats {
    /// Measures a trace against a cache geometry (the geometry defines
    /// which addresses share a set).
    ///
    /// Returns all-zero statistics for an empty trace.
    pub fn measure(trace: &Trace, geometry: CacheGeometry) -> Self {
        StreamStats::measure_ops(trace.ops(), trace.instructions(), geometry)
    }

    /// Measures a borrowed slice of operations representing
    /// `instructions` executed instructions — the allocation-free entry
    /// point the sweep engine uses on the measured region of a trace
    /// (see [`Trace::measured_region`]).
    pub fn measure_ops(ops: &[MemOp], instructions: u64, geometry: CacheGeometry) -> Self {
        let mut acc = StreamStatsAccumulator::new(geometry);
        acc.feed(ops);
        acc.finish(instructions)
    }
}

/// Incremental form of [`StreamStats::measure_ops`]: feed operation slices
/// in stream order, then finish with the total instruction count.
///
/// `measure_ops` itself delegates here, so a chunked measurement over the
/// same op sequence produces bit-identical statistics — the accumulator is
/// the only fold implementation. The shadow memory, pair classification,
/// and set/block tracking all carry across `feed` calls exactly as they
/// would across loop iterations of a single pass.
#[derive(Debug, Clone)]
pub struct StreamStatsAccumulator {
    geometry: CacheGeometry,
    ops: u64,
    reads: u64,
    writes: u64,
    silent: u64,
    shadow: FastMap<u64, u64>,
    sets: FastSet<u64>,
    blocks: FastSet<u64>,
    pair_counts: [[u64; 2]; 2],
    prev_set: u64,
    prev_write: bool,
}

impl StreamStatsAccumulator {
    /// Creates an empty accumulator measuring against `geometry`.
    pub fn new(geometry: CacheGeometry) -> Self {
        StreamStatsAccumulator {
            geometry,
            ops: 0,
            reads: 0,
            writes: 0,
            silent: 0,
            shadow: FastMap::default(),
            sets: FastSet::default(),
            blocks: FastSet::default(),
            pair_counts: [[0u64; 2]; 2],
            prev_set: u64::MAX,
            prev_write: false,
        }
    }

    /// Operations folded in so far.
    #[inline]
    pub fn ops_seen(&self) -> u64 {
        self.ops
    }

    /// Folds the next operations of the stream into the statistics.
    pub fn feed(&mut self, ops: &[MemOp]) {
        for op in ops {
            if op.is_read() {
                self.reads += 1;
            } else {
                self.writes += 1;
                let old = self.shadow.get(&op.addr.raw()).copied().unwrap_or(0);
                if old == op.value {
                    self.silent += 1;
                }
                self.shadow.insert(op.addr.raw(), op.value);
            }
            let set = self.geometry.set_index_of(op.addr);
            self.sets.insert(set);
            self.blocks.insert(self.geometry.block_base(op.addr).raw());
            if self.ops > 0 && set == self.prev_set {
                self.pair_counts[usize::from(self.prev_write)][usize::from(op.is_write())] += 1;
            }
            self.prev_set = set;
            self.prev_write = op.is_write();
            self.ops += 1;
        }
    }

    /// Finishes the measurement, normalizing by `instructions`.
    ///
    /// Returns all-zero statistics if no operations were fed.
    pub fn finish(self, instructions: u64) -> StreamStats {
        if self.ops == 0 {
            return StreamStats::default();
        }
        let pairs = (self.ops - 1).max(1) as f64;
        let instr = instructions.max(1) as f64;
        StreamStats {
            read_per_instr: self.reads as f64 / instr,
            write_per_instr: self.writes as f64 / instr,
            read_share: self.reads as f64 / self.ops as f64,
            consecutive: ConsecutiveBreakdown {
                rr: self.pair_counts[0][0] as f64 / pairs,
                rw: self.pair_counts[0][1] as f64 / pairs,
                wr: self.pair_counts[1][0] as f64 / pairs,
                ww: self.pair_counts[1][1] as f64 / pairs,
            },
            silent_write_fraction: if self.writes == 0 {
                0.0
            } else {
                self.silent as f64 / self.writes as f64
            },
            distinct_sets: self.sets.len() as u64,
            distinct_blocks: self.blocks.len() as u64,
        }
    }
}

impl fmt::Display for StreamStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads/instr {:.3}, writes/instr {:.3}, same-set pairs {:.3} (rr {:.3}, rw {:.3}, wr {:.3}, ww {:.3}), silent writes {:.3}",
            self.read_per_instr,
            self.write_per_instr,
            self.consecutive.total(),
            self.consecutive.rr,
            self.consecutive.rw,
            self.consecutive.wr,
            self.consecutive.ww,
            self.silent_write_fraction,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemOp;
    use cache8t_sim::Address;

    fn geometry() -> CacheGeometry {
        CacheGeometry::paper_baseline()
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let stats = StreamStats::measure(&Trace::default(), geometry());
        assert_eq!(stats, StreamStats::default());
    }

    #[test]
    fn counts_reads_and_writes_per_instruction() {
        // 2 reads + 2 writes over 10 instructions.
        let t = Trace::new(
            vec![
                MemOp::read(Address::new(0x00)),
                MemOp::write(Address::new(0x40), 1),
                MemOp::read(Address::new(0x80)),
                MemOp::write(Address::new(0xC0), 2),
            ],
            10,
        );
        let s = StreamStats::measure(&t, geometry());
        assert!((s.read_per_instr - 0.2).abs() < 1e-12);
        assert!((s.write_per_instr - 0.2).abs() < 1e-12);
        assert!((s.read_share - 0.5).abs() < 1e-12);
    }

    #[test]
    fn classifies_consecutive_same_set_pairs() {
        let g = geometry();
        // Same set: same address. Different set: +block_bytes (next set).
        let a = Address::new(0x1000);
        let far = Address::new(0x1000 + g.block_bytes());
        assert_ne!(g.set_index_of(a), g.set_index_of(far));
        let t = Trace::new(
            vec![
                MemOp::read(a),     // -
                MemOp::read(a),     // RR same
                MemOp::write(a, 1), // RW same
                MemOp::write(a, 2), // WW same
                MemOp::read(a),     // WR same
                MemOp::read(far),   // different set
            ],
            6,
        );
        let s = StreamStats::measure(&t, g);
        let pairs = 5.0;
        assert!((s.consecutive.rr - 1.0 / pairs).abs() < 1e-12);
        assert!((s.consecutive.rw - 1.0 / pairs).abs() < 1e-12);
        assert!((s.consecutive.ww - 1.0 / pairs).abs() < 1e-12);
        assert!((s.consecutive.wr - 1.0 / pairs).abs() < 1e-12);
        assert!((s.consecutive.total() - 4.0 / pairs).abs() < 1e-12);
    }

    #[test]
    fn silent_writes_replay_against_zero_memory() {
        let a = Address::new(0x100);
        let t = Trace::new(
            vec![
                MemOp::write(a, 0), // silent: memory starts at 0
                MemOp::write(a, 5), // not silent
                MemOp::write(a, 5), // silent
                MemOp::write(a, 0), // not silent
            ],
            4,
        );
        let s = StreamStats::measure(&t, geometry());
        assert!((s.silent_write_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn counts_distinct_sets_and_blocks() {
        let g = geometry();
        let t = Trace::new(
            vec![
                MemOp::read(Address::new(0x00)),
                MemOp::read(Address::new(0x08)), // same block
                MemOp::read(Address::new(0x20)), // new block, new set
                MemOp::read(Address::new(0x00)), // repeat
            ],
            4,
        );
        let s = StreamStats::measure(&t, g);
        assert_eq!(s.distinct_blocks, 2);
        assert_eq!(s.distinct_sets, 2);
    }

    #[test]
    fn display_is_informative() {
        let t = Trace::new(vec![MemOp::read(Address::new(0))], 1);
        let s = StreamStats::measure(&t, geometry());
        assert!(s.to_string().contains("reads/instr"));
    }

    #[test]
    fn chunked_accumulation_is_bit_identical_to_one_shot() {
        use crate::{profiles, ProfiledGenerator, TraceGenerator};
        let g = geometry();
        let profile = profiles::by_name("gcc").expect("suite profile");
        let trace = ProfiledGenerator::new(profile, g, 17).collect(20_000);
        let expected = StreamStats::measure(&trace, g);
        for chunk in [1usize, 37, 1024, 4096, 20_000] {
            let mut acc = StreamStatsAccumulator::new(g);
            for slice in trace.ops().chunks(chunk) {
                acc.feed(slice);
            }
            assert_eq!(acc.ops_seen(), 20_000);
            let chunked = acc.finish(trace.instructions());
            // Bit-identical, not merely close: the accumulator is the
            // same fold, so every f64 must match exactly.
            assert_eq!(chunked, expected, "chunk={chunk}");
        }
    }

    #[test]
    fn empty_accumulator_finishes_to_default() {
        let acc = StreamStatsAccumulator::new(geometry());
        assert_eq!(acc.finish(100), StreamStats::default());
    }

    #[test]
    fn read_only_trace_has_zero_silent_fraction() {
        let t = Trace::new(vec![MemOp::read(Address::new(0)); 10], 10);
        let s = StreamStats::measure(&t, geometry());
        assert_eq!(s.silent_write_fraction, 0.0);
        assert_eq!(s.write_per_instr, 0.0);
    }
}
