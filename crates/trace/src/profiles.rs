//! Calibrated per-benchmark workload profiles.
//!
//! The paper runs 25 of the 29 SPEC CPU2006 benchmarks under Pin (§5.1).
//! Neither Pin nor SPEC inputs exist in this environment, so each benchmark
//! is represented by a [`WorkloadProfile`] whose parameters reproduce the
//! stream statistics the paper reports for it:
//!
//! - the averages anchored in the text: 26 % reads and 14 % writes per
//!   instruction (Figure 3), 27 % same-set consecutive accesses (Figure 4,
//!   RR and WW dominating), >42 % silent writes (Figure 5);
//! - the named outliers: `bwaves` is the most write-intensive benchmark
//!   (>22 % writes per instruction) with the largest WW share (24 %) and a
//!   77 % silent-write fraction; `wrf` and `lbm` behave similarly; `gamess`
//!   and `cactusADM` have above-average RR shares (they benefit most from
//!   read bypassing, §5.2).
//!
//! Remaining per-benchmark values are plausible interpolations consistent
//! with those anchors (the paper's per-bar values are not recoverable from
//! the text). The calibration tests in the workspace assert that generated
//! streams land on these targets, and `EXPERIMENTS.md` records
//! paper-vs-measured for every figure.

use crate::{PairLocality, WorkloadProfile};

/// One row of the profile table.
struct Row {
    name: &'static str,
    mem_per_instr: f64,
    read_share: f64,
    rr: f64,
    rw: f64,
    wr: f64,
    ww: f64,
    silent: f64,
    ws_blocks: u64,
    zipf: f64,
    wrev: f64,
    raw: f64,
    scorr: f64,
    spatial: f64,
}

/// The 25-benchmark table.
///
/// Working-set sizes are in 32-byte blocks (so 2048 blocks = one baseline
/// cache worth of data); they control each workload's miss rate.
const TABLE: &[Row] = &[
    Row {
        name: "perlbench",
        mem_per_instr: 0.42,
        read_share: 0.64,
        rr: 0.11,
        rw: 0.04,
        wr: 0.04,
        ww: 0.09,
        silent: 0.45,
        ws_blocks: 6_000,
        zipf: 1.1,
        wrev: 0.78,
        raw: 0.10,
        scorr: 0.80,
        spatial: 0.35,
    },
    Row {
        name: "bzip2",
        mem_per_instr: 0.38,
        read_share: 0.68,
        rr: 0.09,
        rw: 0.03,
        wr: 0.03,
        ww: 0.08,
        silent: 0.38,
        ws_blocks: 12_000,
        zipf: 1.0,
        wrev: 0.78,
        raw: 0.10,
        scorr: 0.80,
        spatial: 0.35,
    },
    Row {
        name: "gcc",
        mem_per_instr: 0.40,
        read_share: 0.66,
        rr: 0.10,
        rw: 0.04,
        wr: 0.04,
        ww: 0.09,
        silent: 0.50,
        ws_blocks: 16_000,
        zipf: 1.1,
        wrev: 0.78,
        raw: 0.10,
        scorr: 0.80,
        spatial: 0.35,
    },
    Row {
        name: "bwaves",
        mem_per_instr: 0.48,
        read_share: 0.54,
        rr: 0.08,
        rw: 0.05,
        wr: 0.05,
        ww: 0.24,
        silent: 0.77,
        ws_blocks: 20_000,
        zipf: 0.9,
        wrev: 0.55,
        raw: 0.11,
        scorr: 0.80,
        spatial: 0.45,
    },
    Row {
        name: "gamess",
        mem_per_instr: 0.40,
        read_share: 0.70,
        rr: 0.16,
        rw: 0.03,
        wr: 0.03,
        ww: 0.07,
        silent: 0.35,
        ws_blocks: 3_000,
        zipf: 1.2,
        wrev: 0.42,
        raw: 0.20,
        scorr: 0.80,
        spatial: 0.30,
    },
    Row {
        name: "mcf",
        mem_per_instr: 0.44,
        read_share: 0.80,
        rr: 0.12,
        rw: 0.02,
        wr: 0.02,
        ww: 0.05,
        silent: 0.30,
        ws_blocks: 40_000,
        zipf: 0.8,
        wrev: 0.26,
        raw: 0.05,
        scorr: 0.80,
        spatial: 0.15,
    },
    Row {
        name: "milc",
        mem_per_instr: 0.40,
        read_share: 0.63,
        rr: 0.08,
        rw: 0.04,
        wr: 0.04,
        ww: 0.10,
        silent: 0.40,
        ws_blocks: 30_000,
        zipf: 0.9,
        wrev: 0.78,
        raw: 0.10,
        scorr: 0.80,
        spatial: 0.40,
    },
    Row {
        name: "zeusmp",
        mem_per_instr: 0.41,
        read_share: 0.61,
        rr: 0.09,
        rw: 0.04,
        wr: 0.04,
        ww: 0.11,
        silent: 0.48,
        ws_blocks: 25_000,
        zipf: 1.0,
        wrev: 0.78,
        raw: 0.10,
        scorr: 0.80,
        spatial: 0.40,
    },
    Row {
        name: "gromacs",
        mem_per_instr: 0.39,
        read_share: 0.67,
        rr: 0.10,
        rw: 0.03,
        wr: 0.03,
        ww: 0.09,
        silent: 0.42,
        ws_blocks: 8_000,
        zipf: 1.1,
        wrev: 0.78,
        raw: 0.10,
        scorr: 0.80,
        spatial: 0.35,
    },
    Row {
        name: "cactusADM",
        mem_per_instr: 0.42,
        read_share: 0.62,
        rr: 0.15,
        rw: 0.03,
        wr: 0.03,
        ww: 0.11,
        silent: 0.50,
        ws_blocks: 15_000,
        zipf: 1.1,
        wrev: 0.46,
        raw: 0.18,
        scorr: 0.80,
        spatial: 0.35,
    },
    Row {
        name: "leslie3d",
        mem_per_instr: 0.43,
        read_share: 0.60,
        rr: 0.09,
        rw: 0.04,
        wr: 0.04,
        ww: 0.12,
        silent: 0.45,
        ws_blocks: 22_000,
        zipf: 1.0,
        wrev: 0.78,
        raw: 0.10,
        scorr: 0.80,
        spatial: 0.40,
    },
    Row {
        name: "namd",
        mem_per_instr: 0.37,
        read_share: 0.71,
        rr: 0.10,
        rw: 0.03,
        wr: 0.03,
        ww: 0.07,
        silent: 0.33,
        ws_blocks: 5_000,
        zipf: 1.1,
        wrev: 0.78,
        raw: 0.10,
        scorr: 0.80,
        spatial: 0.35,
    },
    Row {
        name: "gobmk",
        mem_per_instr: 0.36,
        read_share: 0.69,
        rr: 0.09,
        rw: 0.03,
        wr: 0.03,
        ww: 0.07,
        silent: 0.40,
        ws_blocks: 9_000,
        zipf: 1.1,
        wrev: 0.78,
        raw: 0.10,
        scorr: 0.80,
        spatial: 0.25,
    },
    Row {
        name: "povray",
        mem_per_instr: 0.41,
        read_share: 0.72,
        rr: 0.12,
        rw: 0.03,
        wr: 0.03,
        ww: 0.06,
        silent: 0.36,
        ws_blocks: 4_000,
        zipf: 1.2,
        wrev: 0.78,
        raw: 0.10,
        scorr: 0.80,
        spatial: 0.25,
    },
    Row {
        name: "calculix",
        mem_per_instr: 0.38,
        read_share: 0.66,
        rr: 0.09,
        rw: 0.03,
        wr: 0.03,
        ww: 0.09,
        silent: 0.41,
        ws_blocks: 12_000,
        zipf: 1.0,
        wrev: 0.78,
        raw: 0.10,
        scorr: 0.80,
        spatial: 0.35,
    },
    Row {
        name: "hmmer",
        mem_per_instr: 0.45,
        read_share: 0.62,
        rr: 0.10,
        rw: 0.04,
        wr: 0.04,
        ww: 0.12,
        silent: 0.47,
        ws_blocks: 3_000,
        zipf: 1.2,
        wrev: 0.78,
        raw: 0.10,
        scorr: 0.80,
        spatial: 0.35,
    },
    Row {
        name: "sjeng",
        mem_per_instr: 0.35,
        read_share: 0.70,
        rr: 0.08,
        rw: 0.03,
        wr: 0.03,
        ww: 0.06,
        silent: 0.35,
        ws_blocks: 7_000,
        zipf: 1.1,
        wrev: 0.78,
        raw: 0.10,
        scorr: 0.80,
        spatial: 0.25,
    },
    Row {
        name: "GemsFDTD",
        mem_per_instr: 0.44,
        read_share: 0.59,
        rr: 0.09,
        rw: 0.05,
        wr: 0.05,
        ww: 0.13,
        silent: 0.52,
        ws_blocks: 28_000,
        zipf: 0.9,
        wrev: 0.78,
        raw: 0.10,
        scorr: 0.70,
        spatial: 0.40,
    },
    Row {
        name: "libquantum",
        mem_per_instr: 0.33,
        read_share: 0.82,
        rr: 0.07,
        rw: 0.02,
        wr: 0.02,
        ww: 0.06,
        silent: 0.60,
        ws_blocks: 16_000,
        zipf: 0.7,
        wrev: 0.32,
        raw: 0.05,
        scorr: 0.72,
        spatial: 0.50,
    },
    Row {
        name: "h264ref",
        mem_per_instr: 0.43,
        read_share: 0.65,
        rr: 0.11,
        rw: 0.04,
        wr: 0.04,
        ww: 0.10,
        silent: 0.44,
        ws_blocks: 6_000,
        zipf: 1.1,
        wrev: 0.78,
        raw: 0.10,
        scorr: 0.80,
        spatial: 0.35,
    },
    Row {
        name: "lbm",
        mem_per_instr: 0.42,
        read_share: 0.58,
        rr: 0.08,
        rw: 0.05,
        wr: 0.05,
        ww: 0.17,
        silent: 0.65,
        ws_blocks: 24_000,
        zipf: 0.9,
        wrev: 0.55,
        raw: 0.11,
        scorr: 0.75,
        spatial: 0.45,
    },
    Row {
        name: "omnetpp",
        mem_per_instr: 0.40,
        read_share: 0.67,
        rr: 0.10,
        rw: 0.03,
        wr: 0.03,
        ww: 0.08,
        silent: 0.37,
        ws_blocks: 35_000,
        zipf: 0.9,
        wrev: 0.78,
        raw: 0.10,
        scorr: 0.80,
        spatial: 0.20,
    },
    Row {
        name: "astar",
        mem_per_instr: 0.39,
        read_share: 0.73,
        rr: 0.09,
        rw: 0.03,
        wr: 0.03,
        ww: 0.06,
        silent: 0.34,
        ws_blocks: 18_000,
        zipf: 1.0,
        wrev: 0.32,
        raw: 0.07,
        scorr: 0.80,
        spatial: 0.20,
    },
    Row {
        name: "wrf",
        mem_per_instr: 0.44,
        read_share: 0.57,
        rr: 0.08,
        rw: 0.05,
        wr: 0.05,
        ww: 0.16,
        silent: 0.62,
        ws_blocks: 20_000,
        zipf: 1.0,
        wrev: 0.78,
        raw: 0.11,
        scorr: 0.75,
        spatial: 0.40,
    },
    Row {
        name: "sphinx3",
        mem_per_instr: 0.41,
        read_share: 0.70,
        rr: 0.10,
        rw: 0.03,
        wr: 0.03,
        ww: 0.07,
        silent: 0.39,
        ws_blocks: 14_000,
        zipf: 1.0,
        wrev: 0.78,
        raw: 0.10,
        scorr: 0.80,
        spatial: 0.35,
    },
];

impl Row {
    fn to_profile(&self) -> WorkloadProfile {
        WorkloadProfile {
            name: self.name.to_string(),
            mem_per_instr: self.mem_per_instr,
            read_share: self.read_share,
            locality: PairLocality {
                rr: self.rr,
                rw: self.rw,
                wr: self.wr,
                ww: self.ww,
            },
            silent_fraction: self.silent,
            working_set_blocks: self.ws_blocks,
            zipf_exponent: self.zipf,
            write_revisit: self.wrev,
            read_after_write: self.raw,
            silent_correlation: self.scorr,
            spatial_adjacency: self.spatial,
        }
    }
}

/// The full 25-benchmark suite, in the paper's presentation order.
///
/// # Example
///
/// ```
/// let suite = cache8t_trace::profiles::spec2006();
/// assert_eq!(suite.len(), 25);
/// assert!(suite.iter().all(|p| p.validate().is_ok()));
/// ```
pub fn spec2006() -> Vec<WorkloadProfile> {
    TABLE.iter().map(Row::to_profile).collect()
}

/// Looks up one benchmark's profile by name (case-sensitive, e.g.
/// `"bwaves"`, `"cactusADM"`).
pub fn by_name(name: &str) -> Option<WorkloadProfile> {
    TABLE.iter().find(|r| r.name == name).map(Row::to_profile)
}

/// The names of all benchmarks in the suite, in order.
pub fn names() -> Vec<&'static str> {
    TABLE.iter().map(|r| r.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_25_valid_profiles() {
        let suite = spec2006();
        assert_eq!(suite.len(), 25);
        for p in &suite {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn suite_averages_match_paper_anchors() {
        let suite = spec2006();
        let n = suite.len() as f64;
        let avg_reads: f64 = suite
            .iter()
            .map(WorkloadProfile::reads_per_instr)
            .sum::<f64>()
            / n;
        let avg_writes: f64 = suite
            .iter()
            .map(WorkloadProfile::writes_per_instr)
            .sum::<f64>()
            / n;
        let avg_same_set: f64 = suite.iter().map(|p| p.locality.total()).sum::<f64>() / n;
        let avg_silent: f64 = suite.iter().map(|p| p.silent_fraction).sum::<f64>() / n;
        // Paper §3: "on average ... 26% reads and 14% writes".
        assert!(
            (avg_reads - 0.26).abs() < 0.02,
            "avg reads/instr {avg_reads}"
        );
        assert!(
            (avg_writes - 0.14).abs() < 0.02,
            "avg writes/instr {avg_writes}"
        );
        // Paper §3: "a considerable share of cache accesses (on average 27%)
        // are made to the same cache set".
        assert!(
            (avg_same_set - 0.27).abs() < 0.03,
            "avg same-set {avg_same_set}"
        );
        // Paper §3: "on average more than 42% of writes are silent".
        assert!(avg_silent > 0.42, "avg silent {avg_silent}");
    }

    #[test]
    fn bwaves_matches_its_text_anchors() {
        let b = by_name("bwaves").unwrap();
        // ">22% for write-intensive applications (e.g., bwaves)".
        assert!(b.writes_per_instr() > 0.22);
        // "the WW share is highest (24%) for bwaves".
        assert!((b.locality.ww - 0.24).abs() < 1e-12);
        let suite = spec2006();
        assert!(suite.iter().all(|p| p.locality.ww <= 0.24));
        // "silent write frequency is high (77%) in bwaves".
        assert!((b.silent_fraction - 0.77).abs() < 1e-12);
    }

    #[test]
    fn read_bypass_beneficiaries_have_high_rr() {
        // Paper §5.2: gamess and cactusADM benefit more from WG+RB because
        // their RR share is higher.
        let suite = spec2006();
        let avg_rr: f64 = suite.iter().map(|p| p.locality.rr).sum::<f64>() / suite.len() as f64;
        for name in ["gamess", "cactusADM"] {
            let p = by_name(name).unwrap();
            assert!(p.locality.rr > avg_rr + 0.03, "{name} rr {}", p.locality.rr);
        }
    }

    #[test]
    fn wrf_and_lbm_resemble_bwaves() {
        // Paper §5.2: "Similar conclusions can be made for wrf and lbm".
        let suite = spec2006();
        let avg_ww: f64 = suite.iter().map(|p| p.locality.ww).sum::<f64>() / suite.len() as f64;
        let avg_silent: f64 =
            suite.iter().map(|p| p.silent_fraction).sum::<f64>() / suite.len() as f64;
        for name in ["wrf", "lbm"] {
            let p = by_name(name).unwrap();
            assert!(p.locality.ww > avg_ww, "{name}");
            assert!(p.silent_fraction > avg_silent, "{name}");
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("gcc").is_some());
        assert!(by_name("nonexistent").is_none());
        assert_eq!(names().len(), 25);
        assert_eq!(names()[0], "perlbench");
    }

    #[test]
    fn names_are_unique() {
        let mut n = names();
        n.sort_unstable();
        n.dedup();
        assert_eq!(n.len(), 25);
    }
}
