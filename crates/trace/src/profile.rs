//! Workload profiles: the tunable statistics of a synthetic benchmark.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Target fractions of consecutive same-set access pairs, by scenario.
///
/// These are the four bars of the paper's Figure 4: of all adjacent request
/// pairs in the stream, which fraction targets the *same cache set* with
/// each read/write ordering. The paper finds that on average 27 % of
/// accesses are made to the same set as their predecessor, with RR and WW
/// accounting for the largest shares.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairLocality {
    /// Read followed by a read to the same set.
    pub rr: f64,
    /// Read followed by a write to the same set.
    pub rw: f64,
    /// Write followed by a read to the same set.
    pub wr: f64,
    /// Write followed by a write to the same set — the scenario Write
    /// Grouping exploits.
    pub ww: f64,
}

impl PairLocality {
    /// Total same-set fraction (the paper's 27 % average).
    pub fn total(&self) -> f64 {
        self.rr + self.rw + self.wr + self.ww
    }
}

/// The parameters of one synthetic benchmark.
///
/// Each field maps to a statistic the paper reports (see the field docs);
/// [`profiles::spec2006`](crate::profiles::spec2006) carries one calibrated
/// instance per SPEC CPU2006 benchmark the paper ran.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Benchmark name (e.g. `"bwaves"`).
    pub name: String,
    /// Fraction of executed instructions that are memory operations
    /// (Figure 3: the paper's average is 40 % — 26 % reads + 14 % writes).
    pub mem_per_instr: f64,
    /// Fraction of memory operations that are reads.
    pub read_share: f64,
    /// Same-set consecutive-pair targets (Figure 4).
    pub locality: PairLocality,
    /// Fraction of writes that store the value already present (Figure 5;
    /// paper average >42 %, bwaves 77 %).
    pub silent_fraction: f64,
    /// Working-set size in cache blocks; controls the miss rate.
    pub working_set_blocks: u64,
    /// Zipf exponent of block popularity within the working set; controls
    /// long-range reuse.
    pub zipf_exponent: f64,
    /// Probability that a write (not already a same-set continuation)
    /// returns to the most recently *written* set — long-range write
    /// clustering (store bursts to a structure with loads interleaved).
    /// Applied only when the previous request was to a different set, so
    /// the Figure-4 adjacent-pair statistics are unaffected.
    pub write_revisit: f64,
    /// Probability that a read (not already a same-set continuation)
    /// targets the most recently written block — load-after-store reuse.
    /// Guarded the same way as `write_revisit`.
    pub read_after_write: f64,
    /// Burstiness of silent writes in `[0, 1)`: 0 makes every write's
    /// silence an independent coin flip; higher values make silence sticky
    /// (a silent write tends to be followed by more silent writes, as in
    /// real streams where a whole structure is re-stored unchanged). The
    /// *marginal* silent fraction — what Figure 5 measures — is preserved
    /// exactly; only the run-length distribution changes.
    pub silent_correlation: f64,
    /// Spatial adjacency of long-range revisits in `[0, 1]`: the fraction
    /// of `write_revisit` / `read_after_write` targets redirected to the
    /// *buddy* block (the 32 B neighbour completing a 64 B-aligned pair).
    /// This is the spatial locality that makes larger cache blocks raise
    /// the Set-Buffer hit rate — the mechanism behind the paper's Figure
    /// 10 (reductions grow from 27 %/33 % to 29 %/37 % at 64 B blocks).
    pub spatial_adjacency: f64,
}

/// A profile whose statistics are mutually inconsistent.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProfileError {
    /// A probability-like field was outside `[0, 1]`.
    OutOfRange {
        /// The offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The requested pair-locality targets cannot be realized together with
    /// the requested read share by any first-order Markov chain.
    InfeasibleLocality {
        /// Human-readable explanation of the violated bound.
        detail: String,
    },
    /// The working set was empty.
    EmptyWorkingSet,
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::OutOfRange { field, value } => {
                write!(f, "profile field `{field}` must be in [0, 1], got {value}")
            }
            ProfileError::InfeasibleLocality { detail } => {
                write!(f, "pair-locality targets are infeasible: {detail}")
            }
            ProfileError::EmptyWorkingSet => {
                f.write_str("working set must contain at least one block")
            }
        }
    }
}

impl Error for ProfileError {}

/// The derived first-order Markov chain over (kind, same-set) that realizes
/// a profile's targets.
///
/// Writing `pR = read_share`, the chain fixes the kind-transition matrix
/// via a single parameter `a = P(read | prev read)`; stationarity then
/// forces `b = P(read | prev write) = pR (1 - a) / pW`. The same-set
/// probability for each ordered pair is the target pair fraction divided by
/// that pair's occurrence rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct KindChain {
    /// P(next is read | prev read).
    pub a: f64,
    /// P(next is read | prev write).
    pub b: f64,
    /// p_same[prev][next], indexed 0 = read, 1 = write.
    pub p_same: [[f64; 2]; 2],
}

impl WorkloadProfile {
    /// Validates the profile and derives its Markov chain.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError`] if any statistic is out of range or the
    /// locality targets are jointly unrealizable.
    pub fn validate(&self) -> Result<(), ProfileError> {
        self.kind_chain().map(|_| ())
    }

    fn check_unit(value: f64, field: &'static str) -> Result<(), ProfileError> {
        if !(0.0..=1.0).contains(&value) || value.is_nan() {
            return Err(ProfileError::OutOfRange { field, value });
        }
        Ok(())
    }

    pub(crate) fn kind_chain(&self) -> Result<KindChain, ProfileError> {
        Self::check_unit(self.mem_per_instr, "mem_per_instr")?;
        if self.mem_per_instr == 0.0 {
            return Err(ProfileError::OutOfRange {
                field: "mem_per_instr",
                value: 0.0,
            });
        }
        Self::check_unit(self.read_share, "read_share")?;
        Self::check_unit(self.silent_fraction, "silent_fraction")?;
        Self::check_unit(self.locality.rr, "locality.rr")?;
        Self::check_unit(self.locality.rw, "locality.rw")?;
        Self::check_unit(self.locality.wr, "locality.wr")?;
        Self::check_unit(self.locality.ww, "locality.ww")?;
        Self::check_unit(self.locality.total(), "locality.total")?;
        if self.working_set_blocks == 0 {
            return Err(ProfileError::EmptyWorkingSet);
        }
        Self::check_unit(self.write_revisit, "write_revisit")?;
        Self::check_unit(self.read_after_write, "read_after_write")?;
        if !(0.0..1.0).contains(&self.silent_correlation) || self.silent_correlation.is_nan() {
            return Err(ProfileError::OutOfRange {
                field: "silent_correlation",
                value: self.silent_correlation,
            });
        }
        Self::check_unit(self.spatial_adjacency, "spatial_adjacency")?;
        if !self.zipf_exponent.is_finite() || self.zipf_exponent < 0.0 {
            return Err(ProfileError::OutOfRange {
                field: "zipf_exponent",
                value: self.zipf_exponent,
            });
        }

        let p_r = self.read_share;
        let p_w = 1.0 - p_r;
        let loc = &self.locality;
        if p_r == 0.0 && (loc.rr > 0.0 || loc.rw > 0.0 || loc.wr > 0.0) {
            return Err(ProfileError::InfeasibleLocality {
                detail: "read-involving pairs requested with zero reads".to_string(),
            });
        }
        if p_w == 0.0 && (loc.ww > 0.0 || loc.rw > 0.0 || loc.wr > 0.0) {
            return Err(ProfileError::InfeasibleLocality {
                detail: "write-involving pairs requested with zero writes".to_string(),
            });
        }

        // Feasible interval for a = P(R | prev R):
        //   pair RR needs rate pR * a       >= rr  ->  a >= rr / pR
        //   pair RW needs rate pR * (1 - a) >= rw  ->  a <= 1 - rw / pR
        //   pair WR needs rate pW * b = pR (1-a)   >= wr  ->  a <= 1 - wr / pR
        //   pair WW needs rate pW * (1 - b)        >= ww
        //     with b = pR (1 - a) / pW this is pW - pR (1-a) >= ww
        //     ->  a >= 1 - (pW - ww) / pR
        let mut lo: f64 = 0.0;
        let mut hi: f64 = 1.0;
        if p_r > 0.0 {
            lo = lo.max(loc.rr / p_r);
            hi = hi.min(1.0 - loc.rw / p_r);
            hi = hi.min(1.0 - loc.wr / p_r);
            lo = lo.max(1.0 - (p_w - loc.ww) / p_r);
        } else if loc.ww > p_w {
            return Err(ProfileError::InfeasibleLocality {
                detail: format!("ww target {} exceeds write share {p_w}", loc.ww),
            });
        }
        if lo > hi + 1e-12 {
            return Err(ProfileError::InfeasibleLocality {
                detail: format!(
                    "no P(read|read) satisfies all pair targets (need a in [{lo:.4}, {hi:.4}])"
                ),
            });
        }
        // Midpoint of the feasible interval: balances read/write run
        // lengths subject to the constraints.
        let a = f64::midpoint(lo.min(hi), hi);
        let b = if p_w > 0.0 {
            (p_r * (1.0 - a) / p_w).min(1.0)
        } else {
            1.0
        };

        let rate_rr = p_r * a;
        let rate_rw = p_r * (1.0 - a);
        let rate_wr = p_w * b;
        let rate_ww = p_w * (1.0 - b);
        let cond = |target: f64, rate: f64| -> f64 {
            if rate <= 1e-15 {
                0.0
            } else {
                (target / rate).min(1.0)
            }
        };
        Ok(KindChain {
            a,
            b,
            p_same: [
                [cond(loc.rr, rate_rr), cond(loc.rw, rate_rw)],
                [cond(loc.wr, rate_wr), cond(loc.ww, rate_ww)],
            ],
        })
    }

    /// A stable 64-bit fingerprint over every generation-relevant field
    /// (FNV-1a over the name bytes and the raw bit patterns of the
    /// numeric fields).
    ///
    /// Two profiles with equal fingerprints generate identical traces
    /// for any (seed, length); profiles that differ in *any* parameter —
    /// including ad-hoc sweep variants that share a `name` — get
    /// distinct fingerprints. Used by the execution engine's trace store
    /// to key its generate-once cache.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(PRIME);
            }
        };
        eat(self.name.as_bytes());
        for f in [
            self.mem_per_instr,
            self.read_share,
            self.locality.rr,
            self.locality.rw,
            self.locality.wr,
            self.locality.ww,
            self.silent_fraction,
            self.zipf_exponent,
            self.write_revisit,
            self.read_after_write,
            self.silent_correlation,
            self.spatial_adjacency,
        ] {
            eat(&f.to_bits().to_le_bytes());
        }
        eat(&self.working_set_blocks.to_le_bytes());
        hash
    }

    /// Expected reads per instruction (the Figure 3 read bar).
    pub fn reads_per_instr(&self) -> f64 {
        self.mem_per_instr * self.read_share
    }

    /// Expected writes per instruction (the Figure 3 write bar).
    pub fn writes_per_instr(&self) -> f64 {
        self.mem_per_instr * (1.0 - self.read_share)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> WorkloadProfile {
        WorkloadProfile {
            name: "test".to_string(),
            mem_per_instr: 0.4,
            read_share: 0.65,
            locality: PairLocality {
                rr: 0.10,
                rw: 0.04,
                wr: 0.04,
                ww: 0.09,
            },
            silent_fraction: 0.42,
            working_set_blocks: 4096,
            zipf_exponent: 0.8,
            write_revisit: 0.2,
            read_after_write: 0.1,
            silent_correlation: 0.5,
            spatial_adjacency: 0.3,
        }
    }

    #[test]
    fn typical_profile_is_feasible() {
        let chain = base().kind_chain().unwrap();
        assert!(chain.a > 0.0 && chain.a < 1.0);
        assert!(chain.b > 0.0 && chain.b <= 1.0);
        for row in chain.p_same {
            for p in row {
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn chain_realizes_pair_rates() {
        let p = base();
        let chain = p.kind_chain().unwrap();
        let p_r = p.read_share;
        let p_w = 1.0 - p_r;
        // Realized pair rate = occurrence rate x conditional same-set prob.
        let rr = p_r * chain.a * chain.p_same[0][0];
        let rw = p_r * (1.0 - chain.a) * chain.p_same[0][1];
        let wr = p_w * chain.b * chain.p_same[1][0];
        let ww = p_w * (1.0 - chain.b) * chain.p_same[1][1];
        assert!((rr - p.locality.rr).abs() < 1e-9);
        assert!((rw - p.locality.rw).abs() < 1e-9);
        assert!((wr - p.locality.wr).abs() < 1e-9);
        assert!((ww - p.locality.ww).abs() < 1e-9);
    }

    #[test]
    fn chain_preserves_stationary_read_share() {
        let p = base();
        let chain = p.kind_chain().unwrap();
        // pi_R = pi_R a + pi_W b must hold.
        let lhs = p.read_share;
        let rhs = p.read_share * chain.a + (1.0 - p.read_share) * chain.b;
        assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn bwaves_like_heavy_ww_is_feasible() {
        let mut p = base();
        p.read_share = 0.54;
        p.locality = PairLocality {
            rr: 0.08,
            rw: 0.05,
            wr: 0.05,
            ww: 0.24,
        };
        let chain = p.kind_chain().unwrap();
        let p_w = 1.0 - p.read_share;
        let ww = p_w * (1.0 - chain.b) * chain.p_same[1][1];
        assert!((ww - 0.24).abs() < 1e-9, "got ww rate {ww}");
    }

    #[test]
    fn impossible_ww_is_rejected() {
        let mut p = base();
        p.read_share = 0.9; // writes are 10% of ops...
        p.locality.ww = 0.2; // ...but 20% of pairs should be same-set WW
        assert!(matches!(
            p.kind_chain(),
            Err(ProfileError::InfeasibleLocality { .. })
        ));
    }

    #[test]
    fn out_of_range_fields_are_rejected() {
        let mut p = base();
        p.silent_fraction = 1.5;
        assert!(matches!(
            p.validate(),
            Err(ProfileError::OutOfRange {
                field: "silent_fraction",
                ..
            })
        ));
        let mut p = base();
        p.mem_per_instr = 0.0;
        assert!(p.validate().is_err());
        let mut p = base();
        p.working_set_blocks = 0;
        assert!(matches!(p.validate(), Err(ProfileError::EmptyWorkingSet)));
        let mut p = base();
        p.zipf_exponent = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn fingerprint_separates_parameter_tweaks() {
        let p = base();
        assert_eq!(p.fingerprint(), base().fingerprint(), "deterministic");
        let mut q = base();
        q.silent_fraction += 1e-9;
        assert_ne!(p.fingerprint(), q.fingerprint(), "numeric field");
        let mut q = base();
        q.working_set_blocks += 1;
        assert_ne!(p.fingerprint(), q.fingerprint(), "integer field");
        let mut q = base();
        q.name = "other".to_string();
        assert_ne!(p.fingerprint(), q.fingerprint(), "name");
    }

    #[test]
    fn per_instruction_rates() {
        let p = base();
        assert!((p.reads_per_instr() - 0.26).abs() < 1e-12);
        assert!((p.writes_per_instr() - 0.14).abs() < 1e-12);
    }

    #[test]
    fn locality_total_sums_components() {
        let l = base().locality;
        assert!((l.total() - 0.27).abs() < 1e-12);
    }

    #[test]
    fn error_display_mentions_field() {
        let e = ProfileError::OutOfRange {
            field: "read_share",
            value: 2.0,
        };
        assert!(e.to_string().contains("read_share"));
        let e = ProfileError::EmptyWorkingSet;
        assert!(!e.to_string().is_empty());
    }
}
