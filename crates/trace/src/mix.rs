//! Multiprogrammed workload mixes.
//!
//! The paper evaluates single benchmarks, but an L1 data cache lives under
//! context switches: every switch moves the request stream to another
//! address space, breaking the consecutive-access locality WG feeds on.
//! [`MultiprogramMix`] interleaves several generators round-robin with a
//! configurable quantum so that sensitivity can be measured
//! (`ext_context_switch` in `cache8t-bench`).

use std::fmt;

use cache8t_sim::Address;

use crate::{MemOp, TraceGenerator};

/// Round-robin interleaving of several request streams with per-stream
/// address-space offsets.
///
/// Each constituent generator runs for `quantum` operations, then the next
/// takes over (a context switch). Every stream's addresses are displaced
/// by a distinct, large offset so the programs do not share data — the
/// realistic worst case for buffer locality.
///
/// # Example
///
/// ```
/// use cache8t_trace::{MultiprogramMix, TraceGenerator, UniformRandom};
///
/// let a = UniformRandom::new(1 << 16, 0.3, 1);
/// let b = UniformRandom::new(1 << 16, 0.3, 2);
/// let mut mix = MultiprogramMix::new(vec![Box::new(a), Box::new(b)], 100);
/// let trace = mix.collect(1000);
/// assert_eq!(trace.len(), 1000);
/// ```
pub struct MultiprogramMix {
    streams: Vec<Box<dyn TraceGenerator>>,
    quantum: usize,
    current: usize,
    issued_in_quantum: usize,
    /// Address-space stride between programs.
    space_stride: u64,
    switches: u64,
}

impl MultiprogramMix {
    /// Creates a mix over `streams`, switching every `quantum` operations.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is empty or `quantum == 0`.
    pub fn new(streams: Vec<Box<dyn TraceGenerator>>, quantum: usize) -> Self {
        assert!(!streams.is_empty(), "a mix needs at least one stream");
        assert!(quantum > 0, "the scheduling quantum must be positive");
        MultiprogramMix {
            streams,
            quantum,
            current: 0,
            issued_in_quantum: 0,
            // 1 TiB apart: far beyond any profile's working set.
            space_stride: 1 << 40,
            switches: 0,
        }
    }

    /// Number of constituent streams.
    pub fn programs(&self) -> usize {
        self.streams.len()
    }

    /// Context switches performed so far.
    pub fn context_switches(&self) -> u64 {
        self.switches
    }
}

impl TraceGenerator for MultiprogramMix {
    fn next_op(&mut self) -> MemOp {
        if self.issued_in_quantum == self.quantum {
            self.issued_in_quantum = 0;
            self.current = (self.current + 1) % self.streams.len();
            self.switches += 1;
        }
        self.issued_in_quantum += 1;
        let offset = self.current as u64 * self.space_stride;
        let op = self.streams[self.current].next_op();
        MemOp {
            addr: Address::new(op.addr.raw().wrapping_add(offset)),
            ..op
        }
    }

    fn instructions_retired(&self) -> u64 {
        self.streams.iter().map(|s| s.instructions_retired()).sum()
    }
}

impl fmt::Debug for MultiprogramMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MultiprogramMix")
            .field("programs", &self.streams.len())
            .field("quantum", &self.quantum)
            .field("switches", &self.switches)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UniformRandom;

    fn mix(quantum: usize) -> MultiprogramMix {
        MultiprogramMix::new(
            vec![
                Box::new(UniformRandom::new(4096, 0.5, 1)),
                Box::new(UniformRandom::new(4096, 0.5, 2)),
            ],
            quantum,
        )
    }

    #[test]
    fn quantum_governs_switching() {
        let mut m = mix(3);
        // 3 ops from program 0, then 3 from program 1 (offset by 1 TiB)...
        let spaces: Vec<u64> = (0..12).map(|_| m.next_op().addr.raw() >> 40).collect();
        assert_eq!(spaces, vec![0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1]);
        assert_eq!(m.context_switches(), 3);
        assert_eq!(m.programs(), 2);
    }

    #[test]
    fn address_spaces_do_not_overlap() {
        let mut m = mix(5);
        for _ in 0..200 {
            let op = m.next_op();
            let space = op.addr.raw() >> 40;
            assert!(space < 2);
            assert!(op.addr.raw() & ((1 << 40) - 1) < 4096);
        }
    }

    #[test]
    fn instructions_accumulate_across_programs() {
        let mut m = mix(4);
        let t = m.collect(100);
        assert_eq!(t.len(), 100);
        assert_eq!(t.instructions(), 100, "uniform generators are 1 op/instr");
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn empty_mix_rejected() {
        let _ = MultiprogramMix::new(Vec::new(), 10);
    }

    #[test]
    #[should_panic(expected = "quantum must be positive")]
    fn zero_quantum_rejected() {
        let _ = mix(0);
    }
}
