//! Pre-decoded op batches for the batched replay kernels.
//!
//! Per-op replay decomposes every address three times (probe, read/write,
//! touch) inside branchy controller code. [`DecodedBatch`] hoists the
//! address math out of the per-op loop entirely: one tight pass over a
//! chunk of [`MemOp`]s computes the set index, tag, and word offset for
//! every op into structure-of-arrays columns — a loop of shifts and masks
//! with no branches, which LLVM autovectorizes. Controllers then consume
//! the batch through their `access_batch` fast paths, reading the decoded
//! columns instead of re-deriving them.
//!
//! The batch also keeps the raw address and value columns, so
//! [`op`](DecodedBatch::op) reconstructs the original [`MemOp`]
//! bit-for-bit — events that embed `addr.raw()` (RMW burst records, WG
//! bypass events) stay byte-identical between the per-op and batched
//! paths.

use cache8t_sim::{AccessKind, Address, CacheGeometry};

use crate::MemOp;

/// A chunk of ops with their address decomposition precomputed against
/// one [`CacheGeometry`], stored as structure-of-arrays columns.
///
/// The buffers are reused across [`decode`](Self::decode) calls, so a
/// replay loop holds one `DecodedBatch` and re-fills it per chunk with
/// no steady-state allocation.
#[derive(Debug, Clone)]
pub struct DecodedBatch {
    geometry: CacheGeometry,
    /// Raw byte address of each op (exact, for `MemOp` reconstruction).
    addr: Vec<u64>,
    /// Stored value for writes; 0 for reads.
    value: Vec<u64>,
    /// `geometry.set_index_of(addr)`.
    set: Vec<u64>,
    /// `geometry.tag_of(addr)`.
    tag: Vec<u64>,
    /// `geometry.word_offset_of(addr)`.
    word: Vec<u32>,
    /// `true` for writes.
    write: Vec<bool>,
}

impl DecodedBatch {
    /// Creates an empty batch that decodes against `geometry`.
    pub fn new(geometry: CacheGeometry) -> Self {
        DecodedBatch {
            geometry,
            addr: Vec::new(),
            value: Vec::new(),
            set: Vec::new(),
            tag: Vec::new(),
            word: Vec::new(),
            write: Vec::new(),
        }
    }

    /// The geometry the batch decodes against.
    #[inline]
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Replaces the batch contents with the decomposition of `ops`.
    ///
    /// Column-major: six tight `extend` loops, each a branch-free stream
    /// of shifts and masks with an exact-size iterator — no per-element
    /// capacity or bounds checks, which is what lets LLVM autovectorize
    /// the passes. The op slice itself is walked only three times (addr,
    /// value, kind); the set/tag/word columns derive from the freshly
    /// written addr column, a pure 8-byte-per-element `u64` stream.
    /// Buffers are cleared and refilled in place.
    pub fn decode(&mut self, ops: &[MemOp]) {
        let g = self.geometry;
        self.addr.clear();
        self.value.clear();
        self.set.clear();
        self.tag.clear();
        self.word.clear();
        self.write.clear();
        self.addr.extend(ops.iter().map(|op| op.addr.raw()));
        self.value.extend(ops.iter().map(|op| op.value));
        self.write.extend(ops.iter().map(|op| op.is_write()));
        let addr = &self.addr;
        self.set
            .extend(addr.iter().map(|&a| g.set_index_of(Address::new(a))));
        self.tag
            .extend(addr.iter().map(|&a| g.tag_of(Address::new(a))));
        self.word.extend(
            addr.iter()
                .map(|&a| g.word_offset_of(Address::new(a)) as u32),
        );
    }

    /// Number of decoded ops.
    #[inline]
    pub fn len(&self) -> usize {
        self.addr.len()
    }

    /// `true` if the batch holds no ops.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.addr.is_empty()
    }

    /// Raw byte address of op `i`.
    #[inline]
    pub fn addr(&self, i: usize) -> Address {
        Address::new(self.addr[i])
    }

    /// Stored value of op `i` (0 for reads).
    #[inline]
    pub fn value(&self, i: usize) -> u64 {
        self.value[i]
    }

    /// Pre-decoded set index of op `i`.
    #[inline]
    pub fn set(&self, i: usize) -> u64 {
        self.set[i]
    }

    /// Pre-decoded tag of op `i`.
    #[inline]
    pub fn tag(&self, i: usize) -> u64 {
        self.tag[i]
    }

    /// Pre-decoded word offset (in 64-bit words within the block) of op
    /// `i`.
    #[inline]
    pub fn word(&self, i: usize) -> usize {
        self.word[i] as usize
    }

    /// `true` if op `i` is a write.
    #[inline]
    pub fn is_write(&self, i: usize) -> bool {
        self.write[i]
    }

    /// Reconstructs op `i` exactly as it appeared in the source slice.
    #[inline]
    pub fn op(&self, i: usize) -> MemOp {
        MemOp {
            kind: if self.write[i] {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
            addr: Address::new(self.addr[i]),
            value: self.value[i],
        }
    }

    /// Iterates ops `range` as [`DecodedOp`]s.
    ///
    /// The zipped column slices are bounds-checked once at the slicing,
    /// so the consuming loop compiles to a single induction variable
    /// over six parallel streams — this is the form the controllers'
    /// `access_batch` fast paths drain.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds.
    #[inline]
    pub fn run(&self, range: std::ops::Range<usize>) -> impl Iterator<Item = DecodedOp> + '_ {
        let addr = &self.addr[range.clone()];
        let value = &self.value[range.clone()];
        let set = &self.set[range.clone()];
        let tag = &self.tag[range.clone()];
        let word = &self.word[range.clone()];
        let write = &self.write[range];
        addr.iter()
            .zip(value)
            .zip(set)
            .zip(tag)
            .zip(word)
            .zip(write)
            .map(
                |(((((&addr, &value), &set), &tag), &word), &write)| DecodedOp {
                    addr: Address::new(addr),
                    value,
                    write,
                    set,
                    tag,
                    word: word as usize,
                },
            )
    }
}

/// One op with its address decomposition, as the controllers' batched
/// fast paths consume it — either read out of a [`DecodedBatch`] column
/// run or built inline by the per-op `access` paths. Carries the exact
/// raw address, so events and burst records that embed `addr.raw()`
/// are identical either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedOp {
    /// Exact byte address of the request.
    pub addr: Address,
    /// Stored value for writes; 0 for reads.
    pub value: u64,
    /// `true` for writes.
    pub write: bool,
    /// Set index of `addr`.
    pub set: u64,
    /// Tag of `addr`.
    pub tag: u64,
    /// Word offset of `addr` within its block.
    pub word: usize,
}

impl DecodedOp {
    /// Decomposes `op` against `geometry` — the inline decode the
    /// per-op `access` paths perform.
    #[inline]
    pub fn from_op(op: &MemOp, geometry: &CacheGeometry) -> Self {
        DecodedOp {
            addr: op.addr,
            value: op.value,
            write: op.is_write(),
            set: geometry.set_index_of(op.addr),
            tag: geometry.tag_of(op.addr),
            word: geometry.word_offset_of(op.addr),
        }
    }

    /// `true` if this is a read.
    #[inline]
    pub fn is_read(&self) -> bool {
        !self.write
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{profiles, ProfiledGenerator, TraceGenerator};
    use proptest::prelude::*;

    #[test]
    fn decode_matches_geometry_accessors_on_a_real_trace() {
        let g = CacheGeometry::paper_baseline();
        let profile = profiles::by_name("gcc").expect("gcc profile");
        let trace = ProfiledGenerator::new(profile, g, 99).collect(5_000);
        let mut batch = DecodedBatch::new(g);
        batch.decode(trace.ops());
        assert_eq!(batch.len(), trace.len());
        for (i, op) in trace.iter().enumerate() {
            assert_eq!(batch.set(i), g.set_index_of(op.addr));
            assert_eq!(batch.tag(i), g.tag_of(op.addr));
            assert_eq!(batch.word(i), g.word_offset_of(op.addr));
            assert_eq!(batch.is_write(i), op.is_write());
            assert_eq!(batch.op(i), *op);
        }
    }

    #[test]
    fn run_yields_decoded_ops_matching_accessors() {
        let g = CacheGeometry::paper_baseline();
        let profile = profiles::by_name("gcc").expect("gcc profile");
        let trace = ProfiledGenerator::new(profile, g, 7).collect(2_000);
        let mut batch = DecodedBatch::new(g);
        batch.decode(trace.ops());
        let mut count = 0usize;
        for (i, d) in (500..1_500).zip(batch.run(500..1_500)) {
            assert_eq!(d.addr, batch.addr(i));
            assert_eq!(d.value, batch.value(i));
            assert_eq!(d.write, batch.is_write(i));
            assert_eq!(d.set, batch.set(i));
            assert_eq!(d.tag, batch.tag(i));
            assert_eq!(d.word, batch.word(i));
            assert_eq!(d, DecodedOp::from_op(&batch.op(i), &g));
            assert_eq!(d.is_read(), !d.write);
            count += 1;
        }
        assert_eq!(count, 1_000);
    }

    #[test]
    fn decode_reuses_buffers_across_chunks() {
        let g = CacheGeometry::paper_baseline();
        let ops: Vec<MemOp> = (0..1024u64)
            .map(|i| MemOp::read(Address::new(i * 64)))
            .collect();
        let mut batch = DecodedBatch::new(g);
        batch.decode(&ops);
        let cap = batch.addr.capacity();
        batch.decode(&ops[..512]);
        assert_eq!(batch.len(), 512);
        assert_eq!(batch.addr.capacity(), cap, "buffers must be reused");
    }

    proptest! {
        /// Round-trip: for random geometries and raw addresses, the
        /// decoded (set, tag, word) triple reassembles into the aligned
        /// word address, and `op(i)` reproduces the source op exactly.
        #[test]
        fn address_roundtrips_through_decode(
            capacity_log2 in 7u32..22,
            ways_log2 in 0u32..4,
            block_log2 in 3u32..8,
            raws in prop::collection::vec(any::<u64>(), 1..64),
            writes in prop::collection::vec(any::<bool>(), 64),
            values in prop::collection::vec(any::<u64>(), 64),
        ) {
            let capacity = 1u64 << capacity_log2;
            let ways = 1u64 << ways_log2;
            let block = 1u64 << block_log2;
            prop_assume!(capacity >= ways * block);
            let g = CacheGeometry::new(capacity, ways, block).unwrap();
            // Keep tags representable: geometry shifts the raw address
            // right by offset+index bits, so any u64 raw is fine.
            let ops: Vec<MemOp> = raws
                .iter()
                .enumerate()
                .map(|(i, &raw)| {
                    let addr = Address::new(raw);
                    if writes[i] {
                        MemOp::write(addr, values[i])
                    } else {
                        MemOp::read(addr)
                    }
                })
                .collect();
            let mut batch = DecodedBatch::new(g);
            batch.decode(&ops);
            prop_assert_eq!(batch.len(), ops.len());
            for (i, op) in ops.iter().enumerate() {
                // Columns agree with the geometry's own decomposition.
                prop_assert_eq!(batch.set(i), g.set_index_of(op.addr));
                prop_assert_eq!(batch.tag(i), g.tag_of(op.addr));
                prop_assert_eq!(batch.word(i), g.word_offset_of(op.addr));
                // (set, tag, word) reassembles into the aligned word
                // address: block base from parts plus the word offset in
                // bytes equals the op address rounded down to a word.
                let rebuilt = g
                    .block_base_from_parts(batch.tag(i), batch.set(i))
                    .raw()
                    + (batch.word(i) as u64) * 8;
                prop_assert_eq!(rebuilt, op.addr.raw() & !7);
                // Exact MemOp reconstruction (raw address bits included).
                prop_assert_eq!(batch.op(i), *op);
            }
        }
    }
}
