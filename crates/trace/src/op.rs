//! Memory operations and traces.

use std::fmt;

use serde::{Deserialize, Serialize};

use cache8t_sim::{AccessKind, Address};

/// One memory request issued by the (modelled) processor to the L1 data
/// cache.
///
/// Writes carry the 64-bit value being stored — needed because silent-write
/// detection (paper §4.1) compares the stored value with the incoming one.
/// Reads carry no payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemOp {
    /// Read or write.
    pub kind: AccessKind,
    /// The byte address accessed (the simulator operates on the containing
    /// aligned 64-bit word).
    pub addr: Address,
    /// The value stored, for writes; 0 for reads.
    pub value: u64,
}

impl MemOp {
    /// A read of `addr`.
    #[inline]
    pub const fn read(addr: Address) -> Self {
        MemOp {
            kind: AccessKind::Read,
            addr,
            value: 0,
        }
    }

    /// A write of `value` to `addr`.
    #[inline]
    pub const fn write(addr: Address, value: u64) -> Self {
        MemOp {
            kind: AccessKind::Write,
            addr,
            value,
        }
    }

    /// `true` for reads.
    #[inline]
    pub const fn is_read(&self) -> bool {
        self.kind.is_read()
    }

    /// `true` for writes.
    #[inline]
    pub const fn is_write(&self) -> bool {
        self.kind.is_write()
    }
}

impl fmt::Display for MemOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            AccessKind::Read => write!(f, "R {}", self.addr),
            AccessKind::Write => write!(f, "W {} <- {:#x}", self.addr, self.value),
        }
    }
}

/// A finite request stream plus the number of instructions it represents.
///
/// The instruction count is carried alongside the operations because the
/// paper's Figure 3 reports memory accesses *per executed instruction*; the
/// generators interleave non-memory instructions according to each
/// workload's memory-operation density.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    ops: Vec<MemOp>,
    instructions: u64,
}

impl Trace {
    /// Creates a trace from operations and the instruction count they
    /// represent.
    ///
    /// # Panics
    ///
    /// Panics if `instructions < ops.len()` (every memory operation is at
    /// least one instruction).
    pub fn new(ops: Vec<MemOp>, instructions: u64) -> Self {
        assert!(
            instructions >= ops.len() as u64,
            "a trace of {} ops cannot represent only {instructions} instructions",
            ops.len()
        );
        Trace { ops, instructions }
    }

    /// The operations, in program order.
    #[inline]
    pub fn ops(&self) -> &[MemOp] {
        &self.ops
    }

    /// Number of operations.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the trace has no operations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total instructions (memory and non-memory) represented.
    #[inline]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Iterates over the operations.
    pub fn iter(&self) -> std::slice::Iter<'_, MemOp> {
        self.ops.iter()
    }

    /// Number of read operations.
    pub fn reads(&self) -> usize {
        self.ops.iter().filter(|op| op.is_read()).count()
    }

    /// Number of write operations.
    pub fn writes(&self) -> usize {
        self.ops.iter().filter(|op| op.is_write()).count()
    }

    /// Splits off the first `n` operations as a warm-up trace, pro-rating
    /// the instruction count; the remainder keeps the rest.
    ///
    /// Mirrors the paper's methodology of fast-forwarding 1 B instructions
    /// to warm the cache before measuring (§5.1).
    pub fn split_warmup(mut self, n: usize) -> (Trace, Trace) {
        let n = n.min(self.ops.len());
        let rest = self.ops.split_off(n);
        let rest_len = rest.len();
        let total = self.ops.len() + rest_len;
        let warm_instr = if total == 0 {
            0
        } else {
            (self.instructions as u128 * self.ops.len() as u128 / total as u128) as u64
        };
        let rest_instr = self.instructions - warm_instr;
        (
            Trace::new(self.ops, warm_instr.max(n as u64)),
            Trace::new(rest, rest_instr.max(rest_len as u64)),
        )
    }

    /// Borrowing counterpart of [`split_warmup`](Self::split_warmup):
    /// the measured region (everything after the first `n` warm-up ops)
    /// and its pro-rated instruction count, computed without moving or
    /// cloning the trace. The instruction arithmetic is identical to
    /// `split_warmup`'s remainder half.
    pub fn measured_region(&self, n: usize) -> (&[MemOp], u64) {
        let n = n.min(self.ops.len());
        let rest = &self.ops[n..];
        let total = self.ops.len();
        let warm_instr = if total == 0 {
            0
        } else {
            (self.instructions as u128 * n as u128 / total as u128) as u64
        };
        let rest_instr = (self.instructions - warm_instr).max(rest.len() as u64);
        (rest, rest_instr)
    }
}

impl IntoIterator for Trace {
    type Item = MemOp;
    type IntoIter = std::vec::IntoIter<MemOp>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a MemOp;
    type IntoIter = std::slice::Iter<'a, MemOp>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

impl FromIterator<MemOp> for Trace {
    /// Collects operations into a trace that represents exactly one
    /// instruction per operation (no interleaved non-memory instructions).
    fn from_iter<I: IntoIterator<Item = MemOp>>(iter: I) -> Self {
        let ops: Vec<MemOp> = iter.into_iter().collect();
        let instructions = ops.len() as u64;
        Trace { ops, instructions }
    }
}

impl Extend<MemOp> for Trace {
    fn extend<I: IntoIterator<Item = MemOp>>(&mut self, iter: I) {
        for op in iter {
            self.ops.push(op);
            self.instructions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_constructors() {
        let r = MemOp::read(Address::new(8));
        assert!(r.is_read());
        assert!(!r.is_write());
        assert_eq!(r.value, 0);
        let w = MemOp::write(Address::new(16), 7);
        assert!(w.is_write());
        assert_eq!(w.value, 7);
    }

    #[test]
    fn op_display() {
        assert_eq!(MemOp::read(Address::new(0x10)).to_string(), "R 0x10");
        assert_eq!(
            MemOp::write(Address::new(0x10), 255).to_string(),
            "W 0x10 <- 0xff"
        );
    }

    #[test]
    fn trace_counts() {
        let t = Trace::new(
            vec![
                MemOp::read(Address::new(0)),
                MemOp::write(Address::new(8), 1),
                MemOp::read(Address::new(16)),
            ],
            10,
        );
        assert_eq!(t.len(), 3);
        assert_eq!(t.reads(), 2);
        assert_eq!(t.writes(), 1);
        assert_eq!(t.instructions(), 10);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot represent")]
    fn trace_rejects_too_few_instructions() {
        let _ = Trace::new(vec![MemOp::read(Address::new(0)); 5], 3);
    }

    #[test]
    fn split_warmup_partitions_ops_and_instructions() {
        let ops: Vec<MemOp> = (0..10).map(|i| MemOp::read(Address::new(i * 8))).collect();
        let t = Trace::new(ops, 100);
        let (warm, rest) = t.split_warmup(4);
        assert_eq!(warm.len(), 4);
        assert_eq!(rest.len(), 6);
        assert_eq!(warm.instructions() + rest.instructions(), 100);
        assert_eq!(warm.instructions(), 40);
    }

    #[test]
    fn split_warmup_handles_oversized_n() {
        let t: Trace = (0..3).map(|i| MemOp::read(Address::new(i * 8))).collect();
        let (warm, rest) = t.split_warmup(10);
        assert_eq!(warm.len(), 3);
        assert!(rest.is_empty());
    }

    #[test]
    fn collect_and_extend() {
        let mut t: Trace = (0..5).map(|i| MemOp::read(Address::new(i))).collect();
        assert_eq!(t.instructions(), 5);
        t.extend([MemOp::write(Address::new(64), 1)]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.instructions(), 6);
        let back: Vec<MemOp> = (&t).into_iter().copied().collect();
        assert_eq!(back.len(), 6);
        let owned: Vec<MemOp> = t.into_iter().collect();
        assert_eq!(owned.len(), 6);
    }
}
