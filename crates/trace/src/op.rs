//! Memory operations and traces.

use std::fmt;

use serde::{Deserialize, Serialize};

use cache8t_sim::{AccessKind, Address};

/// One memory request issued by the (modelled) processor to the L1 data
/// cache.
///
/// Writes carry the 64-bit value being stored — needed because silent-write
/// detection (paper §4.1) compares the stored value with the incoming one.
/// Reads carry no payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemOp {
    /// Read or write.
    pub kind: AccessKind,
    /// The byte address accessed (the simulator operates on the containing
    /// aligned 64-bit word).
    pub addr: Address,
    /// The value stored, for writes; 0 for reads.
    pub value: u64,
}

impl MemOp {
    /// A read of `addr`.
    #[inline]
    pub const fn read(addr: Address) -> Self {
        MemOp {
            kind: AccessKind::Read,
            addr,
            value: 0,
        }
    }

    /// A write of `value` to `addr`.
    #[inline]
    pub const fn write(addr: Address, value: u64) -> Self {
        MemOp {
            kind: AccessKind::Write,
            addr,
            value,
        }
    }

    /// `true` for reads.
    #[inline]
    pub const fn is_read(&self) -> bool {
        self.kind.is_read()
    }

    /// `true` for writes.
    #[inline]
    pub const fn is_write(&self) -> bool {
        self.kind.is_write()
    }
}

impl fmt::Display for MemOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            AccessKind::Read => write!(f, "R {}", self.addr),
            AccessKind::Write => write!(f, "W {} <- {:#x}", self.addr, self.value),
        }
    }
}

/// A finite request stream plus the number of instructions it represents.
///
/// The instruction count is carried alongside the operations because the
/// paper's Figure 3 reports memory accesses *per executed instruction*; the
/// generators interleave non-memory instructions according to each
/// workload's memory-operation density.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    ops: Vec<MemOp>,
    instructions: u64,
}

impl Trace {
    /// Creates a trace from operations and the instruction count they
    /// represent.
    ///
    /// # Panics
    ///
    /// Panics if `instructions < ops.len()` (every memory operation is at
    /// least one instruction).
    pub fn new(ops: Vec<MemOp>, instructions: u64) -> Self {
        assert!(
            instructions >= ops.len() as u64,
            "a trace of {} ops cannot represent only {instructions} instructions",
            ops.len()
        );
        Trace { ops, instructions }
    }

    /// The operations, in program order.
    #[inline]
    pub fn ops(&self) -> &[MemOp] {
        &self.ops
    }

    /// Number of operations.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the trace has no operations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total instructions (memory and non-memory) represented.
    #[inline]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Iterates over the operations.
    pub fn iter(&self) -> std::slice::Iter<'_, MemOp> {
        self.ops.iter()
    }

    /// Number of read operations.
    pub fn reads(&self) -> usize {
        self.ops.iter().filter(|op| op.is_read()).count()
    }

    /// Number of write operations.
    pub fn writes(&self) -> usize {
        self.ops.iter().filter(|op| op.is_write()).count()
    }

    /// Splits off the first `n` operations as a warm-up trace, pro-rating
    /// the instruction count; the remainder keeps the rest.
    ///
    /// Mirrors the paper's methodology of fast-forwarding 1 B instructions
    /// to warm the cache before measuring (§5.1).
    pub fn split_warmup(mut self, n: usize) -> (Trace, Trace) {
        let split = warmup_split(self.ops.len(), self.instructions, n);
        let rest = self.ops.split_off(split.warm_ops);
        (
            Trace::new(self.ops, split.warm_instructions),
            Trace::new(rest, split.measured_instructions),
        )
    }

    /// Borrowing counterpart of [`split_warmup`](Self::split_warmup):
    /// the measured region (everything after the first `n` warm-up ops)
    /// and its pro-rated instruction count, computed without moving or
    /// cloning the trace. The instruction arithmetic is identical to
    /// `split_warmup`'s remainder half because both delegate to
    /// [`warmup_split`].
    pub fn measured_region(&self, n: usize) -> (&[MemOp], u64) {
        let split = warmup_split(self.ops.len(), self.instructions, n);
        (&self.ops[split.warm_ops..], split.measured_instructions)
    }
}

/// The warm/measured partition of a trace: operation counts and pro-rated
/// instruction counts for both halves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmupSplit {
    /// Operations in the warm-up half (`n` clamped to the trace length).
    pub warm_ops: usize,
    /// Operations in the measured half.
    pub measured_ops: usize,
    /// Instructions pro-rated to the warm-up half.
    pub warm_instructions: u64,
    /// Instructions pro-rated to the measured half.
    pub measured_instructions: u64,
}

/// Partitions `instructions` over a warm-up prefix of `n` operations and the
/// measured remainder of a `len`-operation trace.
///
/// This is the single source of truth for warm/measured pro-rating:
/// [`Trace::split_warmup`] and [`Trace::measured_region`] both delegate here,
/// so they can never disagree on clamping or rounding. Invariants:
///
/// - `n` is clamped to `len` (an oversized warm-up consumes the whole trace);
/// - the two halves always sum exactly to `instructions`;
/// - when `instructions >= len` (the [`Trace::new`] invariant), each half's
///   instruction count covers at least one instruction per operation, so the
///   halves remain valid `Trace` payloads;
/// - degenerate inputs (`len == 0`, or `instructions < len` from a caller
///   bypassing `Trace`) saturate instead of underflowing.
pub fn warmup_split(len: usize, instructions: u64, n: usize) -> WarmupSplit {
    let warm_ops = n.min(len);
    let measured_ops = len - warm_ops;
    let warm_instructions = if len == 0 {
        0
    } else {
        let prorated = (instructions as u128 * warm_ops as u128 / len as u128) as u64;
        // With `instructions >= len` the floor pro-ration already yields
        // at least one instruction per warm op and leaves at least one per
        // measured op, so both clamps are no-ops; they only engage for
        // direct callers with undersized instruction counts.
        prorated
            .max(warm_ops as u64)
            .min(instructions.saturating_sub(measured_ops as u64))
    };
    WarmupSplit {
        warm_ops,
        measured_ops,
        warm_instructions,
        measured_instructions: instructions - warm_instructions,
    }
}

impl IntoIterator for Trace {
    type Item = MemOp;
    type IntoIter = std::vec::IntoIter<MemOp>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a MemOp;
    type IntoIter = std::slice::Iter<'a, MemOp>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

impl FromIterator<MemOp> for Trace {
    /// Collects operations into a trace that represents exactly one
    /// instruction per operation (no interleaved non-memory instructions).
    fn from_iter<I: IntoIterator<Item = MemOp>>(iter: I) -> Self {
        let ops: Vec<MemOp> = iter.into_iter().collect();
        let instructions = ops.len() as u64;
        Trace { ops, instructions }
    }
}

impl Extend<MemOp> for Trace {
    fn extend<I: IntoIterator<Item = MemOp>>(&mut self, iter: I) {
        for op in iter {
            self.ops.push(op);
            self.instructions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_constructors() {
        let r = MemOp::read(Address::new(8));
        assert!(r.is_read());
        assert!(!r.is_write());
        assert_eq!(r.value, 0);
        let w = MemOp::write(Address::new(16), 7);
        assert!(w.is_write());
        assert_eq!(w.value, 7);
    }

    #[test]
    fn op_display() {
        assert_eq!(MemOp::read(Address::new(0x10)).to_string(), "R 0x10");
        assert_eq!(
            MemOp::write(Address::new(0x10), 255).to_string(),
            "W 0x10 <- 0xff"
        );
    }

    #[test]
    fn trace_counts() {
        let t = Trace::new(
            vec![
                MemOp::read(Address::new(0)),
                MemOp::write(Address::new(8), 1),
                MemOp::read(Address::new(16)),
            ],
            10,
        );
        assert_eq!(t.len(), 3);
        assert_eq!(t.reads(), 2);
        assert_eq!(t.writes(), 1);
        assert_eq!(t.instructions(), 10);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot represent")]
    fn trace_rejects_too_few_instructions() {
        let _ = Trace::new(vec![MemOp::read(Address::new(0)); 5], 3);
    }

    #[test]
    fn split_warmup_partitions_ops_and_instructions() {
        let ops: Vec<MemOp> = (0..10).map(|i| MemOp::read(Address::new(i * 8))).collect();
        let t = Trace::new(ops, 100);
        let (warm, rest) = t.split_warmup(4);
        assert_eq!(warm.len(), 4);
        assert_eq!(rest.len(), 6);
        assert_eq!(warm.instructions() + rest.instructions(), 100);
        assert_eq!(warm.instructions(), 40);
    }

    #[test]
    fn split_warmup_handles_oversized_n() {
        let t: Trace = (0..3).map(|i| MemOp::read(Address::new(i * 8))).collect();
        let (warm, rest) = t.split_warmup(10);
        assert_eq!(warm.len(), 3);
        assert!(rest.is_empty());
    }

    #[test]
    fn split_warmup_and_measured_region_agree() {
        let ops: Vec<MemOp> = (0..7).map(|i| MemOp::read(Address::new(i * 8))).collect();
        for n in 0..=9 {
            let t = Trace::new(ops.clone(), 31);
            let (measured, measured_instr) = t.measured_region(n);
            let measured: Vec<MemOp> = measured.to_vec();
            let (warm, rest) = t.split_warmup(n);
            assert_eq!(rest.ops(), &measured[..], "ops disagree at n={n}");
            assert_eq!(
                rest.instructions(),
                measured_instr,
                "instructions disagree at n={n}"
            );
            assert_eq!(warm.instructions() + rest.instructions(), 31);
        }
    }

    #[test]
    fn warmup_split_edge_cases() {
        // n = 0: everything is measured.
        let s = warmup_split(10, 100, 0);
        assert_eq!((s.warm_ops, s.measured_ops), (0, 10));
        assert_eq!((s.warm_instructions, s.measured_instructions), (0, 100));

        // n = len: everything is warm-up.
        let s = warmup_split(10, 100, 10);
        assert_eq!((s.warm_ops, s.measured_ops), (10, 0));
        assert_eq!((s.warm_instructions, s.measured_instructions), (100, 0));

        // n > len clamps to len.
        assert_eq!(warmup_split(10, 100, 99), warmup_split(10, 100, 10));

        // Empty trace.
        let s = warmup_split(0, 0, 5);
        assert_eq!((s.warm_ops, s.measured_ops), (0, 0));
        assert_eq!((s.warm_instructions, s.measured_instructions), (0, 0));

        // instructions < ops (bypassing the Trace constructor): the halves
        // still sum exactly and never underflow.
        let s = warmup_split(10, 5, 4);
        assert_eq!(s.warm_instructions + s.measured_instructions, 5);
        let s = warmup_split(10, 5, 10);
        assert_eq!((s.warm_instructions, s.measured_instructions), (5, 0));
    }

    #[test]
    fn split_warmup_with_exact_instruction_floor() {
        // instructions == ops: each half gets exactly one instruction/op.
        let ops: Vec<MemOp> = (0..6).map(|i| MemOp::read(Address::new(i * 8))).collect();
        let t = Trace::new(ops, 6);
        let (warm, rest) = t.split_warmup(2);
        assert_eq!(warm.instructions(), 2);
        assert_eq!(rest.instructions(), 4);
    }

    #[test]
    fn measured_region_clamps_oversized_warmup() {
        let ops: Vec<MemOp> = (0..3).map(|i| MemOp::read(Address::new(i * 8))).collect();
        let t = Trace::new(ops, 30);
        let (measured, instr) = t.measured_region(10);
        assert!(measured.is_empty());
        assert_eq!(instr, 0);
    }

    #[test]
    fn collect_and_extend() {
        let mut t: Trace = (0..5).map(|i| MemOp::read(Address::new(i))).collect();
        assert_eq!(t.instructions(), 5);
        t.extend([MemOp::write(Address::new(64), 1)]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.instructions(), 6);
        let back: Vec<MemOp> = (&t).into_iter().copied().collect();
        assert_eq!(back.len(), 6);
        let owned: Vec<MemOp> = t.into_iter().collect();
        assert_eq!(owned.len(), 6);
    }
}
