//! Trace serialization: a compact, versioned binary format.
//!
//! Generated traces are deterministic given a seed, but saving them is
//! useful for cross-tool comparisons and for replaying identical streams
//! outside this workspace. The format is little-endian:
//!
//! ```text
//! magic  "C8TT"          4 bytes
//! version u16            currently 1
//! instructions u64
//! op_count u64
//! ops:   kind u8 (0 = read, 1 = write), addr u64, value u64 (writes only)
//! ```

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use cache8t_sim::{AccessKind, Address};

use crate::{MemOp, Trace};

const MAGIC: [u8; 4] = *b"C8TT";
const VERSION: u16 = 1;

/// Errors produced when reading a serialized trace.
#[derive(Debug)]
#[non_exhaustive]
pub enum ReadTraceError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The stream does not start with the `C8TT` magic.
    BadMagic {
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// The stream uses a format version this build cannot read.
    UnsupportedVersion {
        /// The version found.
        found: u16,
    },
    /// An operation record had an invalid kind byte.
    InvalidKind {
        /// The byte found.
        found: u8,
    },
    /// The header is inconsistent (more ops than instructions).
    InconsistentHeader {
        /// Declared operation count.
        ops: u64,
        /// Declared instruction count.
        instructions: u64,
    },
    /// The stream ended before the declared operation count was read —
    /// a truncated or partially-written file. Unlike a bare
    /// [`Io`](ReadTraceError::Io) error this pinpoints *where* the
    /// stream died, which is what a pool worker reports instead of
    /// panicking.
    Truncated {
        /// Complete operations read before the stream ended.
        read_ops: u64,
        /// Operation count the header declared.
        declared_ops: u64,
        /// The underlying end-of-stream error.
        source: io::Error,
    },
}

impl fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "trace i/o failed: {e}"),
            ReadTraceError::BadMagic { found } => {
                write!(f, "not a cache8t trace (magic {found:02x?})")
            }
            ReadTraceError::UnsupportedVersion { found } => {
                write!(f, "unsupported trace format version {found}")
            }
            ReadTraceError::InvalidKind { found } => {
                write!(f, "invalid operation kind byte {found:#04x}")
            }
            ReadTraceError::InconsistentHeader { ops, instructions } => {
                write!(
                    f,
                    "header declares {ops} ops but only {instructions} instructions"
                )
            }
            ReadTraceError::Truncated {
                read_ops,
                declared_ops,
                source,
            } => {
                write!(
                    f,
                    "trace truncated: stream ended after {read_ops} of {declared_ops} declared ops ({source})"
                )
            }
        }
    }
}

impl Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            ReadTraceError::Truncated { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadTraceError {
    fn from(e: io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

impl Trace {
    /// Serializes the trace to `writer` (a `&mut` reference works too).
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer.
    pub fn write_to<W: Write>(&self, mut writer: W) -> io::Result<()> {
        writer.write_all(&MAGIC)?;
        writer.write_all(&VERSION.to_le_bytes())?;
        writer.write_all(&self.instructions().to_le_bytes())?;
        writer.write_all(&(self.len() as u64).to_le_bytes())?;
        for op in self {
            match op.kind {
                AccessKind::Read => {
                    writer.write_all(&[0u8])?;
                    writer.write_all(&op.addr.raw().to_le_bytes())?;
                }
                AccessKind::Write => {
                    writer.write_all(&[1u8])?;
                    writer.write_all(&op.addr.raw().to_le_bytes())?;
                    writer.write_all(&op.value.to_le_bytes())?;
                }
            }
        }
        Ok(())
    }

    /// Deserializes a trace from `reader` (a `&mut` reference works too).
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] on I/O failure, bad magic, an
    /// unsupported version, or a malformed record.
    pub fn read_from<R: Read>(reader: R) -> Result<Trace, ReadTraceError> {
        let mut file = TraceFileReader::open(reader)?;
        let instructions = file.instructions();
        let count = file.op_count();
        let mut ops = Vec::with_capacity(count.min(1 << 24) as usize);
        file.read_ops(&mut ops, count)?;
        Ok(Trace::new(ops, instructions))
    }
}

/// An incremental C8TT reader: validates the header up front, then yields
/// operation records on demand without materializing the whole trace.
///
/// This is the disk side of the streaming pipeline — a replay can pull one
/// chunk's worth of ops at a time from a persisted trace file, keeping
/// memory bounded by the chunk size rather than the trace length.
/// [`Trace::read_from`] is now a thin wrapper that drains a
/// `TraceFileReader` in one call, so both paths parse records identically.
pub struct TraceFileReader<R> {
    reader: R,
    instructions: u64,
    op_count: u64,
    position: u64,
}

impl<R: Read> TraceFileReader<R> {
    /// Reads and validates the C8TT header, leaving the reader positioned
    /// at the first operation record.
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] on I/O failure, bad magic, an
    /// unsupported version, or an inconsistent header.
    pub fn open(mut reader: R) -> Result<Self, ReadTraceError> {
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(ReadTraceError::BadMagic { found: magic });
        }
        let mut u16buf = [0u8; 2];
        reader.read_exact(&mut u16buf)?;
        let version = u16::from_le_bytes(u16buf);
        if version != VERSION {
            return Err(ReadTraceError::UnsupportedVersion { found: version });
        }
        let mut u64buf = [0u8; 8];
        reader.read_exact(&mut u64buf)?;
        let instructions = u64::from_le_bytes(u64buf);
        reader.read_exact(&mut u64buf)?;
        let op_count = u64::from_le_bytes(u64buf);
        if op_count > instructions {
            return Err(ReadTraceError::InconsistentHeader {
                ops: op_count,
                instructions,
            });
        }
        Ok(TraceFileReader {
            reader,
            instructions,
            op_count,
            position: 0,
        })
    }

    /// Total instructions declared by the header.
    #[inline]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Total operations declared by the header.
    #[inline]
    pub fn op_count(&self) -> u64 {
        self.op_count
    }

    /// Index of the next operation record to be read.
    #[inline]
    pub fn position(&self) -> u64 {
        self.position
    }

    /// Operations left to read.
    #[inline]
    pub fn remaining(&self) -> u64 {
        self.op_count - self.position
    }

    /// Reads up to `n` operation records into `ops` (appending), stopping
    /// early only at the declared end of the trace. Returns the number of
    /// records read.
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] on I/O failure or malformed records;
    /// EOF inside the op stream is reported as
    /// [`Truncated`](ReadTraceError::Truncated) with the dying record.
    pub fn read_ops(&mut self, ops: &mut Vec<MemOp>, n: u64) -> Result<u64, ReadTraceError> {
        let take = n.min(self.remaining());
        let mut u64buf = [0u8; 8];
        for _ in 0..take {
            // Any EOF inside the op stream means the file was truncated
            // mid-write: report which record died so a batch job can say
            // more than "unexpected end of file".
            let record = self.position;
            let declared = self.op_count;
            let classify = |e: io::Error| {
                if e.kind() == io::ErrorKind::UnexpectedEof {
                    ReadTraceError::Truncated {
                        read_ops: record,
                        declared_ops: declared,
                        source: e,
                    }
                } else {
                    ReadTraceError::Io(e)
                }
            };
            let mut kind = [0u8; 1];
            self.reader.read_exact(&mut kind).map_err(classify)?;
            self.reader.read_exact(&mut u64buf).map_err(classify)?;
            let addr = Address::new(u64::from_le_bytes(u64buf));
            match kind[0] {
                0 => ops.push(MemOp::read(addr)),
                1 => {
                    self.reader.read_exact(&mut u64buf).map_err(classify)?;
                    ops.push(MemOp::write(addr, u64::from_le_bytes(u64buf)));
                }
                found => return Err(ReadTraceError::InvalidKind { found }),
            }
            self.position += 1;
        }
        Ok(take)
    }
}

impl<R> fmt::Debug for TraceFileReader<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceFileReader")
            .field("instructions", &self.instructions)
            .field("op_count", &self.op_count)
            .field("position", &self.position)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::new(
            vec![
                MemOp::read(Address::new(0x40)),
                MemOp::write(Address::new(0x48), 0xDEAD_BEEF),
                MemOp::read(Address::new(0x1000)),
                MemOp::write(Address::new(0x1008), u64::MAX),
            ],
            17,
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let trace = sample();
        let mut buffer = Vec::new();
        trace.write_to(&mut buffer).expect("vec write cannot fail");
        let back = Trace::read_from(buffer.as_slice()).expect("valid stream");
        assert_eq!(back, trace);
    }

    #[test]
    fn roundtrip_preserves_instructions_and_write_values() {
        // `instructions` rides in the header, not in the op records, and
        // write values occupy the optional third field — both are easy
        // to drop in a format change, so pin them explicitly.
        let trace = Trace::new(
            vec![
                MemOp::write(Address::new(0x40), 0),
                MemOp::write(Address::new(0x48), 1),
                MemOp::write(Address::new(0x50), 0x0123_4567_89AB_CDEF),
                MemOp::write(Address::new(0x58), u64::MAX),
                MemOp::read(Address::new(0x60)),
            ],
            123_456_789,
        );
        let mut buffer = Vec::new();
        trace.write_to(&mut buffer).expect("vec write");
        let back = Trace::read_from(buffer.as_slice()).expect("valid stream");
        assert_eq!(back.instructions(), 123_456_789);
        let values: Vec<u64> = back.iter().map(|op| op.value).collect();
        assert_eq!(values[..4], [0, 1, 0x0123_4567_89AB_CDEF, u64::MAX]);
        assert_eq!(back, trace);
    }

    #[test]
    fn generated_trace_roundtrips_with_full_fidelity() {
        // The real thing, not a hand-built sample: a profiled generator
        // stream with its silent-write structure and instruction count.
        use crate::{profiles, ProfiledGenerator, TraceGenerator};
        let profile = profiles::by_name("gcc").expect("suite profile");
        let trace =
            ProfiledGenerator::new(profile, cache8t_sim::CacheGeometry::paper_baseline(), 9)
                .collect(5_000);
        let mut buffer = Vec::new();
        trace.write_to(&mut buffer).expect("vec write");
        let back = Trace::read_from(buffer.as_slice()).expect("valid stream");
        assert_eq!(back.instructions(), trace.instructions());
        assert_eq!(back.len(), trace.len());
        for (a, b) in trace.iter().zip(back.iter()) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.addr, b.addr);
            assert_eq!(a.value, b.value);
        }
    }

    #[test]
    fn empty_trace_roundtrips() {
        let trace = Trace::default();
        let mut buffer = Vec::new();
        trace.write_to(&mut buffer).expect("vec write cannot fail");
        assert_eq!(Trace::read_from(buffer.as_slice()).expect("valid"), trace);
    }

    #[test]
    fn reads_are_17_bytes_smaller_than_writes_would_be() {
        // Header 22 bytes + read (9) + write (17).
        let trace = Trace::new(
            vec![
                MemOp::read(Address::new(1)),
                MemOp::write(Address::new(2), 3),
            ],
            2,
        );
        let mut buffer = Vec::new();
        trace.write_to(&mut buffer).expect("vec write");
        assert_eq!(buffer.len(), 22 + 9 + 17);
    }

    #[test]
    fn chunked_reads_match_a_single_read() {
        use crate::{profiles, ProfiledGenerator, TraceGenerator};
        let profile = profiles::by_name("mcf").expect("suite profile");
        let trace =
            ProfiledGenerator::new(profile, cache8t_sim::CacheGeometry::paper_baseline(), 4)
                .collect(3_000);
        let mut buffer = Vec::new();
        trace.write_to(&mut buffer).expect("vec write");

        for chunk in [1u64, 7, 256, 1024, 3_000, 10_000] {
            let mut file = TraceFileReader::open(buffer.as_slice()).expect("valid header");
            assert_eq!(file.instructions(), trace.instructions());
            assert_eq!(file.op_count(), 3_000);
            let mut ops = Vec::new();
            loop {
                let got = file.read_ops(&mut ops, chunk).expect("valid records");
                if got == 0 {
                    break;
                }
                assert!(got <= chunk);
            }
            assert_eq!(file.remaining(), 0);
            assert_eq!(file.position(), 3_000);
            assert_eq!(&ops[..], trace.ops(), "chunk={chunk}");
        }
    }

    #[test]
    fn file_reader_reports_truncation_mid_chunk() {
        let mut buffer = Vec::new();
        sample().write_to(&mut buffer).expect("vec write");
        buffer.truncate(buffer.len() - 3);
        let mut file = TraceFileReader::open(buffer.as_slice()).expect("header intact");
        let mut ops = Vec::new();
        let err = file.read_ops(&mut ops, 4).unwrap_err();
        assert!(matches!(
            err,
            ReadTraceError::Truncated {
                read_ops: 3,
                declared_ops: 4,
                ..
            }
        ));
        assert_eq!(ops.len(), 3, "complete records before the cut are kept");
    }

    #[test]
    fn bad_magic_is_reported() {
        let err = Trace::read_from(&b"NOPE............."[..]).unwrap_err();
        assert!(matches!(err, ReadTraceError::BadMagic { .. }));
        assert!(err.to_string().contains("not a cache8t trace"));
    }

    #[test]
    fn unsupported_version_is_reported() {
        let mut buffer = Vec::new();
        sample().write_to(&mut buffer).expect("vec write");
        buffer[4] = 0xFF;
        let err = Trace::read_from(buffer.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::UnsupportedVersion { .. }));
    }

    #[test]
    fn truncation_reports_the_dying_record() {
        let mut buffer = Vec::new();
        sample().write_to(&mut buffer).expect("vec write");
        // Cut into the value field of the last write (op index 3).
        buffer.truncate(buffer.len() - 3);
        let err = Trace::read_from(buffer.as_slice()).unwrap_err();
        assert!(matches!(
            err,
            ReadTraceError::Truncated {
                read_ops: 3,
                declared_ops: 4,
                ..
            }
        ));
        assert!(std::error::Error::source(&err).is_some());
        let msg = err.to_string();
        assert!(msg.contains("truncated"), "got: {msg}");
        assert!(msg.contains("3 of 4"), "got: {msg}");
    }

    #[test]
    fn truncated_header_is_a_plain_io_error() {
        // EOF before the op stream starts is still `Io`: there is no
        // record context to report yet.
        let mut buffer = Vec::new();
        sample().write_to(&mut buffer).expect("vec write");
        buffer.truncate(10);
        let err = Trace::read_from(buffer.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::Io(_)));
    }

    #[test]
    fn invalid_kind_is_reported() {
        let trace = Trace::new(vec![MemOp::read(Address::new(8))], 1);
        let mut buffer = Vec::new();
        trace.write_to(&mut buffer).expect("vec write");
        buffer[22] = 7; // corrupt the kind byte of the first op
        let err = Trace::read_from(buffer.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::InvalidKind { found: 7 }));
    }

    #[test]
    fn inconsistent_header_is_reported() {
        let mut buffer = Vec::new();
        sample().write_to(&mut buffer).expect("vec write");
        // Declare more ops than instructions.
        buffer[6..14].copy_from_slice(&1u64.to_le_bytes());
        let err = Trace::read_from(buffer.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::InconsistentHeader { .. }));
    }
}
