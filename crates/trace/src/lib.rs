//! # cache8t-trace — workload generation for the cache8t reproduction
//!
//! The paper drives its L1 data-cache simulator with Pin-instrumented SPEC
//! CPU2006 traces (25 of 29 benchmarks, 10 B instructions each). Neither
//! Pin nor SPEC 2006 is available in this environment, so this crate
//! substitutes **profiled synthetic traces**: a two-level Markov generator
//! ([`ProfiledGenerator`]) whose parameters directly control exactly the
//! stream statistics the paper reports as the inputs to its techniques:
//!
//! - read/write accesses per instruction (paper Figure 3),
//! - the breakdown of consecutive same-set access scenarios RR/RW/WW/WR
//!   (Figure 4),
//! - the silent-write fraction (Figure 5),
//! - set-level reuse locality (working-set size and skew), which governs
//!   cache miss rates and Tag-Buffer hit rates.
//!
//! [`profiles::spec2006`] provides one calibrated parameter set per
//! benchmark; [`analyze::StreamStats`] measures the same statistics back
//! from any trace, closing the calibration loop (the workspace's
//! calibration tests assert that generated streams land on the paper's
//! numbers).
//!
//! For giga-op replays that cannot be materialized, [`ChunkedGenerator`]
//! slices the same deterministic stream into bounded [`TraceChunk`]s and
//! [`analyze::StreamStatsAccumulator`] folds statistics chunk-by-chunk —
//! both bit-identical to their one-shot counterparts.
//!
//! ## Example
//!
//! ```
//! use cache8t_sim::CacheGeometry;
//! use cache8t_trace::{analyze::StreamStats, profiles, ProfiledGenerator, TraceGenerator};
//!
//! let profile = profiles::by_name("bwaves").expect("bwaves is in the suite");
//! let geometry = CacheGeometry::paper_baseline();
//! let mut generator = ProfiledGenerator::new(profile.clone(), geometry, 42);
//! let trace = generator.collect(50_000);
//! let stats = StreamStats::measure(&trace, geometry);
//! // bwaves is the paper's most write-intensive benchmark (>22 % writes).
//! assert!(stats.write_per_instr > 0.18);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod analyze;
mod batch;
mod generator;
mod io;
mod mix;
mod op;
mod profile;
pub mod profiles;
mod simple;
mod stream;
mod zipf;

pub use batch::{DecodedBatch, DecodedOp};
pub use generator::{ProfiledGenerator, TraceGenerator};
pub use io::{ReadTraceError, TraceFileReader};
pub use mix::MultiprogramMix;
pub use op::{warmup_split, MemOp, Trace, WarmupSplit};
pub use profile::{PairLocality, ProfileError, WorkloadProfile};
pub use simple::{PointerChase, StridedLoop, UniformRandom};
pub use stream::{assemble_chunks, ChunkedGenerator, TraceChunk};
pub use zipf::ZipfSampler;
