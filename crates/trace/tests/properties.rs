//! Property tests for the workload generators: every valid profile must
//! produce a stream whose measured statistics track its targets.

use proptest::prelude::*;

use cache8t_sim::CacheGeometry;
use cache8t_trace::analyze::StreamStats;
use cache8t_trace::{
    PairLocality, ProfiledGenerator, TraceGenerator, WorkloadProfile, ZipfSampler,
};

/// Strategy over *valid* profiles: locality targets are scaled into the
/// feasible region implied by the read share.
fn profile_strategy() -> impl Strategy<Value = WorkloadProfile> {
    (
        0.2f64..0.6,   // mem_per_instr
        0.35f64..0.85, // read_share
        0.0f64..1.0,   // rr weight
        0.0f64..1.0,   // ww weight
        0.0f64..0.9,   // silent fraction
        1_000u64..20_000,
        0.0f64..1.2, // zipf
        0.0f64..0.6, // write revisit
        0.0f64..0.3, // read after write
        0.0f64..0.9, // silent correlation
        0.0f64..0.6, // spatial adjacency
    )
        .prop_map(
            |(mem, rs, rr_w, ww_w, silent, ws, zipf, wrev, raw, scorr, spatial)| {
                // Keep each pair target comfortably inside feasibility:
                // rr < pR^2, ww < pW^2, rw/wr small.
                let p_w = 1.0 - rs;
                WorkloadProfile {
                    name: "prop".to_string(),
                    mem_per_instr: mem,
                    read_share: rs,
                    locality: PairLocality {
                        rr: 0.5 * rr_w * rs * rs,
                        rw: 0.02,
                        wr: 0.02,
                        ww: 0.5 * ww_w * p_w * p_w,
                    },
                    silent_fraction: silent,
                    working_set_blocks: ws,
                    zipf_exponent: zipf,
                    write_revisit: wrev,
                    read_after_write: raw,
                    silent_correlation: scorr,
                    spatial_adjacency: spatial,
                }
            },
        )
        .prop_filter("profile must be feasible", |p| p.validate().is_ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_streams_track_profile_targets(profile in profile_strategy(), seed in 0u64..1000) {
        let geometry = CacheGeometry::paper_baseline();
        let n = 40_000;
        let trace = ProfiledGenerator::new(profile.clone(), geometry, seed).collect(n);
        let stats = StreamStats::measure(&trace, geometry);

        // Figure 3 statistics: direct control, tight tolerance.
        prop_assert!(
            (stats.read_per_instr - profile.reads_per_instr()).abs() < 0.02,
            "reads/instr {} vs target {}", stats.read_per_instr, profile.reads_per_instr()
        );
        prop_assert!(
            (stats.write_per_instr - profile.writes_per_instr()).abs() < 0.02,
            "writes/instr {} vs target {}", stats.write_per_instr, profile.writes_per_instr()
        );

        // Figure 5: silent fraction is marginal-exact regardless of the
        // correlation parameter.
        if trace.writes() > 2_000 {
            prop_assert!(
                (stats.silent_write_fraction - profile.silent_fraction).abs() < 0.05,
                "silent {} vs target {}", stats.silent_write_fraction, profile.silent_fraction
            );
        }

        // Figure 4: pair targets are hit within sampling noise plus the
        // (small) accidental same-set contribution of the Zipf path.
        prop_assert!(
            stats.consecutive.rr >= profile.locality.rr - 0.03,
            "rr {} vs target {}", stats.consecutive.rr, profile.locality.rr
        );
        prop_assert!(
            stats.consecutive.ww >= profile.locality.ww - 0.03,
            "ww {} vs target {}", stats.consecutive.ww, profile.locality.ww
        );
        prop_assert!(
            stats.consecutive.total() < profile.locality.total() + 0.12,
            "same-set total {} far above target {}",
            stats.consecutive.total(), profile.locality.total()
        );
    }

    #[test]
    fn streams_are_reproducible_and_seed_sensitive(profile in profile_strategy()) {
        let geometry = CacheGeometry::paper_baseline();
        let a = ProfiledGenerator::new(profile.clone(), geometry, 7).collect(2_000);
        let b = ProfiledGenerator::new(profile.clone(), geometry, 7).collect(2_000);
        prop_assert_eq!(&a, &b);
        let c = ProfiledGenerator::new(profile, geometry, 8).collect(2_000);
        prop_assert_ne!(&a, &c);
    }

    #[test]
    fn addresses_respect_working_set_and_alignment(profile in profile_strategy()) {
        let geometry = CacheGeometry::paper_baseline();
        let limit = profile.working_set_blocks * geometry.block_bytes();
        let trace = ProfiledGenerator::new(profile, geometry, 3).collect(5_000);
        for op in &trace {
            prop_assert!(op.addr.raw() < limit);
            prop_assert!(op.addr.is_aligned(8));
        }
    }

    #[test]
    fn zipf_sampler_stays_in_range(n in 1u64..10_000, s in 0.0f64..3.0, seed in any::<u64>()) {
        use rand::{rngs::SmallRng, SeedableRng};
        let zipf = ZipfSampler::new(n, s);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(zipf.sample(&mut rng) < n);
        }
    }
}

mod io_properties {
    use proptest::prelude::*;

    use cache8t_sim::Address;
    use cache8t_trace::{MemOp, Trace};

    fn op_strategy() -> impl Strategy<Value = MemOp> {
        (any::<bool>(), any::<u64>(), any::<u64>()).prop_map(|(read, addr, value)| {
            if read {
                MemOp::read(Address::new(addr))
            } else {
                MemOp::write(Address::new(addr), value)
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn serialization_roundtrips(
            ops in prop::collection::vec(op_strategy(), 0..200),
            extra_instr in 0u64..1000,
        ) {
            let instructions = ops.len() as u64 + extra_instr;
            let trace = Trace::new(ops, instructions);
            let mut buffer = Vec::new();
            trace.write_to(&mut buffer).expect("vec write");
            let back = Trace::read_from(buffer.as_slice()).expect("own output is valid");
            prop_assert_eq!(back, trace);
        }

        #[test]
        fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
            // Any result is fine; crashing is not.
            let _ = Trace::read_from(bytes.as_slice());
        }
    }
}
