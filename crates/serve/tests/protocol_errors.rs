//! Protocol hygiene over a real socket: every malformed request class
//! gets its structured error, and the connection survives all of them.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use serde_json::Value;

use cache8t_exec::{ExecOptions, TraceStore};
use cache8t_obs::OpLog;
use cache8t_serve::{codes, Client, ClientError, ServeConfig, Server, MAX_REQUEST_LINE};

fn start_server() -> (String, thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServeConfig {
        listen: "127.0.0.1:0".to_owned(),
        checkpoint_dir: None,
        exec: ExecOptions {
            workers: 1,
            retries: 0,
        },
        store: Arc::new(TraceStore::in_memory()),
        oplog: Arc::new(OpLog::disabled()),
        stream_chunk_ops: None,
    })
    .expect("bind");
    let addr = server.local_addr().to_owned();
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

#[test]
fn each_error_class_answers_with_its_code_and_keeps_the_connection() {
    let (addr, server) = start_server();
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    let cases: &[(&str, &str)] = &[
        ("{oops", codes::MALFORMED_JSON),
        ("[1,2,3]", codes::NOT_AN_OBJECT),
        (r#"{"verb":"status"}"#, codes::BAD_VERSION),
        (r#"{"v":"99","verb":"status"}"#, codes::BAD_VERSION),
        (r#"{"v":"1"}"#, codes::MISSING_VERB),
        (r#"{"v":"1","verb":"explode"}"#, codes::UNKNOWN_VERB),
        (r#"{"v":"1","verb":"results"}"#, codes::MISSING_FIELD),
        (r#"{"v":"1","verb":"results","job":3}"#, codes::BAD_FIELD),
        (
            r#"{"v":"1","verb":"results","job":"job-404"}"#,
            codes::UNKNOWN_JOB,
        ),
        (
            r#"{"v":"1","verb":"submit","plan":{"profiles":["nope"],"geometries":["baseline"],"ops":10,"seed":0}}"#,
            codes::UNKNOWN_PROFILE,
        ),
        (
            r#"{"v":"1","verb":"submit","plan":{"profiles":["gcc"],"geometries":["mega"],"ops":10,"seed":0}}"#,
            codes::UNKNOWN_GEOMETRY,
        ),
    ];
    // All on ONE connection: an error must never cost the session.
    for (line, want) in cases {
        stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        stream.flush().expect("flush");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read");
        let value: Value = serde_json::from_str(response.trim()).expect("response parses");
        assert_eq!(
            value.get("ok"),
            Some(&Value::Bool(false)),
            "request {line} must fail"
        );
        let code = value
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str);
        assert_eq!(code, Some(*want), "wrong code for request {line}");
        assert!(
            value
                .get("error")
                .and_then(|e| e.get("message"))
                .and_then(Value::as_str)
                .is_some_and(|m| !m.is_empty()),
            "error for {line} must carry a message"
        );
    }

    // The same connection still serves valid requests afterwards.
    stream
        .write_all(b"{\"v\":\"1\",\"verb\":\"status\"}\n")
        .expect("write");
    let mut response = String::new();
    reader.read_line(&mut response).expect("read");
    let value: Value = serde_json::from_str(response.trim()).expect("response parses");
    assert_eq!(value.get("ok"), Some(&Value::Bool(true)));

    let mut client = Client::connect(&addr).expect("connect");
    client.shutdown().expect("shutdown");
    server.join().expect("join").expect("server run");
}

#[test]
fn oversized_request_lines_answer_with_a_structured_error() {
    let (addr, server) = start_server();
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // A syntactically valid request padded past the line bound: the
    // guard must fire on size alone, before any parsing.
    let padding = "x".repeat(MAX_REQUEST_LINE);
    let line = format!("{{\"v\":\"1\",\"verb\":\"status\",\"pad\":\"{padding}\"}}\n");
    assert!(line.len() > MAX_REQUEST_LINE);
    stream.write_all(line.as_bytes()).expect("write");
    stream.flush().expect("flush");

    let mut response = String::new();
    reader.read_line(&mut response).expect("read");
    let value: Value = serde_json::from_str(response.trim()).expect("response parses");
    assert_eq!(value.get("ok"), Some(&Value::Bool(false)));
    let code = value
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Value::as_str);
    assert_eq!(code, Some(codes::OVERSIZED_REQUEST));

    let mut client = Client::connect(&addr).expect("connect");
    client.shutdown().expect("shutdown");
    server.join().expect("join").expect("server run");
}

#[test]
fn not_finished_and_shutting_down_are_reported() {
    let (addr, server) = start_server();
    let mut client = Client::connect_with_retry(&addr, Duration::from_secs(5)).expect("connect");

    client.shutdown().expect("shutdown accepted");
    // Submits after shutdown are refused with the dedicated code. The
    // accept loop may already be draining, so tolerate a dead socket.
    let mut probe = Client::connect(&addr);
    if let Ok(client) = probe.as_mut() {
        let spec = cache8t_serve::PlanSpec {
            profiles: vec!["gcc".into()],
            geometries: vec!["baseline".into()],
            ops: 100,
            seed: 0,
            series_cadence: None,
        };
        match client.submit(&spec) {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, codes::SHUTTING_DOWN),
            Err(ClientError::Io(_)) => {} // server already gone
            other => panic!("expected shutting-down, got {other:?}"),
        }
    }
    server.join().expect("join").expect("server run");
}
