//! In-process service tests: a real `Server` on a loopback socket,
//! driven by the real `Client`, checked against the batch engine.
//!
//! The headline assertion, made three ways below: a document fetched
//! over the socket — fresh, resumed from a torn journal, or fully
//! restored — is byte-identical to a one-shot `run_sweep` of the plan.

use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use serde_json::Value;

use cache8t_exec::{run_sweep, to_document, ExecOptions, SweepOptions, TraceStore};
use cache8t_obs::{OpLog, SamplerConfig};
use cache8t_serve::{journal_path, Client, PlanSpec, ServeConfig, Server};

fn spec(ops: usize) -> PlanSpec {
    PlanSpec {
        profiles: vec!["gcc".to_owned(), "mcf".to_owned()],
        geometries: vec!["baseline".to_owned()],
        ops,
        seed: 7,
        series_cadence: Some(512),
    }
}

/// What a one-shot batch run of `spec` serializes to.
fn batch_document(spec: &PlanSpec, workers: usize) -> String {
    let plan = spec.resolve().expect("plan resolves");
    let options = SweepOptions {
        exec: ExecOptions {
            workers,
            retries: 0,
        },
        store: Arc::new(TraceStore::in_memory()),
        series: spec.series_cadence.map(|cadence| SamplerConfig {
            cadence: cadence as u64,
            ..SamplerConfig::default()
        }),
        ..SweepOptions::default()
    };
    let outcome = run_sweep(&plan, &options);
    assert!(outcome.failures.is_empty(), "batch reference run failed");
    serde_json::to_string_pretty(&to_document(&plan, &outcome)).expect("document serializes")
}

fn start_server(
    listen: &str,
    checkpoint_dir: Option<PathBuf>,
    workers: usize,
) -> (String, thread::JoinHandle<std::io::Result<()>>) {
    start_server_streamed(listen, checkpoint_dir, workers, None)
}

fn start_server_streamed(
    listen: &str,
    checkpoint_dir: Option<PathBuf>,
    workers: usize,
    stream_chunk_ops: Option<usize>,
) -> (String, thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServeConfig {
        listen: listen.to_owned(),
        checkpoint_dir,
        exec: ExecOptions {
            workers,
            retries: 0,
        },
        store: Arc::new(TraceStore::in_memory()),
        oplog: Arc::new(OpLog::disabled()),
        stream_chunk_ops,
    })
    .expect("bind");
    let addr = server.local_addr().to_owned();
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

fn connect(addr: &str) -> Client {
    Client::connect_with_retry(addr, Duration::from_secs(5)).expect("connect")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("c8t-service-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn socket_submitted_sweep_matches_the_batch_document_and_streams_events() {
    let spec = spec(3_000);
    let expected = batch_document(&spec, 2);

    let (addr, server) = start_server("127.0.0.1:0", None, 2);
    let mut client = connect(&addr);
    let job = client.submit(&spec).expect("submit");

    // `watch` on a second connection streams to the terminal row.
    let mut watcher = connect(&addr);
    let mut events: Vec<Value> = Vec::new();
    let state = watcher
        .watch(&job, |row| events.push(row.clone()))
        .expect("watch");
    assert_eq!(state, "completed");

    let kinds: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("event").and_then(Value::as_str))
        .collect();
    assert!(kinds.contains(&"resume"), "resume event missing: {kinds:?}");
    assert!(kinds.contains(&"state"), "state events missing: {kinds:?}");
    assert!(
        kinds.iter().filter(|k| **k == "benchmark").count() == 2,
        "one benchmark event per benchmark: {kinds:?}"
    );
    assert!(
        kinds.contains(&"series"),
        "cadence was set, series samples must stream: {kinds:?}"
    );
    assert!(
        kinds.contains(&"progress"),
        "pool progress must stream: {kinds:?}"
    );
    // Without a checkpoint dir nothing is restored.
    let resume = events
        .iter()
        .find(|e| e.get("event").and_then(Value::as_str) == Some("resume"))
        .expect("resume event");
    assert_eq!(resume.get("restored"), Some(&Value::U64(0)));
    assert_eq!(resume.get("total"), Some(&Value::U64(2)));

    let document = client
        .wait_for_results(&job, Duration::from_secs(120))
        .expect("results");
    let served = serde_json::to_string_pretty(&document).expect("serialize");
    assert_eq!(served, expected, "served document != batch document");

    // Status carries the job summary and the server counters.
    let status = client.status(Some(&job)).expect("status");
    let summary = status.get("job").expect("job summary");
    assert_eq!(summary.get("state"), Some(&Value::Str("completed".into())));
    assert!(summary.get("metrics").is_some(), "telemetry in status");
    let overview = client.status(None).expect("server status");
    let counters = overview
        .get("server")
        .and_then(|s| s.get("counters"))
        .expect("counters");
    assert!(
        counters.get("serve.jobs_completed").is_some(),
        "server counters missing: {counters:?}"
    );

    client.shutdown().expect("shutdown");
    server.join().expect("join").expect("server run");
}

#[cfg(unix)]
#[test]
fn unix_socket_round_trip_and_queued_job_cancellation() {
    let sock = std::env::temp_dir().join(format!("c8t-service-{}.sock", std::process::id()));
    std::fs::remove_file(&sock).ok();
    let listen = format!("unix:{}", sock.display());
    let (addr, server) = start_server(&listen, None, 2);
    assert_eq!(addr, listen);

    let mut client = connect(&addr);
    // Job A occupies the single executor; job B is cancelled while it
    // is still queued behind A, so it must drain without running.
    let job_a = client.submit(&spec(40_000)).expect("submit a");
    let job_b = client.submit(&spec(5_000)).expect("submit b");
    let response = client.cancel(&job_b).expect("cancel");
    assert_eq!(response.get("job"), Some(&Value::Str(job_b.clone())));

    let deadline = Instant::now() + Duration::from_secs(120);
    let state_b = loop {
        let status = client.status(Some(&job_b)).expect("status");
        let state = status
            .get("job")
            .and_then(|j| j.get("state"))
            .and_then(Value::as_str)
            .expect("state")
            .to_owned();
        if state == "cancelled" || state == "completed" || Instant::now() >= deadline {
            break state;
        }
        thread::sleep(Duration::from_millis(25));
    };
    assert_eq!(state_b, "cancelled");

    // Job A is unaffected by B's cancellation.
    let document = client
        .wait_for_results(&job_a, Duration::from_secs(120))
        .expect("results a");
    assert!(document.get("geometries").is_some() || document.get("benchmarks").is_some());

    client.shutdown().expect("shutdown");
    server.join().expect("join").expect("server run");
    assert!(!sock.exists(), "socket file cleaned up on shutdown");
}

#[test]
fn health_and_metrics_answer_on_an_idle_daemon() {
    let (addr, server) = start_server("127.0.0.1:0", None, 1);
    let mut client = connect(&addr);

    let health = client.health().expect("health");
    assert_eq!(health.get("state"), Some(&Value::Str("ok".to_owned())));
    assert_eq!(health.get("jobs_total"), Some(&Value::U64(0)));
    assert_eq!(health.get("jobs_active"), Some(&Value::U64(0)));
    assert_eq!(health.get("queue_depth"), Some(&Value::U64(0)));
    assert!(health.get("uptime_ms").and_then(Value::as_u64).is_some());

    let metrics = client.metrics().expect("metrics");
    let server_block = metrics.get("server").expect("server block");
    assert_eq!(server_block.get("queue_depth"), Some(&Value::U64(0)));
    let jobs = server_block.get("jobs").expect("jobs block");
    for phase in ["queued", "running", "completed", "failed", "cancelled"] {
        assert_eq!(jobs.get(phase), Some(&Value::U64(0)), "phase {phase}");
    }
    assert_eq!(
        server_block.get("journal").and_then(|j| j.get("enabled")),
        Some(&Value::Bool(false))
    );
    let registry = metrics.get("registry").expect("registry snapshot");
    assert!(
        registry
            .get("gauges")
            .and_then(|g| g.get("serve.uptime_ms"))
            .is_some(),
        "point-in-time gauges must be refreshed into the registry"
    );

    // The registry snapshot alone renders as a Prometheus scrape.
    let text = cache8t_serve::render_metrics_text(&metrics);
    assert!(
        text.contains("# TYPE cache8t_serve_uptime_ms gauge"),
        "prometheus text missing uptime gauge:\n{text}"
    );
    assert!(text.contains("# TYPE cache8t_serve_jobs_completed gauge"));

    client.shutdown().expect("shutdown");
    server.join().expect("join").expect("server run");
}

#[test]
fn per_verb_latency_histograms_and_counters_reconcile_with_status() {
    let spec = spec(1_000);
    let (addr, server) = start_server("127.0.0.1:0", None, 2);
    let mut client = connect(&addr);
    let job = client.submit(&spec).expect("submit");
    client
        .wait_for_results(&job, Duration::from_secs(120))
        .expect("results");
    let status = client.status(None).expect("status");

    let metrics = client.metrics().expect("metrics");
    let registry = metrics.get("registry").expect("registry");
    let histograms = registry.get("histograms").expect("histograms");
    let counters = registry.get("counters").expect("counters");
    for verb in ["submit", "status", "results"] {
        let latency = format!("serve.verb.{verb}.latency_us");
        let count = histograms
            .get(latency.as_str())
            .and_then(|h| h.get("count"))
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("missing histogram {latency}"));
        assert!(count >= 1, "{latency} must have observations");
        let requests = format!("serve.verb.{verb}.requests");
        let requests = counters
            .get(requests.as_str())
            .and_then(Value::as_u64)
            .expect("request counter");
        assert_eq!(requests, count, "{verb} counter and histogram agree");
    }
    assert_eq!(
        counters
            .get("serve.verb.submit.requests")
            .and_then(Value::as_u64),
        Some(1),
        "exactly one submit in this session"
    );

    // The metrics job counters reconcile with the status job list.
    let listed_completed = status
        .get("jobs")
        .and_then(Value::as_array)
        .expect("jobs list")
        .iter()
        .filter(|j| j.get("state").and_then(Value::as_str) == Some("completed"))
        .count() as u64;
    let reported_completed = metrics
        .get("server")
        .and_then(|s| s.get("jobs"))
        .and_then(|j| j.get("completed"))
        .and_then(Value::as_u64)
        .expect("completed gauge");
    assert_eq!(listed_completed, 1);
    assert_eq!(reported_completed, listed_completed);

    client.shutdown().expect("shutdown");
    server.join().expect("join").expect("server run");
}

#[test]
fn watch_resumes_after_a_sequence_number_without_replaying() {
    let spec = spec(1_000);
    let (addr, server) = start_server("127.0.0.1:0", None, 2);
    let mut client = connect(&addr);
    let job = client.submit(&spec).expect("submit");
    client
        .wait_for_results(&job, Duration::from_secs(120))
        .expect("results");

    // Full replay of the terminal job's ring, noting every seq.
    let mut rows: Vec<Value> = Vec::new();
    let mut watcher = connect(&addr);
    let state = watcher
        .watch(&job, |row| rows.push(row.clone()))
        .expect("watch");
    assert_eq!(state, "completed");
    let seqs: Vec<u64> = rows
        .iter()
        .filter_map(|r| r.get("seq").and_then(Value::as_u64))
        .collect();
    assert!(seqs.len() >= 3, "expected several ring rows: {seqs:?}");
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "seqs must be strictly increasing: {seqs:?}"
    );

    // Resuming mid-stream delivers exactly the rows after the cursor.
    let mid = seqs[seqs.len() / 2];
    let mut resumed: Vec<u64> = Vec::new();
    let mut watcher = connect(&addr);
    watcher
        .watch_from(&job, mid, |row| {
            if let Some(seq) = row.get("seq").and_then(Value::as_u64) {
                resumed.push(seq);
            }
        })
        .expect("watch_from");
    let expected: Vec<u64> = seqs.iter().copied().filter(|s| *s > mid).collect();
    assert_eq!(resumed, expected, "resume must skip delivered rows only");

    // The reconnecting wrapper sees the same stream and final state.
    let mut via_resumable = 0usize;
    let state = cache8t_serve::watch_resumable(&addr, &job, |_| via_resumable += 1)
        .expect("watch_resumable");
    assert_eq!(state, "completed");
    assert_eq!(via_resumable, rows.len());

    client.shutdown().expect("shutdown");
    server.join().expect("join").expect("server run");
}

#[test]
fn resumed_and_fully_restored_jobs_reproduce_the_batch_document() {
    let spec = spec(3_000);
    let expected = batch_document(&spec, 1);
    let dir = temp_dir("resume");

    // First server: run the sweep to completion, journalling it.
    let (addr, server) = start_server("127.0.0.1:0", Some(dir.clone()), 2);
    let mut client = connect(&addr);
    let job = client.submit(&spec).expect("submit");
    let first = client
        .wait_for_results(&job, Duration::from_secs(120))
        .expect("results");
    assert_eq!(
        serde_json::to_string_pretty(&first).expect("serialize"),
        expected
    );
    let fingerprint = client
        .status(Some(&job))
        .expect("status")
        .get("job")
        .and_then(|j| j.get("fingerprint"))
        .and_then(Value::as_str)
        .expect("fingerprint")
        .to_owned();
    client.shutdown().expect("shutdown");
    server.join().expect("join").expect("server run");

    // Wound the journal the way a crash would: keep the first entry,
    // leave a torn half-line behind it.
    let path = journal_path(&dir, &fingerprint);
    let text = std::fs::read_to_string(&path).expect("journal readable");
    let mut lines = text.lines();
    let keep = lines.next().expect("journal has entries");
    assert!(lines.next().is_some(), "expected one line per benchmark");
    std::fs::write(&path, format!("{keep}\n{{\"v\":\"1\",\"pl")).expect("tear journal");

    // Second server, same checkpoint dir: one slot restores, the other
    // re-runs, and the merged document is still byte-identical.
    let (addr, server) = start_server("127.0.0.1:0", Some(dir.clone()), 2);
    let mut client = connect(&addr);
    let job = client.submit(&spec).expect("submit");
    let resumed = client
        .wait_for_results(&job, Duration::from_secs(120))
        .expect("results");
    assert_eq!(
        serde_json::to_string_pretty(&resumed).expect("serialize"),
        expected,
        "resumed document != batch document"
    );
    let restored = client
        .status(Some(&job))
        .expect("status")
        .get("job")
        .and_then(|j| j.get("restored"))
        .and_then(Value::as_u64)
        .expect("restored");
    assert_eq!(restored, 1, "exactly the surviving journal entry restores");

    // Third submit on the same server: the journal is whole again (the
    // resumed run re-appended the missing slot), so everything restores
    // and the sweep runs zero unit jobs — and the bytes still match.
    let job = client.submit(&spec).expect("submit");
    let restored_doc = client
        .wait_for_results(&job, Duration::from_secs(120))
        .expect("results");
    assert_eq!(
        serde_json::to_string_pretty(&restored_doc).expect("serialize"),
        expected,
        "fully-restored document != batch document"
    );
    let summary = client.status(Some(&job)).expect("status");
    assert_eq!(
        summary.get("job").and_then(|j| j.get("restored")),
        Some(&Value::U64(2)),
        "every benchmark restores from the repaired journal"
    );

    client.shutdown().expect("shutdown");
    server.join().expect("join").expect("server run");
    std::fs::remove_dir_all(&dir).ok();
}

/// A daemon configured with `--stream-chunk-ops` serves the exact
/// bytes a materialized batch run produces: streaming is a memory
/// footprint decision, never a results decision.
#[test]
fn streamed_daemon_serves_the_materialized_batch_document() {
    let spec = spec(3_000);
    let expected = batch_document(&spec, 2);

    let (addr, server) = start_server_streamed("127.0.0.1:0", None, 2, Some(700));
    let mut client = connect(&addr);
    let job = client.submit(&spec).expect("submit");
    let document = client
        .wait_for_results(&job, Duration::from_secs(120))
        .expect("results");
    let served = serde_json::to_string_pretty(&document).expect("serialize");
    assert_eq!(served, expected, "streamed document != batch document");

    client.shutdown().expect("shutdown");
    server.join().expect("join").expect("server run");
}
