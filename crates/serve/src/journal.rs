//! The append-only checkpoint journal behind resumable sweeps.
//!
//! One journal file per plan fingerprint, one JSONL line per completed
//! benchmark: `{"v", "plan", "slot", "geometry", "benchmark",
//! "result"}`. Lines are appended and flushed the moment a benchmark's
//! last unit job lands (via the sweep engine's completion hook), so
//! every finished benchmark is durable independently of whether the
//! server survives. On restart, the loader replays the valid prefix —
//! a torn final line from a crash mid-append is tolerated and simply
//! re-run — and the sweep re-executes only the missing slots.
//!
//! Because the vendored JSON text→value→text round trip is
//! byte-stable, a document assembled from journalled benchmark values
//! is byte-identical to the one the batch path serializes; the service
//! tests enforce this with `cmp`.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde_json::Value;

use cache8t_exec::SweepPlan;

/// Journal schema version.
pub const JOURNAL_VERSION: &str = "1";

/// A stable 64-bit FNV-1a fingerprint of everything that determines a
/// plan's results: ops, seed, the full profile definitions (not just
/// names — a recalibrated table must not resume from stale results),
/// geometry labels and dimensions, and the sampler cadence. Rendered
/// as 16 hex digits; doubles as the journal file stem.
pub fn plan_fingerprint(plan: &SweepPlan, series_cadence: Option<usize>) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&plan.ops.to_le_bytes());
    eat(&plan.seed.to_le_bytes());
    eat(&series_cadence.map_or(0u64, |c| c as u64 + 1).to_le_bytes());
    for profile in &plan.profiles {
        let canonical = serde_json::to_string(profile).expect("workload profiles serialize");
        eat(canonical.as_bytes());
        eat(b"\x1f");
    }
    for point in &plan.geometries {
        eat(point.label.as_bytes());
        eat(&point.geometry.capacity_bytes().to_le_bytes());
        eat(&point.geometry.ways().to_le_bytes());
        eat(&point.geometry.block_bytes().to_le_bytes());
        eat(b"\x1f");
    }
    format!("{hash:016x}")
}

/// The journal file path for `fingerprint` under `dir`.
pub fn journal_path(dir: &Path, fingerprint: &str) -> PathBuf {
    dir.join(format!("{fingerprint}.jsonl"))
}

/// What loading a journal recovered.
#[derive(Debug, Default)]
pub struct JournalLoad {
    /// Benchmark slot → journalled benchmark value (first wins).
    pub slots: HashMap<usize, Value>,
    /// Trailing bytes that did not parse as a complete, valid line —
    /// the torn tail of an interrupted append. They are ignored; the
    /// affected benchmark re-runs.
    pub torn: bool,
}

/// Replays the valid prefix of the journal at `path` against `plan`.
///
/// Unreadable or never-written journals load as empty. A line is valid
/// when it is complete (newline-terminated), parses, matches the
/// journal version and `fingerprint`, and names the geometry/benchmark
/// `plan` actually has at its slot; the first invalid line ends the
/// replay (append-only writes mean everything after a torn write is
/// untrustworthy).
///
/// # Errors
///
/// Only on I/O failures while reading an existing file.
pub fn load_journal(
    path: &Path,
    plan: &SweepPlan,
    fingerprint: &str,
) -> std::io::Result<JournalLoad> {
    let file = match File::open(path) {
        Ok(file) => file,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(JournalLoad::default()),
        Err(e) => return Err(e),
    };
    let mut reader = BufReader::new(file);
    let mut load = JournalLoad::default();
    let n_profiles = plan.profiles.len();
    let mut line = String::new();
    loop {
        line.clear();
        let read = reader.read_line(&mut line)?;
        if read == 0 {
            return Ok(load);
        }
        if !line.ends_with('\n') {
            // Torn final line: the writer died mid-append.
            load.torn = true;
            return Ok(load);
        }
        let Some((slot, value)) = parse_entry(line.trim_end(), plan, n_profiles, fingerprint)
        else {
            load.torn = true;
            return Ok(load);
        };
        load.slots.entry(slot).or_insert(value);
    }
}

/// Parses and validates one complete journal line; `None` ends replay.
fn parse_entry(
    line: &str,
    plan: &SweepPlan,
    n_profiles: usize,
    fingerprint: &str,
) -> Option<(usize, Value)> {
    let entry: Value = serde_json::from_str(line).ok()?;
    if entry.get("v").and_then(Value::as_str) != Some(JOURNAL_VERSION)
        || entry.get("plan").and_then(Value::as_str) != Some(fingerprint)
    {
        return None;
    }
    let slot = entry.get("slot").and_then(Value::as_u64)? as usize;
    if slot >= plan.benchmark_count() {
        return None;
    }
    let (g, b) = (slot / n_profiles, slot % n_profiles);
    if entry.get("geometry").and_then(Value::as_str) != Some(&plan.geometries[g].label)
        || entry.get("benchmark").and_then(Value::as_str) != Some(&plan.profiles[b].name)
    {
        return None;
    }
    let result = entry.get("result")?.clone();
    // The benchmark object must at least agree on its own name.
    if result.get("name").and_then(Value::as_str) != Some(&plan.profiles[b].name) {
        return None;
    }
    Some((slot, result))
}

/// Truncates `path` back to its final newline, dropping the torn tail
/// of an interrupted append; returns whether anything was dropped.
/// Missing files are fine.
fn repair_torn_tail(path: &Path) -> std::io::Result<bool> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(e),
    };
    if bytes.last().is_none_or(|&b| b == b'\n') {
        return Ok(false);
    }
    let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(keep as u64)?;
    Ok(true)
}

/// On-disk footprint of a journal directory: how many journal files
/// exist and their total size. The daemon's `serve.journal.bytes`
/// gauge and the `status`/`metrics` journal report come from here —
/// journals are append-only and never collected (pre-GC), so operators
/// need the growth visible.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalDirStats {
    /// `*.jsonl` journal files under the directory.
    pub files: u64,
    /// Their sizes summed, in bytes.
    pub bytes: u64,
}

/// Sizes the `*.jsonl` journals under `dir`. A missing or unreadable
/// directory reads as empty: this feeds telemetry, which must never
/// take a request down.
pub fn journal_dir_stats(dir: &Path) -> JournalDirStats {
    let mut stats = JournalDirStats::default();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return stats;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_none_or(|e| e != "jsonl") {
            continue;
        }
        if let Ok(meta) = entry.metadata() {
            if meta.is_file() {
                stats.files += 1;
                stats.bytes += meta.len();
            }
        }
    }
    stats
}

/// An open journal in append mode. Writes are line-atomic from the
/// reader's perspective: each entry is serialized fully, written with
/// one call, and flushed before `append` returns.
#[derive(Debug)]
pub struct Journal {
    file: Mutex<File>,
    fingerprint: String,
    repaired: bool,
}

impl Journal {
    /// Opens (creating directories and the file as needed) the journal
    /// for `fingerprint` under `dir`.
    ///
    /// A torn tail left by a crash mid-append is truncated away first:
    /// appending after stray partial bytes would weld the next entry
    /// onto them, making it unreadable on every later load.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(dir: &Path, fingerprint: &str) -> std::io::Result<Journal> {
        std::fs::create_dir_all(dir)?;
        let path = journal_path(dir, fingerprint);
        let repaired = repair_torn_tail(&path)?;
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Journal {
            file: Mutex::new(file),
            fingerprint: fingerprint.to_owned(),
            repaired,
        })
    }

    /// `true` when opening found (and truncated away) the torn tail of
    /// an interrupted append. The daemon counts and logs these.
    pub fn repaired(&self) -> bool {
        self.repaired
    }

    /// Appends one completed benchmark and flushes.
    ///
    /// # Errors
    ///
    /// Propagates write failures; the caller decides whether a dead
    /// journal should fail the job (the server logs and keeps going —
    /// losing durability degrades resume, not correctness).
    pub fn append(
        &self,
        slot: usize,
        geometry: &str,
        benchmark: &str,
        result: &Value,
    ) -> std::io::Result<()> {
        let entry = Value::Object(vec![
            ("v".to_owned(), Value::Str(JOURNAL_VERSION.to_owned())),
            ("plan".to_owned(), Value::Str(self.fingerprint.clone())),
            ("slot".to_owned(), Value::U64(slot as u64)),
            ("geometry".to_owned(), Value::Str(geometry.to_owned())),
            ("benchmark".to_owned(), Value::Str(benchmark.to_owned())),
            ("result".to_owned(), result.clone()),
        ]);
        let mut line = serde_json::to_string(&entry).expect("journal entries serialize");
        line.push('\n');
        let mut file = self.file.lock().expect("journal lock poisoned");
        file.write_all(line.as_bytes())?;
        file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache8t_exec::GeometryPoint;
    use cache8t_trace::profiles;

    fn plan() -> SweepPlan {
        SweepPlan {
            profiles: vec![
                profiles::by_name("gcc").expect("profile"),
                profiles::by_name("mcf").expect("profile"),
            ],
            geometries: vec![GeometryPoint::named("baseline").expect("geometry")],
            ops: 1_000,
            seed: 9,
        }
    }

    fn bench_value(name: &str) -> Value {
        Value::Object(vec![
            ("name".to_owned(), Value::Str(name.to_owned())),
            ("payload".to_owned(), Value::U64(42)),
        ])
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let base = plan_fingerprint(&plan(), None);
        assert_eq!(base, plan_fingerprint(&plan(), None), "deterministic");
        assert_eq!(base.len(), 16);

        let mut other = plan();
        other.seed = 10;
        assert_ne!(base, plan_fingerprint(&other, None), "seed changes it");
        let mut other = plan();
        other.ops = 1_001;
        assert_ne!(base, plan_fingerprint(&other, None), "ops changes it");
        let mut other = plan();
        other.profiles.pop();
        assert_ne!(base, plan_fingerprint(&other, None), "profiles change it");
        assert_ne!(
            base,
            plan_fingerprint(&plan(), Some(500)),
            "cadence changes it"
        );
    }

    #[test]
    fn journal_round_trips_and_resumes() {
        let dir = std::env::temp_dir().join(format!("c8t-journal-{}", std::process::id()));
        let plan = plan();
        let fp = plan_fingerprint(&plan, None);
        let journal = Journal::open(&dir, &fp).expect("open");
        journal
            .append(0, "baseline", "gcc", &bench_value("gcc"))
            .expect("append");
        journal
            .append(1, "baseline", "mcf", &bench_value("mcf"))
            .expect("append");

        let load = load_journal(&journal_path(&dir, &fp), &plan, &fp).expect("load");
        assert!(!load.torn);
        assert_eq!(load.slots.len(), 2);
        assert_eq!(
            load.slots[&0].get("name").and_then(Value::as_str),
            Some("gcc")
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_journal_loads_empty() {
        let plan = plan();
        let fp = plan_fingerprint(&plan, None);
        let load = load_journal(Path::new("/nonexistent/never.jsonl"), &plan, &fp).expect("load");
        assert!(load.slots.is_empty());
        assert!(!load.torn);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let dir = std::env::temp_dir().join(format!("c8t-journal-torn-{}", std::process::id()));
        let plan = plan();
        let fp = plan_fingerprint(&plan, None);
        let journal = Journal::open(&dir, &fp).expect("open");
        journal
            .append(0, "baseline", "gcc", &bench_value("gcc"))
            .expect("append");
        // Simulate a crash mid-append: a partial second line with no
        // trailing newline.
        let path = journal_path(&dir, &fp);
        let mut file = OpenOptions::new().append(true).open(&path).expect("open");
        file.write_all(br#"{"v":"1","plan":""#).expect("tear");
        drop(file);

        let load = load_journal(&path, &plan, &fp).expect("load");
        assert!(load.torn, "the torn tail must be reported");
        assert_eq!(load.slots.len(), 1, "the valid prefix survives");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopening_a_torn_journal_repairs_the_tail() {
        let dir = std::env::temp_dir().join(format!("c8t-journal-repair-{}", std::process::id()));
        let plan = plan();
        let fp = plan_fingerprint(&plan, None);
        let journal = Journal::open(&dir, &fp).expect("open");
        journal
            .append(0, "baseline", "gcc", &bench_value("gcc"))
            .expect("append");
        drop(journal);
        let path = journal_path(&dir, &fp);
        let mut file = OpenOptions::new().append(true).open(&path).expect("open");
        file.write_all(br#"{"v":"1","pl"#).expect("tear");
        drop(file);

        // A fresh open (the restart path) must drop the torn bytes so
        // the next append starts a clean line.
        let journal = Journal::open(&dir, &fp).expect("reopen");
        assert!(journal.repaired(), "the torn tail was truncated at open");
        journal
            .append(1, "baseline", "mcf", &bench_value("mcf"))
            .expect("append");
        let load = load_journal(&path, &plan, &fp).expect("load");
        assert!(!load.torn, "the repaired journal has no torn tail");
        assert_eq!(load.slots.len(), 2, "both entries survive the crash");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clean_journals_report_no_repair() {
        let dir = std::env::temp_dir().join(format!("c8t-journal-clean-{}", std::process::id()));
        let fp = plan_fingerprint(&plan(), None);
        let journal = Journal::open(&dir, &fp).expect("open");
        assert!(!journal.repaired(), "a fresh journal needs no repair");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn directory_stats_sum_journal_files_only() {
        let dir = std::env::temp_dir().join(format!("c8t-journal-stats-{}", std::process::id()));
        assert_eq!(journal_dir_stats(&dir), JournalDirStats::default());

        let plan = plan();
        let fp = plan_fingerprint(&plan, None);
        let journal = Journal::open(&dir, &fp).expect("open");
        journal
            .append(0, "baseline", "gcc", &bench_value("gcc"))
            .expect("append");
        std::fs::write(dir.join("not-a-journal.txt"), b"ignored").expect("write");

        let stats = journal_dir_stats(&dir);
        assert_eq!(stats.files, 1, "non-journal files are excluded");
        let on_disk = std::fs::metadata(journal_path(&dir, &fp))
            .expect("metadata")
            .len();
        assert_eq!(stats.bytes, on_disk);
        assert!(stats.bytes > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_or_mismatched_lines_end_replay() {
        let plan = plan();
        let fp = plan_fingerprint(&plan, None);
        // Wrong fingerprint.
        assert!(parse_entry(
            r#"{"v":"1","plan":"deadbeefdeadbeef","slot":0,"geometry":"baseline","benchmark":"gcc","result":{"name":"gcc"}}"#,
            &plan, 2, &fp,
        )
        .is_none());
        // Slot out of range.
        let line = format!(
            r#"{{"v":"1","plan":"{fp}","slot":7,"geometry":"baseline","benchmark":"gcc","result":{{"name":"gcc"}}}}"#
        );
        assert!(parse_entry(&line, &plan, 2, &fp).is_none());
        // Benchmark name disagrees with the slot.
        let line = format!(
            r#"{{"v":"1","plan":"{fp}","slot":0,"geometry":"baseline","benchmark":"mcf","result":{{"name":"mcf"}}}}"#
        );
        assert!(parse_entry(&line, &plan, 2, &fp).is_none());
        // A valid line parses.
        let line = format!(
            r#"{{"v":"1","plan":"{fp}","slot":1,"geometry":"baseline","benchmark":"mcf","result":{{"name":"mcf"}}}}"#
        );
        let (slot, value) = parse_entry(&line, &plan, 2, &fp).expect("valid");
        assert_eq!(slot, 1);
        assert_eq!(value.get("name").and_then(Value::as_str), Some("mcf"));
    }
}
