//! A thin blocking client for the serve protocol, shared by the
//! `cache8t client` subcommand and the end-to-end tests.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

use serde_json::Value;

use cache8t_obs::metrics::prometheus_text;

use crate::protocol::{request_line, PlanSpec};
use crate::server::UNIX_PREFIX;

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn split(&self) -> std::io::Result<(Box<dyn BufRead>, Box<dyn Write>)> {
        Ok(match self {
            Stream::Tcp(s) => (
                Box::new(BufReader::new(s.try_clone()?)),
                Box::new(s.try_clone()?),
            ),
            #[cfg(unix)]
            Stream::Unix(s) => (
                Box::new(BufReader::new(s.try_clone()?)),
                Box::new(s.try_clone()?),
            ),
        })
    }
}

/// An error from a client call: transport trouble or a server-side
/// `{"ok": false}` answer.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server answered with a structured error.
    Server {
        /// The machine-readable error code.
        code: String,
        /// The human-readable message.
        message: String,
    },
    /// The server's answer was not a protocol object.
    Malformed(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
            ClientError::Malformed(line) => write!(f, "unparseable server response: {line}"),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected protocol client.
pub struct Client {
    reader: Box<dyn BufRead>,
    writer: Box<dyn Write>,
}

impl Client {
    /// Connects to `addr` (`host:port` or `unix:/path`).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = if let Some(path) = addr.strip_prefix(UNIX_PREFIX) {
            #[cfg(unix)]
            {
                Stream::Unix(UnixStream::connect(path)?)
            }
            #[cfg(not(unix))]
            {
                let _unused = path;
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "unix sockets are not available on this platform",
                )));
            }
        } else {
            Stream::Tcp(TcpStream::connect(addr)?)
        };
        let (reader, writer) = stream.split()?;
        Ok(Client { reader, writer })
    }

    /// Like [`connect`](Client::connect), retrying until the server
    /// accepts or `timeout` passes — the standard way to wait for a
    /// daemon that was just spawned.
    ///
    /// # Errors
    ///
    /// The last connection error once the deadline passes.
    pub fn connect_with_retry(addr: &str, timeout: Duration) -> Result<Client, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            match Client::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }

    fn read_response(&mut self) -> Result<Value, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let value: Value = serde_json::from_str(line.trim())
            .map_err(|_| ClientError::Malformed(line.trim().to_owned()))?;
        match value.get("ok").and_then(Value::as_bool) {
            Some(true) => Ok(value),
            Some(false) => {
                let error = value.get("error");
                let field = |name: &str| {
                    error
                        .and_then(|e| e.get(name))
                        .and_then(Value::as_str)
                        .unwrap_or("?")
                        .to_owned()
                };
                Err(ClientError::Server {
                    code: field("code"),
                    message: field("message"),
                })
            }
            None => Err(ClientError::Malformed(line.trim().to_owned())),
        }
    }

    /// Sends one request line and reads one response line.
    ///
    /// # Errors
    ///
    /// Transport failures or an `{"ok": false}` answer.
    pub fn request(
        &mut self,
        verb: &str,
        fields: Vec<(String, Value)>,
    ) -> Result<Value, ClientError> {
        let mut line = request_line(verb, fields);
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Submits a plan; returns the job id.
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn submit(&mut self, spec: &PlanSpec) -> Result<String, ClientError> {
        let response = self.request("submit", vec![("plan".to_owned(), spec.to_value())])?;
        response
            .get("job")
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| ClientError::Malformed("submit response without `job`".to_owned()))
    }

    /// Job detail (`Some(id)`) or the whole-server summary (`None`).
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn status(&mut self, job: Option<&str>) -> Result<Value, ClientError> {
        let fields = match job {
            Some(id) => vec![("job".to_owned(), Value::Str(id.to_owned()))],
            None => Vec::new(),
        };
        self.request("status", fields)
    }

    /// Fetches a completed job's sweep document.
    ///
    /// # Errors
    ///
    /// `not-finished` server errors until the job completes.
    pub fn results(&mut self, job: &str) -> Result<Value, ClientError> {
        let response = self.request(
            "results",
            vec![("job".to_owned(), Value::Str(job.to_owned()))],
        )?;
        response
            .get("document")
            .cloned()
            .ok_or_else(|| ClientError::Malformed("results response without `document`".to_owned()))
    }

    /// Polls `results` until the job completes or `timeout` passes.
    ///
    /// # Errors
    ///
    /// The terminal server error (failed/cancelled jobs keep answering
    /// `not-finished`; callers watch `status` for those), transport
    /// failures, or the last error at the deadline.
    pub fn wait_for_results(&mut self, job: &str, timeout: Duration) -> Result<Value, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.results(job) {
                Ok(document) => return Ok(document),
                Err(ClientError::Server { code, .. })
                    if code == "not-finished" && Instant::now() < deadline =>
                {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Fires a job's cancel token.
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn cancel(&mut self, job: &str) -> Result<Value, ClientError> {
        self.request(
            "cancel",
            vec![("job".to_owned(), Value::Str(job.to_owned()))],
        )
    }

    /// Asks the server to shut down.
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request("shutdown", Vec::new()).map(|_| ())
    }

    /// Fetches the daemon's liveness summary (`health` verb).
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn health(&mut self) -> Result<Value, ClientError> {
        self.request("health", Vec::new())
    }

    /// Fetches the daemon's full metric snapshot (`metrics` verb).
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn metrics(&mut self) -> Result<Value, ClientError> {
        self.request("metrics", Vec::new())
    }

    /// Streams `watch` events to `on_event` until the terminal
    /// `"done"` row (passed to the callback last); returns the final
    /// state name.
    ///
    /// # Errors
    ///
    /// Transport failures or a structured error instead of a stream.
    pub fn watch(
        &mut self,
        job: &str,
        mut on_event: impl FnMut(&Value),
    ) -> Result<String, ClientError> {
        self.watch_from(job, 0, &mut on_event)
    }

    /// Like [`watch`](Client::watch), but resumes after ring sequence
    /// number `after` — rows with `seq <= after` are skipped
    /// server-side. `0` replays the whole retained ring.
    ///
    /// # Errors
    ///
    /// Transport failures or a structured error instead of a stream.
    pub fn watch_from(
        &mut self,
        job: &str,
        after: u64,
        mut on_event: impl FnMut(&Value),
    ) -> Result<String, ClientError> {
        let mut fields = vec![("job".to_owned(), Value::Str(job.to_owned()))];
        if after > 0 {
            fields.push(("after".to_owned(), Value::U64(after)));
        }
        let mut line = request_line("watch", fields);
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        loop {
            let row = self.read_response()?;
            on_event(&row);
            if row.get("event").and_then(Value::as_str) == Some("done") {
                return Ok(row
                    .get("state")
                    .and_then(Value::as_str)
                    .unwrap_or("?")
                    .to_owned());
            }
        }
    }
}

/// Longest pause between reconnect attempts in [`watch_resumable`].
const WATCH_BACKOFF_CAP: Duration = Duration::from_secs(5);

/// Watches `job` on the daemon at `addr`, reconnecting with
/// exponential backoff (250ms doubling to 5s) whenever the transport
/// drops mid-stream. Each reconnect resumes from the last event
/// sequence number already delivered, so `on_event` sees every row at
/// most once. Returns the job's final state name.
///
/// Structured server errors (unknown job, shutdown refusals) are
/// terminal and propagate immediately — only transport failures
/// trigger a reconnect.
///
/// # Errors
///
/// A structured server error, or a transport error on the *initial*
/// connection (there is nothing to resume yet).
pub fn watch_resumable(
    addr: &str,
    job: &str,
    mut on_event: impl FnMut(&Value),
) -> Result<String, ClientError> {
    let mut last_seq = 0u64;
    let mut backoff = Duration::from_millis(250);
    let mut connected_once = false;
    loop {
        let mut client = match Client::connect(addr) {
            Ok(client) => client,
            Err(e) if !connected_once => return Err(e),
            Err(_) => {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(WATCH_BACKOFF_CAP);
                continue;
            }
        };
        connected_once = true;
        let outcome = client.watch_from(job, last_seq, |row| {
            if let Some(seq) = row.get("seq").and_then(Value::as_u64) {
                last_seq = last_seq.max(seq);
            }
            on_event(row);
        });
        match outcome {
            Ok(state) => return Ok(state),
            Err(e @ ClientError::Server { .. }) => return Err(e),
            Err(_) => {
                // Transport dropped mid-stream; back off and resume
                // from the last delivered sequence number.
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(WATCH_BACKOFF_CAP);
            }
        }
    }
}

/// Renders a `metrics` response (or any value containing its
/// `registry` snapshot) as Prometheus text exposition, with every
/// family prefixed `cache8t_`.
pub fn render_metrics_text(response: &Value) -> String {
    let registry = response.get("registry").unwrap_or(response);
    prometheus_text("cache8t", registry)
}
