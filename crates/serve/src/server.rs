//! The daemon: socket listener, per-connection request loop, and the
//! `watch` event stream.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use serde_json::Value;

use cache8t_exec::{ExecOptions, TraceStore};
use cache8t_obs::{timeline, OpLog};

use crate::protocol::{codes, ok_response, parse_request, ProtocolError, Request};
use crate::state::{JobState, ServerState};

/// Prefix selecting a unix-domain socket in `--listen` specs.
pub const UNIX_PREFIX: &str = "unix:";

/// Bound on one request line. Every legitimate request — including a
/// full-suite `submit` — is a few KB; a line this long is a confused
/// or hostile client, and buffering it without bound would let one
/// connection grow the daemon's memory arbitrarily.
pub const MAX_REQUEST_LINE: usize = 256 * 1024;

/// Daemon configuration.
#[derive(Debug)]
pub struct ServeConfig {
    /// `host:port` for TCP, or `unix:/path/to.sock`.
    pub listen: String,
    /// Journal directory; `None` disables checkpoint/resume.
    pub checkpoint_dir: Option<PathBuf>,
    /// Pool configuration for every sweep.
    pub exec: ExecOptions,
    /// The shared trace store (stays warm across jobs and clients).
    pub store: Arc<TraceStore>,
    /// The operational log sink ([`OpLog::disabled`] for silence).
    pub oplog: Arc<OpLog>,
    /// Replay sweep traces as bounded-memory chunk streams of this many
    /// ops instead of materializing them (`None`: materialize). Results
    /// are byte-identical either way.
    pub stream_chunk_ops: Option<usize>,
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

/// Either stream type, unified for the connection handler.
trait Conn: std::io::Read + Write + Send {
    fn try_clone_reader(&self) -> std::io::Result<Box<dyn std::io::Read + Send>>;
    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()>;
}

impl Conn for TcpStream {
    fn try_clone_reader(&self) -> std::io::Result<Box<dyn std::io::Read + Send>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        TcpStream::set_read_timeout(self, timeout)
    }
}

#[cfg(unix)]
impl Conn for UnixStream {
    fn try_clone_reader(&self) -> std::io::Result<Box<dyn std::io::Read + Send>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        UnixStream::set_read_timeout(self, timeout)
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    state: Arc<ServerState>,
    listener: Listener,
    local: String,
}

impl Server {
    /// Binds the configured address. For TCP port 0 the resolved port
    /// is available via [`local_addr`](Server::local_addr).
    ///
    /// # Errors
    ///
    /// Propagates bind failures (address in use, bad path, ...).
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let state = Arc::new(ServerState::new(
            config.exec,
            config.store,
            config.checkpoint_dir,
            config.oplog,
            config.stream_chunk_ops,
        ));
        if let Some(path) = config.listen.strip_prefix(UNIX_PREFIX) {
            #[cfg(unix)]
            {
                let path = PathBuf::from(path);
                // A previous unclean shutdown leaves the socket file
                // behind; rebinding it is the expected restart path.
                if path.exists() {
                    std::fs::remove_file(&path)?;
                }
                let listener = UnixListener::bind(&path)?;
                listener.set_nonblocking(true)?;
                let local = format!("{UNIX_PREFIX}{}", path.display());
                return Ok(Server {
                    state,
                    listener: Listener::Unix(listener, path),
                    local,
                });
            }
            #[cfg(not(unix))]
            {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "unix sockets are not available on this platform",
                ));
            }
        }
        let listener = TcpListener::bind(&config.listen)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?.to_string();
        Ok(Server {
            state,
            listener: Listener::Tcp(listener),
            local,
        })
    }

    /// The bound address, in the same shape `--listen` takes.
    pub fn local_addr(&self) -> &str {
        &self.local
    }

    /// The shared state (tests drive it directly).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Runs the accept loop and the executor until a `shutdown`
    /// request arrives, then drains and returns.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures other than `WouldBlock`.
    pub fn run(self) -> std::io::Result<()> {
        timeline::set_track_name("serve accept loop");
        let state = Arc::clone(&self.state);
        let executor = {
            let state = Arc::clone(&state);
            thread::spawn(move || {
                timeline::set_track_name("serve executor");
                state.run_executor();
            })
        };
        let mut connections: Vec<thread::JoinHandle<()>> = Vec::new();
        fn spawn_conn<S: Conn + 'static>(
            connections: &mut Vec<thread::JoinHandle<()>>,
            state: &Arc<ServerState>,
            stream: S,
        ) {
            let state = Arc::clone(state);
            state.count("serve.connections");
            state.oplog.info(
                "accept",
                None,
                vec![(
                    "connections".to_owned(),
                    Value::U64(state.counter_value("serve.connections")),
                )],
            );
            // Reads time out so idle connections notice shutdown; a
            // client parked between requests must not pin the server.
            let _unused = stream.set_read_timeout(Some(Duration::from_millis(200)));
            connections.push(thread::spawn(move || handle_connection(&state, stream)));
        }
        loop {
            if state.is_shutting_down() {
                break;
            }
            let accepted = match &self.listener {
                Listener::Tcp(listener) => match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false)?;
                        spawn_conn(&mut connections, &state, stream);
                        true
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => false,
                    Err(e) => return Err(e),
                },
                #[cfg(unix)]
                Listener::Unix(listener, _) => match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false)?;
                        spawn_conn(&mut connections, &state, stream);
                        true
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => false,
                    Err(e) => return Err(e),
                },
            };
            if !accepted {
                thread::sleep(Duration::from_millis(20));
            }
            connections.retain(|handle| !handle.is_finished());
        }
        for handle in connections {
            let _unused = handle.join();
        }
        let _unused = executor.join();
        #[cfg(unix)]
        if let Listener::Unix(_, path) = &self.listener {
            let _unused = std::fs::remove_file(path);
        }
        Ok(())
    }
}

fn write_line(out: &mut dyn Write, value: &Value) -> std::io::Result<()> {
    let mut line = serde_json::to_string(value).expect("response objects serialize");
    line.push('\n');
    out.write_all(line.as_bytes())?;
    out.flush()
}

/// One client session: read request lines, answer each, keep the
/// connection open across errors (protocol hygiene: a bad line gets a
/// structured error, never a dropped connection).
fn handle_connection<S: Conn>(state: &Arc<ServerState>, mut stream: S) {
    let Ok(read_half) = stream.try_clone_reader() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    loop {
        // Reads time out (see `spawn_conn`); a timed-out `read_line`
        // keeps whatever bytes already arrived in `line`, so the next
        // pass resumes the same request rather than corrupting it.
        match reader.read_line(&mut line) {
            Ok(0) => return, // peer hung up
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if state.is_shutting_down() {
                    return;
                }
                // A request still arriving after the size bound will
                // never parse; answer once and drop the connection
                // rather than buffering it to completion.
                if line.len() > MAX_REQUEST_LINE {
                    state.count("serve.errors");
                    state.oplog.warn(
                        "oversized-request",
                        None,
                        vec![("bytes".to_owned(), Value::U64(line.len() as u64))],
                    );
                    let _unused = write_line(&mut stream, &oversized_error().to_value());
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        if line.trim().is_empty() {
            line.clear();
            continue;
        }
        state.count("serve.requests");
        if line.len() > MAX_REQUEST_LINE {
            state.count("serve.errors");
            state.oplog.warn(
                "oversized-request",
                None,
                vec![("bytes".to_owned(), Value::U64(line.len() as u64))],
            );
            if write_line(&mut stream, &oversized_error().to_value()).is_err() {
                return;
            }
            line.clear();
            continue;
        }
        let started = Instant::now();
        let (verb, response) = match parse_request(&line) {
            Ok(request) => (
                verb_name(&request),
                handle_request(state, request, &mut stream),
            ),
            Err(error) => ("invalid", Err(error)),
        };
        state.observe_verb(
            verb,
            started.elapsed().as_micros().min(u64::MAX as u128) as u64,
        );
        let outcome = match response {
            Ok(Some(value)) => write_line(&mut stream, &value),
            Ok(None) => Ok(()), // the handler streamed its own output
            Err(error) => {
                state.count("serve.errors");
                write_line(&mut stream, &error.to_value())
            }
        };
        if outcome.is_err() {
            return;
        }
        line.clear();
    }
}

fn oversized_error() -> ProtocolError {
    ProtocolError::new(
        codes::OVERSIZED_REQUEST,
        format!("request line exceeds {MAX_REQUEST_LINE} bytes"),
    )
}

/// The wire name of a request, for per-verb metrics.
fn verb_name(request: &Request) -> &'static str {
    match request {
        Request::Submit(_) => "submit",
        Request::Status { .. } => "status",
        Request::Results { .. } => "results",
        Request::Watch { .. } => "watch",
        Request::Cancel { .. } => "cancel",
        Request::Health => "health",
        Request::Metrics => "metrics",
        Request::Shutdown => "shutdown",
    }
}

/// Executes one request. `Ok(None)` means the handler already wrote
/// its response (the `watch` stream).
fn handle_request(
    state: &Arc<ServerState>,
    request: Request,
    out: &mut dyn Write,
) -> Result<Option<Value>, ProtocolError> {
    match request {
        Request::Submit(spec) => {
            if state.is_shutting_down() {
                return Err(ProtocolError::new(
                    codes::SHUTTING_DOWN,
                    "server is shutting down",
                ));
            }
            let plan = spec.resolve()?;
            let job = state.submit(plan, spec);
            Ok(Some(ok_response(vec![
                ("job".to_owned(), Value::Str(job.id.clone())),
                (
                    "fingerprint".to_owned(),
                    Value::Str(job.fingerprint.clone()),
                ),
            ])))
        }
        Request::Status { job: None } => {
            let jobs = state.jobs().iter().map(|j| j.summary()).collect();
            Ok(Some(ok_response(vec![
                ("jobs".to_owned(), Value::Array(jobs)),
                ("server".to_owned(), state.server_status()),
            ])))
        }
        Request::Status { job: Some(id) } => {
            let job = lookup(state, &id)?;
            Ok(Some(ok_response(vec![("job".to_owned(), job.summary())])))
        }
        Request::Results { job: id } => {
            let job = lookup(state, &id)?;
            match job.document() {
                Some(document) => Ok(Some(ok_response(vec![
                    ("job".to_owned(), Value::Str(job.id.clone())),
                    ("document".to_owned(), document),
                ]))),
                None => Err(ProtocolError::new(
                    codes::NOT_FINISHED,
                    format!("job `{id}` is {}, not completed", job.state_name()),
                )),
            }
        }
        Request::Watch { job: id, after } => {
            let job = lookup(state, &id)?;
            stream_watch(state, &job, after, out).map_err(|_| {
                // The watcher hung up; nothing left to answer.
                ProtocolError::new(codes::UNKNOWN_JOB, "watch stream closed")
            })?;
            Ok(None)
        }
        Request::Cancel { job: id } => {
            let job = lookup(state, &id)?;
            job.cancel.cancel();
            state.oplog.info(
                "cancel",
                Some(&job.id),
                vec![("state".to_owned(), Value::Str(job.state_name().to_owned()))],
            );
            Ok(Some(ok_response(vec![
                ("job".to_owned(), Value::Str(job.id.clone())),
                ("state".to_owned(), Value::Str(job.state_name().to_owned())),
            ])))
        }
        Request::Health => {
            let Value::Object(fields) = state.health_value() else {
                unreachable!("health_value returns an object");
            };
            Ok(Some(ok_response(fields)))
        }
        Request::Metrics => {
            let Value::Object(fields) = state.metrics_value() else {
                unreachable!("metrics_value returns an object");
            };
            Ok(Some(ok_response(fields)))
        }
        Request::Shutdown => {
            state.request_shutdown();
            Ok(Some(ok_response(vec![])))
        }
    }
}

fn lookup(state: &Arc<ServerState>, id: &str) -> Result<Arc<JobState>, ProtocolError> {
    state
        .job(id)
        .ok_or_else(|| ProtocolError::new(codes::UNKNOWN_JOB, format!("no job `{id}`")))
}

/// Streams a job's event rows until it goes terminal, then a final
/// `{"ok":true,"event":"done","state":...}` row. Every row is an
/// `ok:true` object so clients can share one line parser, and carries
/// its ring sequence number (`seq`) so a dropped watcher can resume
/// with `{"after": last_seen_seq}` instead of replaying the ring.
///
/// Server shutdown ends the stream too (with the same `done` row):
/// a watch on a job that will never run — queued behind a shutdown —
/// must not pin its connection thread forever.
fn stream_watch(
    state: &Arc<ServerState>,
    job: &Arc<JobState>,
    after: u64,
    out: &mut dyn Write,
) -> std::io::Result<()> {
    let mut last_seq = after;
    loop {
        let (rows, seq, terminal) = job.events_after(last_seq);
        last_seq = seq;
        for row in rows {
            let Value::Object(fields) = row else { continue };
            write_line(out, &ok_response(fields))?;
        }
        if terminal || state.is_shutting_down() {
            write_line(
                out,
                &ok_response(vec![
                    ("event".to_owned(), Value::Str("done".to_owned())),
                    ("job".to_owned(), Value::Str(job.id.clone())),
                    ("state".to_owned(), Value::Str(job.state_name().to_owned())),
                ]),
            )?;
            return Ok(());
        }
        job.wait_for_events(last_seq, Duration::from_millis(200));
    }
}
