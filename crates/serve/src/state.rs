//! Server-side job state: the registry, the event log watchers follow,
//! and the single-executor sweep runner with checkpoint resume.
//!
//! Jobs run one at a time on a dedicated executor thread — each sweep
//! already saturates the host through the work-stealing pool, so
//! running two concurrently would only fight over cores. Clients
//! multiplex freely: submits queue, `status`/`watch`/`results` answer
//! from shared state at any time, and every job draws traces from the
//! server's one warm [`TraceStore`], so later jobs skip generation the
//! first one paid for.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use serde_json::Value;

use cache8t_exec::{
    document_with_benchmarks, metrics_document, run_sweep, BenchmarkHook, CancelToken, ExecOptions,
    ProgressHook, SweepOptions, SweepPlan, TraceStore,
};
use cache8t_obs::{timeline, MetricRegistry, OpLog, ProgressSnapshot, SamplerConfig, TimelineSpan};

use crate::journal::{journal_dir_stats, journal_path, load_journal, plan_fingerprint, Journal};
use crate::protocol::{PlanSpec, PROTOCOL_VERSION};

/// Bound on each job's event ring. Watchers that keep up see every
/// event; a watcher that falls this far behind (or attaches late) gets
/// the ring's suffix plus the authoritative terminal state.
pub const EVENT_RING_CAPACITY: usize = 4096;

/// Where a job is in its lifecycle.
#[derive(Debug)]
pub enum JobPhase {
    /// Waiting for the executor.
    Queued,
    /// On the executor now.
    Running,
    /// Finished; the document is the same bytes a batch run emits.
    Completed {
        /// The canonical sweep document.
        document: Value,
        /// Scheduler telemetry for the (possibly resumed) run.
        metrics: Value,
    },
    /// At least one unit job panicked through its retry budget.
    Failed {
        /// The failure summary.
        message: String,
    },
    /// The cancel token fired; completed benchmarks stay journalled,
    /// so a resubmit of the same plan resumes instead of restarting.
    Cancelled,
}

impl JobPhase {
    /// The wire name of this phase.
    pub fn state_name(&self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Completed { .. } => "completed",
            JobPhase::Failed { .. } => "failed",
            JobPhase::Cancelled => "cancelled",
        }
    }

    fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobPhase::Completed { .. } | JobPhase::Failed { .. } | JobPhase::Cancelled
        )
    }
}

/// The mutable half of a job, behind its lock.
#[derive(Debug)]
pub struct JobInner {
    /// Lifecycle phase.
    pub phase: JobPhase,
    /// Latest pool progress, once the job is running.
    pub progress: Option<ProgressSnapshot>,
    /// Benchmarks restored from the checkpoint journal at start.
    pub restored: usize,
    /// Bounded ring of (sequence, event row) pairs for `watch`.
    events: VecDeque<(u64, Value)>,
    next_seq: u64,
}

/// One submitted sweep.
#[derive(Debug)]
pub struct JobState {
    /// Stable id (`job-N`).
    pub id: String,
    /// The resolved plan.
    pub plan: SweepPlan,
    /// The spec as submitted (echoed in `status`).
    pub spec: PlanSpec,
    /// Checkpoint-journal fingerprint of the plan.
    pub fingerprint: String,
    /// Fires to drain this job's queued units.
    pub cancel: CancelToken,
    inner: Mutex<JobInner>,
    wakeup: Condvar,
}

impl JobState {
    fn new(id: String, plan: SweepPlan, spec: PlanSpec) -> Self {
        let fingerprint = plan_fingerprint(&plan, spec.series_cadence);
        JobState {
            id,
            plan,
            spec,
            fingerprint,
            cancel: CancelToken::new(),
            inner: Mutex::new(JobInner {
                phase: JobPhase::Queued,
                progress: None,
                restored: 0,
                events: VecDeque::new(),
                next_seq: 1,
            }),
            wakeup: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, JobInner> {
        self.inner.lock().expect("job state poisoned")
    }

    /// Appends an event row and wakes watchers. The row carries its
    /// ring sequence number in-band (`"seq"`), which is what lets a
    /// disconnected watcher resume with `watch {"after": seq}` without
    /// replaying events it already saw.
    pub fn push_event(&self, mut row: Vec<(String, Value)>) {
        let mut inner = self.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        row.insert(0, ("seq".to_owned(), Value::U64(seq)));
        row.insert(0, ("job".to_owned(), Value::Str(self.id.clone())));
        if inner.events.len() == EVENT_RING_CAPACITY {
            inner.events.pop_front();
        }
        inner.events.push_back((seq, Value::Object(row)));
        drop(inner);
        self.wakeup.notify_all();
    }

    fn set_phase(&self, phase: JobPhase) {
        let state = phase.state_name();
        self.lock().phase = phase;
        self.push_event(vec![
            ("event".to_owned(), Value::Str("state".to_owned())),
            ("state".to_owned(), Value::Str(state.to_owned())),
        ]);
    }

    fn set_progress(&self, snapshot: ProgressSnapshot) {
        self.lock().progress = Some(snapshot);
        self.push_event(vec![
            ("event".to_owned(), Value::Str("progress".to_owned())),
            ("progress".to_owned(), snapshot.to_value()),
        ]);
    }

    /// The `status` summary object for this job.
    pub fn summary(&self) -> Value {
        let inner = self.lock();
        let mut fields = vec![
            ("id".to_owned(), Value::Str(self.id.clone())),
            (
                "state".to_owned(),
                Value::Str(inner.phase.state_name().to_owned()),
            ),
            (
                "fingerprint".to_owned(),
                Value::Str(self.fingerprint.clone()),
            ),
            ("plan".to_owned(), self.spec.to_value()),
            ("restored".to_owned(), Value::U64(inner.restored as u64)),
        ];
        if let Some(progress) = &inner.progress {
            fields.push(("progress".to_owned(), progress.to_value()));
        }
        if let JobPhase::Failed { message } = &inner.phase {
            fields.push(("message".to_owned(), Value::Str(message.clone())));
        }
        if let JobPhase::Completed { metrics, .. } = &inner.phase {
            fields.push(("metrics".to_owned(), metrics.clone()));
        }
        Value::Object(fields)
    }

    /// The completed document, if the job is done.
    pub fn document(&self) -> Option<Value> {
        match &self.lock().phase {
            JobPhase::Completed { document, .. } => Some(document.clone()),
            _ => None,
        }
    }

    /// The phase's wire name right now.
    pub fn state_name(&self) -> &'static str {
        self.lock().phase.state_name()
    }

    /// Collects event rows with sequence numbers beyond `after`,
    /// returning `(rows, last_seq, terminal)`. When `terminal` is true
    /// the job will emit no further events.
    pub fn events_after(&self, after: u64) -> (Vec<Value>, u64, bool) {
        let inner = self.lock();
        let mut last = after;
        let rows = inner
            .events
            .iter()
            .filter(|(seq, _)| *seq > after)
            .map(|(seq, row)| {
                last = last.max(*seq);
                row.clone()
            })
            .collect();
        (rows, last, inner.phase.is_terminal())
    }

    /// Blocks until the job has events past `after`, goes terminal, or
    /// `timeout` passes.
    pub fn wait_for_events(&self, after: u64, timeout: Duration) {
        let inner = self.lock();
        if inner.next_seq > after + 1 || inner.phase.is_terminal() {
            return;
        }
        let _unused = self
            .wakeup
            .wait_timeout(inner, timeout)
            .expect("job state poisoned");
    }
}

/// Everything the connection handlers and the executor share.
#[derive(Debug)]
pub struct ServerState {
    jobs: Mutex<Vec<Arc<JobState>>>,
    queue: Mutex<VecDeque<Arc<JobState>>>,
    queue_wakeup: Condvar,
    shutdown: AtomicBool,
    next_job: AtomicU64,
    started: Instant,
    /// Operational metrics: `serve.*` counters, per-verb request and
    /// latency histograms, journal/uptime gauges. The `metrics` verb
    /// snapshots this registry verbatim.
    metrics: Mutex<MetricRegistry>,
    /// The structured operational log every daemon event lands in.
    pub oplog: Arc<OpLog>,
    /// Pool configuration every job runs with.
    pub exec: ExecOptions,
    /// The shared, generate-once trace cache.
    pub store: Arc<TraceStore>,
    /// Journal directory; `None` disables checkpointing (and resume).
    pub checkpoint_dir: Option<PathBuf>,
    /// Streamed-replay chunk size every job runs with (`None`:
    /// materialize traces). Documents are byte-identical either way.
    pub stream_chunk_ops: Option<usize>,
}

impl ServerState {
    /// Fresh state around a trace store and pool configuration.
    pub fn new(
        exec: ExecOptions,
        store: Arc<TraceStore>,
        checkpoint_dir: Option<PathBuf>,
        oplog: Arc<OpLog>,
        stream_chunk_ops: Option<usize>,
    ) -> Self {
        ServerState {
            jobs: Mutex::new(Vec::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_wakeup: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_job: AtomicU64::new(1),
            started: Instant::now(),
            metrics: Mutex::new(MetricRegistry::new()),
            oplog,
            exec,
            store,
            checkpoint_dir,
            stream_chunk_ops,
        }
    }

    fn metrics_lock(&self) -> std::sync::MutexGuard<'_, MetricRegistry> {
        self.metrics.lock().expect("metric registry poisoned")
    }

    /// Bumps a `serve.*` counter.
    pub fn count(&self, name: &str) {
        let mut metrics = self.metrics_lock();
        let id = metrics.counter(name);
        metrics.inc(id);
    }

    /// Reads a counter back (0 if it was never bumped).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.metrics_lock().counter_by_name(name).unwrap_or(0)
    }

    /// Records one handled request: bumps the verb's request counter
    /// and feeds its latency histogram (`serve.verb.<verb>.requests` /
    /// `.latency_us`).
    pub fn observe_verb(&self, verb: &str, latency_us: u64) {
        let mut metrics = self.metrics_lock();
        let requests = metrics.counter(&format!("serve.verb.{verb}.requests"));
        metrics.inc(requests);
        let latency = metrics.histogram(&format!("serve.verb.{verb}.latency_us"));
        metrics.observe(latency, latency_us);
    }

    /// Milliseconds since this server state was created.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Jobs waiting for the executor right now.
    pub fn queue_depth(&self) -> usize {
        self.queue.lock().expect("queue poisoned").len()
    }

    /// Job counts per lifecycle phase, in a fixed order.
    pub fn phase_counts(&self) -> [(&'static str, u64); 5] {
        let mut counts = [
            ("queued", 0u64),
            ("running", 0),
            ("completed", 0),
            ("failed", 0),
            ("cancelled", 0),
        ];
        for job in self.jobs.lock().expect("jobs poisoned").iter() {
            let name = job.state_name();
            if let Some(slot) = counts.iter_mut().find(|(n, _)| *n == name) {
                slot.1 += 1;
            }
        }
        counts
    }

    /// `true` once shutdown was requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Requests shutdown and wakes the executor.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.oplog.info(
            "shutdown",
            None,
            vec![(
                "queue_depth".to_owned(),
                Value::U64(self.queue_depth() as u64),
            )],
        );
        timeline::instant("shutdown requested", "job");
        // A running sweep drains promptly; its journal keeps progress.
        for job in self.jobs.lock().expect("jobs poisoned").iter() {
            job.cancel.cancel();
        }
        self.queue_wakeup.notify_all();
    }

    /// Admits a job: registers it, queues it, returns it.
    pub fn submit(&self, plan: SweepPlan, spec: PlanSpec) -> Arc<JobState> {
        let n = self.next_job.fetch_add(1, Ordering::Relaxed);
        let job = Arc::new(JobState::new(format!("job-{n}"), plan, spec));
        self.jobs
            .lock()
            .expect("jobs poisoned")
            .push(Arc::clone(&job));
        self.queue
            .lock()
            .expect("queue poisoned")
            .push_back(Arc::clone(&job));
        self.queue_wakeup.notify_all();
        self.count("serve.jobs_submitted");
        self.oplog.info(
            "submit",
            Some(&job.id),
            vec![
                (
                    "fingerprint".to_owned(),
                    Value::Str(job.fingerprint.clone()),
                ),
                (
                    "profiles".to_owned(),
                    Value::U64(job.plan.profiles.len() as u64),
                ),
                (
                    "geometries".to_owned(),
                    Value::U64(job.plan.geometries.len() as u64),
                ),
                ("ops".to_owned(), Value::U64(job.plan.ops as u64)),
                ("seed".to_owned(), Value::U64(job.plan.seed)),
            ],
        );
        self.log_state(&job, "queued");
        timeline::instant(format!("{} queued", job.id), "job");
        job
    }

    /// Oplogs one job state transition.
    fn log_state(&self, job: &JobState, state: &str) {
        self.oplog.info(
            "state",
            Some(&job.id),
            vec![("state".to_owned(), Value::Str(state.to_owned()))],
        );
    }

    /// Sets a job phase and mirrors the transition into the oplog and
    /// the timeline — every watcher-visible state change leaves an
    /// operator-visible record too.
    fn transition(&self, job: &JobState, phase: JobPhase) {
        let state = phase.state_name();
        job.set_phase(phase);
        self.log_state(job, state);
        timeline::instant(format!("{} {state}", job.id), "job");
    }

    /// Looks a job up by id.
    pub fn job(&self, id: &str) -> Option<Arc<JobState>> {
        self.jobs
            .lock()
            .expect("jobs poisoned")
            .iter()
            .find(|j| j.id == id)
            .cloned()
    }

    /// All jobs, oldest first.
    pub fn jobs(&self) -> Vec<Arc<JobState>> {
        self.jobs.lock().expect("jobs poisoned").clone()
    }

    /// The journal report shared by `status` and `metrics`:
    /// checkpointing on/off, file count, bytes on disk, torn-tail
    /// repairs performed this process.
    pub fn journal_report(&self) -> Value {
        let stats = self
            .checkpoint_dir
            .as_deref()
            .map(journal_dir_stats)
            .unwrap_or_default();
        let repairs = self
            .metrics_lock()
            .counter_by_name("serve.journal.repairs")
            .unwrap_or(0);
        Value::Object(vec![
            (
                "enabled".to_owned(),
                Value::Bool(self.checkpoint_dir.is_some()),
            ),
            ("files".to_owned(), Value::U64(stats.files)),
            ("bytes".to_owned(), Value::U64(stats.bytes)),
            ("repairs".to_owned(), Value::U64(repairs)),
        ])
    }

    /// The trace store's hit split plus the derived hit ratio.
    fn trace_store_report(&self) -> Value {
        let stats = self.store.stats();
        let hits = stats.mem_hits + stats.disk_hits;
        let total = stats.generated + hits;
        let ratio = if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        };
        Value::Object(vec![
            ("generated".to_owned(), Value::U64(stats.generated)),
            ("mem_hits".to_owned(), Value::U64(stats.mem_hits)),
            ("disk_hits".to_owned(), Value::U64(stats.disk_hits)),
            ("hit_ratio".to_owned(), Value::F64(ratio)),
        ])
    }

    /// The `status` server block: `serve.*` counters, the shared trace
    /// store's hit split — the ops plane for "is the cache warm" — and
    /// the journal's disk footprint.
    pub fn server_status(&self) -> Value {
        let counters = {
            let metrics = self.metrics_lock();
            let mut counters: Vec<(String, u64)> = metrics
                .counters()
                .map(|(name, value)| (name.to_owned(), value))
                .collect();
            counters.sort();
            counters
        };
        Value::Object(vec![
            (
                "counters".to_owned(),
                Value::Object(
                    counters
                        .into_iter()
                        .map(|(k, v)| (k, Value::U64(v)))
                        .collect(),
                ),
            ),
            ("trace_store".to_owned(), self.trace_store_report()),
            ("journal".to_owned(), self.journal_report()),
        ])
    }

    /// The `health` response body: a cheap liveness probe.
    pub fn health_value(&self) -> Value {
        let phases = self.phase_counts();
        let active: u64 = phases
            .iter()
            .filter(|(name, _)| matches!(*name, "queued" | "running"))
            .map(|(_, n)| n)
            .sum();
        Value::Object(vec![
            (
                "state".to_owned(),
                Value::Str(
                    if self.is_shutting_down() {
                        "draining"
                    } else {
                        "ok"
                    }
                    .to_owned(),
                ),
            ),
            (
                "protocol".to_owned(),
                Value::Str(PROTOCOL_VERSION.to_owned()),
            ),
            ("uptime_ms".to_owned(), Value::U64(self.uptime_ms())),
            (
                "queue_depth".to_owned(),
                Value::U64(self.queue_depth() as u64),
            ),
            ("jobs_active".to_owned(), Value::U64(active)),
            (
                "jobs_total".to_owned(),
                Value::U64(self.jobs.lock().expect("jobs poisoned").len() as u64),
            ),
        ])
    }

    /// The `metrics` response body: the structured `server` block
    /// (uptime, queue, per-phase job counts, journal, trace store,
    /// oplog emission counters) plus the full registry snapshot. The
    /// point-in-time figures are refreshed into registry gauges first,
    /// so the `registry` block alone is a complete scrape payload
    /// (`cache8t client metrics --text` renders exactly it).
    pub fn metrics_value(&self) -> Value {
        let phases = self.phase_counts();
        let uptime_ms = self.uptime_ms();
        let queue_depth = self.queue_depth() as u64;
        let journal = self.journal_report();
        let trace_store = self.trace_store_report();
        let oplog = self.oplog.stats();

        let registry = {
            let mut metrics = self.metrics_lock();
            let mut set = |name: &str, value: i64| {
                let id = metrics.gauge(name);
                metrics.set(id, value);
            };
            set("serve.uptime_ms", uptime_ms as i64);
            set("serve.queue_depth", queue_depth as i64);
            for (phase, n) in phases {
                set(&format!("serve.jobs.{phase}"), n as i64);
            }
            set(
                "serve.journal.bytes",
                journal.get("bytes").and_then(Value::as_i64).unwrap_or(0),
            );
            set(
                "serve.journal.files",
                journal.get("files").and_then(Value::as_i64).unwrap_or(0),
            );
            for key in ["generated", "mem_hits", "disk_hits"] {
                set(
                    &format!("serve.trace.{key}"),
                    trace_store.get(key).and_then(Value::as_i64).unwrap_or(0),
                );
            }
            set("serve.oplog.emitted", oplog.emitted as i64);
            set("serve.oplog.suppressed", oplog.suppressed as i64);
            set("serve.oplog.dropped", oplog.dropped as i64);
            metrics.to_value()
        };

        let jobs = phases
            .iter()
            .map(|(phase, n)| ((*phase).to_owned(), Value::U64(*n)))
            .collect();
        Value::Object(vec![
            (
                "server".to_owned(),
                Value::Object(vec![
                    ("uptime_ms".to_owned(), Value::U64(uptime_ms)),
                    ("queue_depth".to_owned(), Value::U64(queue_depth)),
                    ("jobs".to_owned(), Value::Object(jobs)),
                    ("journal".to_owned(), journal),
                    ("trace_store".to_owned(), trace_store),
                    (
                        "oplog".to_owned(),
                        Value::Object(vec![
                            ("emitted".to_owned(), Value::U64(oplog.emitted)),
                            ("suppressed".to_owned(), Value::U64(oplog.suppressed)),
                            ("dropped".to_owned(), Value::U64(oplog.dropped)),
                        ]),
                    ),
                ]),
            ),
            ("registry".to_owned(), registry),
        ])
    }

    /// The executor loop: pops queued jobs and runs them until
    /// shutdown. Run this on a dedicated thread.
    pub fn run_executor(self: &Arc<Self>) {
        loop {
            let job = {
                let mut queue = self.queue.lock().expect("queue poisoned");
                loop {
                    if self.is_shutting_down() {
                        return;
                    }
                    if let Some(job) = queue.pop_front() {
                        break job;
                    }
                    queue = self
                        .queue_wakeup
                        .wait_timeout(queue, Duration::from_millis(200))
                        .expect("queue poisoned")
                        .0;
                }
            };
            self.run_job(&job);
        }
    }

    /// Runs one job to a terminal phase, resuming from its journal.
    fn run_job(self: &Arc<Self>, job: &Arc<JobState>) {
        self.transition(job, JobPhase::Running);
        // The whole run is one timeline span on the executor track;
        // with multiple jobs the daemon trace reads as back-to-back
        // `job-N run` slices, each bracketed by the queued/terminal
        // instants the transitions record.
        let _run_span = TimelineSpan::enter_lazy(|| format!("{} run", job.id), "job");
        let plan = &job.plan;
        let n_slots = plan.benchmark_count();

        // Restore the journalled prefix, if any.
        let journal = self.checkpoint_dir.as_ref().and_then(|dir| {
            match Journal::open(dir, &job.fingerprint) {
                Ok(journal) => Some(Arc::new(journal)),
                Err(e) => {
                    self.oplog.error(
                        "journal-open-failed",
                        Some(&job.id),
                        vec![("message".to_owned(), Value::Str(e.to_string()))],
                    );
                    None
                }
            }
        });
        if journal.as_ref().is_some_and(|j| j.repaired()) {
            self.count("serve.journal.repairs");
            self.oplog.warn(
                "journal-repair",
                Some(&job.id),
                vec![(
                    "fingerprint".to_owned(),
                    Value::Str(job.fingerprint.clone()),
                )],
            );
        }
        let restored = match self.checkpoint_dir.as_ref() {
            Some(dir) => {
                match load_journal(&journal_path(dir, &job.fingerprint), plan, &job.fingerprint) {
                    Ok(load) => load.slots,
                    Err(e) => {
                        self.oplog.error(
                            "journal-load-failed",
                            Some(&job.id),
                            vec![("message".to_owned(), Value::Str(e.to_string()))],
                        );
                        HashMap::new()
                    }
                }
            }
            None => HashMap::new(),
        };
        job.lock().restored = restored.len();
        job.push_event(vec![
            ("event".to_owned(), Value::Str("resume".to_owned())),
            ("restored".to_owned(), Value::U64(restored.len() as u64)),
            ("total".to_owned(), Value::U64(n_slots as u64)),
        ]);
        self.oplog.info(
            "resume",
            Some(&job.id),
            vec![
                ("restored".to_owned(), Value::U64(restored.len() as u64)),
                ("total".to_owned(), Value::U64(n_slots as u64)),
            ],
        );
        timeline::instant(
            format!("{} resume {}/{}", job.id, restored.len(), n_slots),
            "job",
        );
        if !restored.is_empty() {
            self.count("serve.jobs_resumed");
        }

        let remaining: Vec<usize> = (0..n_slots).filter(|s| !restored.contains_key(s)).collect();
        let slot_values = Arc::new(Mutex::new(restored));

        let on_benchmark = {
            let slot_values = Arc::clone(&slot_values);
            let journal = journal.clone();
            let job = Arc::clone(job);
            let state = Arc::clone(self);
            BenchmarkHook::new(move |event| {
                let value = serde_json::to_value(event.result);
                if let Some(journal) = &journal {
                    if let Err(e) = journal.append(
                        event.slot,
                        &job.plan.geometries[event.geometry].label,
                        &event.result.name,
                        &value,
                    ) {
                        state.oplog.error(
                            "journal-append-failed",
                            Some(&job.id),
                            vec![("message".to_owned(), Value::Str(e.to_string()))],
                        );
                    }
                }
                // The checkpoint instant lands on whichever worker
                // thread finished the benchmark — the multi-track
                // trace shows where each durable write came from.
                timeline::instant(format!("{} checkpoint slot={}", job.id, event.slot), "job");
                state.oplog.debug(
                    "checkpoint",
                    Some(&job.id),
                    vec![
                        ("slot".to_owned(), Value::U64(event.slot as u64)),
                        (
                            "benchmark".to_owned(),
                            Value::Str(event.result.name.clone()),
                        ),
                        ("completed".to_owned(), Value::U64(event.completed as u64)),
                        ("total".to_owned(), Value::U64(event.total as u64)),
                    ],
                );
                slot_values
                    .lock()
                    .expect("slot values poisoned")
                    .insert(event.slot, value);
                job.push_event(vec![
                    ("event".to_owned(), Value::Str("benchmark".to_owned())),
                    ("slot".to_owned(), Value::U64(event.slot as u64)),
                    (
                        "geometry".to_owned(),
                        Value::Str(job.plan.geometries[event.geometry].label.clone()),
                    ),
                    (
                        "benchmark".to_owned(),
                        Value::Str(event.result.name.clone()),
                    ),
                ]);
                for scheme in event.result.schemes() {
                    for sample in &scheme.series {
                        job.push_event(vec![
                            ("event".to_owned(), Value::Str("series".to_owned())),
                            ("sample".to_owned(), sample.to_value()),
                        ]);
                    }
                }
            })
        };
        let on_progress = {
            let job = Arc::clone(job);
            let ops_per_job = plan.config(0).total_ops() as f64;
            ProgressHook::new(move |p| {
                job.set_progress(ProgressSnapshot {
                    done: p.done,
                    total: p.total,
                    failed: p.failed,
                    eta_ms: p.eta().map(|d| d.as_millis() as u64),
                    mops: p.mops(ops_per_job),
                });
            })
        };

        let options = SweepOptions {
            exec: self.exec,
            shard: None,
            slots: Some(remaining),
            progress: false,
            store: Arc::clone(&self.store),
            series: job.spec.series_cadence.map(|cadence| SamplerConfig {
                cadence: cadence as u64,
                ..SamplerConfig::default()
            }),
            cancel: Some(job.cancel.clone()),
            on_benchmark: Some(on_benchmark),
            on_progress: Some(on_progress),
            stream_chunk_ops: self.stream_chunk_ops,
        };
        let outcome = run_sweep(plan, &options);

        if job.cancel.is_cancelled() {
            self.transition(job, JobPhase::Cancelled);
            self.count("serve.jobs_cancelled");
            return;
        }
        if !outcome.failures.is_empty() {
            let mut message = String::from("sweep jobs failed:");
            for f in &outcome.failures {
                message.push_str(&format!(
                    " {}/{}[{}]: {};",
                    f.geometry, f.benchmark, f.unit, f.message
                ));
            }
            self.transition(job, JobPhase::Failed { message });
            self.count("serve.jobs_failed");
            return;
        }

        // Assemble the canonical document from the slot map — restored
        // and fresh benchmarks flow through the same code path the
        // batch `sweep` command uses, which is what makes the output
        // byte-identical to a one-shot run.
        let slot_values = slot_values.lock().expect("slot values poisoned");
        let n_profiles = plan.profiles.len();
        let mut benchmarks: Vec<Vec<Value>> = vec![Vec::new(); plan.geometries.len()];
        for slot in 0..n_slots {
            match slot_values.get(&slot) {
                Some(value) => benchmarks[slot / n_profiles].push(value.clone()),
                None => {
                    self.transition(
                        job,
                        JobPhase::Failed {
                            message: format!("benchmark slot {slot} missing after a complete run"),
                        },
                    );
                    self.count("serve.jobs_failed");
                    return;
                }
            }
        }
        let document = document_with_benchmarks(plan, &benchmarks);
        let metrics = metrics_document(&outcome);
        self.transition(job, JobPhase::Completed { document, metrics });
        self.count("serve.jobs_completed");
    }
}
