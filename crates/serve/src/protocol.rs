//! The versioned JSONL line protocol the daemon speaks.
//!
//! Every request is one JSON object per line with a `"v": "1"` version
//! tag and a `"verb"`; every response line is an object whose first
//! field is `"ok"`. Malformed or unknown requests are answered with a
//! structured error — `{"ok": false, "error": {"code", "message"}}` —
//! and the connection stays open, so one bad line never costs a client
//! its session.

use serde_json::Value;

use cache8t_exec::{GeometryPoint, SweepPlan};
use cache8t_trace::profiles;

/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: &str = "1";

/// Machine-readable error classes. Each is tested individually; codes
/// are part of the wire contract and must stay stable.
pub mod codes {
    /// The line is not valid JSON.
    pub const MALFORMED_JSON: &str = "malformed-json";
    /// The line parsed but is not a JSON object.
    pub const NOT_AN_OBJECT: &str = "not-an-object";
    /// `v` is missing or names a version this build does not speak.
    pub const BAD_VERSION: &str = "bad-version";
    /// The request object has no `verb`.
    pub const MISSING_VERB: &str = "missing-verb";
    /// The `verb` is not one the daemon knows.
    pub const UNKNOWN_VERB: &str = "unknown-verb";
    /// A required field is absent.
    pub const MISSING_FIELD: &str = "missing-field";
    /// A field is present but has the wrong type or an invalid value.
    pub const BAD_FIELD: &str = "bad-field";
    /// A submitted plan names a workload profile outside the suite.
    pub const UNKNOWN_PROFILE: &str = "unknown-profile";
    /// A submitted plan names a geometry outside the named set.
    pub const UNKNOWN_GEOMETRY: &str = "unknown-geometry";
    /// The `job` id does not exist on this server.
    pub const UNKNOWN_JOB: &str = "unknown-job";
    /// `results` was asked of a job that has not completed.
    pub const NOT_FINISHED: &str = "not-finished";
    /// The server is shutting down and no longer accepts work.
    pub const SHUTTING_DOWN: &str = "shutting-down";
    /// A request line exceeded the server's size bound.
    pub const OVERSIZED_REQUEST: &str = "oversized-request";
}

/// A structured protocol error: a stable machine-readable code plus a
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// One of the [`codes`] constants.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ProtocolError {
    /// Shorthand constructor.
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        ProtocolError {
            code,
            message: message.into(),
        }
    }

    /// The `{"ok": false, "error": {...}}` response for this error.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("ok".to_owned(), Value::Bool(false)),
            (
                "error".to_owned(),
                Value::Object(vec![
                    ("code".to_owned(), Value::Str(self.code.to_owned())),
                    ("message".to_owned(), Value::Str(self.message.clone())),
                ]),
            ),
        ])
    }
}

/// The sweep a `submit` request describes, still by name: profiles and
/// geometries are resolved against the built-in tables when the job is
/// admitted.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSpec {
    /// Workload profile names, in output order.
    pub profiles: Vec<String>,
    /// Named geometry labels, in output order.
    pub geometries: Vec<String>,
    /// Measured operations per benchmark.
    pub ops: usize,
    /// Generator seed.
    pub seed: u64,
    /// Telemetry-sampler cadence in ops (`None`: run unsampled).
    pub series_cadence: Option<usize>,
}

impl PlanSpec {
    /// Resolves the named plan against the built-in profile and
    /// geometry tables.
    ///
    /// # Errors
    ///
    /// [`codes::UNKNOWN_PROFILE`] / [`codes::UNKNOWN_GEOMETRY`] naming
    /// the first offender.
    pub fn resolve(&self) -> Result<SweepPlan, ProtocolError> {
        let profiles = self
            .profiles
            .iter()
            .map(|name| {
                profiles::by_name(name).ok_or_else(|| {
                    ProtocolError::new(
                        codes::UNKNOWN_PROFILE,
                        format!("unknown workload profile `{name}`"),
                    )
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let geometries = self
            .geometries
            .iter()
            .map(|label| {
                GeometryPoint::named(label).ok_or_else(|| {
                    ProtocolError::new(
                        codes::UNKNOWN_GEOMETRY,
                        format!("unknown geometry `{label}` (want baseline/blocks64/small/large)"),
                    )
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SweepPlan {
            profiles,
            geometries,
            ops: self.ops,
            seed: self.seed,
        })
    }

    /// The spec as a JSON object (the shape `submit` accepts).
    pub fn to_value(&self) -> Value {
        let strings =
            |v: &[String]| Value::Array(v.iter().map(|s| Value::Str(s.clone())).collect());
        let mut fields = vec![
            ("profiles".to_owned(), strings(&self.profiles)),
            ("geometries".to_owned(), strings(&self.geometries)),
            ("ops".to_owned(), Value::U64(self.ops as u64)),
            ("seed".to_owned(), Value::U64(self.seed)),
        ];
        if let Some(cadence) = self.series_cadence {
            fields.push(("series_cadence".to_owned(), Value::U64(cadence as u64)));
        }
        Value::Object(fields)
    }
}

/// A parsed, validated request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Queue a sweep; answered with the new job id.
    Submit(PlanSpec),
    /// Job detail (`job` set) or a whole-server summary.
    Status {
        /// The job to describe, or `None` for the server summary.
        job: Option<String>,
    },
    /// Fetch a completed job's sweep document.
    Results {
        /// The job whose document to fetch.
        job: String,
    },
    /// Stream progress / benchmark / series events until the job ends.
    Watch {
        /// The job to follow.
        job: String,
        /// Resume point: only events with sequence numbers beyond this
        /// are streamed (0 replays everything the ring still holds).
        /// Reconnecting watchers pass the last `seq` they saw.
        after: u64,
    },
    /// Fire the job's cancel token.
    Cancel {
        /// The job to cancel.
        job: String,
    },
    /// Liveness probe: uptime, queue depth, active job count.
    Health,
    /// Full operational snapshot: job/queue/journal/trace-store
    /// figures plus the server metric registry (per-verb request
    /// counters and latency histograms included).
    Metrics,
    /// Stop accepting work and exit once the queue drains.
    Shutdown,
}

fn required_str(object: &Value, field: &str) -> Result<String, ProtocolError> {
    match object.get(field) {
        None => Err(ProtocolError::new(
            codes::MISSING_FIELD,
            format!("request is missing `{field}`"),
        )),
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(other) => Err(ProtocolError::new(
            codes::BAD_FIELD,
            format!("`{field}` must be a string, got {other:?}"),
        )),
    }
}

fn required_u64(object: &Value, field: &str) -> Result<u64, ProtocolError> {
    match object.get(field) {
        None => Err(ProtocolError::new(
            codes::MISSING_FIELD,
            format!("request is missing `{field}`"),
        )),
        Some(value) => value.as_u64().ok_or_else(|| {
            ProtocolError::new(
                codes::BAD_FIELD,
                format!("`{field}` must be a non-negative integer, got {value:?}"),
            )
        }),
    }
}

fn string_array(object: &Value, field: &str) -> Result<Vec<String>, ProtocolError> {
    let values = match object.get(field) {
        None => {
            return Err(ProtocolError::new(
                codes::MISSING_FIELD,
                format!("request is missing `{field}`"),
            ))
        }
        Some(Value::Array(values)) => values,
        Some(other) => {
            return Err(ProtocolError::new(
                codes::BAD_FIELD,
                format!("`{field}` must be an array of strings, got {other:?}"),
            ))
        }
    };
    if values.is_empty() {
        return Err(ProtocolError::new(
            codes::BAD_FIELD,
            format!("`{field}` must not be empty"),
        ));
    }
    values
        .iter()
        .map(|v| {
            v.as_str().map(str::to_owned).ok_or_else(|| {
                ProtocolError::new(
                    codes::BAD_FIELD,
                    format!("`{field}` must contain only strings, got {v:?}"),
                )
            })
        })
        .collect()
}

fn parse_plan(object: &Value) -> Result<PlanSpec, ProtocolError> {
    let plan = object
        .get("plan")
        .ok_or_else(|| ProtocolError::new(codes::MISSING_FIELD, "submit is missing `plan`"))?;
    if plan.as_object().is_none() {
        return Err(ProtocolError::new(
            codes::BAD_FIELD,
            "`plan` must be an object",
        ));
    }
    let ops = required_u64(plan, "ops")?;
    if ops == 0 {
        return Err(ProtocolError::new(codes::BAD_FIELD, "`ops` must be >= 1"));
    }
    let series_cadence = match plan.get("series_cadence") {
        None | Some(Value::Null) => None,
        Some(value) => {
            let cadence = value.as_u64().ok_or_else(|| {
                ProtocolError::new(
                    codes::BAD_FIELD,
                    format!("`series_cadence` must be a positive integer, got {value:?}"),
                )
            })?;
            if cadence == 0 {
                return Err(ProtocolError::new(
                    codes::BAD_FIELD,
                    "`series_cadence` must be >= 1",
                ));
            }
            Some(cadence as usize)
        }
    };
    Ok(PlanSpec {
        profiles: string_array(plan, "profiles")?,
        geometries: string_array(plan, "geometries")?,
        ops: ops as usize,
        seed: required_u64(plan, "seed")?,
        series_cadence,
    })
}

/// Parses one request line.
///
/// # Errors
///
/// A [`ProtocolError`] naming the first violated rule; the caller
/// answers it on the wire and keeps the connection open.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let value: Value = serde_json::from_str(line.trim())
        .map_err(|e| ProtocolError::new(codes::MALFORMED_JSON, format!("invalid JSON: {e}")))?;
    if value.as_object().is_none() {
        return Err(ProtocolError::new(
            codes::NOT_AN_OBJECT,
            "a request must be a JSON object",
        ));
    }
    match value.get("v").and_then(Value::as_str) {
        Some(PROTOCOL_VERSION) => {}
        Some(other) => {
            return Err(ProtocolError::new(
                codes::BAD_VERSION,
                format!("protocol version `{other}` not supported (want \"{PROTOCOL_VERSION}\")"),
            ))
        }
        None => {
            return Err(ProtocolError::new(
                codes::BAD_VERSION,
                format!("request is missing `v` (want \"{PROTOCOL_VERSION}\")"),
            ))
        }
    }
    let verb = match value.get("verb") {
        None => {
            return Err(ProtocolError::new(
                codes::MISSING_VERB,
                "request has no `verb`",
            ))
        }
        Some(Value::Str(verb)) => verb.clone(),
        Some(other) => {
            return Err(ProtocolError::new(
                codes::MISSING_VERB,
                format!("`verb` must be a string, got {other:?}"),
            ))
        }
    };
    match verb.as_str() {
        "submit" => Ok(Request::Submit(parse_plan(&value)?)),
        "status" => {
            let job = match value.get("job") {
                None | Some(Value::Null) => None,
                Some(_) => Some(required_str(&value, "job")?),
            };
            Ok(Request::Status { job })
        }
        "results" => Ok(Request::Results {
            job: required_str(&value, "job")?,
        }),
        "watch" => {
            let after = match value.get("after") {
                None | Some(Value::Null) => 0,
                Some(_) => required_u64(&value, "after")?,
            };
            Ok(Request::Watch {
                job: required_str(&value, "job")?,
                after,
            })
        }
        "cancel" => Ok(Request::Cancel {
            job: required_str(&value, "job")?,
        }),
        "health" => Ok(Request::Health),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ProtocolError::new(
            codes::UNKNOWN_VERB,
            format!("unknown verb `{other}`"),
        )),
    }
}

/// An `{"ok": true, ...fields}` response object.
pub fn ok_response(fields: Vec<(String, Value)>) -> Value {
    let mut object = vec![("ok".to_owned(), Value::Bool(true))];
    object.extend(fields);
    Value::Object(object)
}

/// A versioned request line for `verb` with extra `fields` — what the
/// client writes on the wire (newline appended by the sender).
pub fn request_line(verb: &str, fields: Vec<(String, Value)>) -> String {
    let mut object = vec![
        ("v".to_owned(), Value::Str(PROTOCOL_VERSION.to_owned())),
        ("verb".to_owned(), Value::Str(verb.to_owned())),
    ];
    object.extend(fields);
    serde_json::to_string(&Value::Object(object)).expect("request objects serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn err_code(line: &str) -> &'static str {
        parse_request(line).expect_err(line).code
    }

    #[test]
    fn valid_requests_parse() {
        let submit = r#"{"v":"1","verb":"submit","plan":{"profiles":["gcc"],"geometries":["baseline"],"ops":1000,"seed":7}}"#;
        let Request::Submit(spec) = parse_request(submit).expect("submit") else {
            panic!("wrong variant");
        };
        assert_eq!(spec.profiles, ["gcc"]);
        assert_eq!(spec.ops, 1000);
        assert_eq!(spec.series_cadence, None);
        assert!(spec.resolve().is_ok());

        assert_eq!(
            parse_request(r#"{"v":"1","verb":"status"}"#),
            Ok(Request::Status { job: None })
        );
        assert_eq!(
            parse_request(r#"{"v":"1","verb":"status","job":"job-3"}"#),
            Ok(Request::Status {
                job: Some("job-3".to_owned())
            })
        );
        assert_eq!(
            parse_request(r#"{"v":"1","verb":"cancel","job":"job-1"}"#),
            Ok(Request::Cancel {
                job: "job-1".to_owned()
            })
        );
        assert_eq!(
            parse_request(r#"{"v":"1","verb":"shutdown"}"#),
            Ok(Request::Shutdown)
        );
        assert_eq!(
            parse_request(r#"{"v":"1","verb":"health"}"#),
            Ok(Request::Health)
        );
        assert_eq!(
            parse_request(r#"{"v":"1","verb":"metrics"}"#),
            Ok(Request::Metrics)
        );
    }

    #[test]
    fn watch_resume_sequence_parses() {
        assert_eq!(
            parse_request(r#"{"v":"1","verb":"watch","job":"job-1"}"#),
            Ok(Request::Watch {
                job: "job-1".to_owned(),
                after: 0
            })
        );
        assert_eq!(
            parse_request(r#"{"v":"1","verb":"watch","job":"job-1","after":17}"#),
            Ok(Request::Watch {
                job: "job-1".to_owned(),
                after: 17
            })
        );
        assert_eq!(
            err_code(r#"{"v":"1","verb":"watch","job":"job-1","after":"x"}"#),
            codes::BAD_FIELD
        );
    }

    #[test]
    fn every_error_class_has_a_code() {
        assert_eq!(err_code("{not json"), codes::MALFORMED_JSON);
        assert_eq!(err_code("[1, 2]"), codes::NOT_AN_OBJECT);
        assert_eq!(err_code(r#"{"verb":"status"}"#), codes::BAD_VERSION);
        assert_eq!(err_code(r#"{"v":"9","verb":"status"}"#), codes::BAD_VERSION);
        assert_eq!(err_code(r#"{"v":"1"}"#), codes::MISSING_VERB);
        assert_eq!(
            err_code(r#"{"v":"1","verb":"frobnicate"}"#),
            codes::UNKNOWN_VERB
        );
        assert_eq!(
            err_code(r#"{"v":"1","verb":"results"}"#),
            codes::MISSING_FIELD
        );
        assert_eq!(
            err_code(r#"{"v":"1","verb":"results","job":17}"#),
            codes::BAD_FIELD
        );
        assert_eq!(
            err_code(
                r#"{"v":"1","verb":"submit","plan":{"profiles":[],"geometries":["baseline"],"ops":1,"seed":0}}"#
            ),
            codes::BAD_FIELD
        );
        assert_eq!(
            err_code(
                r#"{"v":"1","verb":"submit","plan":{"profiles":["gcc"],"geometries":["baseline"],"ops":0,"seed":0}}"#
            ),
            codes::BAD_FIELD
        );
        assert_eq!(
            err_code(r#"{"v":"1","verb":"submit"}"#),
            codes::MISSING_FIELD
        );
    }

    #[test]
    fn unknown_names_surface_at_resolution() {
        let spec = PlanSpec {
            profiles: vec!["gcc".into(), "notabench".into()],
            geometries: vec!["baseline".into()],
            ops: 100,
            seed: 0,
            series_cadence: None,
        };
        let err = spec.resolve().expect_err("unknown profile");
        assert_eq!(err.code, codes::UNKNOWN_PROFILE);
        assert!(err.message.contains("notabench"));

        let spec = PlanSpec {
            profiles: vec!["gcc".into()],
            geometries: vec!["enormous".into()],
            ops: 100,
            seed: 0,
            series_cadence: None,
        };
        let err = spec.resolve().expect_err("unknown geometry");
        assert_eq!(err.code, codes::UNKNOWN_GEOMETRY);
    }

    #[test]
    fn error_values_carry_code_and_message() {
        let err = ProtocolError::new(codes::UNKNOWN_JOB, "no job `job-9`");
        let value = err.to_value();
        assert_eq!(value.get("ok"), Some(&Value::Bool(false)));
        let error = value.get("error").expect("error object");
        assert_eq!(
            error.get("code").and_then(Value::as_str),
            Some(codes::UNKNOWN_JOB)
        );
        assert_eq!(
            error.get("message").and_then(Value::as_str),
            Some("no job `job-9`")
        );
    }

    #[test]
    fn request_lines_round_trip_through_the_parser() {
        let line = request_line(
            "results",
            vec![("job".to_owned(), Value::Str("job-2".to_owned()))],
        );
        assert_eq!(
            parse_request(&line),
            Ok(Request::Results {
                job: "job-2".to_owned()
            })
        );
        let spec = PlanSpec {
            profiles: vec!["gcc".into()],
            geometries: vec!["baseline".into()],
            ops: 500,
            seed: 3,
            series_cadence: Some(100),
        };
        let line = request_line("submit", vec![("plan".to_owned(), spec.to_value())]);
        assert_eq!(parse_request(&line), Ok(Request::Submit(spec)));
    }
}
