//! Sweep-as-a-service: a std-only daemon that runs [`cache8t_exec`]
//! sweeps for socket clients, with resumable checkpointed jobs.
//!
//! Four layers:
//!
//! * [`protocol`] — the versioned JSONL line protocol (`submit`,
//!   `status`, `results`, `watch`, `cancel`, `health`, `metrics`,
//!   `shutdown`) with structured `{code, message}` errors for every
//!   malformed request. `health` and `metrics` are read-only
//!   observability verbs: a liveness summary, and the daemon's full
//!   metric registry (renderable as Prometheus text via
//!   [`client::render_metrics_text`]).
//! * [`journal`] — the append-only checkpoint journal: one line per
//!   completed benchmark, flushed as it lands, replayed on restart so
//!   an interrupted sweep re-runs only its missing slots. Torn final
//!   lines (a crash mid-append) are tolerated and re-run.
//! * [`state`] — the job registry, the per-job event log `watch`
//!   streams from, and the single-executor runner that multiplexes
//!   every client's jobs onto one work-stealing pool and one warm
//!   [`TraceStore`](cache8t_exec::TraceStore).
//! * [`server`] / [`client`] — the socket front-ends (TCP or unix
//!   domain, `unix:` prefix), thread-per-connection, and the blocking
//!   client the `cache8t client` subcommand and the tests drive.
//!
//! The headline invariant, inherited from the engine and enforced by
//! the service tests: a sweep submitted over the socket — even one
//! interrupted by `kill -9` and resumed from its journal by a fresh
//! server — produces a document byte-identical to a one-shot
//! `cache8t sweep` run of the same plan.
//!
//! The daemon is also observable in production terms: every state
//! change emits a schema-versioned JSONL record through
//! [`cache8t_obs::OpLog`], job lifecycles land as spans/instants in
//! the [`cache8t_obs::timeline`], and `watch` streams carry ring
//! sequence numbers so [`client::watch_resumable`] can reconnect
//! after a transport drop without replaying delivered events.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod journal;
pub mod protocol;
pub mod server;
pub mod state;

pub use client::{render_metrics_text, watch_resumable, Client, ClientError};
pub use journal::{journal_path, load_journal, plan_fingerprint, Journal, JournalLoad};
pub use protocol::{
    codes, ok_response, parse_request, request_line, PlanSpec, ProtocolError, Request,
    PROTOCOL_VERSION,
};
pub use server::{ServeConfig, Server, MAX_REQUEST_LINE, UNIX_PREFIX};
pub use state::{JobPhase, JobState, ServerState, EVENT_RING_CAPACITY};
