//! The 6T-style conventional controller.

use std::fmt;

use cache8t_sim::{Address, CacheGeometry, DataCache, MainMemory, ReplacementKind};
use cache8t_trace::{DecodedBatch, DecodedOp, MemOp};

use crate::controller::{AccessCost, AccessResponse, CacheBackend, Controller};
use crate::obs::StackObs;
use crate::ArrayTraffic;

/// A conventional (6T-style) cache controller: one array access per
/// request.
///
/// On a 6T array half-selected columns survive a write (they are biased as
/// pseudo-reads), so a store is a single partial-row write — no RMW. This
/// controller is the reference against which the paper quantifies RMW's
/// traffic increase ("more than 32% on average, max 47%", §1): the
/// `motivation_rmw_traffic` harness compares [`RmwController`] against it.
///
/// [`RmwController`]: crate::RmwController
///
/// # Example
///
/// ```
/// use cache8t_core::{Controller, ConventionalController};
/// use cache8t_sim::{Address, CacheGeometry, ReplacementKind};
/// use cache8t_trace::MemOp;
///
/// let mut c = ConventionalController::new(CacheGeometry::paper_baseline(), ReplacementKind::Lru);
/// c.access(&MemOp::write(Address::new(0x40), 7));
/// c.access(&MemOp::read(Address::new(0x40)));
/// assert_eq!(c.array_accesses(), 2); // one activation per request
/// ```
pub struct ConventionalController {
    backend: CacheBackend,
    traffic: ArrayTraffic,
}

impl ConventionalController {
    /// Creates an empty conventional controller.
    pub fn new(geometry: CacheGeometry, replacement: ReplacementKind) -> Self {
        ConventionalController::from_backend(CacheBackend::new(geometry, replacement))
    }

    /// Creates a controller over an existing backend (e.g. one built with
    /// [`CacheBackend::with_l2`]).
    pub fn from_backend(backend: CacheBackend) -> Self {
        ConventionalController {
            backend,
            traffic: ArrayTraffic::new(),
        }
    }

    /// Services one request whose address decomposition is already known
    /// — shared by [`access`](Controller::access) (which decodes inline)
    /// and the batched path (which drains [`DecodedBatch`] column runs).
    #[inline]
    fn access_decoded(&mut self, d: DecodedOp) -> AccessResponse {
        let probed = self.backend.cache().find_in_set(d.set, d.tag);
        let residency = self.backend.ensure_resident_probed(d.addr, probed);
        if residency.filled {
            self.traffic.line_fills += 1;
        }
        if residency.dirty_eviction {
            self.traffic.eviction_writebacks += 1;
        }
        let (value, cost) = if d.is_read() {
            let value = self
                .backend
                .cache_mut()
                .read_word_at(d.set, residency.way, d.word);
            self.backend.record_read(residency.hit);
            self.traffic.demand_reads += 1;
            (
                value,
                AccessCost {
                    row_reads: 1,
                    row_writes: 0,
                    buffer_hit: false,
                },
            )
        } else {
            let effect =
                self.backend
                    .cache_mut()
                    .write_word_at(d.set, residency.way, d.word, d.value);
            self.backend.record_write(residency.hit, effect.was_silent);
            self.traffic.demand_writes += 1;
            (
                d.value,
                AccessCost {
                    row_reads: 0,
                    row_writes: 1,
                    buffer_hit: false,
                },
            )
        };
        AccessResponse {
            value,
            hit: residency.hit,
            cost,
        }
    }
}

impl Controller for ConventionalController {
    fn access(&mut self, op: &MemOp) -> AccessResponse {
        let g = self.backend.cache().geometry();
        self.access_decoded(DecodedOp::from_op(op, &g))
    }

    fn access_batch(&mut self, batch: &DecodedBatch, range: std::ops::Range<usize>) {
        assert_eq!(
            batch.geometry(),
            self.backend.cache().geometry(),
            "batch decoded against a different geometry"
        );
        for d in batch.run(range) {
            self.access_decoded(d);
        }
    }

    fn flush(&mut self) {
        // No buffered state.
    }

    fn traffic(&self) -> &ArrayTraffic {
        &self.traffic
    }

    fn stats(&self) -> &cache8t_sim::CacheStats {
        self.backend.request_stats()
    }

    fn reset_counters(&mut self) {
        self.traffic = ArrayTraffic::new();
        self.backend.reset_stats();
    }

    fn cache(&self) -> &DataCache {
        self.backend.cache()
    }

    fn memory(&self) -> &MainMemory {
        self.backend.memory()
    }

    fn name(&self) -> &'static str {
        "6T"
    }

    fn peek_word(&self, addr: Address) -> u64 {
        self.backend.peek_word(addr)
    }

    fn obs(&self) -> Option<&StackObs> {
        Some(self.backend.obs())
    }

    fn obs_mut(&mut self) -> Option<&mut StackObs> {
        Some(self.backend.obs_mut())
    }
}

impl fmt::Debug for ConventionalController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConventionalController")
            .field("traffic", &self.traffic)
            .field("backend", &self.backend)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache8t_sim::AccessKind;

    fn controller() -> ConventionalController {
        ConventionalController::new(
            CacheGeometry::new(1024, 2, 32).unwrap(),
            ReplacementKind::Lru,
        )
    }

    #[test]
    fn each_request_is_one_activation() {
        let mut c = controller();
        for i in 0..10u64 {
            let addr = Address::new(i * 8);
            if i % 2 == 0 {
                c.access(&MemOp::read(addr));
            } else {
                c.access(&MemOp::write(addr, i));
            }
        }
        assert_eq!(c.array_accesses(), 10);
        assert_eq!(c.traffic().demand_reads, 5);
        assert_eq!(c.traffic().demand_writes, 5);
        assert_eq!(c.traffic().rmw_ops, 0);
    }

    #[test]
    fn reads_return_written_values() {
        let mut c = controller();
        let a = Address::new(0x100);
        c.access(&MemOp::write(a, 1234));
        let r = c.access(&MemOp::read(a));
        assert_eq!(r.value, 1234);
        assert!(r.hit);
        assert_eq!(r.cost.row_reads, 1);
    }

    #[test]
    fn misses_fill_and_report() {
        let mut c = controller();
        let r = c.access(&MemOp::read(Address::new(0x200)));
        assert!(!r.hit);
        assert_eq!(r.value, 0, "untouched memory reads zero");
        assert_eq!(c.traffic().line_fills, 1);
    }

    #[test]
    fn flush_is_a_no_op() {
        let mut c = controller();
        c.access(&MemOp::write(Address::new(0), 5));
        let before = *c.traffic();
        c.flush();
        assert_eq!(*c.traffic(), before);
        assert_eq!(c.name(), "6T");
    }

    #[test]
    fn write_kind_is_recorded_on_op() {
        let op = MemOp::write(Address::new(8), 1);
        assert_eq!(op.kind, AccessKind::Write);
    }
}
