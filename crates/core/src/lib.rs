//! # cache8t-core — Write Grouping and Read Bypassing for 8T SRAM caches
//!
//! This crate is the primary contribution of *"Performance and Power
//! Solutions for Caches Using 8T SRAM Cells"* (Farahani & Baniasadi, MICRO
//! 2012), reimplemented from scratch:
//!
//! - [`ConventionalController`] — a 6T-style cache where a write is a
//!   single array access (the reference the paper measures RMW's traffic
//!   increase against);
//! - [`RmwController`] — the 8T baseline: every write performs Morita et
//!   al.'s read-modify-write, costing an extra row read (paper §2);
//! - [`WgController`] — **Write Grouping** (paper §4.1): a Set-Buffer
//!   holding the most recently written cache set plus a Tag-Buffer in the
//!   controller; consecutive writes to the buffered set are grouped into
//!   one eventual RMW, and a Dirty bit suppresses the write-back entirely
//!   when every grouped write was silent;
//! - [`WgRbController`] — **Write Grouping + Read Bypassing** (paper
//!   §4.2): additionally serves reads that hit the Tag-Buffer straight from
//!   the Set-Buffer, eliminating both the premature write-back and the
//!   array read.
//!
//! All controllers implement [`Controller`], run against the same
//! value-carrying cache + backing memory from `cache8t-sim`, and account
//! SRAM-array traffic in an [`ArrayTraffic`] ledger — the quantity behind
//! the paper's Figures 9–11. Functional correctness (every read returns the
//! last value written) is enforced by [`Controller::peek_word`]-based
//! oracle tests and property tests in this crate.
//!
//! ## Example
//!
//! ```
//! use cache8t_core::{Controller, RmwController, WgController};
//! use cache8t_sim::{Address, CacheGeometry, ReplacementKind};
//! use cache8t_trace::MemOp;
//!
//! let g = CacheGeometry::paper_baseline();
//! let mut rmw = RmwController::new(g, ReplacementKind::Lru);
//! let mut wg = WgController::new(g, ReplacementKind::Lru);
//!
//! // Two consecutive writes to the same set: RMW pays twice, WG groups.
//! let a = Address::new(0x1000);
//! for ctrl in [&mut rmw as &mut dyn Controller, &mut wg] {
//!     ctrl.access(&MemOp::write(a, 1));
//!     ctrl.access(&MemOp::write(a.offset(8), 2));
//!     ctrl.flush();
//! }
//! assert_eq!(rmw.array_accesses(), 4); // 2 x (row read + row write)
//! assert_eq!(wg.array_accesses(), 2);  // 1 fill read + 1 write-back
//! assert_eq!(rmw.peek_word(a), wg.peek_word(a));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod coalescing;
mod controller;
mod conventional;
mod obs;
mod rmw;
mod traffic;
mod wg;

pub use coalescing::CoalescingController;
pub use controller::{AccessCost, AccessResponse, CacheBackend, Controller, ResidencyOutcome};
pub use conventional::ConventionalController;
pub use obs::{StackObs, SET_HEAT_BUCKETS};
pub use rmw::RmwController;
pub use traffic::{ArrayTraffic, CountingPolicy};
pub use wg::{WgBufferView, WgController, WgFault, WgOptions, WgRbController};
