//! The RMW baseline controller.

use std::fmt;

use cache8t_sim::{Address, CacheGeometry, DataCache, MainMemory, ReplacementKind};
use cache8t_trace::MemOp;

use crate::controller::{AccessCost, AccessResponse, CacheBackend, Controller};
use crate::ArrayTraffic;

/// The 8T baseline: every write is a read-modify-write (paper §2).
///
/// Bit interleaving makes a partial-row write unsafe on 8T cells, so Morita
/// et al.'s RMW reads the addressed row into latches, merges the stored
/// word, and writes the whole row back. Functionally this controller is
/// identical to [`ConventionalController`]; it differs only in cost: each
/// store performs **two** row activations (one read + one write) and
/// occupies the read port, which is exactly the inefficiency the paper's
/// WG/WG+RB techniques attack.
///
/// [`ConventionalController`]: crate::ConventionalController
///
/// # Example
///
/// ```
/// use cache8t_core::{Controller, RmwController};
/// use cache8t_sim::{Address, CacheGeometry, ReplacementKind};
/// use cache8t_trace::MemOp;
///
/// let mut c = RmwController::new(CacheGeometry::paper_baseline(), ReplacementKind::Lru);
/// c.access(&MemOp::write(Address::new(0x40), 7));
/// assert_eq!(c.array_accesses(), 2); // row read + row write
/// assert_eq!(c.traffic().rmw_ops, 1);
/// ```
pub struct RmwController {
    backend: CacheBackend,
    traffic: ArrayTraffic,
}

impl RmwController {
    /// Creates an empty RMW controller.
    pub fn new(geometry: CacheGeometry, replacement: ReplacementKind) -> Self {
        RmwController::from_backend(CacheBackend::new(geometry, replacement))
    }

    /// Creates a controller over an existing backend (e.g. one built with
    /// [`CacheBackend::with_l2`]).
    pub fn from_backend(backend: CacheBackend) -> Self {
        RmwController {
            backend,
            traffic: ArrayTraffic::new(),
        }
    }
}

impl Controller for RmwController {
    fn access(&mut self, op: &MemOp) -> AccessResponse {
        let residency = self.backend.ensure_resident(op.addr);
        if residency.filled {
            self.traffic.line_fills += 1;
        }
        if residency.dirty_eviction {
            self.traffic.eviction_writebacks += 1;
        }
        let (value, cost) = if op.is_read() {
            let value = self
                .backend
                .cache_mut()
                .read_word(op.addr)
                .expect("resident after ensure_resident");
            self.backend.record_read(residency.hit);
            self.traffic.demand_reads += 1;
            (
                value,
                AccessCost {
                    row_reads: 1,
                    row_writes: 0,
                    buffer_hit: false,
                },
            )
        } else {
            // RMW: read row into the write-back latches (extra read), then
            // write the merged row.
            let effect = self
                .backend
                .cache_mut()
                .write_word(op.addr, op.value)
                .expect("resident after ensure_resident");
            self.backend.record_write(residency.hit, effect.was_silent);
            self.traffic.rmw_read_phases += 1;
            self.traffic.demand_writes += 1;
            self.traffic.rmw_ops += 1;
            (
                op.value,
                AccessCost {
                    row_reads: 1,
                    row_writes: 1,
                    buffer_hit: false,
                },
            )
        };
        AccessResponse {
            value,
            hit: residency.hit,
            cost,
        }
    }

    fn flush(&mut self) {
        // No buffered state.
    }

    fn traffic(&self) -> &ArrayTraffic {
        &self.traffic
    }

    fn stats(&self) -> &cache8t_sim::CacheStats {
        self.backend.request_stats()
    }

    fn reset_counters(&mut self) {
        self.traffic = ArrayTraffic::new();
        self.backend.reset_stats();
    }

    fn cache(&self) -> &DataCache {
        self.backend.cache()
    }

    fn memory(&self) -> &MainMemory {
        self.backend.memory()
    }

    fn name(&self) -> &'static str {
        "RMW"
    }

    fn peek_word(&self, addr: Address) -> u64 {
        self.backend.peek_word(addr)
    }
}

impl fmt::Debug for RmwController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RmwController")
            .field("traffic", &self.traffic)
            .field("backend", &self.backend)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConventionalController;

    fn geometry() -> CacheGeometry {
        CacheGeometry::new(1024, 2, 32).unwrap()
    }

    #[test]
    fn writes_cost_two_activations() {
        let mut c = RmwController::new(geometry(), ReplacementKind::Lru);
        let r = c.access(&MemOp::write(Address::new(0x40), 1));
        assert_eq!(r.cost.total(), 2);
        assert_eq!(c.array_accesses(), 2);
        assert_eq!(c.traffic().rmw_read_phases, 1);
        assert_eq!(c.traffic().rmw_ops, 1);
    }

    #[test]
    fn reads_cost_one_activation() {
        let mut c = RmwController::new(geometry(), ReplacementKind::Lru);
        let r = c.access(&MemOp::read(Address::new(0x40)));
        assert_eq!(r.cost.total(), 1);
        assert_eq!(c.array_accesses(), 1);
    }

    #[test]
    fn traffic_increase_over_conventional_matches_write_share() {
        // A stream of 65% reads / 35% writes should cost RMW ~35% more
        // activations than the conventional controller (paper motivation).
        let mut rmw = RmwController::new(geometry(), ReplacementKind::Lru);
        let mut conv = ConventionalController::new(geometry(), ReplacementKind::Lru);
        let mut value = 0u64;
        for i in 0..1000u64 {
            let addr = Address::new((i % 32) * 8);
            let op = if i % 20 < 13 {
                MemOp::read(addr)
            } else {
                value += 1;
                MemOp::write(addr, value)
            };
            rmw.access(&op);
            conv.access(&op);
        }
        let increase = rmw.array_accesses() as f64 / conv.array_accesses() as f64 - 1.0;
        assert!((increase - 0.35).abs() < 0.01, "increase {increase}");
    }

    #[test]
    fn functionally_identical_to_conventional() {
        let mut rmw = RmwController::new(geometry(), ReplacementKind::Lru);
        let mut conv = ConventionalController::new(geometry(), ReplacementKind::Lru);
        for i in 0..500u64 {
            let addr = Address::new((i * 40) % 4096);
            let op = if i % 3 == 0 {
                MemOp::write(addr, i)
            } else {
                MemOp::read(addr)
            };
            let a = rmw.access(&op);
            let b = conv.access(&op);
            assert_eq!(a.value, b.value, "op {i}");
            assert_eq!(a.hit, b.hit, "op {i}");
        }
        assert_eq!(rmw.cache().stats(), conv.cache().stats());
    }

    #[test]
    fn name_and_flush() {
        let mut c = RmwController::new(geometry(), ReplacementKind::Lru);
        assert_eq!(c.name(), "RMW");
        c.flush();
        assert_eq!(c.array_accesses(), 0);
    }
}
