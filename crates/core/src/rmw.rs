//! The RMW baseline controller.

use std::fmt;

use cache8t_obs::{Component, CounterId, EventKind, HistogramId};
use cache8t_sim::{Address, CacheGeometry, DataCache, MainMemory, ReplacementKind};
use cache8t_trace::{DecodedBatch, DecodedOp, MemOp};

use crate::controller::{AccessCost, AccessResponse, CacheBackend, Controller};
use crate::obs::StackObs;
use crate::ArrayTraffic;

/// The 8T baseline: every write is a read-modify-write (paper §2).
///
/// Bit interleaving makes a partial-row write unsafe on 8T cells, so Morita
/// et al.'s RMW reads the addressed row into latches, merges the stored
/// word, and writes the whole row back. Functionally this controller is
/// identical to [`ConventionalController`]; it differs only in cost: each
/// store performs **two** row activations (one read + one write) and
/// occupies the read port, which is exactly the inefficiency the paper's
/// WG/WG+RB techniques attack.
///
/// [`ConventionalController`]: crate::ConventionalController
///
/// # Example
///
/// ```
/// use cache8t_core::{Controller, RmwController};
/// use cache8t_sim::{Address, CacheGeometry, ReplacementKind};
/// use cache8t_trace::MemOp;
///
/// let mut c = RmwController::new(CacheGeometry::paper_baseline(), ReplacementKind::Lru);
/// c.access(&MemOp::write(Address::new(0x40), 7));
/// assert_eq!(c.array_accesses(), 2); // row read + row write
/// assert_eq!(c.traffic().rmw_ops, 1);
/// ```
pub struct RmwController {
    backend: CacheBackend,
    traffic: ArrayTraffic,
    metrics: RmwMetrics,
    /// Row (set index) of the in-flight write burst, if any.
    burst_row: Option<u64>,
    /// Consecutive same-row RMW writes in the in-flight burst.
    burst_len: u64,
    /// Address of the burst's first write (stamped on the burst event).
    burst_addr: u64,
}

/// Handles of the RMW-specific metrics.
#[derive(Debug, Clone, Copy)]
struct RmwMetrics {
    /// `rmw.sequences` — bursts of consecutive same-row RMW writes.
    sequences: CounterId,
    /// `rmw.ops` — individual RMW operations (one per write).
    ops: CounterId,
    /// `rmw.read_phases` — overhead row reads (the paper's complaint).
    read_phases: CounterId,
    /// `rmw.burst` — burst-size distribution: how many consecutive
    /// writes hit the same row (exactly the runs WG would group).
    burst: HistogramId,
}

impl RmwMetrics {
    fn register(obs: &mut StackObs) -> Self {
        let r = obs.registry_mut();
        RmwMetrics {
            sequences: r.counter("rmw.sequences"),
            ops: r.counter("rmw.ops"),
            read_phases: r.counter("rmw.read_phases"),
            burst: r.histogram("rmw.burst"),
        }
    }
}

impl RmwController {
    /// Creates an empty RMW controller.
    pub fn new(geometry: CacheGeometry, replacement: ReplacementKind) -> Self {
        RmwController::from_backend(CacheBackend::new(geometry, replacement))
    }

    /// Creates a controller over an existing backend (e.g. one built with
    /// [`CacheBackend::with_l2`]).
    pub fn from_backend(mut backend: CacheBackend) -> Self {
        let metrics = RmwMetrics::register(backend.obs_mut());
        RmwController {
            backend,
            traffic: ArrayTraffic::new(),
            metrics,
            burst_row: None,
            burst_len: 0,
            burst_addr: 0,
        }
    }

    /// Closes the in-flight write burst: one `rmw.sequences` count, one
    /// `rmw.burst` observation, one `RmwSequence` event.
    fn close_burst(&mut self) {
        if self.burst_len == 0 {
            return;
        }
        let obs = self.backend.obs_mut();
        obs.inc(self.metrics.sequences);
        obs.observe(self.metrics.burst, self.burst_len);
        obs.emit(
            Component::Rmw,
            EventKind::RmwSequence,
            self.burst_addr,
            self.burst_len,
        );
        self.burst_row = None;
        self.burst_len = 0;
    }

    /// Services one request with its address decomposition precomputed —
    /// shared by the per-op and batched paths. The write path's burst
    /// row is the pre-decoded set index.
    #[inline]
    fn access_decoded(&mut self, d: DecodedOp) -> AccessResponse {
        let probed = self.backend.cache().find_in_set(d.set, d.tag);
        let residency = self.backend.ensure_resident_probed(d.addr, probed);
        if residency.filled {
            self.traffic.line_fills += 1;
        }
        if residency.dirty_eviction {
            self.traffic.eviction_writebacks += 1;
        }
        let (value, cost) = if d.is_read() {
            // A read breaks the run of consecutive same-row writes.
            self.close_burst();
            let value = self
                .backend
                .cache_mut()
                .read_word_at(d.set, residency.way, d.word);
            self.backend.record_read(residency.hit);
            self.traffic.demand_reads += 1;
            (
                value,
                AccessCost {
                    row_reads: 1,
                    row_writes: 0,
                    buffer_hit: false,
                },
            )
        } else {
            // RMW: read row into the write-back latches (extra read), then
            // write the merged row.
            let row = d.set;
            if self.burst_row != Some(row) {
                self.close_burst();
                self.burst_row = Some(row);
                self.burst_addr = d.addr.raw();
            }
            self.burst_len += 1;
            let ops = self.metrics.ops;
            let read_phases = self.metrics.read_phases;
            self.backend.obs_mut().inc(ops);
            self.backend.obs_mut().inc(read_phases);
            let effect =
                self.backend
                    .cache_mut()
                    .write_word_at(d.set, residency.way, d.word, d.value);
            self.backend.record_write(residency.hit, effect.was_silent);
            self.traffic.rmw_read_phases += 1;
            self.traffic.demand_writes += 1;
            self.traffic.rmw_ops += 1;
            (
                d.value,
                AccessCost {
                    row_reads: 1,
                    row_writes: 1,
                    buffer_hit: false,
                },
            )
        };
        AccessResponse {
            value,
            hit: residency.hit,
            cost,
        }
    }
}

impl Controller for RmwController {
    fn access(&mut self, op: &MemOp) -> AccessResponse {
        let g = self.backend.cache().geometry();
        self.access_decoded(DecodedOp::from_op(op, &g))
    }

    fn access_batch(&mut self, batch: &DecodedBatch, range: std::ops::Range<usize>) {
        assert_eq!(
            batch.geometry(),
            self.backend.cache().geometry(),
            "batch decoded against a different geometry"
        );
        for d in batch.run(range) {
            self.access_decoded(d);
        }
    }

    fn flush(&mut self) {
        // No buffered data, but an in-flight burst observation to settle.
        self.close_burst();
    }

    fn traffic(&self) -> &ArrayTraffic {
        &self.traffic
    }

    fn stats(&self) -> &cache8t_sim::CacheStats {
        self.backend.request_stats()
    }

    fn reset_counters(&mut self) {
        self.traffic = ArrayTraffic::new();
        self.burst_row = None;
        self.burst_len = 0;
        self.backend.reset_stats();
    }

    fn cache(&self) -> &DataCache {
        self.backend.cache()
    }

    fn memory(&self) -> &MainMemory {
        self.backend.memory()
    }

    fn name(&self) -> &'static str {
        "RMW"
    }

    fn peek_word(&self, addr: Address) -> u64 {
        self.backend.peek_word(addr)
    }

    fn obs(&self) -> Option<&StackObs> {
        Some(self.backend.obs())
    }

    fn obs_mut(&mut self) -> Option<&mut StackObs> {
        Some(self.backend.obs_mut())
    }
}

impl fmt::Debug for RmwController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RmwController")
            .field("traffic", &self.traffic)
            .field("backend", &self.backend)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConventionalController;

    fn geometry() -> CacheGeometry {
        CacheGeometry::new(1024, 2, 32).unwrap()
    }

    #[test]
    fn writes_cost_two_activations() {
        let mut c = RmwController::new(geometry(), ReplacementKind::Lru);
        let r = c.access(&MemOp::write(Address::new(0x40), 1));
        assert_eq!(r.cost.total(), 2);
        assert_eq!(c.array_accesses(), 2);
        assert_eq!(c.traffic().rmw_read_phases, 1);
        assert_eq!(c.traffic().rmw_ops, 1);
    }

    #[test]
    fn reads_cost_one_activation() {
        let mut c = RmwController::new(geometry(), ReplacementKind::Lru);
        let r = c.access(&MemOp::read(Address::new(0x40)));
        assert_eq!(r.cost.total(), 1);
        assert_eq!(c.array_accesses(), 1);
    }

    #[test]
    fn traffic_increase_over_conventional_matches_write_share() {
        // A stream of 65% reads / 35% writes should cost RMW ~35% more
        // activations than the conventional controller (paper motivation).
        let mut rmw = RmwController::new(geometry(), ReplacementKind::Lru);
        let mut conv = ConventionalController::new(geometry(), ReplacementKind::Lru);
        let mut value = 0u64;
        for i in 0..1000u64 {
            let addr = Address::new((i % 32) * 8);
            let op = if i % 20 < 13 {
                MemOp::read(addr)
            } else {
                value += 1;
                MemOp::write(addr, value)
            };
            rmw.access(&op);
            conv.access(&op);
        }
        let increase = rmw.array_accesses() as f64 / conv.array_accesses() as f64 - 1.0;
        assert!((increase - 0.35).abs() < 0.01, "increase {increase}");
    }

    #[test]
    fn functionally_identical_to_conventional() {
        let mut rmw = RmwController::new(geometry(), ReplacementKind::Lru);
        let mut conv = ConventionalController::new(geometry(), ReplacementKind::Lru);
        for i in 0..500u64 {
            let addr = Address::new((i * 40) % 4096);
            let op = if i % 3 == 0 {
                MemOp::write(addr, i)
            } else {
                MemOp::read(addr)
            };
            let a = rmw.access(&op);
            let b = conv.access(&op);
            assert_eq!(a.value, b.value, "op {i}");
            assert_eq!(a.hit, b.hit, "op {i}");
        }
        assert_eq!(rmw.cache().stats(), conv.cache().stats());
    }

    #[test]
    fn burst_metrics_track_same_row_write_runs() {
        let mut c = RmwController::new(geometry(), ReplacementKind::Lru);
        let a = Address::new(0x40);
        // Three writes to one row, a read, then one write to another row.
        c.access(&MemOp::write(a, 1));
        c.access(&MemOp::write(a.offset(8), 2));
        c.access(&MemOp::write(a.offset(16), 3));
        c.access(&MemOp::read(a)); // closes the 3-write burst
        c.access(&MemOp::write(Address::new(0x4000), 4));
        c.flush(); // closes the 1-write burst
        let reg = c.obs().unwrap().registry();
        assert_eq!(reg.counter_by_name("rmw.ops"), Some(4));
        assert_eq!(reg.counter_by_name("rmw.read_phases"), Some(4));
        assert_eq!(reg.counter_by_name("rmw.sequences"), Some(2));
        let hist = reg.histogram_by_name("rmw.burst").unwrap();
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.sum(), 4);
        assert_eq!(hist.max(), Some(3));
    }

    #[test]
    fn name_and_flush() {
        let mut c = RmwController::new(geometry(), ReplacementKind::Lru);
        assert_eq!(c.name(), "RMW");
        c.flush();
        assert_eq!(c.array_accesses(), 0);
    }
}
