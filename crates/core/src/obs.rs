//! The per-controller-stack observability bundle.
//!
//! Every [`CacheBackend`](crate::CacheBackend) owns one [`StackObs`]: a
//! metric registry, an event tracer, and the request tick that stamps
//! events. Controllers register their scheme-specific metrics against
//! it at construction time and emit events through it on structural
//! transitions (buffer fills, group flushes, RMW sequences, …); the
//! backend itself accounts line fills and evictions.
//!
//! Metrics are always collected — they are plain `u64` adds on
//! pre-resolved handles, cheap enough for release hot paths. Event
//! recording is gated by [`TraceLevel`] (the `CACHE8T_TRACE`
//! environment variable), so a disabled tracer costs one enum compare
//! per emission site.

use cache8t_obs::{
    Component, CounterId, EventKind, HistogramId, MetricRegistry, TraceEvent, TraceLevel, Tracer,
};

/// Number of coarse set-index buckets the conflict-heat counters
/// (`series.set_heat.NN`) partition the set space into.
pub const SET_HEAT_BUCKETS: usize = 16;

/// Metric registry + tracer + tick for one controller stack.
#[derive(Debug)]
pub struct StackObs {
    registry: MetricRegistry,
    tracer: Tracer,
    tick: u64,
    pub(crate) m_reads: CounterId,
    pub(crate) m_writes: CounterId,
    pub(crate) m_line_fills: CounterId,
    pub(crate) m_evictions: CounterId,
    pub(crate) m_dirty_evictions: CounterId,
    pub(crate) m_set_heat: [CounterId; SET_HEAT_BUCKETS],
}

impl StackObs {
    /// Creates a bundle with the tracer at an explicit level.
    pub fn with_level(level: TraceLevel) -> Self {
        let mut registry = MetricRegistry::new();
        let m_reads = registry.counter("ctrl.reads");
        let m_writes = registry.counter("ctrl.writes");
        let m_line_fills = registry.counter("cache.line_fills");
        let m_evictions = registry.counter("cache.evictions");
        let m_dirty_evictions = registry.counter("cache.dirty_evictions");
        let m_set_heat =
            std::array::from_fn(|bucket| registry.counter(&format!("series.set_heat.{bucket:02}")));
        StackObs {
            registry,
            tracer: Tracer::new(level, cache8t_obs::trace::DEFAULT_RING_CAPACITY),
            tick: 0,
            m_reads,
            m_writes,
            m_line_fills,
            m_evictions,
            m_dirty_evictions,
            m_set_heat,
        }
    }

    /// Creates a bundle at the `CACHE8T_TRACE` level.
    pub fn from_env() -> Self {
        StackObs::with_level(TraceLevel::from_env())
    }

    /// The current request tick (number of serviced requests).
    #[inline]
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Advances the request tick; called once per serviced request.
    #[inline]
    pub(crate) fn advance_tick(&mut self) {
        self.tick += 1;
    }

    /// The metric registry.
    pub fn registry(&self) -> &MetricRegistry {
        &self.registry
    }

    /// Mutable access to the registry (for controllers registering
    /// scheme-specific metrics).
    pub fn registry_mut(&mut self) -> &mut MetricRegistry {
        &mut self.registry
    }

    /// The event tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable access to the tracer.
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Adds 1 to a counter.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.registry.inc(id);
    }

    /// Records one line fill landing in set-heat `bucket` (a
    /// [`CacheGeometry::heat_bucket_of`] result) — the windowed
    /// set-conflict-heat counters the series sampler diffs.
    ///
    /// [`CacheGeometry::heat_bucket_of`]:
    /// cache8t_sim::CacheGeometry::heat_bucket_of
    #[inline]
    pub(crate) fn record_set_heat(&mut self, bucket: usize) {
        let id = self.m_set_heat[bucket];
        self.registry.inc(id);
    }

    /// Records a histogram observation.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        self.registry.observe(id, value);
    }

    /// Emits a structural event stamped with the current tick.
    #[inline]
    pub fn emit(&mut self, component: Component, kind: EventKind, addr: u64, detail: u64) {
        self.tracer
            .emit(TraceEvent::new(self.tick, component, kind, addr, detail));
    }

    /// Emits a verbose (per-access) event stamped with the current tick.
    #[inline]
    pub fn emit_verbose(&mut self, component: Component, kind: EventKind, addr: u64, detail: u64) {
        self.tracer
            .emit_verbose(TraceEvent::new(self.tick, component, kind, addr, detail));
    }

    /// Resets metric values, recorded events, and the tick, keeping
    /// registrations (and handles) valid. Called by
    /// [`Controller::reset_counters`](crate::Controller::reset_counters)
    /// so the snapshot covers only the measured phase.
    pub fn reset(&mut self) {
        self.registry.reset();
        self.tracer.clear();
        self.tick = 0;
    }
}

impl Default for StackObs {
    fn default() -> Self {
        StackObs::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_metrics_are_preregistered() {
        let obs = StackObs::with_level(TraceLevel::Off);
        for name in [
            "ctrl.reads",
            "ctrl.writes",
            "cache.line_fills",
            "cache.evictions",
            "cache.dirty_evictions",
        ] {
            assert_eq!(obs.registry().counter_by_name(name), Some(0), "{name}");
        }
    }

    #[test]
    fn reset_clears_values_and_tick() {
        let mut obs = StackObs::with_level(TraceLevel::Event);
        let id = obs.m_reads;
        obs.inc(id);
        obs.advance_tick();
        obs.emit(Component::Cache, EventKind::LineFill, 0x40, 4);
        assert_eq!(obs.tracer().len(), 1);
        obs.reset();
        assert_eq!(obs.registry().counter_by_name("ctrl.reads"), Some(0));
        assert_eq!(obs.tick(), 0);
        assert!(obs.tracer().is_empty());
        obs.inc(id); // handle still valid after reset
        assert_eq!(obs.registry().counter_by_name("ctrl.reads"), Some(1));
    }

    #[test]
    fn set_heat_buckets_are_preregistered_and_count() {
        let mut obs = StackObs::with_level(TraceLevel::Off);
        assert_eq!(
            obs.registry().counter_by_name("series.set_heat.00"),
            Some(0)
        );
        assert_eq!(
            obs.registry().counter_by_name("series.set_heat.15"),
            Some(0)
        );
        obs.record_set_heat(0);
        obs.record_set_heat(0);
        obs.record_set_heat(15);
        assert_eq!(
            obs.registry().counter_by_name("series.set_heat.00"),
            Some(2)
        );
        assert_eq!(
            obs.registry().counter_by_name("series.set_heat.15"),
            Some(1)
        );
    }

    #[test]
    fn off_level_suppresses_events_but_not_metrics() {
        let mut obs = StackObs::with_level(TraceLevel::Off);
        let id = obs.m_writes;
        obs.inc(id);
        obs.emit(Component::Wg, EventKind::GroupFlush, 3, 2);
        assert!(obs.tracer().is_empty());
        assert_eq!(obs.registry().counter_by_name("ctrl.writes"), Some(1));
    }
}
