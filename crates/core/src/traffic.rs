//! SRAM-array traffic accounting.

use std::fmt;
use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

/// Which array operations count toward "cache access frequency".
///
/// The paper's figures count the array operations triggered by CPU demand
/// requests (its Pin tool models an isolated L1). Miss-induced line fills
/// and dirty-eviction write-backs are identical across all controllers, so
/// including them shrinks every *percentage* by the same baseline shift
/// without changing the comparison; the harness exposes both.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CountingPolicy {
    /// Count only demand-triggered array operations (the paper's counting).
    #[default]
    DemandOnly,
    /// Additionally count line fills and dirty-eviction write-backs.
    IncludeFills,
}

/// The SRAM-array operation ledger of one controller.
///
/// Every counter is a number of *row activations* (word-line assertions) of
/// the data array, labelled by why it happened. The headline metric —
/// the paper's "cache access frequency" — is
/// [`total`](ArrayTraffic::total) under
/// [`CountingPolicy::DemandOnly`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayTraffic {
    /// Row reads serving CPU loads from the array.
    pub demand_reads: u64,
    /// Row writes depositing CPU stores into the array (the write phase of
    /// an RMW, or a plain write on a 6T array).
    pub demand_writes: u64,
    /// Row reads performed as the read phase of an RMW (pure overhead; the
    /// quantity the paper's motivation section blames).
    pub rmw_read_phases: u64,
    /// Complete RMW sequences performed.
    pub rmw_ops: u64,
    /// Row reads that filled the Set-Buffer (WG's "read row").
    pub buffer_fills: u64,
    /// Row writes that wrote the Set-Buffer back to the array.
    pub writebacks: u64,
    /// Subset of `writebacks` forced early by a read hitting the
    /// Tag-Buffer (paper §4.1's premature write-backs).
    pub premature_writebacks: u64,
    /// Reads served from the Set-Buffer instead of the array (WG+RB only).
    pub bypassed_reads: u64,
    /// Writes absorbed by the Set-Buffer without touching the array.
    pub grouped_writes: u64,
    /// Write-backs suppressed because the Dirty bit was clear (every write
    /// in the group was silent).
    pub silent_writebacks_elided: u64,
    /// Line fills caused by cache misses (not counted under
    /// [`CountingPolicy::DemandOnly`]).
    pub line_fills: u64,
    /// Dirty lines written back to memory on eviction (not counted under
    /// [`CountingPolicy::DemandOnly`]).
    pub eviction_writebacks: u64,
}

impl ArrayTraffic {
    /// Zeroed ledger.
    pub fn new() -> Self {
        ArrayTraffic::default()
    }

    /// Total array activations under the given counting policy.
    pub fn total(&self, policy: CountingPolicy) -> u64 {
        let demand = self.demand_reads
            + self.demand_writes
            + self.rmw_read_phases
            + self.buffer_fills
            + self.writebacks;
        match policy {
            CountingPolicy::DemandOnly => demand,
            CountingPolicy::IncludeFills => demand + self.line_fills + self.eviction_writebacks,
        }
    }

    /// Total array *read-port* activations (row reads) under demand-only
    /// counting — the quantity behind the read-port-availability argument
    /// of paper §4.1.
    pub fn read_port_activations(&self) -> u64 {
        self.demand_reads + self.rmw_read_phases + self.buffer_fills
    }

    /// Total array *write-port* activations (row writes) under demand-only
    /// counting.
    pub fn write_port_activations(&self) -> u64 {
        self.demand_writes + self.writebacks
    }

    /// Relative reduction of this ledger's traffic versus `baseline`
    /// (e.g. WG vs RMW — the y-axis of Figures 9–11). Positive means fewer
    /// accesses than the baseline.
    pub fn reduction_vs(&self, baseline: &ArrayTraffic, policy: CountingPolicy) -> f64 {
        let base = baseline.total(policy);
        if base == 0 {
            return 0.0;
        }
        1.0 - self.total(policy) as f64 / base as f64
    }
}

impl Add for ArrayTraffic {
    type Output = ArrayTraffic;

    fn add(mut self, rhs: ArrayTraffic) -> ArrayTraffic {
        self += rhs;
        self
    }
}

impl AddAssign for ArrayTraffic {
    fn add_assign(&mut self, rhs: ArrayTraffic) {
        self.demand_reads += rhs.demand_reads;
        self.demand_writes += rhs.demand_writes;
        self.rmw_read_phases += rhs.rmw_read_phases;
        self.rmw_ops += rhs.rmw_ops;
        self.buffer_fills += rhs.buffer_fills;
        self.writebacks += rhs.writebacks;
        self.premature_writebacks += rhs.premature_writebacks;
        self.bypassed_reads += rhs.bypassed_reads;
        self.grouped_writes += rhs.grouped_writes;
        self.silent_writebacks_elided += rhs.silent_writebacks_elided;
        self.line_fills += rhs.line_fills;
        self.eviction_writebacks += rhs.eviction_writebacks;
    }
}

impl fmt::Display for ArrayTraffic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "array accesses {} (reads {} + rmw-reads {} + fills {} + writes {} + writebacks {}), \
             grouped {} / bypassed {} / silent-elided {}",
            self.total(CountingPolicy::DemandOnly),
            self.demand_reads,
            self.rmw_read_phases,
            self.buffer_fills,
            self.demand_writes,
            self.writebacks,
            self.grouped_writes,
            self.bypassed_reads,
            self.silent_writebacks_elided,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ArrayTraffic {
        ArrayTraffic {
            demand_reads: 100,
            demand_writes: 40,
            rmw_read_phases: 40,
            rmw_ops: 40,
            buffer_fills: 5,
            writebacks: 6,
            premature_writebacks: 2,
            bypassed_reads: 10,
            grouped_writes: 20,
            silent_writebacks_elided: 3,
            line_fills: 7,
            eviction_writebacks: 4,
        }
    }

    #[test]
    fn totals_by_policy() {
        let t = sample();
        assert_eq!(t.total(CountingPolicy::DemandOnly), 100 + 40 + 40 + 5 + 6);
        assert_eq!(t.total(CountingPolicy::IncludeFills), 191 + 7 + 4);
    }

    #[test]
    fn port_activation_split() {
        let t = sample();
        assert_eq!(t.read_port_activations(), 145);
        assert_eq!(t.write_port_activations(), 46);
        assert_eq!(
            t.read_port_activations() + t.write_port_activations(),
            t.total(CountingPolicy::DemandOnly)
        );
    }

    #[test]
    fn reduction_vs_baseline() {
        let mut better = ArrayTraffic::new();
        better.demand_reads = 50;
        let mut baseline = ArrayTraffic::new();
        baseline.demand_reads = 100;
        assert!((better.reduction_vs(&baseline, CountingPolicy::DemandOnly) - 0.5).abs() < 1e-12);
        assert_eq!(
            better.reduction_vs(&ArrayTraffic::new(), CountingPolicy::DemandOnly),
            0.0
        );
    }

    #[test]
    fn addition_is_fieldwise() {
        let t = sample() + sample();
        assert_eq!(t.demand_reads, 200);
        assert_eq!(t.silent_writebacks_elided, 6);
        assert_eq!(t.eviction_writebacks, 8);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(sample().to_string().contains("array accesses"));
    }

    #[test]
    fn default_policy_is_demand_only() {
        assert_eq!(CountingPolicy::default(), CountingPolicy::DemandOnly);
    }
}
