//! A block-granularity coalescing write buffer — the classic alternative
//! the paper's Set-Buffer should be judged against.
//!
//! Store buffers that coalesce writes per cache *block* predate the paper;
//! the Set-Buffer's novelty is buffering a whole *set* (exactly one array
//! row, so one RMW deposits everything) and carrying the Dirty bit for
//! silent groups. This controller implements the conventional design so
//! the `ext_alternatives` harness can quantify the difference on equal
//! terms: same functional behaviour, same traffic accounting.

use std::fmt;

use cache8t_obs::{Component, CounterId, EventKind, HistogramId};
use cache8t_sim::{kernels, Address, CacheGeometry, DataCache, MainMemory, ReplacementKind};
use cache8t_trace::{DecodedBatch, DecodedOp, MemOp};

use crate::controller::{AccessCost, AccessResponse, CacheBackend, Controller};
use crate::obs::StackObs;
use crate::ArrayTraffic;

/// One write-buffer entry: a block base, the coalesced words, and their
/// validity.
#[derive(Debug, Clone)]
struct Entry {
    base: Address,
    words: Vec<u64>,
    valid: Vec<bool>,
}

impl Entry {
    fn new(base: Address, block_words: usize) -> Self {
        Entry {
            base,
            words: vec![0; block_words],
            valid: vec![false; block_words],
        }
    }
}

/// A coalescing write buffer with `entries` block-granularity slots in
/// front of an RMW 8T cache.
///
/// - Writes allocate/merge into their block's entry without touching the
///   array; a full buffer evicts the oldest entry (FIFO), depositing it
///   with **one RMW** (row read + row write), or with just the row read if
///   the deposit turns out to be silent.
/// - Reads are forwarded from the buffer when they hit a coalesced word;
///   otherwise they read the array as usual.
///
/// Functional behaviour (hits/misses/replacement/values) is identical to
/// the other controllers; see the crate's equivalence tests.
///
/// # Example
///
/// ```
/// use cache8t_core::{CoalescingController, Controller};
/// use cache8t_sim::{Address, CacheGeometry, ReplacementKind};
/// use cache8t_trace::MemOp;
///
/// let mut c = CoalescingController::new(CacheGeometry::paper_baseline(), ReplacementKind::Lru, 4);
/// let a = Address::new(0x40);
/// c.access(&MemOp::write(a, 1));
/// c.access(&MemOp::write(a.offset(8), 2)); // coalesced: still no array access
/// assert_eq!(c.array_accesses(), 0);
/// c.flush(); // one RMW deposits both words
/// assert_eq!(c.array_accesses(), 2);
/// ```
pub struct CoalescingController {
    backend: CacheBackend,
    traffic: ArrayTraffic,
    capacity: usize,
    metrics: CoalesceMetrics,
    /// FIFO order: oldest first.
    entries: Vec<Entry>,
    /// Retired entries kept for reuse, so the steady-state
    /// allocate/deposit churn never allocates.
    free: Vec<Entry>,
}

/// Handles of the write-buffer-specific metrics.
#[derive(Debug, Clone, Copy)]
struct CoalesceMetrics {
    /// `coalesce.deposits` — entries deposited into the array.
    deposits: CounterId,
    /// `coalesce.silent_suppressed` — deposits whose write phase was
    /// skipped because every coalesced word matched the stored data.
    silent_suppressed: CounterId,
    /// `coalesce.forwarded_reads` — reads served from the buffer.
    forwarded_reads: CounterId,
    /// `coalesce.group_len` — coalesced valid words per deposited entry.
    group_len: HistogramId,
}

impl CoalesceMetrics {
    fn register(obs: &mut StackObs) -> Self {
        let r = obs.registry_mut();
        CoalesceMetrics {
            deposits: r.counter("coalesce.deposits"),
            silent_suppressed: r.counter("coalesce.silent_suppressed"),
            forwarded_reads: r.counter("coalesce.forwarded_reads"),
            group_len: r.histogram("coalesce.group_len"),
        }
    }
}

impl CoalescingController {
    /// Creates a controller with `entries` write-buffer slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0`.
    pub fn new(geometry: CacheGeometry, replacement: ReplacementKind, entries: usize) -> Self {
        CoalescingController::from_backend(CacheBackend::new(geometry, replacement), entries)
    }

    /// Creates a controller over an existing backend (e.g. one built with
    /// [`CacheBackend::with_l2`]).
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0`.
    pub fn from_backend(mut backend: CacheBackend, entries: usize) -> Self {
        assert!(entries >= 1, "the write buffer needs at least one entry");
        let metrics = CoalesceMetrics::register(backend.obs_mut());
        CoalescingController {
            backend,
            traffic: ArrayTraffic::new(),
            capacity: entries,
            metrics,
            entries: Vec::with_capacity(entries),
            free: Vec::new(),
        }
    }

    /// Number of write-buffer slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn geometry(&self) -> CacheGeometry {
        self.backend.cache().geometry()
    }

    /// Branchless fixed-trip scan over the (small) entry list; bases are
    /// unique, so at most one slot can hit and first-match semantics are
    /// preserved. Runs on every request, so no early exit.
    #[inline]
    fn entry_pos(&self, base: Address) -> Option<usize> {
        if self.entries.len() > 64 {
            return self.entries.iter().position(|e| e.base == base);
        }
        let mut hits = 0u64;
        for (i, e) in self.entries.iter().enumerate() {
            hits |= u64::from(e.base == base) << i;
        }
        if hits == 0 {
            None
        } else {
            Some(hits.trailing_zeros() as usize)
        }
    }

    /// Deposits entry `pos` into the cache with one RMW (or only the row
    /// read when every coalesced word is silent). Returns the array cost.
    fn deposit(&mut self, pos: usize) -> AccessCost {
        let mut entry = self.entries.remove(pos);
        let g = self.geometry();
        let m = self.metrics;
        let coalesced = entry.valid.iter().filter(|v| **v).count() as u64;
        self.backend.obs_mut().inc(m.deposits);
        self.backend.obs_mut().observe(m.group_len, coalesced);
        let cost = if let Some(way) = self.backend.cache().probe(entry.base) {
            // RMW read phase: latch the row.
            self.traffic.rmw_read_phases += 1;
            let mut cost = AccessCost {
                row_reads: 1,
                row_writes: 0,
                buffer_hit: false,
            };
            // Merge and decide silence against the latched line — the
            // branchless masked-merge kernel selects stored words into the
            // invalid lanes and reports whether any valid lane differed.
            // The merge lands in the retiring entry's own word buffer.
            let set = g.set_index_of(entry.base);
            let line = self.backend.cache().set(set).line(way);
            let changed = kernels::merge_masked(&mut entry.words, line.data(), &entry.valid);
            if changed {
                let dirty = true;
                self.backend
                    .cache_mut()
                    .update_block(set, way, &entry.words, dirty);
                self.traffic.demand_writes += 1;
                self.traffic.rmw_ops += 1;
                cost.row_writes = 1;
                self.backend.obs_mut().emit(
                    Component::Coalesce,
                    EventKind::GroupFlush,
                    entry.base.raw(),
                    coalesced,
                );
            } else {
                // Every coalesced word matched the stored data: skip the write
                // phase (the buffer's own silent-store elision).
                self.traffic.silent_writebacks_elided += 1;
                self.backend.obs_mut().inc(m.silent_suppressed);
                self.backend.obs_mut().emit(
                    Component::Coalesce,
                    EventKind::SilentElide,
                    entry.base.raw(),
                    coalesced,
                );
            }
            cost
        } else {
            // The line was evicted while its words sat in the buffer (its
            // pre-buffer contents went to memory with the eviction). The
            // deposit writes around the cache — no L1 array activation,
            // and crucially no re-fill that would perturb the functional
            // state relative to the other schemes.
            self.backend
                .merge_words_below(entry.base, &entry.words, &entry.valid);
            self.traffic.eviction_writebacks += 1;
            AccessCost::default()
        };
        // Recycle the spent entry: reset it to the freshly-allocated
        // state so the next slot allocation skips the two Vec allocs.
        entry.words.fill(0);
        entry.valid.fill(false);
        self.free.push(entry);
        cost
    }

    /// Services one request with its address decomposition precomputed —
    /// shared by the per-op and batched paths.
    #[inline]
    fn access_decoded(&mut self, d: DecodedOp) -> AccessResponse {
        let DecodedOp { set, tag, word, .. } = d;
        let g = self.geometry();
        let base = g.block_base(d.addr);

        if d.is_read() {
            // Forward from the buffer when the word was coalesced. The
            // functional cache state must advance exactly as in the other
            // schemes (fill on miss, touch on hit), even though the data
            // itself comes from the buffer.
            if let Some(pos) = self.entry_pos(base) {
                if self.entries[pos].valid[word] {
                    let probed = self.backend.cache().find_in_set(set, tag);
                    let residency = self.backend.ensure_resident_probed(d.addr, probed);
                    if residency.filled {
                        self.traffic.line_fills += 1;
                    }
                    if residency.dirty_eviction {
                        self.traffic.eviction_writebacks += 1;
                    }
                    let value = self.entries[pos].words[word];
                    self.backend.cache_mut().touch_at(set, residency.way);
                    self.backend.record_read(residency.hit);
                    self.traffic.bypassed_reads += 1;
                    let m = self.metrics;
                    self.backend.obs_mut().inc(m.forwarded_reads);
                    return AccessResponse {
                        value,
                        hit: residency.hit,
                        cost: AccessCost {
                            row_reads: 0,
                            row_writes: 0,
                            buffer_hit: true,
                        },
                    };
                }
            }
            let probed = self.backend.cache().find_in_set(set, tag);
            let residency = self.backend.ensure_resident_probed(d.addr, probed);
            if residency.filled {
                self.traffic.line_fills += 1;
            }
            if residency.dirty_eviction {
                self.traffic.eviction_writebacks += 1;
            }
            let value = self
                .backend
                .cache_mut()
                .read_word_at(set, residency.way, word);
            self.backend.record_read(residency.hit);
            self.traffic.demand_reads += 1;
            return AccessResponse {
                value,
                hit: residency.hit,
                cost: AccessCost {
                    row_reads: 1,
                    row_writes: 0,
                    buffer_hit: false,
                },
            };
        }

        // Write path: keep residency identical to the other controllers
        // (write-allocate), then coalesce.
        let probed = self.backend.cache().find_in_set(set, tag);
        let residency = self.backend.ensure_resident_probed(d.addr, probed);
        if residency.filled {
            self.traffic.line_fills += 1;
        }
        if residency.dirty_eviction {
            self.traffic.eviction_writebacks += 1;
        }
        // Silence for the request statistics: against the architecturally
        // visible value (buffered word if coalesced, else the line — the
        // block is resident after `ensure_resident`, so the line's word
        // is exactly what `peek_word` would see). Nothing below touches
        // the entry list before the merge, so the slot scan is shared
        // with the merge decision.
        let entry_pos = self.entry_pos(base);
        let current = match entry_pos {
            Some(pos) if self.entries[pos].valid[word] => self.entries[pos].words[word],
            _ => self.backend.cache().peek_word_at(set, residency.way, word),
        };
        self.backend.record_write(residency.hit, current == d.value);
        self.backend.cache_mut().touch_at(set, residency.way);

        let mut cost = AccessCost {
            row_reads: 0,
            row_writes: 0,
            buffer_hit: true,
        };
        match entry_pos {
            Some(pos) => {
                self.entries[pos].words[word] = d.value;
                self.entries[pos].valid[word] = true;
                self.traffic.grouped_writes += 1;
            }
            None => {
                if self.entries.len() >= self.capacity {
                    let deposit_cost = self.deposit(0);
                    cost.row_reads += deposit_cost.row_reads;
                    cost.row_writes += deposit_cost.row_writes;
                    cost.buffer_hit = false;
                }
                let mut entry = self
                    .free
                    .pop()
                    .unwrap_or_else(|| Entry::new(base, g.block_words()));
                entry.base = base;
                entry.words[word] = d.value;
                entry.valid[word] = true;
                self.entries.push(entry);
            }
        }
        AccessResponse {
            value: d.value,
            hit: residency.hit,
            cost,
        }
    }
}

impl Controller for CoalescingController {
    fn access(&mut self, op: &MemOp) -> AccessResponse {
        let g = self.geometry();
        self.access_decoded(DecodedOp::from_op(op, &g))
    }

    fn access_batch(&mut self, batch: &DecodedBatch, range: std::ops::Range<usize>) {
        assert_eq!(
            batch.geometry(),
            self.geometry(),
            "batch decoded against a different geometry"
        );
        for d in batch.run(range) {
            self.access_decoded(d);
        }
    }

    fn flush(&mut self) {
        while !self.entries.is_empty() {
            self.deposit(0);
        }
    }

    fn traffic(&self) -> &ArrayTraffic {
        &self.traffic
    }

    fn stats(&self) -> &cache8t_sim::CacheStats {
        self.backend.request_stats()
    }

    fn reset_counters(&mut self) {
        self.traffic = ArrayTraffic::new();
        self.backend.reset_stats();
    }

    fn cache(&self) -> &DataCache {
        self.backend.cache()
    }

    fn memory(&self) -> &MainMemory {
        self.backend.memory()
    }

    fn name(&self) -> &'static str {
        "CoalesceWB"
    }

    fn peek_word(&self, addr: Address) -> u64 {
        let g = self.geometry();
        let base = g.block_base(addr);
        let word = g.word_offset_of(addr);
        if let Some(pos) = self.entry_pos(base) {
            if self.entries[pos].valid[word] {
                return self.entries[pos].words[word];
            }
        }
        self.backend.peek_word(addr)
    }

    fn obs(&self) -> Option<&StackObs> {
        Some(self.backend.obs())
    }

    fn obs_mut(&mut self) -> Option<&mut StackObs> {
        Some(self.backend.obs_mut())
    }

    fn occupancy(&self) -> Option<Vec<u64>> {
        let words = self.geometry().block_words();
        let mut histogram = vec![0u64; words + 1];
        for entry in &self.entries {
            let valid = entry.valid.iter().filter(|&&v| v).count();
            histogram[valid] += 1;
        }
        Some(histogram)
    }
}

impl fmt::Debug for CoalescingController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CoalescingController")
            .field("capacity", &self.capacity)
            .field("occupied", &self.entries.len())
            .field("traffic", &self.traffic)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RmwController;

    fn geometry() -> CacheGeometry {
        CacheGeometry::new(256, 2, 32).unwrap()
    }

    fn controller(entries: usize) -> CoalescingController {
        CoalescingController::new(geometry(), ReplacementKind::Lru, entries)
    }

    #[test]
    fn writes_to_one_block_coalesce_into_one_rmw() {
        let mut c = controller(4);
        let a = Address::new(0x40);
        for i in 0..4u64 {
            c.access(&MemOp::write(a.offset(i * 8), i + 1));
        }
        assert_eq!(c.array_accesses(), 0, "all four writes buffered");
        c.flush();
        assert_eq!(c.array_accesses(), 2, "one RMW deposits the block");
        assert_eq!(c.traffic().rmw_ops, 1);
        for i in 0..4u64 {
            assert_eq!(c.peek_word(a.offset(i * 8)), i + 1);
        }
    }

    #[test]
    fn capacity_eviction_is_fifo() {
        let mut c = controller(2);
        c.access(&MemOp::write(Address::new(0x00), 1));
        c.access(&MemOp::write(Address::new(0x40), 2));
        assert_eq!(c.array_accesses(), 0);
        // Third block evicts the oldest (0x00).
        c.access(&MemOp::write(Address::new(0x80), 3));
        assert_eq!(c.traffic().rmw_ops, 1);
        assert_eq!(
            c.peek_word(Address::new(0x00)),
            1,
            "deposited, still visible"
        );
    }

    #[test]
    fn reads_forward_from_the_buffer() {
        let mut c = controller(4);
        let a = Address::new(0x40);
        c.access(&MemOp::write(a, 7));
        let r = c.access(&MemOp::read(a));
        assert_eq!(r.value, 7);
        assert!(r.cost.buffer_hit);
        assert_eq!(c.traffic().bypassed_reads, 1);
        // A read to an uncoalesced word of the same block goes to the array.
        let r = c.access(&MemOp::read(a.offset(8)));
        assert_eq!(r.value, 0);
        assert!(!r.cost.buffer_hit);
        assert_eq!(c.traffic().demand_reads, 1);
    }

    #[test]
    fn silent_deposits_skip_the_write_phase() {
        let mut c = controller(2);
        let a = Address::new(0x40);
        c.access(&MemOp::write(a, 0)); // memory is zero: silent
        c.flush();
        assert_eq!(c.traffic().rmw_read_phases, 1, "row read happens");
        assert_eq!(c.traffic().demand_writes, 0, "write phase skipped");
        assert_eq!(c.traffic().silent_writebacks_elided, 1);
    }

    #[test]
    fn functionally_equivalent_to_rmw() {
        let g = geometry();
        let mut rmw = RmwController::new(g, ReplacementKind::Lru);
        let mut wb = controller(4);
        let mut ops = Vec::new();
        for i in 0..600u64 {
            let addr = Address::new((i * 24) % 2048);
            ops.push(if i % 3 == 0 {
                MemOp::write(addr, i)
            } else {
                MemOp::read(addr)
            });
        }
        for op in &ops {
            let a = rmw.access(op);
            let b = wb.access(op);
            assert_eq!(a.value, b.value, "{op}");
            assert_eq!(a.hit, b.hit, "{op}");
        }
        wb.flush();
        assert_eq!(rmw.stats(), wb.stats());
        for op in &ops {
            assert_eq!(rmw.peek_word(op.addr), wb.peek_word(op.addr));
        }
        assert!(wb.array_accesses() <= rmw.array_accesses());
    }

    #[test]
    fn occupancy_histogram_counts_valid_words_per_entry() {
        let mut c = controller(4);
        assert_eq!(
            c.occupancy(),
            Some(vec![0; 5]),
            "4-word blocks: levels 0..=4"
        );
        let a = Address::new(0x40);
        c.access(&MemOp::write(a, 1));
        c.access(&MemOp::write(a.offset(8), 2));
        c.access(&MemOp::write(Address::new(0x80), 3));
        // One entry holds 2 coalesced words, another holds 1.
        assert_eq!(c.occupancy(), Some(vec![0, 1, 1, 0, 0]));
        c.flush();
        assert_eq!(c.occupancy(), Some(vec![0; 5]));
    }

    #[test]
    fn flush_is_idempotent() {
        let mut c = controller(2);
        c.access(&MemOp::write(Address::new(0x40), 5));
        c.flush();
        let t = *c.traffic();
        c.flush();
        assert_eq!(*c.traffic(), t);
        assert_eq!(c.name(), "CoalesceWB");
        assert_eq!(c.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = controller(0);
    }
}
