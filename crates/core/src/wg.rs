//! Write Grouping (WG) and Write Grouping + Read Bypassing (WG+RB).

use std::fmt;

use serde::{Deserialize, Serialize};

use cache8t_obs::{Component, CounterId, EventKind, HistogramId};
use cache8t_sim::{Address, CacheGeometry, DataCache, MainMemory, ReplacementKind};
use cache8t_trace::{DecodedBatch, DecodedOp, MemOp};

use crate::controller::{AccessCost, AccessResponse, CacheBackend, Controller};
use crate::obs::StackObs;
use crate::ArrayTraffic;

/// Configuration of the grouping controller.
///
/// The defaults are the paper's WG (§4.1): one Set-Buffer, silent-write
/// detection on, no read bypassing. [`WgRbController`] enables
/// `read_bypass` (§4.2); the remaining knobs exist for the ablation studies
/// in `cache8t-bench` (`ext_ablations`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WgOptions {
    /// Serve reads that hit the Tag-Buffer from the Set-Buffer (WG+RB).
    pub read_bypass: bool,
    /// Detect silent writes and suppress clean write-backs via the Dirty
    /// bit.
    pub silent_detection: bool,
    /// Number of Set-Buffers (the paper uses 1; more is an extension).
    pub buffer_depth: usize,
}

impl WgOptions {
    /// The paper's WG configuration.
    pub const fn wg() -> Self {
        WgOptions {
            read_bypass: false,
            silent_detection: true,
            buffer_depth: 1,
        }
    }

    /// The paper's WG+RB configuration.
    pub const fn wg_rb() -> Self {
        WgOptions {
            read_bypass: true,
            silent_detection: true,
            buffer_depth: 1,
        }
    }
}

impl Default for WgOptions {
    /// Same as [`WgOptions::wg`].
    fn default() -> Self {
        WgOptions::wg()
    }
}

/// A deliberately broken behaviour for conformance-harness self-tests.
///
/// The differential harness (`cache8t-conform`) must demonstrate that it
/// *catches* equivalence bugs, not just that the healthy controllers
/// agree — so the controller can be armed with one of these faults and
/// replayed until the harness flags the divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum WgFault {
    /// Never set the Dirty bit on a grouped write: a dirty group is then
    /// mistaken for a silent one and its write-back is elided, dropping
    /// the written data (the exact failure mode §4.1's Dirty bit
    /// exists to prevent).
    SkipDirtyBit,
}

/// Borrowed read-only view of one resident Set-Buffer and its Tag-Buffer
/// entry, for external invariant checking (see `cache8t-conform`).
///
/// Views borrow the controller directly, so draining them every replay
/// step (as the conformance harness does) copies nothing.
#[derive(Debug, Clone, Copy)]
pub struct WgBufferView<'a> {
    buf: &'a SetBuffer,
    block_words: usize,
}

impl<'a> WgBufferView<'a> {
    /// The buffered set's index.
    #[inline]
    pub fn set_index(&self) -> u64 {
        self.buf.set_index
    }

    /// Number of ways in the buffered set.
    #[inline]
    pub fn ways(&self) -> usize {
        self.buf.tags.len()
    }

    /// Per-way tags (`None` for ways invalid at fill time).
    #[inline]
    pub fn tags(&self) -> &'a [Option<u64>] {
        &self.buf.tags
    }

    /// Block data of `way` as currently buffered.
    #[inline]
    pub fn way_data(&self, way: usize) -> &'a [u64] {
        &self.buf.data[way * self.block_words..(way + 1) * self.block_words]
    }

    /// Whether `way` was modified through the buffer since its fill.
    #[inline]
    pub fn is_modified(&self, way: usize) -> bool {
        self.buf.modified[way]
    }

    /// The paper's Dirty bit.
    #[inline]
    pub fn dirty(&self) -> bool {
        self.buf.dirty
    }

    /// Writes absorbed since the last synchronization.
    #[inline]
    pub fn writes_since_sync(&self) -> u64 {
        self.buf.writes_since_sync
    }
}

/// One buffered cache set: the Set-Buffer contents plus the Tag-Buffer
/// entry describing them (paper Figure 6).
#[derive(Debug, Clone)]
struct SetBuffer {
    /// The buffered set's index (the "Set" field of the Tag-Buffer).
    set_index: u64,
    /// Per-way tags (`None` for ways that were invalid at fill time).
    tags: Vec<Option<u64>>,
    /// All ways' block data in one flat arena (`way * block_words + word`),
    /// updated in place by grouped writes.
    data: Vec<u64>,
    /// Per-way dirty state of the underlying cache line at fill time.
    line_dirty: Vec<bool>,
    /// Per-way "modified through the buffer" flags (set by non-silent
    /// grouped writes; folded into the line dirty bits at write-back).
    modified: Vec<bool>,
    /// The paper's single Dirty bit: the buffer diverges from the array.
    dirty: bool,
    /// Writes absorbed since the last synchronization (used to count
    /// write-backs elided by the Dirty bit).
    writes_since_sync: u64,
    /// Request tick at which this buffer was filled (for the
    /// `wg.buffer_residency` histogram).
    filled_at_tick: u64,
}

/// Handles of the grouping-specific metrics.
#[derive(Debug, Clone, Copy)]
struct WgMetrics {
    /// `wg.groups` — closed write groups (dirty or silent).
    groups: CounterId,
    /// `wg.writebacks` — Set-Buffer deposits into the array.
    writebacks: CounterId,
    /// `wg.premature_writebacks` — deposits forced by reads (plain WG).
    premature_writebacks: CounterId,
    /// `wg.silent_suppressed` — write-backs elided by the Dirty bit.
    silent_suppressed: CounterId,
    /// `wg.buffer_fills` — Set-Buffer fill row-reads.
    buffer_fills: CounterId,
    /// `wg.grouped_writes` — writes absorbed without an array access.
    grouped_writes: CounterId,
    /// `wg.bypassed_reads` — reads served from the Set-Buffer (WG+RB).
    bypassed_reads: CounterId,
    /// `wg.group_len` — writes per closed group.
    group_len: HistogramId,
    /// `wg.buffer_residency` — request ticks a buffer stayed resident.
    buffer_residency: HistogramId,
}

impl WgMetrics {
    fn register(obs: &mut StackObs) -> Self {
        let r = obs.registry_mut();
        WgMetrics {
            groups: r.counter("wg.groups"),
            writebacks: r.counter("wg.writebacks"),
            premature_writebacks: r.counter("wg.premature_writebacks"),
            silent_suppressed: r.counter("wg.silent_suppressed"),
            buffer_fills: r.counter("wg.buffer_fills"),
            grouped_writes: r.counter("wg.grouped_writes"),
            bypassed_reads: r.counter("wg.bypassed_reads"),
            group_len: r.histogram("wg.group_len"),
            buffer_residency: r.histogram("wg.buffer_residency"),
        }
    }
}

/// **Write Grouping** — the paper's §4.1 technique, generalized by
/// [`WgOptions`].
///
/// A Set-Buffer between the column multiplexers and the write drivers holds
/// the most recently *written* cache set; the cache controller keeps the
/// set's index and all block tags in a Tag-Buffer. Writes that hit the
/// Tag-Buffer update the Set-Buffer without touching the SRAM array — the
/// whole group is deposited with a single row write when the buffer is
/// evicted (a write to a different set) or synchronized early (a read that
/// needs buffered data). A Dirty bit, cleared when every absorbed write was
/// silent, suppresses write-backs that would deposit unchanged data.
///
/// Functional behaviour (hits, misses, replacement, read values) is
/// identical to [`RmwController`](crate::RmwController); only the array
/// traffic differs. The equivalence tests in this crate enforce that.
///
/// See the [crate docs](crate) for an example.
pub struct WgController {
    backend: CacheBackend,
    traffic: ArrayTraffic,
    options: WgOptions,
    metrics: WgMetrics,
    /// Buffered sets, most recently used first. Length ≤ buffer_depth.
    buffers: Vec<SetBuffer>,
    /// Retired Set-Buffers kept for reuse: refilling one recycles its
    /// allocations, so the steady-state fill/evict cycle allocates nothing.
    free: Vec<SetBuffer>,
    /// Armed self-test fault, if any (see [`WgFault`]).
    fault: Option<WgFault>,
}

/// **Write Grouping + Read Bypassing** — the paper's §4.2 technique.
///
/// Identical to [`WgController`] except that reads hitting the Tag-Buffer
/// are served directly from the Set-Buffer through an extra output
/// multiplexer (paper Figure 7): no premature write-back, no array read,
/// and the read port stays free.
///
/// # Example
///
/// ```
/// use cache8t_core::{Controller, WgRbController};
/// use cache8t_sim::{Address, CacheGeometry, ReplacementKind};
/// use cache8t_trace::MemOp;
///
/// let mut c = WgRbController::new(CacheGeometry::paper_baseline(), ReplacementKind::Lru);
/// let a = Address::new(0x2000);
/// c.access(&MemOp::write(a, 7));          // fills the Set-Buffer (1 read)
/// let r = c.access(&MemOp::read(a));      // bypassed: served from the buffer
/// assert_eq!(r.value, 7);
/// assert!(r.cost.buffer_hit);
/// assert_eq!(c.traffic().bypassed_reads, 1);
/// ```
pub struct WgRbController {
    inner: WgController,
}

impl WgController {
    /// Creates a WG controller with the paper's default options.
    pub fn new(geometry: CacheGeometry, replacement: ReplacementKind) -> Self {
        WgController::with_options(geometry, replacement, WgOptions::wg())
    }

    /// Creates a grouping controller with explicit options.
    ///
    /// # Panics
    ///
    /// Panics if `options.buffer_depth == 0`.
    pub fn with_options(
        geometry: CacheGeometry,
        replacement: ReplacementKind,
        options: WgOptions,
    ) -> Self {
        WgController::from_backend(CacheBackend::new(geometry, replacement), options)
    }

    /// Creates a grouping controller over an existing backend (e.g. one
    /// built with [`CacheBackend::with_l2`]).
    ///
    /// # Panics
    ///
    /// Panics if `options.buffer_depth == 0`.
    pub fn from_backend(mut backend: CacheBackend, options: WgOptions) -> Self {
        assert!(
            options.buffer_depth >= 1,
            "at least one Set-Buffer is required"
        );
        let metrics = WgMetrics::register(backend.obs_mut());
        WgController {
            backend,
            traffic: ArrayTraffic::new(),
            options,
            metrics,
            buffers: Vec::with_capacity(options.buffer_depth),
            free: Vec::with_capacity(options.buffer_depth),
            fault: None,
        }
    }

    /// The active options.
    pub fn options(&self) -> WgOptions {
        self.options
    }

    /// Arms a deliberate equivalence bug for conformance-harness
    /// self-tests. Never use outside tests: the controller stops being
    /// functionally transparent.
    #[doc(hidden)]
    pub fn inject_fault(&mut self, fault: Option<WgFault>) {
        self.fault = fault;
    }

    /// Borrowed views of the resident Set-Buffers (MRU first) for
    /// external invariant checking. Nothing is cloned.
    pub fn buffer_views(&self) -> impl Iterator<Item = WgBufferView<'_>> {
        let block_words = self.geometry().block_words();
        self.buffers
            .iter()
            .map(move |buf| WgBufferView { buf, block_words })
    }

    fn geometry(&self) -> CacheGeometry {
        self.backend.cache().geometry()
    }

    fn buffer_pos_for_set(&self, set_index: u64) -> Option<usize> {
        self.buffers.iter().position(|b| b.set_index == set_index)
    }

    /// Tag-Buffer lookup: buffered set with a matching valid tag.
    fn tag_hit(&self, addr: Address) -> Option<(usize, usize)> {
        let g = self.geometry();
        self.tag_hit_parts(g.set_index_of(addr), g.tag_of(addr))
    }

    /// [`tag_hit`](Self::tag_hit) with the address decomposition already
    /// done (per-op path decodes inline; batched path reads the columns).
    ///
    /// The way scan is branchless in the style of
    /// [`kernels::find_way`](cache8t_sim::kernels::find_way): every way
    /// is compared with no early exit and the hit bitmask resolved with
    /// one `trailing_zeros`. Valid tags are unique within a set, so
    /// first-match semantics are preserved. This probe runs on *every*
    /// request, hit or miss.
    #[inline]
    fn tag_hit_parts(&self, set: u64, tag: u64) -> Option<(usize, usize)> {
        let pos = self.buffer_pos_for_set(set)?;
        let tags = &self.buffers[pos].tags;
        if tags.len() > 64 {
            let way = tags.iter().position(|t| *t == Some(tag))?;
            return Some((pos, way));
        }
        let mut hits = 0u64;
        for (way, t) in tags.iter().enumerate() {
            hits |= u64::from(*t == Some(tag)) << way;
        }
        if hits == 0 {
            None
        } else {
            Some((pos, hits.trailing_zeros() as usize))
        }
    }

    /// Writes the buffer back to the array if its Dirty bit is set.
    /// Returns `true` if a row write was performed.
    fn sync_buffer(&mut self, pos: usize, premature: bool) -> bool {
        let buf = &mut self.buffers[pos];
        let performed = buf.dirty;
        let set_index = buf.set_index;
        let group_len = buf.writes_since_sync;
        let m = self.metrics;
        if buf.dirty {
            // The buffer mirrors one whole SRAM row, and the row's ways
            // are contiguous in the cache's word arena — so the deposit
            // is a single set-wide branchless compare + copy instead of
            // a compare/copy per way. Ways that were invalid at fill
            // time still hold their snapshot (fills into a buffered set
            // drop the buffer first), so including them cannot move
            // stored data.
            self.backend
                .cache_mut()
                .replace_set_words(buf.set_index, &buf.data);
            for way in 0..buf.tags.len() {
                if buf.tags[way].is_none() {
                    continue;
                }
                let line_dirty = buf.line_dirty[way] || buf.modified[way];
                self.backend
                    .cache_mut()
                    .set_line_dirty(buf.set_index, way, line_dirty);
                buf.line_dirty[way] = line_dirty;
                buf.modified[way] = false;
            }
            buf.dirty = false;
            self.traffic.writebacks += 1;
            self.backend.obs_mut().inc(m.writebacks);
            if premature {
                self.traffic.premature_writebacks += 1;
                self.backend.obs_mut().inc(m.premature_writebacks);
            }
            // A dirty deposit always closes a write group.
            self.backend.obs_mut().inc(m.groups);
            self.backend.obs_mut().observe(m.group_len, group_len);
            self.backend
                .obs_mut()
                .emit(Component::Wg, EventKind::GroupFlush, set_index, group_len);
        } else if group_len > 0 {
            // The Dirty bit is clear although writes were absorbed: the
            // whole group was silent and the write-back is elided.
            self.traffic.silent_writebacks_elided += 1;
            let obs = self.backend.obs_mut();
            obs.inc(m.silent_suppressed);
            obs.inc(m.groups);
            obs.observe(m.group_len, group_len);
            obs.emit(Component::Wg, EventKind::SilentElide, set_index, group_len);
        }
        self.buffers[pos].writes_since_sync = 0;
        performed
    }

    /// Synchronizes and discards the buffer at `pos`. Returns `true` if a
    /// row write was performed.
    fn evict_buffer(&mut self, pos: usize) -> bool {
        let wrote = self.sync_buffer(pos, false);
        let buf = self.buffers.remove(pos);
        let residency = self.backend.obs().tick().saturating_sub(buf.filled_at_tick);
        self.free.push(buf);
        let m = self.metrics;
        self.backend
            .obs_mut()
            .observe(m.buffer_residency, residency);
        wrote
    }

    /// Snapshots `set_index` from the cache into an MRU Set-Buffer (the
    /// "fill the Set-Buffer by read row" step of Algorithm 1), recycling a
    /// retired buffer's allocations when one is available.
    fn fill_buffer(&mut self, set_index: u64) {
        let g = self.geometry();
        let ways = g.ways() as usize;
        let block_words = g.block_words();
        let mut buf = self.free.pop().unwrap_or_else(|| SetBuffer {
            set_index: 0,
            tags: Vec::with_capacity(ways),
            data: vec![0; ways * block_words],
            line_dirty: Vec::with_capacity(ways),
            modified: Vec::with_capacity(ways),
            dirty: false,
            writes_since_sync: 0,
            filled_at_tick: 0,
        });
        buf.set_index = set_index;
        buf.tags.clear();
        buf.line_dirty.clear();
        buf.modified.clear();
        buf.dirty = false;
        buf.writes_since_sync = 0;
        buf.filled_at_tick = self.backend.obs().tick();
        // Snapshot the whole row's words in one copy — the set's ways
        // are contiguous in the cache's word arena — and walk only the
        // per-way metadata.
        buf.data
            .copy_from_slice(self.backend.cache().set_words(set_index));
        let mut valid_ways = 0u64;
        for way in 0..ways {
            let (tag, valid, dirty) = self.backend.cache().line_meta(set_index, way);
            valid_ways += u64::from(valid);
            buf.tags.push(valid.then_some(tag));
            buf.line_dirty.push(valid && dirty);
            buf.modified.push(false);
        }
        self.traffic.buffer_fills += 1;
        let m = self.metrics;
        self.backend.obs_mut().inc(m.buffer_fills);
        self.backend
            .obs_mut()
            .emit(Component::Wg, EventKind::BufferFill, set_index, valid_ways);
        self.buffers.insert(0, buf);
    }

    fn promote_buffer(&mut self, pos: usize) {
        if pos > 0 {
            let buf = self.buffers.remove(pos);
            self.buffers.insert(0, buf);
        }
    }

    fn serve_read(&mut self, d: DecodedOp) -> AccessResponse {
        let DecodedOp { set, tag, word, .. } = d;
        let g = self.geometry();
        if let Some((pos, way)) = self.tag_hit_parts(set, tag) {
            // A Set-Buffer mirrors its cache set in way order and fills
            // into a buffered set always drop the buffer first, so the
            // buffer way *is* the cache way — the line can be addressed
            // directly with no second tag search.
            debug_assert_eq!(self.backend.cache().find_in_set(set, tag), Some(way));
            if self.options.read_bypass {
                // WG+RB: route the Set-Buffer to the output (Figure 7).
                let value = self.buffers[pos].data[way * g.block_words() + word];
                self.backend.cache_mut().touch_at(set, way);
                self.backend.record_read(true);
                self.promote_buffer(pos);
                self.traffic.bypassed_reads += 1;
                let m = self.metrics;
                self.backend.obs_mut().inc(m.bypassed_reads);
                self.backend.obs_mut().emit_verbose(
                    Component::Wg,
                    EventKind::Bypass,
                    d.addr.raw(),
                    value,
                );
                return AccessResponse {
                    value,
                    hit: true,
                    cost: AccessCost {
                        row_reads: 0,
                        row_writes: 0,
                        buffer_hit: true,
                    },
                };
            }
            // Plain WG: the array must be current before reading it, so a
            // premature write-back is forced when the buffer is dirty.
            let wrote = self.sync_buffer(pos, true);
            self.promote_buffer(pos);
            let value = self.backend.cache_mut().read_word_at(set, way, word);
            self.backend.record_read(true);
            self.traffic.demand_reads += 1;
            return AccessResponse {
                value,
                hit: true,
                cost: AccessCost {
                    row_reads: 1,
                    row_writes: u32::from(wrote),
                    buffer_hit: false,
                },
            };
        }

        // Tag-Buffer miss: a normal array read. If the read misses in the
        // cache and its fill lands in a buffered set, the set's composition
        // changes — synchronize and drop that buffer first.
        let mut cost = AccessCost::default();
        let probed = self.backend.cache().find_in_set(set, tag);
        if probed.is_none() {
            if let Some(pos) = self.buffer_pos_for_set(set) {
                cost.row_writes += u32::from(self.evict_buffer(pos));
            }
        }
        let residency = self.backend.ensure_resident_probed(d.addr, probed);
        if residency.filled {
            self.traffic.line_fills += 1;
        }
        if residency.dirty_eviction {
            self.traffic.eviction_writebacks += 1;
        }
        let value = self
            .backend
            .cache_mut()
            .read_word_at(set, residency.way, word);
        self.backend.record_read(residency.hit);
        self.traffic.demand_reads += 1;
        cost.row_reads += 1;
        AccessResponse {
            value,
            hit: residency.hit,
            cost,
        }
    }

    /// Applies a write to the buffer at `pos` (the "Update the Set-Buffer,
    /// set the Dirty bit if it is non-silent" step). Returns `true` if the
    /// write was silent.
    fn write_into_buffer(&mut self, pos: usize, way: usize, word: usize, value: u64) -> bool {
        let idx = way * self.geometry().block_words() + word;
        let buf = &mut self.buffers[pos];
        let old = buf.data[idx];
        buf.data[idx] = value;
        let silent = old == value;
        if !silent {
            buf.modified[way] = true;
        }
        let skip_dirty = self.fault == Some(WgFault::SkipDirtyBit);
        if (!silent || !self.options.silent_detection) && !skip_dirty {
            buf.dirty = true;
        }
        buf.writes_since_sync += 1;
        silent
    }

    fn serve_write(&mut self, d: DecodedOp) -> AccessResponse {
        let DecodedOp { set, tag, word, .. } = d;
        if let Some((pos, way)) = self.tag_hit_parts(set, tag) {
            // Grouped: the Set-Buffer absorbs the write; no array access.
            // The buffer way is the cache way (see `serve_read`), so the
            // replacement touch needs no tag search either.
            debug_assert_eq!(self.backend.cache().find_in_set(set, tag), Some(way));
            let silent = self.write_into_buffer(pos, way, word, d.value);
            self.backend.record_write(true, silent);
            self.promote_buffer(pos);
            self.backend.cache_mut().touch_at(set, way);
            self.traffic.grouped_writes += 1;
            let m = self.metrics;
            self.backend.obs_mut().inc(m.grouped_writes);
            return AccessResponse {
                value: d.value,
                hit: true,
                cost: AccessCost {
                    row_reads: 0,
                    row_writes: 0,
                    buffer_hit: true,
                },
            };
        }

        let mut cost = AccessCost::default();

        // A cache miss whose fill lands in a buffered set invalidates that
        // buffer's snapshot — synchronize and drop it before allocating.
        let probed = self.backend.cache().find_in_set(set, tag);
        if probed.is_none() {
            if let Some(pos) = self.buffer_pos_for_set(set) {
                cost.row_writes += u32::from(self.evict_buffer(pos));
            }
        }
        let residency = self.backend.ensure_resident_probed(d.addr, probed);
        if residency.filled {
            self.traffic.line_fills += 1;
        }
        if residency.dirty_eviction {
            self.traffic.eviction_writebacks += 1;
        }

        // Evict the least recently used buffer if all Set-Buffers are
        // occupied (with depth 1 this is Algorithm 1's "write-back the
        // Set-Buffer if the Dirty bit is set").
        while self.buffers.len() >= self.options.buffer_depth {
            let last = self.buffers.len() - 1;
            cost.row_writes += u32::from(self.evict_buffer(last));
        }

        // Fill the Set-Buffer by reading the row, then merge the write.
        // The fresh buffer snapshots the set in way order, so the block's
        // buffer way is the way `ensure_resident` just reported.
        self.fill_buffer(set);
        cost.row_reads += 1;
        let way = residency.way;
        debug_assert_eq!(self.buffers[0].tags[way], Some(tag));
        let silent = self.write_into_buffer(0, way, word, d.value);
        self.backend.record_write(residency.hit, silent);
        self.backend.cache_mut().touch_at(set, way);

        AccessResponse {
            value: d.value,
            hit: residency.hit,
            cost,
        }
    }

    /// Services one request with its address decomposition precomputed —
    /// shared by the per-op and batched paths.
    #[inline]
    fn access_decoded(&mut self, d: DecodedOp) -> AccessResponse {
        if d.is_read() {
            self.serve_read(d)
        } else {
            self.serve_write(d)
        }
    }
}

impl Controller for WgController {
    fn access(&mut self, op: &MemOp) -> AccessResponse {
        let g = self.geometry();
        self.access_decoded(DecodedOp::from_op(op, &g))
    }

    fn access_batch(&mut self, batch: &DecodedBatch, range: std::ops::Range<usize>) {
        assert_eq!(
            batch.geometry(),
            self.geometry(),
            "batch decoded against a different geometry"
        );
        for d in batch.run(range) {
            self.access_decoded(d);
        }
    }

    fn flush(&mut self) {
        for pos in 0..self.buffers.len() {
            self.sync_buffer(pos, false);
        }
    }

    fn traffic(&self) -> &ArrayTraffic {
        &self.traffic
    }

    fn stats(&self) -> &cache8t_sim::CacheStats {
        self.backend.request_stats()
    }

    fn reset_counters(&mut self) {
        self.traffic = ArrayTraffic::new();
        self.backend.reset_stats();
        // The tick restarted at zero: re-stamp surviving buffers so
        // residency observations stay non-negative.
        for buf in &mut self.buffers {
            buf.filled_at_tick = 0;
        }
    }

    fn cache(&self) -> &DataCache {
        self.backend.cache()
    }

    fn memory(&self) -> &MainMemory {
        self.backend.memory()
    }

    fn name(&self) -> &'static str {
        if self.options.read_bypass {
            "WG+RB"
        } else {
            "WG"
        }
    }

    fn peek_word(&self, addr: Address) -> u64 {
        if let Some((pos, way)) = self.tag_hit(addr) {
            let g = self.geometry();
            return self.buffers[pos].data[way * g.block_words() + g.word_offset_of(addr)];
        }
        self.backend.peek_word(addr)
    }

    fn obs(&self) -> Option<&StackObs> {
        Some(self.backend.obs())
    }

    fn obs_mut(&mut self) -> Option<&mut StackObs> {
        Some(self.backend.obs_mut())
    }

    fn occupancy(&self) -> Option<Vec<u64>> {
        let ways = self.geometry().ways() as usize;
        let mut histogram = vec![0u64; ways + 1];
        for buf in &self.buffers {
            let modified = buf.modified.iter().filter(|&&m| m).count();
            histogram[modified] += 1;
        }
        Some(histogram)
    }
}

impl fmt::Debug for WgController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WgController")
            .field("options", &self.options)
            .field("buffered_sets", &self.buffers.len())
            .field("traffic", &self.traffic)
            .finish_non_exhaustive()
    }
}

impl WgRbController {
    /// Creates a WG+RB controller with the paper's default options.
    pub fn new(geometry: CacheGeometry, replacement: ReplacementKind) -> Self {
        WgRbController {
            inner: WgController::with_options(geometry, replacement, WgOptions::wg_rb()),
        }
    }

    /// Creates a WG+RB controller over an existing backend (e.g. one built
    /// with [`CacheBackend::with_l2`]).
    pub fn from_backend(backend: CacheBackend) -> Self {
        WgRbController {
            inner: WgController::from_backend(backend, WgOptions::wg_rb()),
        }
    }

    /// The wrapped grouping controller.
    pub fn as_wg(&self) -> &WgController {
        &self.inner
    }

    /// Arms a deliberate equivalence bug (see
    /// [`WgController::inject_fault`]).
    #[doc(hidden)]
    pub fn inject_fault(&mut self, fault: Option<WgFault>) {
        self.inner.inject_fault(fault);
    }

    /// Borrowed views of the resident Set-Buffers (see
    /// [`WgController::buffer_views`]).
    pub fn buffer_views(&self) -> impl Iterator<Item = WgBufferView<'_>> {
        self.inner.buffer_views()
    }
}

impl Controller for WgRbController {
    fn access(&mut self, op: &MemOp) -> AccessResponse {
        self.inner.access(op)
    }

    fn access_batch(&mut self, batch: &DecodedBatch, range: std::ops::Range<usize>) {
        self.inner.access_batch(batch, range);
    }

    fn flush(&mut self) {
        self.inner.flush();
    }

    fn traffic(&self) -> &ArrayTraffic {
        self.inner.traffic()
    }

    fn stats(&self) -> &cache8t_sim::CacheStats {
        self.inner.stats()
    }

    fn reset_counters(&mut self) {
        self.inner.reset_counters();
    }

    fn cache(&self) -> &DataCache {
        self.inner.cache()
    }

    fn memory(&self) -> &MainMemory {
        self.inner.memory()
    }

    fn name(&self) -> &'static str {
        "WG+RB"
    }

    fn peek_word(&self, addr: Address) -> u64 {
        self.inner.peek_word(addr)
    }

    fn obs(&self) -> Option<&StackObs> {
        self.inner.obs()
    }

    fn obs_mut(&mut self) -> Option<&mut StackObs> {
        self.inner.obs_mut()
    }

    fn occupancy(&self) -> Option<Vec<u64>> {
        self.inner.occupancy()
    }
}

impl fmt::Debug for WgRbController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WgRbController")
            .field("inner", &self.inner)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> CacheGeometry {
        // 4 sets, 2 ways, 32 B blocks.
        CacheGeometry::new(256, 2, 32).unwrap()
    }

    fn wg() -> WgController {
        WgController::new(geometry(), ReplacementKind::Lru)
    }

    fn wgrb() -> WgRbController {
        WgRbController::new(geometry(), ReplacementKind::Lru)
    }

    /// Two addresses in different sets of the test geometry.
    fn set_a_addr() -> Address {
        Address::new(0x00)
    }

    fn set_b_addr() -> Address {
        Address::new(0x20)
    }

    #[test]
    fn consecutive_writes_to_same_set_are_grouped() {
        let mut c = wg();
        let b = set_b_addr();
        c.access(&MemOp::write(b, 1)); // fill (1 read)
        c.access(&MemOp::write(b.offset(8), 2)); // grouped
        c.access(&MemOp::write(b, 3)); // grouped
        assert_eq!(c.traffic().buffer_fills, 1);
        assert_eq!(c.traffic().grouped_writes, 2);
        assert_eq!(c.array_accesses(), 1, "only the fill so far");
        c.flush();
        assert_eq!(c.traffic().writebacks, 1);
        assert_eq!(c.array_accesses(), 2);
    }

    #[test]
    fn write_to_other_set_evicts_buffer() {
        let mut c = wg();
        c.access(&MemOp::write(set_b_addr(), 1));
        c.access(&MemOp::write(set_a_addr(), 2));
        // Eviction wrote back set b, then filled set a.
        assert_eq!(c.traffic().writebacks, 1);
        assert_eq!(c.traffic().buffer_fills, 2);
    }

    #[test]
    fn silent_group_elides_the_writeback() {
        let mut c = wg();
        let b = set_b_addr();
        // Memory is zero-initialized, so writing 0 is silent.
        c.access(&MemOp::write(b, 0));
        c.access(&MemOp::write(b.offset(8), 0));
        c.access(&MemOp::write(set_a_addr(), 7)); // evicts the buffer
        assert_eq!(c.traffic().writebacks, 0, "silent group never written back");
        assert_eq!(c.traffic().silent_writebacks_elided, 1);
    }

    #[test]
    fn silent_detection_off_always_writes_back() {
        let mut c = WgController::with_options(
            geometry(),
            ReplacementKind::Lru,
            WgOptions {
                silent_detection: false,
                ..WgOptions::wg()
            },
        );
        let b = set_b_addr();
        c.access(&MemOp::write(b, 0)); // silent, but detection is off
        c.access(&MemOp::write(set_a_addr(), 7));
        assert_eq!(c.traffic().writebacks, 1);
        assert_eq!(c.traffic().silent_writebacks_elided, 0);
    }

    #[test]
    fn read_hitting_tag_buffer_forces_premature_writeback() {
        let mut c = wg();
        let b = set_b_addr();
        c.access(&MemOp::write(b, 5));
        let r = c.access(&MemOp::read(b));
        assert_eq!(r.value, 5);
        assert_eq!(c.traffic().premature_writebacks, 1);
        assert_eq!(c.traffic().demand_reads, 1);
        // The buffer survives the premature write-back: a further write to
        // set b still groups.
        c.access(&MemOp::write(b, 6));
        assert_eq!(c.traffic().grouped_writes, 1);
        assert_eq!(c.traffic().buffer_fills, 1, "no refill needed");
    }

    #[test]
    fn clean_buffer_read_needs_no_writeback() {
        let mut c = wg();
        let b = set_b_addr();
        c.access(&MemOp::write(b, 0)); // silent -> dirty stays clear
        let r = c.access(&MemOp::read(b));
        assert_eq!(r.value, 0);
        assert_eq!(c.traffic().writebacks, 0);
        assert_eq!(c.traffic().premature_writebacks, 0);
    }

    #[test]
    fn read_bypass_serves_from_buffer() {
        let mut c = wgrb();
        let b = set_b_addr();
        c.access(&MemOp::write(b, 5));
        let r = c.access(&MemOp::read(b));
        assert_eq!(r.value, 5);
        assert!(r.cost.buffer_hit);
        assert_eq!(r.cost.total(), 0);
        assert_eq!(c.traffic().bypassed_reads, 1);
        assert_eq!(c.traffic().premature_writebacks, 0);
        assert_eq!(c.traffic().demand_reads, 0);
    }

    #[test]
    fn bypassed_read_sees_unwritten_words_of_the_set() {
        // The Set-Buffer holds the whole set, so a bypassed read of a word
        // never written through the buffer must still be correct.
        let mut c = wgrb();
        let b = set_b_addr();
        // Put a value in the array first (via a different-set eviction).
        c.access(&MemOp::write(b.offset(16), 9));
        c.access(&MemOp::write(set_a_addr(), 1)); // evict set-b buffer
        c.access(&MemOp::write(b, 2)); // re-buffer set b
        let r = c.access(&MemOp::read(b.offset(16)));
        assert_eq!(r.value, 9);
        assert!(r.cost.buffer_hit);
    }

    #[test]
    fn paper_figure8_wg_walkthrough() {
        // Request stream (paper Figure 8, left-to-right in time):
        //   R_a, W_b, W_b, R_b, R_b, W_b, W_a(silent), R_a
        // Blocks are pre-warmed so no fills/evictions interfere; the
        // expected array-access counts follow §4.3's narrative.
        let a = set_a_addr();
        let b = set_b_addr();
        let mut c = wg();
        c.access(&MemOp::read(a));
        c.access(&MemOp::read(b));
        c.reset_counters();

        c.access(&MemOp::read(a)); // TB miss -> 1 array read
        c.access(&MemOp::write(b, 1)); // TB miss -> buffer fill (1 read)
        c.access(&MemOp::write(b.offset(8), 2)); // grouped, dirty set
        c.access(&MemOp::read(b)); // TB hit -> premature WB (1) + read (1)
        c.access(&MemOp::read(b)); // TB hit, clean -> read (1)
        c.access(&MemOp::write(b, 3)); // grouped, dirty set
        c.access(&MemOp::write(a, 0)); // TB miss -> WB b (1) + fill a (1); silent
        c.access(&MemOp::read(a)); // TB hit, clean -> read (1)

        let t = c.traffic();
        assert_eq!(t.demand_reads, 4);
        assert_eq!(t.buffer_fills, 2);
        assert_eq!(t.writebacks, 2);
        assert_eq!(t.premature_writebacks, 1);
        assert_eq!(t.grouped_writes, 2);
        assert_eq!(c.array_accesses(), 8);

        // RMW would have cost 4 reads + 4 writes x 2 = 12.
        // (checked in the cross-controller integration tests)
    }

    #[test]
    fn paper_figure8_wgrb_walkthrough() {
        let a = set_a_addr();
        let b = set_b_addr();
        let mut c = wgrb();
        c.access(&MemOp::read(a));
        c.access(&MemOp::read(b));
        c.inner.reset_counters();

        c.access(&MemOp::read(a)); // 1 read
        c.access(&MemOp::write(b, 1)); // fill (1 read)
        c.access(&MemOp::write(b.offset(8), 2)); // grouped
        c.access(&MemOp::read(b)); // bypassed
        c.access(&MemOp::read(b)); // bypassed
        c.access(&MemOp::write(b, 3)); // grouped
        c.access(&MemOp::write(a, 0)); // WB b (1) + fill a (1)
        c.access(&MemOp::read(a)); // bypassed (paper: "eliminated")

        let t = c.traffic();
        assert_eq!(t.bypassed_reads, 3);
        assert_eq!(t.demand_reads, 1);
        assert_eq!(c.array_accesses(), 4);
    }

    #[test]
    fn miss_fill_into_buffered_set_drops_the_buffer() {
        // 2-way sets: buffer set 0 via writes to two blocks, then miss a
        // third block of set 0 -> the fill evicts a way, so the buffer must
        // be synchronized and dropped first.
        let g = geometry();
        let mut c = wg();
        let blk0 = Address::new(0x000); // set 0
        let blk1 = Address::new(0x080); // set 0
        let blk2 = Address::new(0x100); // set 0
        assert_eq!(g.set_index_of(blk0), g.set_index_of(blk2));
        c.access(&MemOp::write(blk0, 1));
        c.access(&MemOp::write(blk1, 2));
        assert_eq!(
            c.traffic().buffer_fills,
            2,
            "blk1 missed -> set changed -> refill"
        );
        c.access(&MemOp::read(blk2)); // miss, evicts LRU way
                                      // blk0's value must have reached the cache before the eviction.
        assert_eq!(c.peek_word(blk0), 1);
        assert_eq!(c.peek_word(blk1), 2);
        assert_eq!(c.peek_word(blk2), 0);
    }

    #[test]
    fn deeper_buffers_group_across_two_sets() {
        let mut c = WgController::with_options(
            geometry(),
            ReplacementKind::Lru,
            WgOptions {
                buffer_depth: 2,
                ..WgOptions::wg()
            },
        );
        let a = set_a_addr();
        let b = set_b_addr();
        c.access(&MemOp::write(a, 1));
        c.access(&MemOp::write(b, 2));
        // With depth 2 the write to b did not evict a's buffer.
        assert_eq!(c.traffic().writebacks, 0);
        c.access(&MemOp::write(a, 3)); // still buffered -> grouped
        c.access(&MemOp::write(b, 4)); // still buffered -> grouped
        assert_eq!(c.traffic().grouped_writes, 2);
    }

    #[test]
    fn flush_is_idempotent_and_completes_state() {
        let mut c = wg();
        let b = set_b_addr();
        c.access(&MemOp::write(b, 42));
        c.flush();
        let after_first = *c.traffic();
        c.flush();
        assert_eq!(*c.traffic(), after_first, "second flush is a no-op");
        assert_eq!(c.stats().write_misses, 1);
        assert_eq!(c.peek_word(b), 42);
    }

    #[test]
    fn wg_metrics_mirror_traffic_and_trace_groups() {
        use cache8t_obs::TraceLevel;
        let mut c = wg();
        c.obs_mut()
            .unwrap()
            .tracer_mut()
            .set_level(TraceLevel::Event);
        let a = set_a_addr();
        let b = set_b_addr();
        c.access(&MemOp::write(b, 1)); // fill b
        c.access(&MemOp::write(b.offset(8), 2)); // grouped
        c.access(&MemOp::write(a, 0)); // evicts b: dirty group of 2; fills a
        c.access(&MemOp::write(b, 1)); // evicts a: silent group of 1; rewrite of 1 is silent
        c.flush(); // closes b's silent group of 1

        let reg = c.obs().unwrap().registry();
        assert_eq!(reg.counter_by_name("wg.buffer_fills"), Some(3));
        assert_eq!(reg.counter_by_name("wg.grouped_writes"), Some(1));
        assert_eq!(reg.counter_by_name("wg.writebacks"), Some(1));
        assert_eq!(reg.counter_by_name("wg.silent_suppressed"), Some(2));
        assert_eq!(reg.counter_by_name("wg.groups"), Some(3));
        let len = reg.histogram_by_name("wg.group_len").unwrap();
        assert_eq!(len.count(), 3);
        assert_eq!(len.sum(), 4);
        // Two buffer evictions -> two residency observations.
        let res = reg.histogram_by_name("wg.buffer_residency").unwrap();
        assert_eq!(res.count(), 2);

        let events: Vec<_> = c.obs().unwrap().tracer().events().collect();
        let flushes = events
            .iter()
            .filter(|e| e.kind == EventKind::GroupFlush)
            .count();
        let elides = events
            .iter()
            .filter(|e| e.kind == EventKind::SilentElide)
            .count();
        let fills = events
            .iter()
            .filter(|e| e.kind == EventKind::BufferFill)
            .count();
        assert_eq!((flushes, elides, fills), (1, 2, 3));
    }

    #[test]
    fn buffer_views_expose_resident_state() {
        let mut c = wg();
        let b = set_b_addr();
        c.access(&MemOp::write(b, 5));
        c.access(&MemOp::write(b.offset(8), 6));
        {
            let views: Vec<_> = c.buffer_views().collect();
            assert_eq!(views.len(), 1);
            let s = &views[0];
            assert_eq!(s.set_index(), geometry().set_index_of(b));
            assert_eq!(s.ways(), 2);
            assert!(s.dirty(), "non-silent writes set the Dirty bit");
            assert_eq!(s.writes_since_sync(), 2, "merge after fill + grouped write");
            let way = s
                .tags()
                .iter()
                .position(|t| *t == Some(geometry().tag_of(b)))
                .expect("written tag buffered");
            assert!(s.is_modified(way));
            assert_eq!(s.way_data(way)[0], 5);
            assert_eq!(s.way_data(way)[1], 6);
        }
        c.flush();
        let s = c.buffer_views().next().expect("buffer still resident");
        assert!(!s.dirty(), "flush cleans the buffer");
    }

    #[test]
    fn occupancy_histogram_tracks_modified_ways() {
        let mut c = wg();
        assert_eq!(
            c.occupancy(),
            Some(vec![0, 0, 0]),
            "2-way geometry: levels 0..=2, no buffer live yet"
        );
        let b = set_b_addr();
        c.access(&MemOp::write(b, 5)); // one modified way in the buffer
        assert_eq!(c.occupancy(), Some(vec![0, 1, 0]));
        c.access(&MemOp::write(b.offset(0x80), 6)); // fills set b's other way
        c.access(&MemOp::write(b, 7)); // grouped: modifies the first way too
        assert_eq!(c.occupancy(), Some(vec![0, 0, 1]), "both ways modified");
        c.flush(); // write-back folds modified into line dirty bits
        assert_eq!(c.occupancy(), Some(vec![1, 0, 0]));
        // WG+RB delegates to the inner controller.
        let mut rb = wgrb();
        rb.access(&MemOp::write(b, 5));
        assert_eq!(rb.occupancy(), Some(vec![0, 1, 0]));
    }

    #[test]
    fn evicted_buffers_are_recycled_without_reallocating() {
        let mut c = wg();
        c.access(&MemOp::write(set_b_addr(), 1));
        c.access(&MemOp::write(set_a_addr(), 2)); // evicts b's buffer
        let data_ptr = c.buffers[0].data.as_ptr();
        let cap = c.buffers[0].data.capacity();
        // Bounce between the two sets: each fill must reuse the retired
        // buffer's arena rather than allocating a fresh one.
        c.access(&MemOp::write(set_b_addr(), 3));
        c.access(&MemOp::write(set_a_addr(), 4));
        assert_eq!(c.buffers[0].data.capacity(), cap);
        assert!(
            std::ptr::eq(c.buffers[0].data.as_ptr(), data_ptr)
                || std::ptr::eq(c.free[0].data.as_ptr(), data_ptr),
            "the original arena is still in circulation"
        );
        assert_eq!(c.peek_word(set_b_addr()), 3);
        assert_eq!(c.peek_word(set_a_addr()), 4);
    }

    #[test]
    fn skip_dirty_fault_drops_written_data() {
        // The self-test fault must actually break transparency: a dirty
        // group is treated as silent, its write-back elided, and the
        // value lost when the buffer is evicted.
        let mut c = wg();
        c.inject_fault(Some(WgFault::SkipDirtyBit));
        let b = set_b_addr();
        c.access(&MemOp::write(b, 42));
        c.access(&MemOp::write(set_a_addr(), 7)); // evicts b's buffer
        assert_eq!(c.traffic().writebacks, 0, "write-back wrongly elided");
        assert_eq!(c.peek_word(b), 0, "the written value was dropped");
        // A healthy controller keeps it.
        let mut ok = wg();
        ok.access(&MemOp::write(b, 42));
        ok.access(&MemOp::write(set_a_addr(), 7));
        assert_eq!(ok.peek_word(b), 42);
    }

    #[test]
    fn names_reflect_options() {
        assert_eq!(wg().name(), "WG");
        assert_eq!(wgrb().name(), "WG+RB");
        let custom =
            WgController::with_options(geometry(), ReplacementKind::Lru, WgOptions::wg_rb());
        assert_eq!(custom.name(), "WG+RB");
    }

    #[test]
    #[should_panic(expected = "at least one Set-Buffer")]
    fn zero_depth_rejected() {
        let _ = WgController::with_options(
            geometry(),
            ReplacementKind::Lru,
            WgOptions {
                buffer_depth: 0,
                ..WgOptions::wg()
            },
        );
    }

    #[test]
    fn options_accessors() {
        assert!(WgOptions::wg_rb().read_bypass);
        assert!(!WgOptions::default().read_bypass);
        assert_eq!(wg().options(), WgOptions::wg());
        assert_eq!(wgrb().as_wg().options(), WgOptions::wg_rb());
    }
}
