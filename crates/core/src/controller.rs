//! The controller abstraction shared by all write schemes.

use std::fmt;

use serde::{Deserialize, Serialize};

use cache8t_obs::{Component, EventKind};
use cache8t_sim::{Address, CacheGeometry, CacheStats, DataCache, MainMemory, ReplacementKind};
use cache8t_trace::{DecodedBatch, MemOp};

use crate::obs::StackObs;
use crate::{ArrayTraffic, CountingPolicy};

/// The array cost of one serviced request, for timing models.
///
/// `cache8t-cpu` schedules these against the 8T array's 1R+1W ports: row
/// reads occupy the read port, row writes the write port, and a request
/// served entirely from the Set-Buffer occupies neither.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessCost {
    /// Row reads the request triggered (demand read, RMW read phase,
    /// Set-Buffer fill).
    pub row_reads: u32,
    /// Row writes the request triggered (RMW write phase, write-backs).
    pub row_writes: u32,
    /// `true` if the request was served from the Set-Buffer.
    pub buffer_hit: bool,
}

impl AccessCost {
    /// Total array activations for this request.
    pub fn total(&self) -> u32 {
        self.row_reads + self.row_writes
    }
}

/// The outcome of one serviced request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessResponse {
    /// For reads: the value returned to the processor. For writes: the
    /// value stored.
    pub value: u64,
    /// `true` if the block was resident when the request arrived (a
    /// functional cache hit).
    pub hit: bool,
    /// Array operations performed to service this request.
    pub cost: AccessCost,
}

/// A cache front-end servicing a memory request stream while accounting
/// SRAM-array traffic.
///
/// Implementations share functional behaviour — same hits and misses, same
/// replacement decisions, same returned values — and differ only in *how
/// many array operations* each request costs. That invariant is what makes
/// the traffic comparison of Figures 9–11 meaningful, and it is enforced by
/// the cross-controller equivalence tests in this crate.
pub trait Controller {
    /// Services one request.
    fn access(&mut self, op: &MemOp) -> AccessResponse;

    /// Writes back any buffered state so the cache/memory image is
    /// architecturally current. Idempotent.
    fn flush(&mut self);

    /// The traffic ledger.
    fn traffic(&self) -> &ArrayTraffic;

    /// Request-level hit/miss statistics, maintained identically by every
    /// controller (unlike [`DataCache::stats`], which only sees the
    /// requests that reach the array).
    fn stats(&self) -> &CacheStats;

    /// Resets the traffic ledger and request statistics, keeping cache and
    /// buffer contents (used after warm-up, mirroring the paper's 1 B
    /// warm-up instructions).
    fn reset_counters(&mut self);

    /// The underlying functional cache.
    fn cache(&self) -> &DataCache;

    /// The backing memory image.
    fn memory(&self) -> &MainMemory;

    /// Short scheme name for reports (e.g. `"RMW"`, `"WG+RB"`).
    fn name(&self) -> &'static str;

    /// The architecturally current value of the aligned word at `addr`,
    /// looking through any buffers, the cache, and memory.
    fn peek_word(&self, addr: Address) -> u64;

    /// Total array activations so far under the paper's counting.
    fn array_accesses(&self) -> u64 {
        self.traffic().total(CountingPolicy::DemandOnly)
    }

    /// The stack's observability bundle (metric registry + event
    /// tracer), when the controller is instrumented.
    fn obs(&self) -> Option<&StackObs> {
        None
    }

    /// Mutable access to the observability bundle.
    fn obs_mut(&mut self) -> Option<&mut StackObs> {
        None
    }

    /// Instantaneous write-buffer occupancy for the telemetry sampler:
    /// index = occupancy level of a live buffer (modified ways of a WG
    /// Set-Buffer, valid words of a coalescing entry), value = buffers
    /// at that level. `None` for schemes without write buffers (the
    /// sampler records an empty histogram).
    fn occupancy(&self) -> Option<Vec<u64>> {
        None
    }

    /// Services a borrowed slice of requests in order — the streaming
    /// replay path hands whole trace chunks to the controller through
    /// this. Equivalent to calling [`access`](Controller::access) per
    /// op (the default does exactly that); kept on the trait so a
    /// controller can batch across a chunk later without touching the
    /// replay loops.
    fn access_slice(&mut self, ops: &[MemOp]) {
        for op in ops {
            self.access(op);
        }
    }

    /// Services ops `range` of a pre-decoded batch, in order.
    ///
    /// Equivalent to calling [`access`](Controller::access) on each
    /// reconstructed op (the default does exactly that); the concrete
    /// controllers override it with fast paths that consume the batch's
    /// decoded set/tag/word columns instead of re-deriving them per op.
    /// The batch must have been decoded against this controller's cache
    /// geometry.
    fn access_batch(&mut self, batch: &DecodedBatch, range: std::ops::Range<usize>) {
        for i in range {
            self.access(&batch.op(i));
        }
    }
}

/// The functional machinery every controller embeds: a value-carrying
/// cache, an optional L2 behind it, the backing memory, and write-allocate
/// miss handling.
///
/// The paper's Pin tool models an isolated L1 over "memory"; that remains
/// the default. [`CacheBackend::with_l2`] inserts a non-inclusive
/// (victim-style NINE) second level: L1 misses probe the L2 before memory,
/// dirty L1 victims are deposited into the L2, and dirty L2 victims go to
/// memory. Because every controller shares this path, the L1's functional
/// behaviour — and therefore the paper's demand-traffic figures — is
/// bit-identical with or without an L2 (`tests/hierarchy.rs` asserts
/// this).
///
/// `CacheBackend` deliberately performs *no* array-traffic accounting — the
/// controllers decide what each functional step costs on their array.
pub struct CacheBackend {
    cache: DataCache,
    l2: Option<DataCache>,
    memory: MainMemory,
    requests: CacheStats,
    obs: StackObs,
    /// Reusable one-block staging buffer for fills and merges.
    scratch: Box<[u64]>,
    /// Reusable buffer receiving L1 victims from `fill_into`.
    victim: Vec<u64>,
    /// Reusable buffer receiving L2 victims from `fill_into`.
    l2_victim: Vec<u64>,
}

impl CacheBackend {
    /// Creates an empty cache over zeroed memory.
    pub fn new(geometry: CacheGeometry, replacement: ReplacementKind) -> Self {
        CacheBackend {
            cache: DataCache::new(geometry, replacement),
            l2: None,
            memory: MainMemory::new(geometry.block_bytes()),
            requests: CacheStats::new(),
            obs: StackObs::from_env(),
            scratch: vec![0; geometry.block_words()].into_boxed_slice(),
            victim: Vec::new(),
            l2_victim: Vec::new(),
        }
    }

    /// Creates a two-level hierarchy: `geometry` over an `l2_geometry`
    /// second level over zeroed memory.
    ///
    /// # Panics
    ///
    /// Panics if the two levels disagree on block size (no sub-blocking)
    /// or the L2 is smaller than the L1.
    pub fn with_l2(
        geometry: CacheGeometry,
        l2_geometry: CacheGeometry,
        replacement: ReplacementKind,
    ) -> Self {
        assert_eq!(
            geometry.block_bytes(),
            l2_geometry.block_bytes(),
            "L1 and L2 must share a block size"
        );
        assert!(
            l2_geometry.capacity_bytes() >= geometry.capacity_bytes(),
            "the L2 should not be smaller than the L1"
        );
        CacheBackend {
            cache: DataCache::new(geometry, replacement),
            l2: Some(DataCache::new(l2_geometry, replacement)),
            memory: MainMemory::new(geometry.block_bytes()),
            requests: CacheStats::new(),
            obs: StackObs::from_env(),
            scratch: vec![0; geometry.block_words()].into_boxed_slice(),
            victim: Vec::new(),
            l2_victim: Vec::new(),
        }
    }

    /// The stack's observability bundle.
    pub fn obs(&self) -> &StackObs {
        &self.obs
    }

    /// Mutable access to the observability bundle.
    pub fn obs_mut(&mut self) -> &mut StackObs {
        &mut self.obs
    }

    /// The second-level cache, if the hierarchy has one.
    pub fn l2(&self) -> Option<&DataCache> {
        self.l2.as_ref()
    }

    /// Reads the block at `base` from below the L1 into `dst` (L2 if
    /// present — allocating there on an L2 miss — else memory).
    ///
    /// A free-standing helper over disjoint backend fields so callers
    /// can keep `self.scratch`/`self.victim` borrowed at the call site.
    fn load_below(
        l2: &mut Option<DataCache>,
        memory: &mut MainMemory,
        l2_victim: &mut Vec<u64>,
        dst: &mut [u64],
        base: Address,
    ) {
        let Some(l2) = l2 else {
            memory.read_block_into(base, dst);
            return;
        };
        let g = l2.geometry();
        if let Some(way) = l2.probe(base) {
            l2.touch(base);
            dst.copy_from_slice(l2.set(g.set_index_of(base)).line(way).data());
            return;
        }
        memory.read_block_into(base, dst);
        let slot = l2.fill_into(base, dst, l2_victim);
        if let Some(victim) = slot.evicted {
            if victim.dirty {
                memory.write_block_from(victim.base, l2_victim);
            }
        }
    }

    /// Deposits a whole (dirty) block below the L1: into the L2 if
    /// present (allocating on miss), else straight to memory.
    fn deposit_below(
        l2: &mut Option<DataCache>,
        memory: &mut MainMemory,
        l2_victim: &mut Vec<u64>,
        base: Address,
        data: &[u64],
    ) {
        let Some(l2) = l2 else {
            memory.write_block_from(base, data);
            return;
        };
        let g = l2.geometry();
        let set = g.set_index_of(base);
        if let Some(way) = l2.probe(base) {
            l2.touch(base);
            l2.update_block(set, way, data, true);
            return;
        }
        let slot = l2.fill_into(base, data, l2_victim);
        // `fill_into` installs clean; re-mark the block dirty so it
        // eventually reaches memory.
        l2.update_block(set, slot.way, data, true);
        if let Some(victim) = slot.evicted {
            if victim.dirty {
                memory.write_block_from(victim.base, l2_victim);
            }
        }
    }

    /// Merges `words` (where `valid`) into the block below the L1 — the
    /// write-around path used when a buffered block's line has left the
    /// L1 (see `CoalescingController`).
    pub fn merge_words_below(&mut self, base: Address, words: &[u64], valid: &[bool]) {
        Self::load_below(
            &mut self.l2,
            &mut self.memory,
            &mut self.l2_victim,
            &mut self.scratch,
            base,
        );
        for (i, &is_valid) in valid.iter().enumerate() {
            if is_valid {
                self.scratch[i] = words[i];
            }
        }
        Self::deposit_below(
            &mut self.l2,
            &mut self.memory,
            &mut self.l2_victim,
            base,
            &self.scratch,
        );
    }

    /// Records a serviced read request.
    #[inline]
    pub fn record_read(&mut self, hit: bool) {
        if hit {
            self.requests.read_hits += 1;
        } else {
            self.requests.read_misses += 1;
        }
        let id = self.obs.m_reads;
        self.obs.inc(id);
        self.obs
            .emit_verbose(Component::Cache, EventKind::Access, 0, 0);
        self.obs.advance_tick();
    }

    /// Records a serviced write request.
    #[inline]
    pub fn record_write(&mut self, hit: bool, silent: bool) {
        if hit {
            self.requests.write_hits += 1;
        } else {
            self.requests.write_misses += 1;
        }
        if silent {
            self.requests.silent_word_writes += 1;
        }
        let id = self.obs.m_writes;
        self.obs.inc(id);
        self.obs
            .emit_verbose(Component::Cache, EventKind::Access, 0, 1);
        self.obs.advance_tick();
    }

    /// Request-level statistics (one entry per CPU request, regardless of
    /// how the controller serviced it).
    pub fn request_stats(&self) -> &CacheStats {
        &self.requests
    }

    /// Zeroes the request statistics, the cache's internal statistics,
    /// and the observability bundle (metric values, events, tick).
    pub fn reset_stats(&mut self) {
        self.requests = CacheStats::new();
        self.cache.reset_stats();
        self.obs.reset();
    }

    /// The functional cache.
    pub fn cache(&self) -> &DataCache {
        &self.cache
    }

    /// Mutable access to the functional cache.
    pub fn cache_mut(&mut self) -> &mut DataCache {
        &mut self.cache
    }

    /// The backing memory.
    pub fn memory(&self) -> &MainMemory {
        &self.memory
    }

    /// Mutable access to the backing memory (write-around paths).
    pub fn memory_mut(&mut self) -> &mut MainMemory {
        &mut self.memory
    }

    /// The cache's hit/miss statistics.
    pub fn stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Ensures the block containing `addr` is resident, allocating on miss
    /// (write-allocate for both reads and writes, as in the paper's L1
    /// model).
    ///
    /// Returns `(hit, filled)` where `filled` reports whether a line fill
    /// happened and whether it evicted a dirty victim — the controller
    /// translates those into traffic.
    pub fn ensure_resident(&mut self, addr: Address) -> ResidencyOutcome {
        let probed = self.cache.probe(addr);
        self.ensure_resident_probed(addr, probed)
    }

    /// [`ensure_resident`](Self::ensure_resident) for callers that
    /// already probed the cache: `probed` is the result of
    /// [`DataCache::probe`]/[`DataCache::find_in_set`] for `addr`, so no
    /// second tag search happens on the hit path. The returned
    /// [`ResidencyOutcome::way`] lets the caller address the line
    /// directly for the subsequent data access.
    #[inline]
    pub fn ensure_resident_probed(
        &mut self,
        addr: Address,
        probed: Option<usize>,
    ) -> ResidencyOutcome {
        if let Some(way) = probed {
            return ResidencyOutcome {
                hit: true,
                filled: false,
                dirty_eviction: false,
                way,
            };
        }
        self.fill_on_miss(addr)
    }

    /// The miss half of [`ensure_resident_probed`](Self::ensure_resident_probed):
    /// load the block from below, install it, write back any dirty
    /// victim. Split out and marked cold so the hit path — a branch and
    /// a struct return — inlines into the controllers' access loops.
    #[cold]
    fn fill_on_miss(&mut self, addr: Address) -> ResidencyOutcome {
        let base = self.cache.geometry().block_base(addr);
        let words = self.scratch.len() as u64;
        let heat_bucket = self
            .cache
            .geometry()
            .heat_bucket_of(addr, crate::obs::SET_HEAT_BUCKETS);
        let slot = if self.l2.is_none() {
            // No L2: fill straight from the memory image's block (or its
            // shared zero block), skipping the scratch staging copy.
            let block = self.memory.read_block_ref(base);
            self.cache.fill_into(base, block, &mut self.victim)
        } else {
            Self::load_below(
                &mut self.l2,
                &mut self.memory,
                &mut self.l2_victim,
                &mut self.scratch,
                base,
            );
            self.cache.fill_into(base, &self.scratch, &mut self.victim)
        };
        let id = self.obs.m_line_fills;
        self.obs.inc(id);
        self.obs.record_set_heat(heat_bucket);
        self.obs
            .emit(Component::Cache, EventKind::LineFill, base.raw(), words);
        let mut dirty_eviction = false;
        if let Some(victim) = slot.evicted {
            if victim.dirty {
                Self::deposit_below(
                    &mut self.l2,
                    &mut self.memory,
                    &mut self.l2_victim,
                    victim.base,
                    &self.victim,
                );
                dirty_eviction = true;
                let id = self.obs.m_dirty_evictions;
                self.obs.inc(id);
            }
            let id = self.obs.m_evictions;
            self.obs.inc(id);
            self.obs.emit(
                Component::Cache,
                EventKind::Eviction,
                victim.base.raw(),
                u64::from(dirty_eviction),
            );
        }
        ResidencyOutcome {
            hit: false,
            filled: true,
            dirty_eviction,
            way: slot.way,
        }
    }

    /// The architecturally current word at `addr` as seen by cache +
    /// memory (no controller buffers).
    pub fn peek_word(&self, addr: Address) -> u64 {
        if let Some(way) = self.cache.probe(addr) {
            let g = self.cache.geometry();
            let set = g.set_index_of(addr);
            return self.cache.set(set).line(way).data()[g.word_offset_of(addr)];
        }
        if let Some(l2) = &self.l2 {
            if let Some(way) = l2.probe(addr) {
                let g = l2.geometry();
                let set = g.set_index_of(addr);
                return l2.set(set).line(way).data()[g.word_offset_of(addr)];
            }
        }
        self.memory.read_word(addr)
    }
}

impl fmt::Debug for CacheBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CacheBackend")
            .field("cache", &self.cache)
            .field("l2", &self.l2.as_ref().map(|c| c.geometry()))
            .field("memory_blocks", &self.memory.resident_blocks())
            .finish()
    }
}

/// Result of [`CacheBackend::ensure_resident`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidencyOutcome {
    /// The block was already resident.
    pub hit: bool,
    /// A line fill was performed.
    pub filled: bool,
    /// The fill evicted a dirty victim that was written back to memory.
    pub dirty_eviction: bool,
    /// The way the block occupies after the call (the hit way, or the
    /// way the fill installed into). Callers use it to address the line
    /// directly instead of re-searching the set's tags.
    pub way: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backend() -> CacheBackend {
        CacheBackend::new(
            CacheGeometry::new(128, 2, 32).unwrap(),
            ReplacementKind::Lru,
        )
    }

    #[test]
    fn ensure_resident_fills_on_miss_and_hits_after() {
        let mut b = backend();
        let a = Address::new(0x40);
        let first = b.ensure_resident(a);
        assert!(!first.hit);
        assert!(first.filled);
        assert!(!first.dirty_eviction);
        let second = b.ensure_resident(a);
        assert!(second.hit);
        assert!(!second.filled);
    }

    #[test]
    fn dirty_victims_reach_memory() {
        let mut b = backend();
        let a = Address::new(0x40);
        b.ensure_resident(a);
        b.cache_mut().write_word(a, 99).unwrap();
        // Conflict-fill the set until a is evicted (2 ways).
        let o1 = b.ensure_resident(Address::new(0xC0));
        let o2 = b.ensure_resident(Address::new(0x140));
        assert!(o1.filled && o2.filled);
        assert!(o2.dirty_eviction, "a was dirty and LRU");
        assert_eq!(b.memory().read_word(a), 99);
        assert_eq!(b.peek_word(a), 99, "peek falls through to memory");
    }

    #[test]
    fn peek_word_prefers_cache_content() {
        let mut b = backend();
        let a = Address::new(0x40);
        b.ensure_resident(a);
        b.cache_mut().write_word(a, 7).unwrap();
        assert_eq!(b.peek_word(a), 7);
        assert_eq!(b.memory().read_word(a), 0, "memory still stale");
    }

    #[test]
    fn access_cost_totals() {
        let c = AccessCost {
            row_reads: 2,
            row_writes: 1,
            buffer_hit: false,
        };
        assert_eq!(c.total(), 3);
        assert_eq!(AccessCost::default().total(), 0);
    }
}
