//! Typed physical quantities.
//!
//! Thin `f64` newtypes so that energies, areas and voltages cannot be mixed
//! up in the model plumbing. Arithmetic is provided only where it is
//! physically meaningful.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul};

use serde::{Deserialize, Serialize};

macro_rules! quantity {
    ($(#[$doc:meta])* $name:ident, $unit:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw value.
            ///
            /// # Panics
            ///
            /// Panics if `value` is negative or not finite.
            pub fn new(value: f64) -> Self {
                assert!(
                    value.is_finite() && value >= 0.0,
                    concat!(stringify!($name), " must be finite and nonnegative")
                );
                $name(value)
            }

            /// The raw value.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name::new(self.0 * rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two quantities of the same kind (dimensionless).
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                iter.fold($name(0.0), |acc, x| acc + x)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!("{:.4} ", $unit), self.0)
            }
        }
    };
}

quantity! {
    /// An energy in picojoules.
    Picojoules, "pJ"
}

quantity! {
    /// An area in square microns.
    SquareMicrons, "um^2"
}

quantity! {
    /// A voltage in volts.
    Volts, "V"
}

impl Volts {
    /// The `V²` factor by which dynamic energy scales relative to
    /// `reference`.
    pub fn energy_scale(self, reference: Volts) -> f64 {
        let r = self.0 / reference.0;
        r * r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_value() {
        assert_eq!(Picojoules::new(2.5).value(), 2.5);
        assert_eq!(SquareMicrons::default().value(), 0.0);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_rejected() {
        let _ = Picojoules::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = Volts::new(f64::NAN);
    }

    #[test]
    fn arithmetic() {
        let e = Picojoules::new(1.0) + Picojoules::new(2.0);
        assert_eq!(e.value(), 3.0);
        let mut acc = Picojoules::new(0.0);
        acc += Picojoules::new(4.0);
        assert_eq!(acc.value(), 4.0);
        assert_eq!((Picojoules::new(2.0) * 3.0).value(), 6.0);
        assert_eq!(Picojoules::new(6.0) / Picojoules::new(2.0), 3.0);
        let total: Picojoules = [Picojoules::new(1.0), Picojoules::new(2.0)]
            .into_iter()
            .sum();
        assert_eq!(total.value(), 3.0);
    }

    #[test]
    fn voltage_energy_scaling_is_quadratic() {
        let half = Volts::new(0.5).energy_scale(Volts::new(1.0));
        assert!((half - 0.25).abs() < 1e-12);
        assert!((Volts::new(1.0).energy_scale(Volts::new(1.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_includes_units() {
        assert_eq!(Picojoules::new(1.5).to_string(), "1.5000 pJ");
        assert_eq!(Volts::new(0.9).to_string(), "0.9000 V");
        assert_eq!(SquareMicrons::new(2.0).to_string(), "2.0000 um^2");
    }
}
